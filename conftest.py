"""Repo-wide pytest configuration: the fast/slow test split.

The default run (``PYTHONPATH=src python -m pytest -x -q``) skips tests
marked ``slow`` — the full-grid benchmarks under ``benchmarks/`` and the
long integration sweeps — so it stays a sub-two-minute gate.  The slow
tier runs with::

    PYTHONPATH=src python -m pytest --runslow          # everything
    PYTHONPATH=src python -m pytest -m slow --runslow  # only the slow tier
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked slow (benchmarks, long sweeps)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    if "slow" in (config.getoption("markexpr") or ""):
        # an explicit -m expression naming 'slow' is its own opt-in
        return
    skip_slow = pytest.mark.skip(reason="slow: needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)

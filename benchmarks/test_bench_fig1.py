"""Benchmark E1 — paper Fig. 1: per-operation speedup gain vs. SM count.

Regenerates the isolation speedup curves for every ResNet18 operation type
and the whole network, prints the table, and asserts the paper's anchors:
convolution ~32x, max pooling ~14x, everything else <= 7x, ResNet18 ~23x.
"""

import pytest

from benchmarks.conftest import emit

pytestmark = pytest.mark.slow
from repro.analysis.report import render_fig1_table
from repro.dnn.ops import OpType
from repro.dnn.resnet import build_resnet18
from repro.speedup.measure import (
    measure_network_speedup,
    measure_op_speedups,
    speedup_at,
)


def run_fig1():
    graph = build_resnet18()
    op_curves = measure_op_speedups(graph)
    net_curve = measure_network_speedup(graph)
    return op_curves, net_curve


def test_fig1_speedup_gain(benchmark):
    op_curves, net_curve = benchmark(run_fig1)

    table = render_fig1_table(op_curves, net_curve)
    emit(
        "bench_fig1.txt",
        "Fig. 1 - speedup gain vs SMs (isolation, simulated RTX 2080 Ti)\n"
        + table,
    )

    conv = speedup_at(op_curves[OpType.CONV2D], 68)
    maxpool = speedup_at(op_curves[OpType.MAXPOOL], 68)
    network = speedup_at(net_curve, 68)

    # Paper: conv reaches the best gain (32x), maxpool follows (14x),
    # other ops fail to exceed 7x, and ResNet18 overall reaches ~23x.
    assert conv == pytest.approx(32.0, abs=2.0)
    assert maxpool == pytest.approx(14.0, abs=1.5)
    for op_type, points in op_curves.items():
        if op_type not in (OpType.CONV2D, OpType.MAXPOOL):
            assert speedup_at(points, 68) <= 7.0
    assert network == pytest.approx(23.0, abs=2.0)

    summary = (
        f"anchors @68 SMs: conv={conv:.1f}x (paper 32x), "
        f"maxpool={maxpool:.1f}x (paper 14x), resnet18={network:.1f}x "
        f"(paper 23x)"
    )
    emit("bench_fig1.txt", summary)

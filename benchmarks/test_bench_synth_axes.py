"""Zoo-mix x deadline-mode axis sweeps (ROADMAP open item).

The synthesis subsystem (PR 2) made model mix and deadline mode sweepable
grid axes; this benchmark actually sweeps them: every (zoo mix, deadline
mode) cell ramps target utilization over the ``mixed_fleet`` pool and
reports the per-variant pivot utilization — where SGPRS keeps a mix
schedulable after the naive baseline starts missing.

Each cell is its own parametrized slow-tier test, so the distributed
benchmark knobs compose naturally:

* ``REPRO_BENCH_SHARD=i/n`` splits the cells across CI jobs (node-id
  sharding in ``benchmarks/conftest.py``);
* ``REPRO_BENCH_WORKERS`` / ``REPRO_BENCH_CACHE`` shard/cache each
  cell's sweep exactly like every other benchmark.

The fast-tier smoke at the bottom pins one golden point per variant on
the heavyweight/constrained cell — the axes a silent synthesis or
scheduler change would most likely move — and runs in every tier and
every shard.
"""

import pytest

from benchmarks.conftest import bench_cache_dir, bench_workers, emit
from repro.exp.grid import GridPoint
from repro.exp.worker import run_point
from repro.workloads.synth.sweep import run_synth_sweep, utilization_pivots

ZOO_MIXES = ("fleet", "surveillance", "heavyweight")
DEADLINE_MODES = ("implicit", "constrained")

UTILIZATIONS = (1.0, 1.6, 2.2, 2.8)
NUM_TASKS = 8
DURATION = 2.0
WARMUP = 0.5
VARIANTS = ("naive", "sgprs_1.5")


@pytest.mark.slow
@pytest.mark.parametrize("zoo_mix", ZOO_MIXES)
@pytest.mark.parametrize("deadline_mode", DEADLINE_MODES)
def test_axes_cell(zoo_mix, deadline_mode):
    result = run_synth_sweep(
        "mixed_fleet",
        utilizations=UTILIZATIONS,
        task_counts=(NUM_TASKS,),
        variants=VARIANTS,
        duration=DURATION,
        warmup=WARMUP,
        workers=bench_workers(),
        cache_dir=bench_cache_dir(),
        zoo_mix=zoo_mix,
        deadline_mode=deadline_mode,
    )
    pivots = utilization_pivots(result.results, dmr_tolerance=0.01)
    by_variant = {
        variant: {
            r.point.total_utilization: r for r in result.results
            if r.point.variant == variant
        }
        for variant in VARIANTS
    }
    rows = "  ".join(
        f"u{u:g}: naive={by_variant['naive'][u].dmr * 100:.0f}%/"
        f"sgprs={by_variant['sgprs_1.5'][u].dmr * 100:.0f}%"
        for u in UTILIZATIONS
    )
    emit(
        "bench_synth_axes.txt",
        f"{zoo_mix}/{deadline_mode} @{NUM_TASKS} tasks dmr by target "
        f"utilization: {rows}  pivots: "
        + ", ".join(f"{k}={v}" for k, v in pivots.items()),
    )
    # the load axis must bite: the overloaded end misses more than the
    # underloaded end for the baseline
    naive = by_variant["naive"]
    assert naive[UTILIZATIONS[-1]].dmr >= naive[UTILIZATIONS[0]].dmr
    # and every cell produced the full grid
    assert len(result.results) == len(VARIANTS) * len(UTILIZATIONS)


# ---------------------------------------------------------------------------
# Fast-tier golden smoke: one pinned point per variant on the
# heavyweight/constrained cell.  Deterministic at zero jitter — if a
# legitimate synthesis/scheduler change moves these, update them
# *deliberately* (see tests/integration/test_golden_synth.py).

SMOKE_UTILIZATION = 2.0
# FPS goldens moved when the warmup rule was unified (FPS now counts the
# same release >= warmup population DMR measures); DMR/release counts
# were unaffected by construction.
GOLDEN_NAIVE_FPS = 136.0
GOLDEN_NAIVE_DMR = 0.8658536585365854
GOLDEN_NAIVE_RELEASED = 224
GOLDEN_SGPRS_FPS = 228.0
GOLDEN_SGPRS_DMR = 0.9187817258883249
GOLDEN_SGPRS_RELEASED = 266


def smoke_point(variant):
    return GridPoint(
        scenario="mixed_fleet",
        num_contexts=2,
        variant=variant,
        num_tasks=4,
        seed=0,
        base_seed=0,
        duration=1.0,
        warmup=0.25,
        workload="mixed_fleet",
        total_utilization=SMOKE_UTILIZATION,
        zoo_mix="heavyweight",
        deadline_mode="constrained",
    )


def test_axes_golden_smoke():
    naive = run_point(smoke_point("naive"))
    sgprs = run_point(smoke_point("sgprs_1.5"))
    assert naive.total_fps == pytest.approx(GOLDEN_NAIVE_FPS, rel=1e-9)
    assert naive.dmr == pytest.approx(GOLDEN_NAIVE_DMR, rel=1e-9)
    assert naive.released == GOLDEN_NAIVE_RELEASED
    assert sgprs.total_fps == pytest.approx(GOLDEN_SGPRS_FPS, rel=1e-9)
    assert sgprs.dmr == pytest.approx(GOLDEN_SGPRS_DMR, rel=1e-9)
    assert sgprs.released == GOLDEN_SGPRS_RELEASED
    # the headline ordering the axes sweep quantifies: under heavyweight
    # overload SGPRS completes substantially more frames
    assert sgprs.total_fps > 1.5 * naive.total_fps

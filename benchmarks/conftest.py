"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table/figure at reduced grid size
(full-fidelity sweeps live behind ``python -m repro fig3|fig4``), prints
the rows the paper reports, and appends them to ``results/bench_*.txt`` so
the output survives pytest's capture.

All benchmarks are in the ``slow`` tier (``--runslow`` to enable) and the
sweep-shaped ones run through :mod:`repro.exp`; three environment knobs
steer that harness without touching the code:

* ``REPRO_BENCH_WORKERS`` — worker processes per sweep (default 0, serial;
  results are identical either way);
* ``REPRO_BENCH_CACHE`` — directory for the on-disk point cache (default
  unset: every run recomputes);
* ``REPRO_BENCH_SHARD`` — ``i/n`` (1-based): run only the slow-tier
  benchmarks of shard ``i`` of ``n``, so CI can split the slow tier
  across a job matrix.  Assignment is a stable hash of each test's node
  id — the same deterministic disjoint-exact-cover contract the sweep
  shards have (see :mod:`repro.exp.dist`), so the ``n`` shard jobs
  together run every slow benchmark exactly once.
"""

import hashlib
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_workers() -> int:
    """Worker-process count for benchmark sweeps (env-tunable)."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", "0"))


def bench_cache_dir():
    """Result-cache directory for benchmark sweeps, or ``None``."""
    return os.environ.get("REPRO_BENCH_CACHE") or None


def bench_shard():
    """The ``(i, n)`` benchmark shard from ``REPRO_BENCH_SHARD``, or
    ``None`` when unset (run everything)."""
    from repro.exp.dist import parse_shard

    raw = os.environ.get("REPRO_BENCH_SHARD")
    return parse_shard(raw) if raw else None


def _shard_of(nodeid: str, count: int) -> int:
    """Stable 1-based shard assignment of one test (process-independent,
    unlike ``hash()``)."""
    digest = hashlib.sha256(nodeid.encode()).digest()
    return int.from_bytes(digest[:4], "big") % count + 1


def pytest_collection_modifyitems(config, items):
    """Skip slow benchmarks that belong to another ``REPRO_BENCH_SHARD``.

    Only ``slow``-marked items shard — the fast-tier golden smokes run
    in every job, so each shard still gates on the pinned points.
    """
    shard = bench_shard()
    if shard is None:
        return
    index, count = shard
    for item in items:
        if "slow" not in item.keywords:
            continue
        assigned = _shard_of(item.nodeid, count)
        if assigned != index:
            item.add_marker(
                pytest.mark.skip(
                    reason=(
                        f"REPRO_BENCH_SHARD: belongs to shard "
                        f"{assigned}/{count}"
                    )
                )
            )


#: Result files already truncated this session (emit starts each file
#: fresh on first write, then appends — so running a *subset* of the
#: benchmarks never deletes the other committed result files).
_FRESH: set = set()


def emit(filename: str, text: str) -> None:
    """Print a result block and persist it under results/."""
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    mode = "a" if filename in _FRESH else "w"
    _FRESH.add(filename)
    with open(path, mode) as handle:
        handle.write(text + "\n")


#: Accumulated JSON snapshots of this session, per target file (emit_json
#: rewrites the whole document on each call, starting fresh per session —
#: the same semantics `emit` has for the text blocks).
_JSON_DOCS: dict = {}


def emit_json(filename: str, key: str, payload: dict) -> None:
    """Record one machine-readable benchmark snapshot under results/.

    ``BENCH_*.json`` files are the perf trajectory future PRs are judged
    against: one JSON document per benchmark family, one top-level ``key``
    per measured configuration, rewritten atomically from this session's
    accumulated snapshots (a partial run never merges stale data from a
    previous session into its keys).
    """
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    doc = _JSON_DOCS.setdefault(filename, {})
    doc[key] = payload
    path = RESULTS_DIR / filename
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    tmp.replace(path)

"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table/figure at reduced grid size
(full-fidelity sweeps live behind ``python -m repro fig3|fig4``), prints
the rows the paper reports, and appends them to ``results/bench_*.txt`` so
the output survives pytest's capture.

All benchmarks are in the ``slow`` tier (``--runslow`` to enable) and the
sweep-shaped ones run through :mod:`repro.exp`; two environment knobs
steer that harness without touching the code:

* ``REPRO_BENCH_WORKERS`` — worker processes per sweep (default 0, serial;
  results are identical either way);
* ``REPRO_BENCH_CACHE`` — directory for the on-disk point cache (default
  unset: every run recomputes).
"""

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_workers() -> int:
    """Worker-process count for benchmark sweeps (env-tunable)."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", "0"))


def bench_cache_dir():
    """Result-cache directory for benchmark sweeps, or ``None``."""
    return os.environ.get("REPRO_BENCH_CACHE") or None


#: Result files already truncated this session (emit starts each file
#: fresh on first write, then appends — so running a *subset* of the
#: benchmarks never deletes the other committed result files).
_FRESH: set = set()


def emit(filename: str, text: str) -> None:
    """Print a result block and persist it under results/."""
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    mode = "a" if filename in _FRESH else "w"
    _FRESH.add(filename)
    with open(path, mode) as handle:
        handle.write(text + "\n")

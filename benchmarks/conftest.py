"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table/figure at reduced grid size
(full-fidelity sweeps live behind ``python -m repro fig3|fig4``), prints
the rows the paper reports, and appends them to ``results/bench_*.txt`` so
the output survives pytest's capture.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def emit(filename: str, text: str) -> None:
    """Print a result block and persist it under results/."""
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    with open(path, "a") as handle:
        handle.write(text + "\n")


@pytest.fixture(scope="session", autouse=True)
def clean_results():
    """Start each benchmark session with fresh result files."""
    RESULTS_DIR.mkdir(exist_ok=True)
    for path in RESULTS_DIR.glob("bench_*.txt"):
        path.unlink()
    yield

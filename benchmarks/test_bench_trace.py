"""Trace-recorder benchmark: columnar vs list-backed memory and speed.

A list-backed trace pays a ``TraceRecord`` dataclass plus a fields dict
per event (~290 bytes/event measured); the columnar backend interns
kinds and strings into flat typed arrays (~50 bytes/event, and the same
~53 bytes/event once serialised to the v1 on-disk format).  That 5x gap
is what makes ``record_traces`` sweeps affordable: a million-event point
trace is ~50 MB of Python objects on the list backend but ~5 MB of
arrays — and a ~5 MB trace file — on the columnar one.

Two tiers:

* ``test_trace_memory_guardrail_fast`` (fast tier, every push) gates the
  memory ratio at >= 2x.  The columnar side is ``nbytes()`` (an exact
  deterministic count of the array buffers + intern tables); the list
  side is tracemalloc over the recording loop (deterministic for a fixed
  allocation sequence).  Wall time is reported, not gated, in this tier.
* ``test_trace_throughput`` (slow tier) measures append and replay
  (iteration) events/sec on a bigger trace plus the end-to-end
  serialise/deserialise rate.  The gate is deliberately loose (columnar
  appends within 4x of the list backend's rate — measured ~1.4x slower):
  the point of the columnar backend is memory, and the gate only
  guards against an accidental order-of-magnitude regression in the
  hot ``record()`` path.

Results land in ``results/bench_trace.txt`` (human-readable) and
``results/BENCH_trace.json`` (machine-readable trajectory); CI uploads
both as workflow artifacts.
"""

import time
import tracemalloc

import pytest

from conftest import emit, emit_json

from repro.core.context_pool import ContextPoolConfig
from repro.core.runner import RunConfig, run_simulation
from repro.gpu.spec import RTX_2080_TI
from repro.sim.trace import TraceRecorder
from repro.sim.trace_columnar import ColumnarTrace
from repro.sim.trace_io import trace_from_bytes, trace_to_bytes
from repro.workloads.generator import identical_periodic_tasks


def sample_events(num_tasks, duration):
    """A realistic event stream: every kind a real overloaded run emits."""
    pool = ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)
    tasks = identical_periodic_tasks(
        num_tasks, nominal_sms=pool.sms_per_context
    )
    result = run_simulation(
        tasks,
        RunConfig(
            pool=pool,
            duration=duration,
            warmup=duration / 4.0,
            record_trace=True,
        ),
    )
    return [(r.time, r.kind, r.fields) for r in result.trace]


def record_into(recorder, events):
    for timestamp, kind, fields in events:
        recorder.record(timestamp, kind, **fields)
    return recorder


def measure(num_tasks, duration):
    events = sample_events(num_tasks, duration)
    count = len(events)

    # list backend: tracemalloc over the recording loop (objects + dicts);
    # a separate untraced pass times the appends (tracemalloc's hooks
    # would otherwise slow the list side ~3x and skew the comparison)
    tracemalloc.start()
    baseline = tracemalloc.get_traced_memory()[0]
    listed = record_into(TraceRecorder(), events)
    list_bytes = tracemalloc.get_traced_memory()[0] - baseline
    tracemalloc.stop()
    started = time.perf_counter()
    record_into(TraceRecorder(), events)
    list_wall = time.perf_counter() - started

    # columnar backend: nbytes() is an exact deterministic buffer count
    started = time.perf_counter()
    columnar = record_into(ColumnarTrace(), events)
    columnar_wall = time.perf_counter() - started
    columnar_bytes = columnar.nbytes()

    started = time.perf_counter()
    list_replayed = sum(1 for _ in listed)
    list_iter_wall = time.perf_counter() - started
    started = time.perf_counter()
    columnar_replayed = sum(1 for _ in columnar)
    columnar_iter_wall = time.perf_counter() - started
    assert list_replayed == columnar_replayed == count

    started = time.perf_counter()
    data = trace_to_bytes(columnar)
    serialise_wall = time.perf_counter() - started
    started = time.perf_counter()
    rebuilt = trace_from_bytes(data)
    deserialise_wall = time.perf_counter() - started
    assert len(rebuilt) == count

    return {
        "scenario": {
            "num_tasks": num_tasks,
            "duration": duration,
            "events": count,
        },
        "list": {
            "bytes_per_event": round(list_bytes / count, 1),
            "append_events_per_second": round(count / list_wall, 1),
            "replay_events_per_second": round(count / list_iter_wall, 1),
        },
        "columnar": {
            "bytes_per_event": round(columnar_bytes / count, 1),
            "append_events_per_second": round(count / columnar_wall, 1),
            "replay_events_per_second": round(
                count / columnar_iter_wall, 1
            ),
            "file_bytes_per_event": round(len(data) / count, 1),
            "serialise_events_per_second": round(
                count / serialise_wall, 1
            ),
            "deserialise_events_per_second": round(
                count / deserialise_wall, 1
            ),
        },
        "memory_ratio": round(list_bytes / columnar_bytes, 2),
        "append_slowdown": round(list_wall and columnar_wall / list_wall, 2),
    }


def render(title, record):
    scenario = record["scenario"]
    lines = [
        f"== {title} ==",
        f"scenario: {scenario['num_tasks']} tasks, "
        f"{scenario['duration']:g}s sim, {scenario['events']} events",
        f"{'backend':<10} {'B/event':>8} {'append ev/s':>12} "
        f"{'replay ev/s':>12}",
    ]
    for backend in ("list", "columnar"):
        row = record[backend]
        lines.append(
            f"{backend:<10} {row['bytes_per_event']:>8.1f} "
            f"{row['append_events_per_second']:>12.1f} "
            f"{row['replay_events_per_second']:>12.1f}"
        )
    columnar = record["columnar"]
    lines.append(
        f"memory ratio (list/columnar): {record['memory_ratio']:.2f}x"
    )
    lines.append(
        f"on-disk: {columnar['file_bytes_per_event']:.1f} B/event, "
        f"serialise {columnar['serialise_events_per_second']:.0f} ev/s, "
        f"deserialise {columnar['deserialise_events_per_second']:.0f} ev/s"
    )
    return "\n".join(lines)


def test_trace_memory_guardrail_fast():
    """Fast-tier guardrail: the columnar backend must hold an event in at
    most half the memory the list backend does (measured ~5x less)."""
    record = measure(num_tasks=16, duration=0.5)
    emit("bench_trace.txt", render("trace memory guardrail (fast)", record))
    emit_json("BENCH_trace.json", "memory_guardrail_fast", record)
    assert record["memory_ratio"] >= 2.0, (
        "the columnar trace lost its memory advantage "
        f"(got {record['memory_ratio']:.2f}x, expect ~5x)"
    )
    # the on-disk format must not balloon past the in-memory layout
    assert (
        record["columnar"]["file_bytes_per_event"]
        <= 1.5 * record["columnar"]["bytes_per_event"]
    )


@pytest.mark.slow
def test_trace_throughput():
    """Slow tier: append/replay/serialise rates on a bigger trace.

    The memory contract carries the strict gate (fast tier); here the
    timing gate only rejects an order-of-magnitude regression of the hot
    ``record()`` path — shared CI runners throttle, and a flaky gate
    teaches people to ignore it.
    """
    record = measure(num_tasks=24, duration=3.0)
    emit("bench_trace.txt", render("trace throughput (slow)", record))
    emit_json("BENCH_trace.json", "throughput", record)
    assert record["memory_ratio"] >= 2.0
    assert (
        record["columnar"]["append_events_per_second"]
        >= record["list"]["append_events_per_second"] / 4.0
    ), (
        "columnar record() fell more than 4x behind the list backend "
        f"(got {record['append_slowdown']:.2f}x slower, expect ~1.4x)"
    )

"""Benchmarks E2/E3 — paper Fig. 3: Scenario 1 (two contexts).

Sweeps the task count for the naive baseline and the three SGPRS
over-subscription variants, prints total-FPS and DMR series (Figs. 3a/3b),
and asserts the paper's shape findings:

* the naive pivot point comes much earlier than every SGPRS variant;
* naive FPS sags toward ~468 at 30 tasks (paper: a 38% drop below SGPRS);
* SGPRS sustains its plateau beyond the pivot with a moderate DMR slope.

Grid and horizons are reduced relative to ``python -m repro fig3`` so the
benchmark suite finishes in minutes; the shapes are identical.  The sweep
runs through the :mod:`repro.exp` harness — set ``REPRO_BENCH_WORKERS`` /
``REPRO_BENCH_CACHE`` to shard or cache it.
"""

import pytest

from benchmarks.conftest import bench_cache_dir, bench_workers, emit
from repro.analysis.pivot import find_pivot
from repro.analysis.report import render_sweep_table
from repro.workloads.scenarios import SCENARIO_1, run_scenario_sweep

pytestmark = pytest.mark.slow

TASK_COUNTS = [8, 14, 16, 20, 23, 25, 28, 30]
DURATION = 3.0
WARMUP = 1.0


@pytest.fixture(scope="module")
def sweep():
    return run_scenario_sweep(
        SCENARIO_1,
        TASK_COUNTS,
        duration=DURATION,
        warmup=WARMUP,
        workers=bench_workers(),
        cache_dir=bench_cache_dir(),
    )


def test_fig3_scenario1_sweep(benchmark, sweep):
    # benchmark one representative heavy point so timing is meaningful
    # without re-running the whole sweep per round
    from repro.workloads.scenarios import sweep_point

    benchmark.pedantic(
        lambda: sweep_point(SCENARIO_1, "sgprs_1.5", 25,
                            duration=1.5, warmup=0.5),
        rounds=1,
        iterations=1,
    )
    emit(
        "bench_fig3.txt",
        render_sweep_table(sweep, "total_fps",
                           title="Fig. 3a - total FPS (scenario 1)"),
    )
    emit(
        "bench_fig3.txt",
        render_sweep_table(sweep, "dmr",
                           title="Fig. 3b - deadline miss rate (scenario 1)"),
    )
    pivots = {v: find_pivot(points) for v, points in sweep.items()}
    emit("bench_fig3.txt", f"pivot points: {pivots}")

    # Shape assertions, inline so they execute under --benchmark-only
    # (the class below repeats them one-per-claim for plain pytest runs).
    naive_pivot = pivots["naive"] or 0
    best_pivot = max(pivots[v] or 0 for v in ("sgprs_1", "sgprs_1.5", "sgprs_2"))
    assert best_pivot >= naive_pivot + 6
    assert 22 <= best_pivot <= 26
    naive_final = sweep["naive"][-1].total_fps
    best_final = max(
        sweep[v][-1].total_fps for v in ("sgprs_1", "sgprs_1.5", "sgprs_2")
    )
    assert 0.25 <= 1.0 - naive_final / best_final <= 0.5
    assert sweep["naive"][-1].dmr > 0.9
    assert sweep["sgprs_1.5"][-1].dmr < 0.45


class TestFig3Shapes:
    def test_naive_pivot_much_earlier(self, sweep):
        naive_pivot = find_pivot(sweep["naive"]) or 0
        for variant in ("sgprs_1", "sgprs_1.5", "sgprs_2"):
            sgprs_pivot = find_pivot(sweep[variant]) or 0
            assert sgprs_pivot >= naive_pivot + 6, (
                f"{variant}: pivot {sgprs_pivot} vs naive {naive_pivot}"
            )

    def test_best_sgprs_pivot_near_paper_value(self, sweep):
        # paper: best-case pivot at 23 tasks in scenario 1
        best = max(
            find_pivot(sweep[v]) or 0
            for v in ("sgprs_1", "sgprs_1.5", "sgprs_2")
        )
        assert 22 <= best <= 26

    def test_naive_fps_sags_below_sgprs(self, sweep):
        naive_final = sweep["naive"][-1].total_fps
        best_final = max(
            sweep[v][-1].total_fps
            for v in ("sgprs_1", "sgprs_1.5", "sgprs_2")
        )
        drop = 1.0 - naive_final / best_final
        # paper: 38% drop; accept a generous band around it
        assert 0.25 <= drop <= 0.5, f"drop {drop:.2f}"

    def test_naive_fps_declines_after_saturation(self, sweep):
        by_count = {p.num_tasks: p.total_fps for p in sweep["naive"]}
        assert by_count[30] <= by_count[16] * 1.02

    def test_naive_dmr_drastic(self, sweep):
        assert sweep["naive"][-1].dmr > 0.9

    def test_sgprs_dmr_moderate_slope(self, sweep):
        final = sweep["sgprs_1.5"][-1]
        assert final.dmr < 0.45

    def test_sgprs_fps_sustained(self, sweep):
        points = {p.num_tasks: p.total_fps for p in sweep["sgprs_1.5"]}
        assert points[30] >= points[25] * 0.97

    def test_fps_equals_demand_below_pivot(self, sweep):
        for variant, points in sweep.items():
            for point in points:
                if point.dmr == 0.0 and point.num_tasks <= 14:
                    assert point.total_fps == pytest.approx(
                        30.0 * point.num_tasks, rel=0.05
                    )

"""Ablation benchmarks A1-A4 (design choices DESIGN.md calls out).

A1  Zero-configuration partition switch — SGPRS' headline mechanism.
    Replace the pre-created pool with reconfigure-on-switch semantics and
    measure what the paper's "seamlessness" is worth.
A2  MEDIUM priority promotion (Section IV-B3) on/off.
A3  Stage count: the paper divides each task into six stages; sweep 1..12.
A4  Stream borrowing: strict two-high/two-low stream classes vs the
    work-conserving default.

The SGPRS-shaped runs go through the :mod:`repro.exp` grid harness: the
bespoke scheduler subclasses are registered as named variants
(:func:`repro.exp.register_variant`) and each measurement is one
:class:`~repro.exp.grid.GridPoint` evaluated by the same worker the
parallel sweeps shard over processes.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.context_pool import ContextPoolConfig
from repro.core.sgprs import SgprsScheduler
from repro.exp.grid import GridPoint, register_variant
from repro.exp.worker import run_point
from repro.gpu.mps import SpatialReconfig
from repro.gpu.spec import RTX_2080_TI

pytestmark = pytest.mark.slow

POOL = ContextPoolConfig.from_oversubscription(2, 1.5, RTX_2080_TI)
# 28 tasks: deep enough into overload that stage-level virtual deadlines
# are missed (exercising the MEDIUM rule) and stage-count choices matter.
OVERLOAD_TASKS = 28
DURATION = 3.0
WARMUP = 1.0


class ReconfiguringSgprs(SgprsScheduler):
    """A1: SGPRS without the pre-created pool — switches cost wall time."""

    name = "sgprs_reconfig"

    def __init__(self, *args, **kwargs):
        kwargs["reconfig"] = SpatialReconfig()
        super().__init__(*args, **kwargs)


class NoPromotionSgprs(SgprsScheduler):
    """A2: the MEDIUM promotion rule disabled."""

    name = "sgprs_no_medium"
    enable_medium_promotion = False


register_variant(
    "ablation_reconfig", lambda stages: (ReconfiguringSgprs, 1.5, stages)
)
register_variant(
    "ablation_no_medium", lambda stages: (NoPromotionSgprs, 1.5, stages)
)


def run_sgprs(variant="sgprs_1.5", num_tasks=OVERLOAD_TASKS, num_stages=6,
              allow_stream_borrowing=True):
    """One ablation measurement as a grid point (scenario-1 style pool)."""
    return run_point(
        GridPoint(
            scenario="ablation",
            num_contexts=POOL.num_contexts,
            variant=variant,
            num_tasks=num_tasks,
            seed=0,
            duration=DURATION,
            warmup=WARMUP,
            num_stages=num_stages,
            allow_stream_borrowing=allow_stream_borrowing,
        )
    )


def test_a1_zero_configuration_switch(benchmark):
    baseline = benchmark.pedantic(run_sgprs, rounds=1, iterations=1)
    reconfig = run_sgprs("ablation_reconfig")
    emit(
        "bench_ablation.txt",
        f"A1 zero-config switch @{OVERLOAD_TASKS} tasks: "
        f"pool fps={baseline.total_fps:.1f} dmr={baseline.dmr * 100:.1f}%  "
        f"vs reconfigure-on-switch fps={reconfig.total_fps:.1f} "
        f"dmr={reconfig.dmr * 100:.1f}%",
    )
    # Paying a reconfiguration on (nearly) every stage dispatch destroys
    # both throughput and timeliness — the pool is the load-bearing idea.
    assert reconfig.total_fps < baseline.total_fps * 0.9
    assert reconfig.dmr > baseline.dmr


def test_a2_medium_promotion(benchmark):
    with_promotion = benchmark.pedantic(run_sgprs, rounds=1, iterations=1)
    without = run_sgprs("ablation_no_medium")
    emit(
        "bench_ablation.txt",
        f"A2 medium promotion @{OVERLOAD_TASKS} tasks: "
        f"on: fps={with_promotion.total_fps:.1f} "
        f"dmr={with_promotion.dmr * 100:.2f}%  "
        f"off: fps={without.total_fps:.1f} dmr={without.dmr * 100:.2f}%",
    )
    # Promotion helps late jobs finish; without it the miss rate in mild
    # overload must not improve.
    assert without.dmr >= with_promotion.dmr - 0.02


def test_a3_stage_count(benchmark):
    results = {}
    def sweep():
        for num_stages in (1, 2, 6, 12):
            results[num_stages] = run_sgprs(
                num_tasks=OVERLOAD_TASKS, num_stages=num_stages
            )
        return results
    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = "  ".join(
        f"{k}st: fps={v.total_fps:.0f}/dmr={v.dmr * 100:.1f}%"
        for k, v in results.items()
    )
    emit("bench_ablation.txt", f"A3 stage count @{OVERLOAD_TASKS} tasks: {rows}")
    # Multi-stage division is what lets SGPRS interleave work: the
    # monolithic (1-stage) variant must not beat the paper's 6 stages.
    assert results[6].dmr <= results[1].dmr + 0.02
    assert results[6].total_fps >= results[1].total_fps * 0.95


def test_a4_stream_borrowing(benchmark):
    work_conserving = benchmark.pedantic(run_sgprs, rounds=1, iterations=1)
    strict = run_sgprs(allow_stream_borrowing=False)
    emit(
        "bench_ablation.txt",
        f"A4 stream borrowing @{OVERLOAD_TASKS} tasks: "
        f"borrowing: fps={work_conserving.total_fps:.1f} "
        f"dmr={work_conserving.dmr * 100:.1f}%  "
        f"strict: fps={strict.total_fps:.1f} dmr={strict.dmr * 100:.1f}%",
    )
    # Strict stream classes idle the HIGH streams most of the time (only
    # one stage in six is HIGH), so the work-conserving interpretation
    # must do at least as well.
    assert work_conserving.total_fps >= strict.total_fps * 0.98


def test_a5_sequential_framework_baseline(benchmark):
    """Extension: the paper's introduction motivates SGPRS with the
    underutilization of sequential execution in existing frameworks.
    Quantify it: one full-GPU context, one inference at a time."""
    from repro.core.profiling import prepare_task
    from repro.core.sequential import (
        SequentialScheduler,
        build_sequential_context,
    )
    from repro.core.task import TaskSet
    from repro.dnn.resnet import build_resnet18
    from repro.gpu.allocator import AllocationParams
    from repro.gpu.device import GpuDevice
    from repro.sim.engine import SimulationEngine
    from repro.sim.metrics import MetricsCollector

    def run_sequential():
        engine = SimulationEngine()
        device = GpuDevice(
            engine, RTX_2080_TI, build_sequential_context(RTX_2080_TI),
            AllocationParams(),
        )
        metrics = MetricsCollector(warmup=WARMUP)
        tasks = TaskSet(
            [
                prepare_task(
                    f"t{i}", build_resnet18(), period=1 / 30, num_stages=1,
                    nominal_sms=float(RTX_2080_TI.total_sms),
                    release_offset=i / (30 * OVERLOAD_TASKS),
                )
                for i in range(OVERLOAD_TASKS)
            ]
        )
        SequentialScheduler(
            engine, device, tasks, metrics, horizon=DURATION
        ).start()
        engine.run_until(DURATION)
        return metrics.total_fps(engine.now), metrics.deadline_miss_rate(
            engine.now
        )

    seq_fps, seq_dmr = benchmark.pedantic(run_sequential, rounds=1,
                                          iterations=1)
    sgprs = run_sgprs()
    emit(
        "bench_ablation.txt",
        f"A5 sequential framework baseline @{OVERLOAD_TASKS} tasks: "
        f"sequential fps={seq_fps:.1f} dmr={seq_dmr * 100:.1f}%  "
        f"vs SGPRS fps={sgprs.total_fps:.1f} dmr={sgprs.dmr * 100:.1f}%",
    )
    # ResNet18 alone only reaches ~23x on 68 SMs: the sequential ceiling
    # (~320 fps) is less than half of SGPRS' spatio-temporal plateau.
    assert seq_fps < 0.5 * sgprs.total_fps

"""Engine event-churn benchmark: the three completion re-arm modes.

The simulator is the inner loop of every sweep point, and its hottest path
is the change-point settle: the historical design cancelled and re-armed a
completion event for *every* resident kernel on every submit / completion /
abort — O(K) heap churn per change point, O(K²) events per hyperperiod —
and the tombstones it left behind grew the heap without bound.  PR 5 made
re-arming O(changed) (see :mod:`repro.gpu.device`) and taught the engine to
compact tombstone-majority heaps.  PR 6 added the vectorised
structure-of-arrays settle core (:mod:`repro.gpu.table`): whole-array
allocation passes plus a rescale-aware time base holding per-slot
``(armed_time, stamp)`` anchors behind a single sentinel event, so even a
settle that changes *every* resident rate pushes O(1) heap events.

Two scenarios, three modes each (``incremental`` / ``full`` /
``vectorised``), all driven by an ``admit_all_releases`` backlog with a
deterministic O(1) round-robin context assignment so the measurement
isolates the engine/device layer instead of SGPRS's O(backlog) placement
scans:

* **Uncapped** — the DRAM/L2 aggregate ceiling is lifted, so rates across
  contexts stay decoupled.  This is the regime the incremental mode
  targets: most change points touch one context and re-arm O(changed).
* **Ceiling-bound** — a low aggregate cap stays saturated throughout, so
  every completion moves the ceiling rescale factor and changes every
  surviving kernel's rate.  The incremental mode degenerates to O(K)
  re-arms per settle here; the vectorised mode's shared virtual-time axis
  absorbs the uniform rescale and keeps heap pushes O(1) per settle.

All three modes produce bit-identical traces (pinned by
``tests/gpu/test_trace_equivalence.py``), so they process the *same* live
events — all that differs is how much scheduling work is wasted re-arming
events whose time never moved.

Two tiers:

* ``test_engine_guardrail_fast`` / ``test_engine_ceiling_guardrail_fast``
  (fast tier, every push) assert the *deterministic* churn contracts —
  the reference mode schedules >= 2x what incremental does (uncapped),
  and incremental schedules >= 2x what vectorised does (ceiling-bound) —
  and snapshot the measured throughput (counts cannot flake on shared CI
  runners; wall time is reported, not gated, in this tier).
* ``test_engine_throughput`` / ``test_engine_ceiling_throughput`` (slow
  tier) measure wall-clock events/sec on bigger instances and assert the
  speedups the PRs promise (incremental >= 1.5x over full, measured ~3x;
  vectorised >= 2x over incremental on the ceiling-bound scenario,
  measured ~2.6x on an idle machine).

Results land in ``results/bench_engine.txt`` (human-readable) and
``results/BENCH_engine.json`` (the machine-readable perf trajectory future
perf PRs are judged against); CI uploads both as workflow artifacts.
"""

import itertools
import time

import pytest

from conftest import emit, emit_json

from repro.core.sgprs import SgprsScheduler
from repro.gpu.context import SimContext
from repro.gpu.device import GpuDevice
from repro.gpu.spec import GpuDeviceSpec
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsCollector
from repro.workloads.generator import identical_periodic_tasks

#: The paper's device with the aggregate-speedup ceiling lifted, so rates
#: across contexts stay decoupled (see module docstring).
BENCH_SPEC = GpuDeviceSpec(
    name="RTX 2080 Ti (uncapped aggregate)",
    total_sms=68,
    aggregate_speedup_cap=1e9,
)

#: The same device with the ceiling pulled far below the backlog's summed
#: demand: the cap saturates immediately and stays saturated, so every
#: settle is a uniform ceiling rescale of all resident rates.
CEILING_SPEC = GpuDeviceSpec(
    name="RTX 2080 Ti (ceiling-bound)",
    total_sms=68,
    aggregate_speedup_cap=12.0,
)

MODES = ("incremental", "full", "vectorised")


class BacklogRoundRobin(SgprsScheduler):
    """Admit-everything + O(1) round-robin placement.

    ``admit_all_releases`` lets queues snowball (dense change points);
    round-robin keeps per-release scheduling cost constant so the bench
    measures the device/engine layer, not the placement policy.
    """

    name = "sgprs_backlog_rr"
    admit_all_releases = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._round_robin = itertools.count()

    def select_context(self, kernel):
        contexts = self.device.contexts
        return contexts[next(self._round_robin) % len(contexts)]


def run_contention(rearm, num_contexts, streams_per_class, num_tasks,
                   duration, spec=BENCH_SPEC):
    """One high-contention run; returns (engine, device, wall_seconds)."""
    engine = SimulationEngine()
    sms_per_context = spec.total_sms / num_contexts
    contexts = [
        SimContext(
            index,
            sms_per_context,
            high_streams=streams_per_class,
            low_streams=streams_per_class,
        )
        for index in range(num_contexts)
    ]
    device = GpuDevice(engine, spec, contexts, rearm=rearm)
    tasks = identical_periodic_tasks(
        num_tasks, nominal_sms=sms_per_context
    )
    scheduler = BacklogRoundRobin(
        engine,
        device,
        tasks,
        MetricsCollector(warmup=duration / 4.0),
        horizon=duration,
    )
    scheduler.start()
    started = time.perf_counter()
    engine.run_until(duration)
    return engine, device, time.perf_counter() - started


def measure(num_contexts, streams_per_class, num_tasks, duration,
            spec=BENCH_SPEC):
    """Run all three modes and collect the comparison record."""
    rows = {}
    for rearm in MODES:
        engine, device, wall = run_contention(
            rearm, num_contexts, streams_per_class, num_tasks, duration,
            spec=spec,
        )
        rows[rearm] = {
            "wall_seconds": round(wall, 4),
            "events_processed": engine.processed_count,
            "events_scheduled": engine.scheduled_count,
            "events_per_second": round(engine.processed_count / wall, 1),
            "heap_compactions": engine.compaction_count,
            "final_heap_size": engine.heap_size,
            "alloc_passes": device.alloc_passes,
            "alloc_skips": device.alloc_skips,
        }
    incremental, full = rows["incremental"], rows["full"]
    vectorised = rows["vectorised"]
    # bit-identical traces => identical live events in all three modes
    assert incremental["events_processed"] == full["events_processed"]
    assert vectorised["events_processed"] == full["events_processed"]
    return {
        "scenario": {
            "device": spec.name,
            "aggregate_speedup_cap": spec.aggregate_speedup_cap,
            "num_contexts": num_contexts,
            "streams_per_class": streams_per_class,
            "num_tasks": num_tasks,
            "duration": duration,
            "scheduler": "sgprs admit_all_releases backlog, round-robin",
        },
        "incremental": incremental,
        "full": full,
        "vectorised": vectorised,
        "churn_ratio": round(
            full["events_scheduled"] / incremental["events_scheduled"], 2
        ),
        "speedup_events_per_second": round(
            incremental["events_per_second"] / full["events_per_second"], 2
        ),
        "vectorised_churn_ratio": round(
            incremental["events_scheduled"]
            / vectorised["events_scheduled"], 2
        ),
        "vectorised_speedup_events_per_second": round(
            vectorised["events_per_second"]
            / incremental["events_per_second"], 2
        ),
    }


def render(title, record):
    lines = [
        f"== {title} ==",
        "scenario: {device}, {num_contexts} contexts x {streams_per_class}+"
        "{streams_per_class} streams, {num_tasks} tasks, "
        "{duration:g}s sim, admit-all backlog".format(**record["scenario"]),
        f"{'mode':<12} {'events/s':>10} {'wall s':>8} {'scheduled':>10} "
        f"{'processed':>10} {'compactions':>12}",
    ]
    for mode in MODES:
        row = record[mode]
        lines.append(
            f"{mode:<12} {row['events_per_second']:>10.1f} "
            f"{row['wall_seconds']:>8.3f} {row['events_scheduled']:>10} "
            f"{row['events_processed']:>10} {row['heap_compactions']:>12}"
        )
    lines.append(
        f"churn ratio (full/incremental scheduled): "
        f"{record['churn_ratio']:.2f}x"
    )
    lines.append(
        f"throughput speedup, incremental vs full (events/s): "
        f"{record['speedup_events_per_second']:.2f}x"
    )
    lines.append(
        f"churn ratio (incremental/vectorised scheduled): "
        f"{record['vectorised_churn_ratio']:.2f}x"
    )
    lines.append(
        f"throughput speedup, vectorised vs incremental (events/s): "
        f"{record['vectorised_speedup_events_per_second']:.2f}x"
    )
    return "\n".join(lines)


def test_engine_guardrail_fast():
    """Fast-tier guardrail (uncapped): the incremental device must schedule
    at most half the events the reference mode does (a deterministic count,
    so the gate cannot flake on shared CI runners)."""
    record = measure(
        num_contexts=8, streams_per_class=2, num_tasks=96, duration=0.25
    )
    emit("bench_engine.txt", render("engine churn guardrail (fast)", record))
    emit_json("BENCH_engine.json", "guardrail_fast", record)
    assert record["churn_ratio"] >= 2.0, (
        "incremental re-arming must at least halve engine event churn "
        f"(got {record['churn_ratio']:.2f}x)"
    )
    # the backlog must actually exercise the skip-pass fast path
    assert record["incremental"]["alloc_skips"] > 0
    # the vectorised mode shares the skip path and must never schedule
    # more events than incremental does (one sentinel <= many re-arms)
    assert (
        record["vectorised"]["events_scheduled"]
        <= record["incremental"]["events_scheduled"]
    )


def test_engine_ceiling_guardrail_fast():
    """Fast-tier guardrail (ceiling-bound): with the aggregate cap
    saturated, every settle rescales every resident, so the incremental
    mode must schedule >= 2x the events the vectorised mode does (measured
    ~10x; a deterministic count, so the gate cannot flake)."""
    record = measure(
        num_contexts=8, streams_per_class=3, num_tasks=96, duration=0.25,
        spec=CEILING_SPEC,
    )
    emit(
        "bench_engine.txt",
        render("engine churn guardrail (ceiling-bound, fast)", record),
    )
    emit_json("BENCH_engine.json", "ceiling_guardrail_fast", record)
    assert record["vectorised_churn_ratio"] >= 2.0, (
        "the rescale-aware time base must at least halve engine event "
        "churn under a saturated ceiling "
        f"(got {record['vectorised_churn_ratio']:.2f}x)"
    )
    # O(1) sentinel pushes per settle: total scheduled events stay within
    # a small constant of the live events actually processed.
    assert (
        record["vectorised"]["events_scheduled"]
        <= 1.2 * record["vectorised"]["events_processed"]
    )


@pytest.mark.slow
def test_engine_throughput():
    """Slow tier (uncapped): wall-clock events/sec on the big
    high-contention instance shows the >= 2x speedup over the
    re-arm-everything reference (measured ~3x on an idle machine).

    The hard gate on the *timing* ratio is deliberately looser than the
    measured value: shared CI runners can throttle one of the timed runs,
    and a transient-noise failure would teach people to ignore the gate.
    The deterministic churn ratio carries the strict >= 2x contract; the
    recorded snapshot carries the measured speedup.
    """
    record = measure(
        num_contexts=16, streams_per_class=2, num_tasks=384, duration=0.3
    )
    emit("bench_engine.txt", render("engine throughput (high contention)",
                                    record))
    emit_json("BENCH_engine.json", "high_contention", record)
    assert record["churn_ratio"] >= 2.0
    assert record["speedup_events_per_second"] >= 1.5, (
        "incremental re-arming lost its wall-clock advantage on the "
        f"high-contention scenario (got "
        f"{record['speedup_events_per_second']:.2f}x, expect ~3x idle)"
    )


@pytest.mark.slow
def test_engine_ceiling_throughput():
    """Slow tier (ceiling-bound): the vectorised settle core must process
    >= 2x the events/sec the incremental device does once the aggregate
    ceiling couples every rate (measured ~2.6x on an idle machine: the
    incremental mode re-arms every resident at every settle here, while
    the table shifts one scalar and refreshes one sentinel)."""
    record = measure(
        num_contexts=16, streams_per_class=6, num_tasks=256, duration=0.5,
        spec=CEILING_SPEC,
    )
    emit(
        "bench_engine.txt",
        render("engine throughput (ceiling-bound)", record),
    )
    emit_json("BENCH_engine.json", "ceiling_bound", record)
    assert record["vectorised_churn_ratio"] >= 2.0
    assert record["vectorised_speedup_events_per_second"] >= 2.0, (
        "the vectorised settle core lost its wall-clock advantage on the "
        "ceiling-bound scenario (got "
        f"{record['vectorised_speedup_events_per_second']:.2f}x, "
        "expect ~2.6x idle)"
    )


# ----------------------------------------------------------------------
# Scheduler-layer fast path (PR 9): cached occupancy + incremental
# accounting + batched dispatch, measured against the frozen
# ``accounting="scan"`` baseline that re-scans queues per call.
# ----------------------------------------------------------------------

class BacklogSgprs(SgprsScheduler):
    """Admit-everything with the *real* SGPRS placement scans.

    Unlike :class:`BacklogRoundRobin`, placement is the paper's
    three-criteria policy, so every release pays ``queue_empty`` /
    ``free_streams`` / ``queued_count`` / ``estimate_completion`` /
    ``estimated_finish_time`` across all contexts — exactly the
    scheduler-layer surface the PR 9 fast path rebuilt.  The snowballing
    backlog makes the scan-mode cost grow with queue depth while the fast
    mode stays O(contexts) per release.
    """

    name = "sgprs_backlog"
    admit_all_releases = True


def run_sched_backlog(accounting, num_contexts, streams_per_class,
                      num_tasks, duration, rearm="vectorised"):
    """One SGPRS-placed backlog run in the given accounting mode."""
    engine = SimulationEngine()
    sms_per_context = BENCH_SPEC.total_sms / num_contexts
    contexts = [
        SimContext(
            index,
            sms_per_context,
            high_streams=streams_per_class,
            low_streams=streams_per_class,
            accounting=accounting,
        )
        for index in range(num_contexts)
    ]
    device = GpuDevice(engine, BENCH_SPEC, contexts, rearm=rearm)
    tasks = identical_periodic_tasks(num_tasks, nominal_sms=sms_per_context)
    scheduler = BacklogSgprs(
        engine,
        device,
        tasks,
        MetricsCollector(warmup=duration / 4.0),
        horizon=duration,
    )
    scheduler.start()
    started = time.perf_counter()
    engine.run_until(duration)
    wall = time.perf_counter() - started
    return {
        "wall_seconds": round(wall, 4),
        "events_processed": engine.processed_count,
        "events_per_second": round(engine.processed_count / wall, 1),
        "stat_acct_queries": sum(c.stat_acct_queries for c in contexts),
        "stat_scan_elems": sum(c.stat_scan_elems for c in contexts),
        "stat_free_builds": sum(c.stat_free_builds for c in contexts),
        "stat_requeues": sum(c.stat_requeues for c in contexts),
        "stat_compactions": sum(c.stat_compactions for c in contexts),
    }


def measure_sched(num_contexts, streams_per_class, num_tasks, duration):
    """Run both accounting modes and collect the comparison record."""
    rows = {
        accounting: run_sched_backlog(
            accounting, num_contexts, streams_per_class, num_tasks, duration
        )
        for accounting in ("fast", "scan")
    }
    fast, scan = rows["fast"], rows["scan"]
    return {
        "scenario": {
            "device": BENCH_SPEC.name,
            "num_contexts": num_contexts,
            "streams_per_class": streams_per_class,
            "num_tasks": num_tasks,
            "duration": duration,
            "rearm": "vectorised",
            "scheduler": "sgprs admit_all_releases backlog, paper placement",
        },
        "fast": fast,
        "scan": scan,
        "scan_elems_ratio": round(
            scan["stat_scan_elems"] / max(fast["stat_scan_elems"], 1), 2
        ),
        "free_builds_ratio": round(
            scan["stat_free_builds"] / max(fast["stat_free_builds"], 1), 2
        ),
        "sched_speedup_events_per_second": round(
            fast["events_per_second"] / scan["events_per_second"], 2
        ),
    }


def render_sched(title, record):
    lines = [
        f"== {title} ==",
        "scenario: {device}, {num_contexts} contexts x {streams_per_class}+"
        "{streams_per_class} streams, {num_tasks} tasks, {duration:g}s sim, "
        "{rearm} rearm, SGPRS placement backlog".format(**record["scenario"]),
        f"{'accounting':<12} {'events/s':>10} {'wall s':>8} "
        f"{'scan elems':>11} {'free builds':>12} {'requeues':>9} "
        f"{'acct calls':>11}",
    ]
    for mode in ("fast", "scan"):
        row = record[mode]
        lines.append(
            f"{mode:<12} {row['events_per_second']:>10.1f} "
            f"{row['wall_seconds']:>8.3f} {row['stat_scan_elems']:>11} "
            f"{row['stat_free_builds']:>12} {row['stat_requeues']:>9} "
            f"{row['stat_acct_queries']:>11}"
        )
    lines.append(
        f"queue-entry scan ratio (scan/fast): "
        f"{record['scan_elems_ratio']:.2f}x"
    )
    lines.append(
        f"free-list build ratio (scan/fast): "
        f"{record['free_builds_ratio']:.2f}x"
    )
    lines.append(
        f"throughput speedup, fast vs scan accounting (events/s): "
        f"{record['sched_speedup_events_per_second']:.2f}x"
    )
    return "\n".join(lines)


def test_sched_guardrail_fast():
    """Fast-tier guardrail: the deterministic scheduler-layer churn
    contracts.  The fast accounting must answer every placement query
    without walking a single queue entry (``stat_scan_elems == 0``) while
    the scan baseline walks >= 2x that floor; occupancy caching must at
    least halve free-list rebuilds; and the batched dispatch must never
    pop-and-requeue a blocked stage.  Counts cannot flake on shared CI
    runners; wall time is reported, not gated, in this tier."""
    record = measure_sched(
        num_contexts=8, streams_per_class=2, num_tasks=96, duration=0.25
    )
    emit(
        "bench_engine.txt",
        render_sched("scheduler-layer churn guardrail (fast)", record),
    )
    emit_json("BENCH_engine.json", "sched_fast", record)
    assert record["fast"]["stat_scan_elems"] == 0, (
        "fast accounting must answer placement queries without scanning "
        f"queues (walked {record['fast']['stat_scan_elems']} entries)"
    )
    assert record["scan_elems_ratio"] >= 2.0
    assert record["free_builds_ratio"] >= 2.0, (
        "cached occupancy must at least halve free-list rebuilds "
        f"(got {record['free_builds_ratio']:.2f}x)"
    )
    assert record["fast"]["stat_requeues"] == 0, (
        "batched dispatch must never pop-and-requeue a blocked stage"
    )
    assert record["scan"]["stat_requeues"] > 0, (
        "the scan baseline must exercise the requeue churn being measured"
    )


@pytest.mark.slow
def test_sched_throughput():
    """Slow tier: wall-clock events/sec on the 16-context SGPRS-placed
    backlog.  The scan baseline pays O(contexts x queued) placement scans
    per release (quadratic in the snowballing backlog); the fast path pays
    O(contexts).  Gate >= 2x — the ISSUE's floor over the PR 6 vectorised
    baseline, whose scheduler layer is exactly the scan mode — and keep
    the gate looser than the measured value so shared-runner throttling
    cannot teach anyone to ignore it."""
    record = measure_sched(
        num_contexts=16, streams_per_class=2, num_tasks=384, duration=0.2
    )
    emit(
        "bench_engine.txt",
        render_sched("scheduler-layer throughput (16-context backlog)",
                     record),
    )
    emit_json("BENCH_engine.json", "sched_backlog", record)
    assert record["fast"]["stat_scan_elems"] == 0
    assert record["scan_elems_ratio"] >= 2.0
    assert record["sched_speedup_events_per_second"] >= 2.0, (
        "the scheduler-layer fast path lost its wall-clock advantage on "
        "the 16-context backlog (got "
        f"{record['sched_speedup_events_per_second']:.2f}x, expect more "
        "on an idle machine)"
    )

"""Engine event-churn benchmark: incremental vs. full completion re-arming.

The simulator is the inner loop of every sweep point, and its hottest path
is the change-point settle: the historical design cancelled and re-armed a
completion event for *every* resident kernel on every submit / completion /
abort — O(K) heap churn per change point, O(K²) events per hyperperiod —
and the tombstones it left behind grew the heap without bound.  PR 5 made
re-arming O(changed) (see :mod:`repro.gpu.device`) and taught the engine to
compact tombstone-majority heaps.

This benchmark pits the two modes (``rearm="incremental"`` vs. the
reference ``rearm="full"``) against a high-contention scenario: many
contexts, an ``admit_all_releases`` backlog that makes change points dense
(most submits only queue — the skip-pass fast path), and a deterministic
O(1) round-robin context assignment so the measurement isolates the
engine/device layer instead of SGPRS's O(backlog) placement scans.  The
device spec lifts the DRAM/L2 aggregate ceiling: a binding ceiling couples
every resident rate globally (each change point then legitimately re-arms
everything and the two modes converge); the uncapped variant exercises the
decoupled regime the optimisation targets.  Both modes produce
bit-identical traces (pinned by ``tests/gpu/test_trace_equivalence.py``),
so they process the *same* live events — all that differs is how much
scheduling work is wasted re-arming events whose time never moved.

Two tiers:

* ``test_engine_guardrail_fast`` (fast tier, every push) asserts the
  *deterministic* churn contract — the reference mode schedules >= 2x the
  events the incremental mode does — and snapshots the measured throughput
  (counts cannot flake on shared CI runners; wall time is reported, not
  gated, in this tier).
* ``test_engine_throughput`` (slow tier) measures wall-clock events/sec on
  a bigger instance and asserts the >= 2x speedup the PR promises
  (measured ~3x on an idle machine).

Results land in ``results/bench_engine.txt`` (human-readable) and
``results/BENCH_engine.json`` (the machine-readable perf trajectory future
perf PRs are judged against); CI uploads both as workflow artifacts.
"""

import itertools
import time

import pytest

from conftest import emit, emit_json

from repro.core.sgprs import SgprsScheduler
from repro.gpu.context import SimContext
from repro.gpu.device import GpuDevice
from repro.gpu.spec import GpuDeviceSpec
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsCollector
from repro.workloads.generator import identical_periodic_tasks

#: The paper's device with the aggregate-speedup ceiling lifted, so rates
#: across contexts stay decoupled (see module docstring).
BENCH_SPEC = GpuDeviceSpec(
    name="RTX 2080 Ti (uncapped aggregate)",
    total_sms=68,
    aggregate_speedup_cap=1e9,
)


class BacklogRoundRobin(SgprsScheduler):
    """Admit-everything + O(1) round-robin placement.

    ``admit_all_releases`` lets queues snowball (dense change points);
    round-robin keeps per-release scheduling cost constant so the bench
    measures the device/engine layer, not the placement policy.
    """

    name = "sgprs_backlog_rr"
    admit_all_releases = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._round_robin = itertools.count()

    def select_context(self, kernel):
        contexts = self.device.contexts
        return contexts[next(self._round_robin) % len(contexts)]


def run_contention(rearm, num_contexts, streams_per_class, num_tasks,
                   duration):
    """One high-contention run; returns (engine, device, wall_seconds)."""
    engine = SimulationEngine()
    sms_per_context = BENCH_SPEC.total_sms / num_contexts
    contexts = [
        SimContext(
            index,
            sms_per_context,
            high_streams=streams_per_class,
            low_streams=streams_per_class,
        )
        for index in range(num_contexts)
    ]
    device = GpuDevice(engine, BENCH_SPEC, contexts, rearm=rearm)
    tasks = identical_periodic_tasks(
        num_tasks, nominal_sms=sms_per_context
    )
    scheduler = BacklogRoundRobin(
        engine,
        device,
        tasks,
        MetricsCollector(warmup=duration / 4.0),
        horizon=duration,
    )
    scheduler.start()
    started = time.perf_counter()
    engine.run_until(duration)
    return engine, device, time.perf_counter() - started


def measure(num_contexts, streams_per_class, num_tasks, duration):
    """Run both modes and collect the comparison record."""
    rows = {}
    for rearm in ("incremental", "full"):
        engine, device, wall = run_contention(
            rearm, num_contexts, streams_per_class, num_tasks, duration
        )
        rows[rearm] = {
            "wall_seconds": round(wall, 4),
            "events_processed": engine.processed_count,
            "events_scheduled": engine.scheduled_count,
            "events_per_second": round(engine.processed_count / wall, 1),
            "heap_compactions": engine.compaction_count,
            "final_heap_size": engine.heap_size,
            "alloc_passes": device.alloc_passes,
            "alloc_skips": device.alloc_skips,
        }
    incremental, full = rows["incremental"], rows["full"]
    # bit-identical traces => identical live events in both modes
    assert incremental["events_processed"] == full["events_processed"]
    return {
        "scenario": {
            "num_contexts": num_contexts,
            "streams_per_class": streams_per_class,
            "num_tasks": num_tasks,
            "duration": duration,
            "scheduler": "sgprs admit_all_releases backlog, round-robin",
        },
        "incremental": incremental,
        "full": full,
        "churn_ratio": round(
            full["events_scheduled"] / incremental["events_scheduled"], 2
        ),
        "speedup_events_per_second": round(
            incremental["events_per_second"] / full["events_per_second"], 2
        ),
    }


def render(title, record):
    lines = [
        f"== {title} ==",
        "scenario: {num_contexts} contexts x {streams_per_class}+"
        "{streams_per_class} streams, {num_tasks} tasks, "
        "{duration:g}s sim, admit-all backlog".format(**record["scenario"]),
        f"{'mode':<12} {'events/s':>10} {'wall s':>8} {'scheduled':>10} "
        f"{'processed':>10} {'compactions':>12}",
    ]
    for mode in ("incremental", "full"):
        row = record[mode]
        lines.append(
            f"{mode:<12} {row['events_per_second']:>10.1f} "
            f"{row['wall_seconds']:>8.3f} {row['events_scheduled']:>10} "
            f"{row['events_processed']:>10} {row['heap_compactions']:>12}"
        )
    lines.append(
        f"churn ratio (full/incremental scheduled): "
        f"{record['churn_ratio']:.2f}x"
    )
    lines.append(
        f"throughput speedup (events/s): "
        f"{record['speedup_events_per_second']:.2f}x"
    )
    return "\n".join(lines)


def test_engine_guardrail_fast():
    """Fast-tier guardrail: the incremental device must schedule at most
    half the events the reference mode does (a deterministic count, so the
    gate cannot flake on shared CI runners)."""
    record = measure(
        num_contexts=8, streams_per_class=2, num_tasks=96, duration=0.25
    )
    emit("bench_engine.txt", render("engine churn guardrail (fast)", record))
    emit_json("BENCH_engine.json", "guardrail_fast", record)
    assert record["churn_ratio"] >= 2.0, (
        "incremental re-arming must at least halve engine event churn "
        f"(got {record['churn_ratio']:.2f}x)"
    )
    # the backlog must actually exercise the skip-pass fast path
    assert record["incremental"]["alloc_skips"] > 0


@pytest.mark.slow
def test_engine_throughput():
    """Slow tier: wall-clock events/sec on the big high-contention instance
    shows the >= 2x speedup over the re-arm-everything reference (measured
    ~3x on an idle machine and recorded in the trajectory files).

    The hard gate on the *timing* ratio is deliberately looser than the
    measured value: shared CI runners can throttle one of the two
    back-to-back timed runs, and a transient-noise failure would teach
    people to ignore the gate.  The deterministic churn ratio carries the
    strict >= 2x contract; the recorded snapshot carries the measured
    speedup.
    """
    record = measure(
        num_contexts=16, streams_per_class=2, num_tasks=384, duration=0.3
    )
    emit("bench_engine.txt", render("engine throughput (high contention)",
                                    record))
    emit_json("BENCH_engine.json", "high_contention", record)
    assert record["churn_ratio"] >= 2.0
    assert record["speedup_events_per_second"] >= 1.5, (
        "incremental re-arming lost its wall-clock advantage on the "
        f"high-contention scenario (got "
        f"{record['speedup_events_per_second']:.2f}x, expect ~3x idle)"
    )

"""Claim-protocol micro-benchmarks over the storage backends.

The claim board is pure coordination overhead: every distributed point
pays one claim cycle (exclusive put + owner-conditional delete) on top
of its compute.  This benchmark pins that cost per backend so a
regression in the hot path (or a pathologically slow backend port)
shows up as a number, not as a mysteriously slow fleet.

A fast-tier smoke asserts the protocol stays far cheaper than the
cheapest realistic point, so coordination never dominates a sweep.
"""

import pytest

from benchmarks.conftest import emit
from repro.exp.backend import (
    InMemoryBackend,
    LocalFSBackend,
    ObjectStoreBackend,
)
from repro.exp.dist import ClaimBoard, init_run
from repro.exp.grid import GridSpec

SPEC = GridSpec(
    scenario="scenario1",
    num_contexts=2,
    variants=("naive", "sgprs_1", "sgprs_1.5", "sgprs_2"),
    task_counts=(2, 4, 6, 8, 10),
    seeds=(0, 1, 2),
    duration=0.5,
    warmup=0.1,
)  # 60 points per cycle

BACKENDS = ("local", "memory", "objectstore")


def make_backend(name, tmp_path):
    if name == "local":
        return LocalFSBackend(tmp_path / "store")
    if name == "memory":
        return InMemoryBackend()
    return ObjectStoreBackend()


def claim_release_cycle(board, points):
    """One full ownership cycle over every point (the per-point tax a
    claim-mode worker pays beyond compute)."""
    for point in points:
        assert board.try_claim(point)
    for point in points:
        assert board.release(point)


@pytest.mark.slow
@pytest.mark.parametrize("backend_name", BACKENDS)
def test_bench_claim_cycle(benchmark, backend_name, tmp_path):
    backend = make_backend(backend_name, tmp_path)
    init_run(backend, SPEC)
    board = ClaimBoard(backend, owner="bench")
    points = list(SPEC.points())

    benchmark(claim_release_cycle, board, points)
    per_point_us = benchmark.stats.stats.mean / len(points) * 1e6
    emit(
        "bench_backends.txt",
        f"claim+release cycle, {backend_name:<12} "
        f"{per_point_us:9.1f} us/point over {len(points)} points",
    )


def test_claim_overhead_smoke(tmp_path):
    """Fast-tier guardrail: a full claim+release cycle must stay under
    ~10 ms/point even on the (slowest) filesystem backend — two orders
    of magnitude below any real simulation point."""
    import time

    backend = LocalFSBackend(tmp_path / "store")
    init_run(backend, SPEC)
    board = ClaimBoard(backend, owner="smoke")
    points = list(SPEC.points())
    started = time.perf_counter()
    claim_release_cycle(board, points)
    per_point = (time.perf_counter() - started) / len(points)
    assert per_point < 0.01, f"claim cycle costs {per_point * 1e3:.2f} ms/point"

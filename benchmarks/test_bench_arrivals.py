"""Open-system arrival-layer benchmark: release throughput under overload.

PR 7 moved job releases out of the scheduler's hard-coded periodic loop
and into pluggable arrival processes (:mod:`repro.workloads.arrivals`)
with pluggable admission (:mod:`repro.core.admission`).  The release path
now runs one generator ``next()`` plus an admission decision per job, so
this benchmark pins two things:

* the layer stays *deterministic* — identical seeds reproduce identical
  release/rejection counts run over run (fast tier, count-based, cannot
  flake on shared CI runners; wall time is reported, not gated);
* the layer stays *cheap* — jobs released per wall-second under a bursty
  MMPP overload with bounded-queue admission must hold a floor relative
  to the closed-system periodic baseline on the same task set (slow
  tier): the stochastic release path may not cost more than 3x the
  legacy-equivalent one.

Scenario: a deliberately over-subscribed pool (many tasks per context)
driven by a hot MMPP process (``burst=8``), so the admission policy is
exercised on most releases — the worst case for the new layer.

Results land in ``results/bench_arrivals.txt`` (human-readable) and
``results/BENCH_arrivals.json`` (the machine-readable perf trajectory
future perf PRs are judged against).
"""

import time

import pytest

from conftest import emit, emit_json

from repro.core.context_pool import ContextPoolConfig
from repro.core.runner import RunConfig, run_simulation
from repro.core.sgprs import SgprsScheduler
from repro.gpu.spec import RTX_2080_TI
from repro.workloads.generator import identical_periodic_tasks

#: Every stochastic process at its bench configuration, plus the periodic
#: adapter as the closed-system baseline (bit-identical to the legacy
#: release loop, pinned by tests/gpu/test_trace_equivalence.py).
ARRIVALS = (
    ("periodic", ""),
    ("poisson:rate_scale=1.5", "queue:depth=2"),
    ("mmpp:burst=8,calm=0.5", "queue:depth=2"),
    ("diurnal:day=0.5,peak=3", "queue:depth=2"),
)


def run_overload(arrival, admission, num_tasks, duration, seed=0):
    """One over-subscribed run; returns (RunResult, wall_seconds)."""
    pool = ContextPoolConfig.from_oversubscription(4, 1.0, RTX_2080_TI)
    tasks = identical_periodic_tasks(
        num_tasks, nominal_sms=pool.sms_per_context
    )
    config = RunConfig(
        pool=pool,
        scheduler=SgprsScheduler,
        duration=duration,
        warmup=duration / 4.0,
        seed=seed,
        arrival=arrival,
        admission=admission,
    )
    started = time.perf_counter()
    result = run_simulation(tasks, config)
    return result, time.perf_counter() - started


def measure(num_tasks, duration):
    """Run every arrival process and collect the comparison record."""
    rows = {}
    for arrival, admission in ARRIVALS:
        result, wall = run_overload(arrival, admission, num_tasks, duration)
        rows[arrival] = {
            "admission": admission,
            "wall_seconds": round(wall, 4),
            "released": result.released,
            "completed": result.completed,
            "rejected": result.rejected,
            "rejection_rate": round(result.rejection_rate, 4),
            "goodput": round(result.goodput, 2),
            "releases_per_second": round(result.released / wall, 1),
        }
    periodic = rows["periodic"]["releases_per_second"]
    return {
        "scenario": {
            "device": RTX_2080_TI.name,
            "num_contexts": 4,
            "num_tasks": num_tasks,
            "duration": duration,
            "scheduler": "sgprs, bounded-queue admission on the "
            "stochastic processes",
        },
        "rows": rows,
        "overhead_vs_periodic": {
            arrival: round(periodic / row["releases_per_second"], 2)
            for arrival, row in rows.items()
        },
    }


def render(title, record):
    lines = [
        f"== {title} ==",
        "scenario: {device}, {num_contexts} contexts, {num_tasks} tasks, "
        "{duration:g}s sim, MMPP-overload family".format(
            **record["scenario"]
        ),
        f"{'arrival':<24} {'releases/s':>11} {'wall s':>8} "
        f"{'released':>9} {'rejected':>9} {'rej rate':>9}",
    ]
    for arrival, row in record["rows"].items():
        lines.append(
            f"{arrival:<24} {row['releases_per_second']:>11.1f} "
            f"{row['wall_seconds']:>8.3f} {row['released']:>9} "
            f"{row['rejected']:>9} {row['rejection_rate']:>9.4f}"
        )
    for arrival, ratio in record["overhead_vs_periodic"].items():
        if arrival != "periodic":
            lines.append(
                f"overhead vs periodic ({arrival}): {ratio:.2f}x wall "
                "per release"
            )
    return "\n".join(lines)


def test_arrival_layer_deterministic_fast():
    """Fast-tier guardrail: the open-system release path is seed-exact.

    Two identical bursty-overload runs must agree on every count the
    sweep harness ships — a deterministic gate (counts cannot flake),
    with the measured throughput snapshotted for the perf trajectory.
    """
    first, wall = run_overload(
        "mmpp:burst=8,calm=0.5", "queue:depth=2", num_tasks=24, duration=0.5
    )
    second, _ = run_overload(
        "mmpp:burst=8,calm=0.5", "queue:depth=2", num_tasks=24, duration=0.5
    )
    assert (first.released, first.completed, first.rejected) == (
        second.released,
        second.completed,
        second.rejected,
    )
    assert first.rejected > 0, "bench scenario must exercise admission"
    other, _ = run_overload(
        "mmpp:burst=8,calm=0.5", "queue:depth=2",
        num_tasks=24, duration=0.5, seed=1,
    )
    assert (other.released, other.rejected) != (
        first.released,
        first.rejected,
    ), "different seeds must drive different burst patterns"
    record = {
        "released": first.released,
        "completed": first.completed,
        "rejected": first.rejected,
        "rejection_rate": round(first.rejection_rate, 4),
        "wall_seconds": round(wall, 4),
        "releases_per_second": round(first.released / wall, 1),
    }
    emit(
        "bench_arrivals.txt",
        "== arrival determinism guardrail (fast) ==\n"
        + "\n".join(f"{key}: {value}" for key, value in record.items()),
    )
    emit_json("BENCH_arrivals.json", "guardrail_fast", record)


@pytest.mark.slow
def test_arrival_throughput():
    """Slow tier: releases/sec per arrival process under MMPP overload.

    Gates the stochastic release path at <= 3x the periodic baseline's
    wall cost per release — generator dispatch plus admission must stay
    noise next to the simulation itself.
    """
    record = measure(num_tasks=96, duration=2.0)
    emit(
        "bench_arrivals.txt",
        render("arrival-layer throughput (slow)", record),
    )
    emit_json("BENCH_arrivals.json", "throughput", record)
    for arrival, ratio in record["overhead_vs_periodic"].items():
        assert ratio <= 3.0, (
            f"{arrival}: stochastic release path costs {ratio:.2f}x the "
            "periodic baseline per release (gate: 3x)"
        )

"""Benchmarks E4/E5 — paper Fig. 4: Scenario 2 (three contexts).

Same sweep as Fig. 3 on the three-context pool.  Asserts the paper's
Scenario-2 findings:

* best-case pivot around 24 tasks;
* 1.5x over-subscription reaches higher FPS than 2.0x (paper: 741 vs 731)
  because excessive over-subscription adds contention once three contexts
  can already fill the GPU;
* naive pivots early with a drastic DMR.
"""

import pytest

from benchmarks.conftest import bench_cache_dir, bench_workers, emit
from repro.analysis.pivot import find_pivot
from repro.analysis.report import render_sweep_table
from repro.workloads.scenarios import SCENARIO_2, run_scenario_sweep

pytestmark = pytest.mark.slow

TASK_COUNTS = [8, 14, 16, 20, 24, 26, 28, 30]
DURATION = 3.0
WARMUP = 1.0


@pytest.fixture(scope="module")
def sweep():
    return run_scenario_sweep(
        SCENARIO_2,
        TASK_COUNTS,
        duration=DURATION,
        warmup=WARMUP,
        workers=bench_workers(),
        cache_dir=bench_cache_dir(),
    )


def test_fig4_scenario2_sweep(benchmark, sweep):
    from repro.workloads.scenarios import sweep_point

    benchmark.pedantic(
        lambda: sweep_point(SCENARIO_2, "sgprs_1.5", 26,
                            duration=1.5, warmup=0.5),
        rounds=1,
        iterations=1,
    )
    emit(
        "bench_fig4.txt",
        render_sweep_table(sweep, "total_fps",
                           title="Fig. 4a - total FPS (scenario 2)"),
    )
    emit(
        "bench_fig4.txt",
        render_sweep_table(sweep, "dmr",
                           title="Fig. 4b - deadline miss rate (scenario 2)"),
    )
    pivots = {v: find_pivot(points) for v, points in sweep.items()}
    emit("bench_fig4.txt", f"pivot points: {pivots}")

    # Shape assertions, inline so they execute under --benchmark-only
    # (the class below repeats them one-per-claim for plain pytest runs).
    fps_15 = sweep["sgprs_1.5"][-1].total_fps
    fps_20 = sweep["sgprs_2"][-1].total_fps
    assert fps_15 > fps_20
    assert fps_15 / fps_20 == pytest.approx(741.0 / 731.0, abs=0.03)
    best_pivot = max(pivots[v] or 0 for v in ("sgprs_1", "sgprs_1.5", "sgprs_2"))
    assert 23 <= best_pivot <= 26
    assert best_pivot >= (pivots["naive"] or 0) + 6
    assert sweep["naive"][-1].dmr > 0.6


class TestFig4Shapes:
    def test_moderate_oversubscription_beats_maximal(self, sweep):
        """Paper: SGPRS_1.5 reaches 741 fps vs 731 for SGPRS_2.0."""
        fps_15 = sweep["sgprs_1.5"][-1].total_fps
        fps_20 = sweep["sgprs_2"][-1].total_fps
        assert fps_15 > fps_20
        assert fps_15 / fps_20 == pytest.approx(741.0 / 731.0, abs=0.03)

    def test_best_pivot_near_paper_value(self, sweep):
        # paper: best-case pivot at 24 tasks in scenario 2
        best = max(
            find_pivot(sweep[v]) or 0
            for v in ("sgprs_1", "sgprs_1.5", "sgprs_2")
        )
        assert 23 <= best <= 26

    def test_scenario2_pivot_not_worse_than_scenario1(self, sweep):
        """The paper reports scenario 2 performing better overall."""
        from repro.workloads.scenarios import SCENARIO_1, sweep_point

        best2 = max(
            find_pivot(sweep[v]) or 0
            for v in ("sgprs_1", "sgprs_1.5", "sgprs_2")
        )
        # a single scenario-1 probe at that count: it must also be near
        # its own pivot (within one task)
        probe = sweep_point(
            SCENARIO_1, "sgprs_1.5", best2 + 2, duration=2.0, warmup=0.5
        )
        assert probe.dmr > 0.0 or best2 >= 24

    def test_naive_pivot_much_earlier(self, sweep):
        naive_pivot = find_pivot(sweep["naive"]) or 0
        best = max(
            find_pivot(sweep[v]) or 0
            for v in ("sgprs_1", "sgprs_1.5", "sgprs_2")
        )
        assert best >= naive_pivot + 6

    def test_naive_dmr_drastic(self, sweep):
        assert sweep["naive"][-1].dmr > 0.6

    def test_sgprs_fps_sustained(self, sweep):
        points = {p.num_tasks: p.total_fps for p in sweep["sgprs_1.5"]}
        assert points[30] >= points[26] * 0.97

    def test_sgprs_dmr_moderate(self, sweep):
        assert sweep["sgprs_1.5"][-1].dmr < 0.45

"""Tests for the auxiliary networks."""

import pytest

from repro.dnn.models import build_mlp, build_simple_cnn
from repro.dnn.ops import OpType


class TestSimpleCnn:
    def test_validates(self):
        build_simple_cnn().validate()

    def test_has_two_convs(self):
        graph = build_simple_cnn()
        assert sum(1 for o in graph if o.op_type is OpType.CONV2D) == 2

    def test_head_shape(self):
        graph = build_simple_cnn(num_classes=10)
        assert graph.node("fc2").output_shape == (10,)

    def test_custom_input_size(self):
        graph = build_simple_cnn(input_hw=64)
        assert graph.node("pool2").output_shape == (32, 16, 16)

    def test_much_smaller_than_resnet(self):
        from repro.dnn.resnet import build_resnet18
        assert build_simple_cnn().total_flops() < build_resnet18().total_flops() / 50


class TestMlp:
    def test_validates(self):
        build_mlp().validate()

    def test_depth_controls_linear_count(self):
        graph = build_mlp(depth=4)
        linears = [o for o in graph if o.op_type is OpType.LINEAR]
        assert len(linears) == 5  # 4 hidden + classifier

    def test_has_softmax_head(self):
        graph = build_mlp()
        assert graph.sinks() == ["softmax"]

    def test_no_convolutions(self):
        graph = build_mlp()
        assert not any(o.op_type is OpType.CONV2D for o in graph)

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError):
            build_mlp(depth=0)

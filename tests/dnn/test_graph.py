"""Unit tests for the DAG container."""

import pytest

from repro.dnn.graph import GraphError, LayerGraph
from repro.dnn.ops import Operator, OpType


def op(name, flops=10.0):
    return Operator(
        name=name,
        op_type=OpType.RELU,
        input_shape=(4,),
        output_shape=(4,),
        flops=flops,
        bytes_moved=flops,
    )


def chain(names):
    graph = LayerGraph("chain")
    previous = None
    for name in names:
        graph.add_node(op(name))
        if previous is not None:
            graph.add_edge(previous, name)
        previous = name
    return graph


class TestConstruction:
    def test_add_node_and_contains(self):
        graph = LayerGraph()
        graph.add_node(op("a"))
        assert "a" in graph
        assert len(graph) == 1

    def test_duplicate_name_rejected(self):
        graph = LayerGraph()
        graph.add_node(op("a"))
        with pytest.raises(GraphError):
            graph.add_node(op("a"))

    def test_edge_to_unknown_node_rejected(self):
        graph = LayerGraph()
        graph.add_node(op("a"))
        with pytest.raises(GraphError):
            graph.add_edge("a", "ghost")
        with pytest.raises(GraphError):
            graph.add_edge("ghost", "a")

    def test_self_loop_rejected(self):
        graph = LayerGraph()
        graph.add_node(op("a"))
        with pytest.raises(GraphError):
            graph.add_edge("a", "a")

    def test_duplicate_edge_rejected(self):
        graph = chain(["a", "b"])
        with pytest.raises(GraphError):
            graph.add_edge("a", "b")


class TestAccessors:
    def test_node_lookup(self):
        graph = chain(["a", "b"])
        assert graph.node("a").name == "a"

    def test_unknown_node_raises(self):
        with pytest.raises(GraphError):
            LayerGraph().node("ghost")

    def test_successors_predecessors(self):
        graph = chain(["a", "b", "c"])
        assert graph.successors("a") == ["b"]
        assert graph.predecessors("c") == ["b"]

    def test_sources_sinks(self):
        graph = chain(["a", "b", "c"])
        assert graph.sources() == ["a"]
        assert graph.sinks() == ["c"]

    def test_edges_deterministic(self):
        graph = chain(["a", "b", "c"])
        assert graph.edges() == [("a", "b"), ("b", "c")]

    def test_aggregates(self):
        graph = chain(["a", "b"])
        assert graph.total_flops() == 20.0
        assert graph.total_bytes() == 20.0


class TestTopologicalOrder:
    def test_chain_order(self):
        graph = chain(["a", "b", "c"])
        assert [o.name for o in graph.topological_order()] == ["a", "b", "c"]

    def test_diamond_order_respects_edges(self):
        graph = LayerGraph()
        for name in ["a", "b", "c", "d"]:
            graph.add_node(op(name))
        graph.add_edge("a", "b")
        graph.add_edge("a", "c")
        graph.add_edge("b", "d")
        graph.add_edge("c", "d")
        order = [o.name for o in graph.topological_order()]
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_insertion_order_tie_break(self):
        graph = LayerGraph()
        for name in ["z", "m", "a"]:  # three independent nodes
            graph.add_node(op(name))
        assert [o.name for o in graph.topological_order()] == ["z", "m", "a"]

    def test_cycle_detected(self):
        graph = chain(["a", "b"])
        graph.add_node(op("c"))
        graph.add_edge("b", "c")
        graph._succ["c"].append("a")  # force a cycle behind the API
        graph._pred["a"].append("c")
        with pytest.raises(GraphError):
            graph.topological_order()


class TestValidation:
    def test_valid_chain(self):
        chain(["a", "b", "c"]).validate()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            LayerGraph().validate()

    def test_multiple_sources_rejected(self):
        graph = chain(["a", "b"])
        graph.add_node(op("orphan_source"))
        graph.add_edge("orphan_source", "b")
        with pytest.raises(GraphError, match="sources"):
            graph.validate()

    def test_multiple_sinks_rejected(self):
        graph = chain(["a", "b"])
        graph.add_node(op("extra_sink"))
        graph.add_edge("a", "extra_sink")
        with pytest.raises(GraphError, match="sinks"):
            graph.validate()

    def test_insertion_order_is_topological(self):
        assert chain(["a", "b", "c"]).insertion_order_is_topological()

"""Unit tests for shape arithmetic."""

import pytest

from repro.dnn.shapes import (
    conv2d_output_hw,
    conv2d_output_shape,
    element_count,
    flatten_shape,
    global_pool_output_shape,
    pool_output_shape,
)


class TestConvShapes:
    def test_same_padding_3x3(self):
        assert conv2d_output_hw(56, 56, kernel=3, stride=1, padding=1) == (56, 56)

    def test_stride_two_halves(self):
        assert conv2d_output_hw(56, 56, kernel=3, stride=2, padding=1) == (28, 28)

    def test_resnet_stem(self):
        # 224x224, 7x7 conv, stride 2, padding 3 -> 112x112
        assert conv2d_output_hw(224, 224, kernel=7, stride=2, padding=3) == (112, 112)

    def test_1x1_conv_preserves_size(self):
        assert conv2d_output_hw(28, 28, kernel=1) == (28, 28)

    def test_kernel_too_large_rejected(self):
        with pytest.raises(ValueError):
            conv2d_output_hw(4, 4, kernel=7)

    def test_zero_kernel_rejected(self):
        with pytest.raises(ValueError):
            conv2d_output_hw(8, 8, kernel=0)

    def test_negative_padding_rejected(self):
        with pytest.raises(ValueError):
            conv2d_output_hw(8, 8, kernel=3, padding=-1)

    def test_output_shape_channels(self):
        shape = conv2d_output_shape((3, 224, 224), 64, kernel=7, stride=2, padding=3)
        assert shape == (64, 112, 112)

    def test_zero_channels_rejected(self):
        with pytest.raises(ValueError):
            conv2d_output_shape((3, 8, 8), 0, kernel=3)


class TestPoolShapes:
    def test_resnet_maxpool(self):
        # 112x112, 3x3, stride 2, padding 1 -> 56x56
        assert pool_output_shape((64, 112, 112), 3, 2, 1) == (64, 56, 56)

    def test_2x2_halving(self):
        assert pool_output_shape((16, 32, 32), 2, 2) == (16, 16, 16)

    def test_global_pool(self):
        assert global_pool_output_shape((512, 7, 7)) == (512, 1, 1)


class TestFlatten:
    def test_flatten_3d(self):
        assert flatten_shape((512, 1, 1)) == (512,)

    def test_flatten_is_product(self):
        assert flatten_shape((2, 3, 4)) == (24,)

    def test_element_count(self):
        assert element_count((64, 56, 56)) == 64 * 56 * 56

"""Tests for balanced stage partitioning."""

import pytest

from repro.dnn.graph import LayerGraph
from repro.dnn.ops import Operator, OpType
from repro.dnn.resnet import build_resnet18
from repro.dnn.stages import (
    StagePlan,
    _linear_partition,
    default_operator_cost,
    partition_into_stages,
)


def weighted_chain(costs):
    graph = LayerGraph("chain")
    previous = None
    for index, cost in enumerate(costs):
        name = f"n{index}"
        graph.add_node(
            Operator(
                name=name,
                op_type=OpType.RELU,
                input_shape=(4,),
                output_shape=(4,),
                flops=float(cost),
                bytes_moved=0.0,
            )
        )
        if previous:
            graph.add_edge(previous, name)
        previous = name
    return graph


class TestLinearPartition:
    def test_equal_costs_split_evenly(self):
        boundaries = _linear_partition([1.0] * 6, 3)
        assert boundaries == [2, 4, 6]

    def test_single_part(self):
        assert _linear_partition([1.0, 2.0, 3.0], 1) == [3]

    def test_parts_equal_items(self):
        assert _linear_partition([5.0, 1.0, 2.0], 3) == [1, 2, 3]

    def test_minimises_max(self):
        # [9, 1, 1, 1] into 2: best split is [9] | [1,1,1]
        assert _linear_partition([9.0, 1.0, 1.0, 1.0], 2) == [1, 4]

    def test_heavy_tail(self):
        # [1, 1, 1, 9] into 2: best split is [1,1,1] | [9]
        assert _linear_partition([1.0, 1.0, 1.0, 9.0], 2) == [3, 4]


class TestPartitionIntoStages:
    def test_covers_all_operators_once(self):
        plan = partition_into_stages(weighted_chain([1] * 10), 3)
        names = [op.name for stage in plan.stages for op in stage]
        assert names == [f"n{i}" for i in range(10)]

    def test_stage_count(self):
        plan = partition_into_stages(weighted_chain([1] * 10), 4)
        assert plan.num_stages == 4

    def test_single_stage(self):
        plan = partition_into_stages(weighted_chain([1] * 5), 1)
        assert plan.num_stages == 1
        assert len(plan.stages[0]) == 5

    def test_too_many_stages_rejected(self):
        with pytest.raises(ValueError):
            partition_into_stages(weighted_chain([1] * 3), 4)

    def test_zero_stages_rejected(self):
        with pytest.raises(ValueError):
            partition_into_stages(weighted_chain([1] * 3), 0)

    def test_custom_cost_function(self):
        graph = weighted_chain([1, 1, 1, 1])
        plan = partition_into_stages(graph, 2, cost_fn=lambda op: 1.0)
        assert [len(s) for s in plan.stages] == [2, 2]

    def test_costs_recorded(self):
        plan = partition_into_stages(
            weighted_chain([1, 2, 3, 4]), 2, cost_fn=lambda op: op.flops
        )
        assert sum(plan.costs) == pytest.approx(10.0)


class TestResnetPartition:
    @pytest.fixture(scope="class")
    def plan(self):
        return partition_into_stages(build_resnet18(), 6)

    def test_validates(self, plan):
        plan.validate()

    def test_six_stages(self, plan):
        assert plan.num_stages == 6

    def test_reasonably_balanced(self, plan):
        # max stage cost within 2.2x of the mean (layer boundaries are
        # coarse; perfect balance is impossible)
        assert plan.imbalance() < 2.2

    def test_no_empty_stage(self, plan):
        assert all(stage for stage in plan.stages)

    def test_stage_order_matches_network_order(self, plan):
        assert plan.stages[0][0].name == "input"
        assert plan.stages[-1][-1].name == "fc"

    def test_deterministic(self):
        plan_a = partition_into_stages(build_resnet18(), 6)
        plan_b = partition_into_stages(build_resnet18(), 6)
        assert [
            [op.name for op in stage] for stage in plan_a.stages
        ] == [[op.name for op in stage] for stage in plan_b.stages]


class TestStagePlanValidation:
    def test_missing_operator_detected(self):
        graph = weighted_chain([1, 1, 1])
        plan = partition_into_stages(graph, 2)
        plan.stages[0] = plan.stages[0][:-1] if len(plan.stages[0]) > 1 else []
        with pytest.raises(ValueError):
            plan.validate()

    def test_default_cost_positive_for_memory_ops(self):
        op = Operator(
            name="bn",
            op_type=OpType.BATCHNORM,
            input_shape=(4,),
            output_shape=(4,),
            flops=0.0,
            bytes_moved=100.0,
        )
        assert default_operator_cost(op) > 0

"""Structural tests for the ResNet builders against known ground truth."""

import pytest

from repro.dnn.ops import OpType
from repro.dnn.resnet import build_resnet18, build_resnet34


@pytest.fixture(scope="module")
def resnet18():
    return build_resnet18()


class TestResNet18Structure:
    def test_validates(self, resnet18):
        resnet18.validate()

    def test_conv_count(self, resnet18):
        # 1 stem + 16 block convs + 3 downsample convs = 20
        convs = [o for o in resnet18 if o.op_type is OpType.CONV2D]
        assert len(convs) == 20

    def test_downsample_convs_present(self, resnet18):
        names = [o.name for o in resnet18]
        for layer in (2, 3, 4):
            assert f"layer{layer}.0.downsample.conv" in names
        assert "layer1.0.downsample.conv" not in names

    def test_add_count(self, resnet18):
        # one residual addition per basic block, 8 blocks
        adds = [o for o in resnet18 if o.op_type is OpType.ADD]
        assert len(adds) == 8

    def test_single_linear_head(self, resnet18):
        linears = [o for o in resnet18 if o.op_type is OpType.LINEAR]
        assert len(linears) == 1
        assert linears[0].output_shape == (1000,)

    def test_param_count_matches_torchvision(self, resnet18):
        # torchvision resnet18: 11,689,512 parameters
        assert resnet18.total_params() == pytest.approx(11_689_512, rel=0.01)

    def test_flops_match_published_value(self, resnet18):
        # ~1.82 GMACs => ~3.6 GFLOPs at 2 FLOPs per MAC
        assert resnet18.total_flops() == pytest.approx(3.64e9, rel=0.03)

    def test_stem_shapes(self, resnet18):
        assert resnet18.node("conv1").output_shape == (64, 112, 112)
        assert resnet18.node("maxpool").output_shape == (64, 56, 56)

    def test_layer_output_shapes(self, resnet18):
        assert resnet18.node("layer1.1.relu2").output_shape == (64, 56, 56)
        assert resnet18.node("layer2.1.relu2").output_shape == (128, 28, 28)
        assert resnet18.node("layer3.1.relu2").output_shape == (256, 14, 14)
        assert resnet18.node("layer4.1.relu2").output_shape == (512, 7, 7)

    def test_insertion_order_topological(self, resnet18):
        assert resnet18.insertion_order_is_topological()

    def test_single_source_and_sink(self, resnet18):
        assert resnet18.sources() == ["input"]
        assert resnet18.sinks() == ["fc"]

    def test_residual_edges_exist(self, resnet18):
        # plain block: skip from the previous block's relu
        assert "layer1.1.add" in resnet18.successors("layer1.0.relu2")
        # downsample block: skip goes through the projection
        assert "layer2.0.add" in resnet18.successors("layer2.0.downsample.bn")

    def test_shape_continuity(self, resnet18):
        """Every edge connects an output shape to a matching consumer input."""
        for src, dst in resnet18.edges():
            dst_op = resnet18.node(dst)
            src_op = resnet18.node(src)
            if dst_op.op_type is OpType.ADD:
                assert src_op.output_shape == dst_op.output_shape
            elif len(resnet18.predecessors(dst)) == 1:
                assert src_op.output_shape == dst_op.input_shape


class TestInputSizes:
    def test_smaller_input(self):
        graph = build_resnet18(input_hw=64)
        assert graph.node("conv1").output_shape == (64, 32, 32)
        graph.validate()

    def test_custom_classes(self):
        graph = build_resnet18(num_classes=10)
        assert graph.node("fc").output_shape == (10,)


class TestResNet34:
    def test_conv_count(self):
        graph = build_resnet34()
        # 1 stem + 2*(3+4+6+3) block convs + 3 downsample = 36
        convs = [o for o in graph if o.op_type is OpType.CONV2D]
        assert len(convs) == 36

    def test_param_count(self):
        # torchvision resnet34: 21,797,672 parameters
        assert build_resnet34().total_params() == pytest.approx(21_797_672, rel=0.01)

    def test_more_flops_than_resnet18(self):
        assert build_resnet34().total_flops() > build_resnet18().total_flops() * 1.8

"""Unit tests for FLOP / traffic formulas."""

import pytest

from repro.dnn import flops as F


class TestConv:
    def test_conv_flops_formula(self):
        # out 2x4x4, in 3 channels, 3x3 kernel: 2*4*4 * 3*9 MACs * 2
        assert F.conv2d_flops(3, (2, 4, 4), 3) == 2 * (2 * 4 * 4 * 3 * 9)

    def test_conv_params(self):
        assert F.conv2d_params(64, 128, 3) == 128 * 64 * 9

    def test_conv_bytes_counts_io_and_weights(self):
        params = F.conv2d_params(3, 2, 1)
        value = F.conv2d_bytes((3, 2, 2), (2, 2, 2), params)
        assert value == 4 * (12 + 8 + params)


class TestElementwise:
    def test_batchnorm_flops_two_per_element(self):
        assert F.batchnorm_flops((4, 2, 2)) == 2 * 16

    def test_batchnorm_bytes_read_write(self):
        assert F.batchnorm_bytes((4, 2, 2)) == 2 * 4 * 16

    def test_relu_flops_one_per_element(self):
        assert F.relu_flops((10,)) == 10

    def test_add_bytes_three_accesses(self):
        assert F.add_bytes((10,)) == 3 * 4 * 10


class TestPool:
    def test_pool_flops_window_size(self):
        assert F.pool_flops((2, 2, 2), kernel=3) == 8 * 9

    def test_pool_bytes(self):
        assert F.pool_bytes((2, 4, 4), (2, 2, 2)) == 4 * (32 + 8)


class TestLinear:
    def test_linear_flops(self):
        assert F.linear_flops(512, 1000) == 2 * 512 * 1000

    def test_linear_params_with_bias(self):
        assert F.linear_params(512, 1000) == 512 * 1000 + 1000

    def test_linear_params_without_bias(self):
        assert F.linear_params(512, 1000, bias=False) == 512 * 1000

    def test_linear_bytes(self):
        params = F.linear_params(4, 2)
        assert F.linear_bytes(4, 2, params) == 4 * (4 + 2 + params)


class TestSoftmax:
    def test_softmax_flops(self):
        assert F.softmax_flops(1000) == 3000

    def test_softmax_bytes(self):
        assert F.softmax_bytes(1000) == 8000

"""The expanded model zoo: new builders and the registry."""

import pytest

from repro.dnn import (
    build_mlp_mixer,
    build_mobilenet_small,
    build_resnet18,
    build_resnet34,
    partition_into_stages,
)
from repro.dnn.ops import OpType
from repro.speedup.composite import composite_for_ops
from repro.workloads.synth.zoo import (
    MODEL_ZOO,
    ZOO_MIXES,
    get_mix,
    get_model,
    list_models,
    pick_model,
)


class TestMobileNetBuilder:
    def test_graph_validates(self):
        graph = build_mobilenet_small()
        graph.validate()
        assert graph.name == "mobilenet_small"

    def test_depthwise_cheaper_than_dense(self):
        graph = build_mobilenet_small()
        # a depthwise conv's FLOPs lack the in_channels factor, so every
        # depthwise op must be far cheaper than the pointwise op that
        # follows it at the same spatial size
        ops = {op.name: op for op in graph.topological_order()}
        dw = ops["block3.dw"]
        pw = ops["block3.pw"]
        assert dw.attribute("depthwise") is True
        assert dw.flops < pw.flops

    def test_width_multiplier_scales_flops(self):
        slim = build_mobilenet_small(width_mult=0.5, name="slim")
        wide = build_mobilenet_small(width_mult=2.0, name="wide")
        assert slim.total_flops() < wide.total_flops()

    def test_partitions_into_stages(self):
        graph = build_mobilenet_small()
        for stages in (1, 4, 8):
            plan = partition_into_stages(graph, stages)
            assert plan.num_stages == stages


class TestMixerBuilder:
    def test_graph_validates(self):
        graph = build_mlp_mixer()
        graph.validate()
        assert graph.name == "mlp_mixer"

    def test_all_linear_no_convs(self):
        graph = build_mlp_mixer()
        op_types = {op.op_type for op in graph.topological_order()}
        assert OpType.CONV2D not in op_types
        assert OpType.LINEAR in op_types
        assert OpType.ADD in op_types  # residual connections

    def test_token_mix_flops_are_analytic(self):
        n, d = 32, 64
        graph = build_mlp_mixer(num_patches=n, dim=d, depth=1)
        ops = {op.name: op for op in graph.topological_order()}
        assert ops["block0.token_mix"].flops == 2.0 * n * n * d
        assert ops["block0.channel_mix"].flops == 2.0 * d * d * n
        # far below the naive dense (n*d)^2 cost
        assert ops["block0.token_mix"].flops < 2.0 * (n * d) ** 2 / 10

    def test_partitions_and_composites(self):
        graph = build_mlp_mixer()
        plan = partition_into_stages(graph, 4)
        assert plan.num_stages == 4
        comp = composite_for_ops("mixer", list(graph.topological_order()))
        assert comp.base_time > 0

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            build_mlp_mixer(depth=0)
        with pytest.raises(ValueError):
            build_mlp_mixer(num_patches=1)


class TestDynamicRange:
    def test_zoo_spans_flops_orders_of_magnitude(self):
        mixer = build_mlp_mixer().total_flops()
        mobile = build_mobilenet_small().total_flops()
        r18 = build_resnet18().total_flops()
        r34 = build_resnet34().total_flops()
        assert mixer < mobile < r18 < r34
        assert r34 / mixer > 100  # two-plus orders of dynamic range


class TestZooRegistry:
    def test_core_models_registered(self):
        keys = {m.key for m in list_models()}
        assert {
            "resnet18",
            "resnet34",
            "mobilenet_small",
            "mlp_mixer",
            "simple_cnn",
        } <= keys

    def test_builders_match_registry_keys(self):
        for model in list_models():
            assert model.key in MODEL_ZOO
            graph = model.builder()
            graph.validate()

    def test_unknown_model_and_mix_errors_name_known(self):
        with pytest.raises(KeyError) as excinfo:
            get_model("alexnet")
        assert "resnet18" in str(excinfo.value)
        with pytest.raises(KeyError) as excinfo:
            get_mix("party")
        assert "fleet" in str(excinfo.value)

    def test_mixes_reference_registered_models(self):
        for name, mix in ZOO_MIXES.items():
            for key, weight in mix:
                get_model(key)
                assert weight > 0, name

    def test_pick_model_weighted_and_deterministic(self):
        import random

        picks = [pick_model("fleet", random.Random(i)) for i in range(200)]
        assert picks == [pick_model("fleet", random.Random(i)) for i in range(200)]
        mix_models = {key for key, _ in get_mix("fleet")}
        assert set(picks) <= mix_models
        # the 45%-weight model must dominate a 200-draw sample
        assert picks.count("resnet18") > picks.count("resnet34")

"""Unit tests for operator records."""

import pytest

from repro.dnn.ops import MEMORY_BOUND_TYPES, Operator, OpType, output_elements


def make_op(**overrides):
    defaults = dict(
        name="op",
        op_type=OpType.CONV2D,
        input_shape=(3, 8, 8),
        output_shape=(16, 8, 8),
        flops=1000.0,
        bytes_moved=2000.0,
    )
    defaults.update(overrides)
    return Operator(**defaults)


class TestValidation:
    def test_valid_operator(self):
        op = make_op()
        assert op.flops == 1000.0

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            make_op(name="")

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            make_op(flops=-1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            make_op(bytes_moved=-1.0)

    def test_zero_shape_dim_rejected(self):
        with pytest.raises(ValueError):
            make_op(output_shape=(0, 8, 8))

    def test_zero_cost_marker_allowed(self):
        op = make_op(flops=0.0, bytes_moved=0.0)
        assert op.flops == 0.0


class TestClassification:
    def test_conv_is_compute_bound(self):
        assert not make_op(op_type=OpType.CONV2D).is_memory_bound

    def test_linear_is_memory_bound(self):
        assert make_op(op_type=OpType.LINEAR).is_memory_bound

    @pytest.mark.parametrize(
        "op_type",
        [OpType.RELU, OpType.BATCHNORM, OpType.ADD, OpType.MAXPOOL,
         OpType.AVGPOOL, OpType.SOFTMAX, OpType.FLATTEN],
    )
    def test_elementwise_and_reduction_types_memory_bound(self, op_type):
        assert op_type in MEMORY_BOUND_TYPES


class TestAttributes:
    def test_attribute_lookup(self):
        op = make_op(attributes=(("kernel", 3), ("stride", 2)))
        assert op.attribute("kernel") == 3
        assert op.attribute("stride") == 2

    def test_attribute_default(self):
        assert make_op().attribute("padding", 0) == 0

    def test_operators_are_frozen(self):
        op = make_op()
        with pytest.raises(Exception):
            op.flops = 5.0


class TestOutputElements:
    def test_3d_shape(self):
        assert output_elements(make_op(output_shape=(16, 4, 4))) == 256

    def test_1d_shape(self):
        op = make_op(input_shape=(100,), output_shape=(10,), op_type=OpType.LINEAR)
        assert output_elements(op) == 10

"""Unit tests for the one-call run harness."""

import pytest

from repro.core.context_pool import ContextPoolConfig
from repro.core.naive import NaiveScheduler
from repro.core.runner import RunConfig, run_simulation
from repro.gpu.spec import RTX_2080_TI
from repro.workloads.generator import identical_periodic_tasks


@pytest.fixture(scope="module")
def pool():
    return ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)


class TestRunConfig:
    def test_defaults(self, pool):
        config = RunConfig(pool=pool)
        assert config.duration == 10.0
        assert config.spec is RTX_2080_TI

    def test_bad_duration_rejected(self, pool):
        with pytest.raises(ValueError):
            RunConfig(pool=pool, duration=0.0)

    def test_warmup_must_precede_duration(self, pool):
        with pytest.raises(ValueError):
            RunConfig(pool=pool, duration=1.0, warmup=1.0)


class TestRunSimulation:
    def test_light_load_all_deadlines_met(self, pool):
        tasks = identical_periodic_tasks(4, nominal_sms=pool.sms_per_context)
        result = run_simulation(
            tasks, RunConfig(pool=pool, duration=1.0, warmup=0.2)
        )
        assert result.dmr == 0.0
        assert result.total_fps == pytest.approx(120.0, rel=0.05)

    def test_fps_scales_with_task_count(self, pool):
        def fps(count):
            tasks = identical_periodic_tasks(
                count, nominal_sms=pool.sms_per_context
            )
            return run_simulation(
                tasks, RunConfig(pool=pool, duration=1.0, warmup=0.2)
            ).total_fps
        assert fps(8) == pytest.approx(2 * fps(4), rel=0.05)

    def test_naive_scheduler_runs(self, pool):
        tasks = identical_periodic_tasks(
            4, nominal_sms=pool.sms_per_context, num_stages=1
        )
        result = run_simulation(
            tasks,
            RunConfig(pool=pool, scheduler=NaiveScheduler, duration=1.0,
                      warmup=0.2),
        )
        assert result.dmr == 0.0
        assert result.completed > 0

    def test_trace_recorded_when_requested(self, pool):
        tasks = identical_periodic_tasks(2, nominal_sms=pool.sms_per_context)
        result = run_simulation(
            tasks,
            RunConfig(pool=pool, duration=0.5, warmup=0.1, record_trace=True),
        )
        assert result.trace is not None
        assert len(result.trace) > 0

    def test_trace_omitted_by_default(self, pool):
        tasks = identical_periodic_tasks(2, nominal_sms=pool.sms_per_context)
        result = run_simulation(
            tasks, RunConfig(pool=pool, duration=0.5, warmup=0.1)
        )
        assert result.trace is None

    def test_summary_string(self, pool):
        tasks = identical_periodic_tasks(2, nominal_sms=pool.sms_per_context)
        result = run_simulation(
            tasks, RunConfig(pool=pool, duration=0.5, warmup=0.1)
        )
        summary = result.summary()
        assert "fps=" in summary and "dmr=" in summary

    def test_utilization_grows_with_load(self, pool):
        def utilization(count):
            tasks = identical_periodic_tasks(
                count, nominal_sms=pool.sms_per_context
            )
            return run_simulation(
                tasks, RunConfig(pool=pool, duration=1.0, warmup=0.2)
            ).utilization
        assert utilization(12) > utilization(4)


class TestSchedulerSpecificContexts:
    def test_sequential_gets_single_stream_full_device(self, pool):
        from repro.core.sequential import (
            SequentialScheduler,
            sequential_pool_config,
        )
        from repro.workloads.generator import identical_periodic_tasks

        seq_pool = sequential_pool_config(RTX_2080_TI)
        tasks = identical_periodic_tasks(
            12, nominal_sms=seq_pool.sms_per_context, num_stages=1
        )
        result = run_simulation(
            tasks,
            RunConfig(pool=seq_pool, scheduler=SequentialScheduler,
                      duration=1.5, warmup=0.5),
        )
        # one-at-a-time execution caps throughput at ~322 fps even though
        # 360 fps are requested
        assert result.total_fps < 340.0

    def test_naive_subclass_also_gets_naive_contexts(self, pool):
        from repro.core.naive import NaiveScheduler
        from repro.workloads.generator import identical_periodic_tasks

        class TracingNaive(NaiveScheduler):
            name = "naive_sub"

        tasks = identical_periodic_tasks(
            4, nominal_sms=pool.sms_per_context, num_stages=1
        )
        result = run_simulation(
            tasks,
            RunConfig(pool=pool, scheduler=TracingNaive, duration=1.0,
                      warmup=0.2),
        )
        assert result.completed > 0

"""Tests for the sequential (framework-default) baseline."""

import pytest

from repro.core.profiling import prepare_task
from repro.core.runner import RunConfig, run_simulation
from repro.core.sequential import (
    SequentialScheduler,
    build_sequential_context,
    sequential_pool_config,
)
from repro.core.task import TaskSet
from repro.dnn.resnet import build_resnet18
from repro.gpu.allocator import AllocationParams
from repro.gpu.device import GpuDevice
from repro.gpu.spec import RTX_2080_TI
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsCollector


def run_sequential(num_tasks, duration=2.0):
    engine = SimulationEngine()
    contexts = build_sequential_context(RTX_2080_TI)
    device = GpuDevice(engine, RTX_2080_TI, contexts, AllocationParams())
    metrics = MetricsCollector(warmup=0.5)
    tasks = TaskSet(
        [
            prepare_task(
                f"t{i}", build_resnet18(), period=1 / 30, num_stages=1,
                nominal_sms=float(RTX_2080_TI.total_sms),
                release_offset=i / (30 * num_tasks),
            )
            for i in range(num_tasks)
        ]
    )
    scheduler = SequentialScheduler(
        engine, device, tasks, metrics, horizon=duration
    )
    scheduler.start()
    engine.run_until(duration)
    return metrics, engine.now


class TestSequentialBaseline:
    def test_single_full_width_context(self):
        contexts = build_sequential_context(RTX_2080_TI)
        assert len(contexts) == 1
        assert contexts[0].nominal_sms == 68.0
        assert len(contexts[0].streams) == 1

    def test_pool_config_matches(self):
        pool = sequential_pool_config(RTX_2080_TI)
        assert pool.num_contexts == 1
        assert pool.sms_per_context == 68.0

    def test_light_load_meets_deadlines(self):
        metrics, now = run_sequential(4)
        assert metrics.deadline_miss_rate(now) == 0.0

    def test_throughput_caps_near_single_stream_rate(self):
        """One job at a time at ~23x speedup: ~320 fps ceiling, far below
        SGPRS' ~750 — the paper's underutilization argument."""
        metrics, now = run_sequential(14)  # 420 fps demand
        fps = metrics.total_fps(now)
        assert 270 <= fps <= 340

    def test_underutilization_vs_sgprs(self):
        from repro.core.context_pool import ContextPoolConfig
        from repro.workloads.generator import identical_periodic_tasks

        metrics, now = run_sequential(14)
        sequential_fps = metrics.total_fps(now)
        pool = ContextPoolConfig.from_oversubscription(2, 1.5, RTX_2080_TI)
        tasks = identical_periodic_tasks(14, nominal_sms=pool.sms_per_context)
        sgprs = run_simulation(
            tasks, RunConfig(pool=pool, duration=2.0, warmup=0.5)
        )
        assert sgprs.total_fps > sequential_fps * 1.25
        assert sgprs.dmr == 0.0


class TestVgg11:
    def test_validates(self):
        from repro.dnn.models import build_vgg11
        build_vgg11().validate()

    def test_conv_and_linear_counts(self):
        from repro.dnn.models import build_vgg11
        from repro.dnn.ops import OpType
        graph = build_vgg11()
        assert sum(1 for o in graph if o.op_type is OpType.CONV2D) == 8
        assert sum(1 for o in graph if o.op_type is OpType.LINEAR) == 3

    def test_flops_about_4x_resnet18(self):
        from repro.dnn.models import build_vgg11
        vgg = build_vgg11().total_flops()
        resnet = build_resnet18().total_flops()
        assert 3.0 <= vgg / resnet <= 5.0

    def test_param_count_matches_torchvision_band(self):
        # torchvision vgg11_bn: ~132.9M parameters
        from repro.dnn.models import build_vgg11
        assert build_vgg11().total_params() == pytest.approx(132.9e6, rel=0.02)

    def test_schedulable_as_task(self):
        from repro.dnn.models import build_vgg11
        task = prepare_task(
            "vgg", build_vgg11(), period=1 / 10, num_stages=6, nominal_sms=34.0
        )
        task.validate()
        assert task.total_wcet > 0

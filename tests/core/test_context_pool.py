"""Unit tests for context pool configuration."""

import pytest

from repro.core.context_pool import ContextPoolConfig, build_contexts
from repro.gpu.spec import RTX_2080_TI


class TestConfig:
    def test_total_nominal_sms(self):
        config = ContextPoolConfig(num_contexts=2, sms_per_context=34.0)
        assert config.total_nominal_sms == pytest.approx(68.0)

    def test_oversubscription_level(self):
        config = ContextPoolConfig(num_contexts=2, sms_per_context=51.0)
        assert config.oversubscription(RTX_2080_TI) == pytest.approx(1.5)

    def test_from_oversubscription_scenario1(self):
        config = ContextPoolConfig.from_oversubscription(2, 1.5, RTX_2080_TI)
        assert config.sms_per_context == pytest.approx(51.0)

    def test_from_oversubscription_scenario2(self):
        config = ContextPoolConfig.from_oversubscription(3, 1.0, RTX_2080_TI)
        assert config.sms_per_context == pytest.approx(68.0 / 3.0)

    def test_round_trip(self):
        for num_contexts in (2, 3):
            for level in (1.0, 1.5, 2.0):
                config = ContextPoolConfig.from_oversubscription(
                    num_contexts, level, RTX_2080_TI
                )
                assert config.oversubscription(RTX_2080_TI) == pytest.approx(level)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            ContextPoolConfig(num_contexts=0, sms_per_context=10.0)
        with pytest.raises(ValueError):
            ContextPoolConfig(num_contexts=2, sms_per_context=0.0)
        with pytest.raises(ValueError):
            ContextPoolConfig.from_oversubscription(2, 0.0, RTX_2080_TI)


class TestBuildContexts:
    def test_count_and_sizes(self):
        config = ContextPoolConfig.from_oversubscription(3, 1.5, RTX_2080_TI)
        contexts = build_contexts(config, RTX_2080_TI)
        assert len(contexts) == 3
        for context in contexts:
            assert context.nominal_sms == pytest.approx(34.0)

    def test_stream_layout_from_spec(self):
        config = ContextPoolConfig(num_contexts=1, sms_per_context=34.0)
        context = build_contexts(config, RTX_2080_TI)[0]
        assert len(context.streams) == 4

    def test_unique_ids(self):
        config = ContextPoolConfig(num_contexts=3, sms_per_context=20.0)
        contexts = build_contexts(config, RTX_2080_TI)
        assert [c.context_id for c in contexts] == [0, 1, 2]

"""Unit tests for the task model."""

import pytest

from repro.core.task import StageSpec, TaskSpec, TaskSet
from repro.dnn.models import build_simple_cnn
from repro.speedup.composite import composite_for_ops


@pytest.fixture(scope="module")
def composite():
    graph = build_simple_cnn()
    return composite_for_ops("net", graph.topological_order())


def make_stage(index, composite, wcet=0.01, virtual_deadline=None):
    return StageSpec(
        index=index,
        name=f"stage{index}",
        composite=composite,
        wcet=wcet,
        width_demand=10.0,
        virtual_deadline=virtual_deadline,
    )


def make_task(composite, num_stages=3, period=0.1, deadline=None):
    task = TaskSpec(
        name="task",
        graph=build_simple_cnn(),
        period=period,
        relative_deadline=deadline if deadline is not None else period,
    )
    slice_deadline = task.relative_deadline / num_stages
    for index in range(num_stages):
        task.stages.append(
            make_stage(index, composite, virtual_deadline=slice_deadline)
        )
    return task


class TestStageSpec:
    def test_valid(self, composite):
        stage = make_stage(0, composite)
        assert stage.work == composite.total_work

    def test_negative_index_rejected(self, composite):
        with pytest.raises(ValueError):
            make_stage(-1, composite)

    def test_zero_wcet_rejected(self, composite):
        with pytest.raises(ValueError):
            StageSpec(0, "s", composite, wcet=0.0, width_demand=10.0)

    def test_width_below_one_rejected(self, composite):
        with pytest.raises(ValueError):
            StageSpec(0, "s", composite, wcet=0.1, width_demand=0.1)


class TestTaskSpec:
    def test_fps(self, composite):
        assert make_task(composite, period=1 / 30).fps == pytest.approx(30.0)

    def test_total_wcet(self, composite):
        task = make_task(composite, num_stages=3)
        assert task.total_wcet == pytest.approx(0.03)

    def test_utilization(self, composite):
        task = make_task(composite, num_stages=3, period=0.1)
        assert task.utilization() == pytest.approx(0.3)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(name="", graph=build_simple_cnn(), period=0.1,
                     relative_deadline=0.1)

    def test_non_positive_period_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(name="t", graph=build_simple_cnn(), period=0.0,
                     relative_deadline=0.1)

    def test_validate_accepts_consistent_task(self, composite):
        make_task(composite).validate()

    def test_validate_rejects_no_stages(self):
        task = TaskSpec(name="t", graph=build_simple_cnn(), period=0.1,
                        relative_deadline=0.1)
        with pytest.raises(ValueError):
            task.validate()

    def test_validate_rejects_bad_indices(self, composite):
        task = make_task(composite)
        task.stages[1], task.stages[2] = task.stages[2], task.stages[1]
        with pytest.raises(ValueError):
            task.validate()

    def test_validate_rejects_inconsistent_virtual_deadlines(self, composite):
        task = make_task(composite)
        task.stages[0].virtual_deadline *= 2
        with pytest.raises(ValueError):
            task.validate()

    def test_validate_rejects_partial_virtual_deadlines(self, composite):
        task = make_task(composite)
        task.stages[1].virtual_deadline = None
        with pytest.raises(ValueError):
            task.validate()


class TestTaskSet:
    def test_iteration_order(self, composite):
        tasks = [make_task(composite) for _ in range(3)]
        for index, task in enumerate(tasks):
            task.name = f"t{index}"
        task_set = TaskSet(tasks)
        assert [t.name for t in task_set] == ["t0", "t1", "t2"]

    def test_duplicate_names_rejected(self, composite):
        with pytest.raises(ValueError):
            TaskSet([make_task(composite), make_task(composite)])

    def test_by_name(self, composite):
        task = make_task(composite)
        assert TaskSet([task]).by_name("task") is task

    def test_by_name_missing(self, composite):
        with pytest.raises(KeyError):
            TaskSet([make_task(composite)]).by_name("ghost")

    def test_total_utilization(self, composite):
        first = make_task(composite)
        second = make_task(composite)
        second.name = "task2"
        task_set = TaskSet([first, second])
        assert task_set.total_utilization() == pytest.approx(0.6)

    def test_total_demand_fps(self, composite):
        task = make_task(composite, period=1 / 30)
        assert TaskSet([task]).total_demand_fps() == pytest.approx(30.0)

"""Admission policies: decisions, registry, and scheduler integration.

The integration tests drive full simulations under bursty MMPP overload
and check the three-way admission semantics end to end: ``job_skip``
stays a deadline miss, ``job_reject`` feeds the rejection rate and never
the DMR, and the queue-depth metrics see exactly the admitted backlog.
"""

import pickle

import pytest

from repro.core.admission import (
    AdmissionDecision,
    AdmissionPolicy,
    AdmitAll,
    BoundedQueue,
    RejectIfBusy,
    SkipIfBusy,
    list_admission_policies,
    parse_spec,
    register_admission,
    resolve_admission,
)
from repro.core.context_pool import ContextPoolConfig
from repro.core.runner import RunConfig, run_simulation
from repro.core.sgprs import SgprsScheduler
from repro.gpu.spec import RTX_2080_TI
from repro.workloads.generator import identical_periodic_tasks


class _Job:
    """Minimal stand-in for JobInstance in pure-policy tests."""

    def __init__(self, finished=False):
        self.finished = finished


@pytest.fixture(scope="module")
def pool():
    return ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)


def overload_run(pool, admission, arrival="mmpp:burst=8,calm=0.5",
                 count=6, seed=0):
    """A short bursty-overload run under the given admission policy."""
    tasks = identical_periodic_tasks(count, nominal_sms=pool.sms_per_context)
    return run_simulation(
        tasks,
        RunConfig(
            pool=pool,
            scheduler=SgprsScheduler,
            duration=1.0,
            warmup=0.2,
            seed=seed,
            arrival=arrival,
            admission=admission,
            record_trace=True,
        ),
    )


# ---------------------------------------------------------------------------
# Pure policy decisions
# ---------------------------------------------------------------------------
class TestPolicies:
    def test_skip_if_busy(self):
        policy = SkipIfBusy()
        assert policy.decide(_Job(), None, 0) is AdmissionDecision.ADMIT
        assert (
            policy.decide(_Job(), _Job(finished=True), 0)
            is AdmissionDecision.ADMIT
        )
        assert (
            policy.decide(_Job(), _Job(finished=False), 1)
            is AdmissionDecision.SKIP
        )

    def test_reject_if_busy(self):
        policy = RejectIfBusy()
        assert policy.decide(_Job(), None, 0) is AdmissionDecision.ADMIT
        assert (
            policy.decide(_Job(), _Job(finished=False), 1)
            is AdmissionDecision.REJECT
        )

    def test_admit_all(self):
        policy = AdmitAll()
        assert (
            policy.decide(_Job(), _Job(finished=False), 99)
            is AdmissionDecision.ADMIT
        )

    def test_bounded_queue(self):
        policy = BoundedQueue(depth=2)
        assert policy.decide(_Job(), None, 0) is AdmissionDecision.ADMIT
        assert policy.decide(_Job(), None, 1) is AdmissionDecision.ADMIT
        assert policy.decide(_Job(), None, 2) is AdmissionDecision.REJECT

    def test_bounded_queue_validates_depth(self):
        with pytest.raises(ValueError, match="depth"):
            BoundedQueue(depth=0)

    @pytest.mark.parametrize(
        "policy",
        [SkipIfBusy(), AdmitAll(), RejectIfBusy(), BoundedQueue(depth=3)],
        ids=lambda p: p.name,
    )
    def test_policies_are_picklable(self, policy):
        clone = pickle.loads(pickle.dumps(policy))
        assert clone.name == policy.name
        assert clone.describe() == policy.describe()


# ---------------------------------------------------------------------------
# Spec strings and the registry
# ---------------------------------------------------------------------------
class TestSpecs:
    def test_parse_spec_coercion(self):
        name, params = parse_spec("queue:depth=4,scale=1.5,mode=x")
        assert name == "queue"
        assert params == {"depth": 4, "scale": 1.5, "mode": "x"}
        assert isinstance(params["depth"], int)
        assert isinstance(params["scale"], float)

    def test_parse_spec_rejects_malformed(self):
        with pytest.raises(ValueError, match="empty name"):
            parse_spec(":depth=4")
        with pytest.raises(ValueError, match="malformed parameter"):
            parse_spec("queue:depth")

    def test_resolve_empty_means_legacy_default(self):
        assert resolve_admission("") is None
        assert resolve_admission(None) is None

    def test_resolve_instances_pass_through(self):
        policy = BoundedQueue(depth=2)
        assert resolve_admission(policy) is policy

    def test_resolve_spec(self):
        policy = resolve_admission("queue:depth=2")
        assert isinstance(policy, BoundedQueue)
        assert policy.depth == 2

    def test_resolve_rejects_unknown_and_bad_params(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            resolve_admission("bogus")
        with pytest.raises(ValueError, match="bad parameters"):
            resolve_admission("queue:nope=1")

    def test_builtins_registered_with_descriptions(self):
        names = [name for name, _ in list_admission_policies()]
        assert names == ["skip", "admit_all", "reject", "queue"]
        assert all(desc for _, desc in list_admission_policies())

    def test_custom_registration(self):
        class AlwaysReject(AdmissionPolicy):
            name = "always_reject_test"

            def decide(self, job, previous, inflight):
                return AdmissionDecision.REJECT

        register_admission("always_reject_test", AlwaysReject, "test-only")
        try:
            assert isinstance(
                resolve_admission("always_reject_test"), AlwaysReject
            )
        finally:
            from repro.core.admission import _ADMISSION_REGISTRY

            del _ADMISSION_REGISTRY["always_reject_test"]


# ---------------------------------------------------------------------------
# Scheduler integration
# ---------------------------------------------------------------------------
class TestSchedulerIntegration:
    def test_default_policy_skips_never_rejects(self, pool):
        result = overload_run(pool, admission="")
        kinds = {record.kind for record in result.trace}
        assert "job_skip" in kinds  # bursty overload forces drops
        assert "job_reject" not in kinds
        assert result.rejected == 0
        assert result.rejection_rate == 0.0

    def test_skip_policy_object_matches_legacy_hook_exactly(self, pool):
        legacy = overload_run(pool, admission="")
        policy = overload_run(pool, admission="skip")
        assert [
            (r.time, r.kind, tuple(sorted(r.fields.items())))
            for r in legacy.trace
        ] == [
            (r.time, r.kind, tuple(sorted(r.fields.items())))
            for r in policy.trace
        ]

    def test_reject_policy_emits_job_reject_and_rate(self, pool):
        result = overload_run(pool, admission="reject")
        rejects = [r for r in result.trace if r.kind == "job_reject"]
        assert rejects
        assert all(r.kind != "job_skip" for r in result.trace)
        assert result.rejected >= len(
            [r for r in rejects if r.time >= 0.2]
        ) > 0
        assert 0.0 < result.rejection_rate < 1.0
        # Rejected jobs are excluded from DMR: with every overload release
        # refused up front, the admitted jobs all finish (eventually) and
        # the miss rate stays far below the rejection rate's complement.
        assert result.dmr < 1.0

    def test_skip_counts_as_miss_reject_does_not(self, pool):
        skip = overload_run(pool, admission="skip")
        reject = overload_run(pool, admission="reject")
        # Same releases, same busy windows: the drop count matches, but
        # skips land in the DMR numerator while rejects leave it.
        assert reject.dmr < skip.dmr
        assert skip.rejection_rate == 0.0
        assert reject.rejection_rate > 0.0

    def test_bounded_queue_caps_per_task_backlog(self, pool):
        shallow = overload_run(pool, admission="queue:depth=1", count=4)
        deep = overload_run(pool, admission="queue:depth=4", count=4)
        assert shallow.max_queue_depth <= 1 * 4  # depth x tasks
        assert deep.max_queue_depth <= 4 * 4
        assert deep.max_queue_depth > shallow.max_queue_depth
        assert deep.rejection_rate < shallow.rejection_rate

    def test_admit_all_policy_matches_ablation_flag(self, pool):
        class BacklogSgprs(SgprsScheduler):
            admit_all_releases = True

        tasks = identical_periodic_tasks(
            6, nominal_sms=pool.sms_per_context
        )
        flag = run_simulation(
            tasks,
            RunConfig(pool=pool, scheduler=BacklogSgprs, duration=0.8,
                      warmup=0.2, arrival="mmpp", record_trace=True),
        )
        policy = run_simulation(
            tasks,
            RunConfig(pool=pool, scheduler=SgprsScheduler, duration=0.8,
                      warmup=0.2, arrival="mmpp", admission="admit_all",
                      record_trace=True),
        )
        assert [
            (r.time, r.kind) for r in flag.trace
        ] == [(r.time, r.kind) for r in policy.trace]

    def test_queue_depth_metrics_observe_admitted_backlog(self, pool):
        closed = overload_run(pool, admission="", arrival="periodic")
        open_ = overload_run(pool, admission="queue:depth=6")
        # Skip-if-busy keeps at most one job per task in flight.
        assert closed.max_queue_depth <= 6
        assert closed.mean_queue_depth > 0.0
        assert open_.mean_queue_depth > 0.0

    def test_goodput_never_exceeds_fps(self, pool):
        result = overload_run(pool, admission="queue:depth=3")
        assert 0.0 < result.goodput <= result.total_fps

    def test_tail_percentiles_present_under_load(self, pool):
        result = overload_run(pool, admission="queue:depth=3")
        assert result.p99_response is not None
        assert result.p999_response is not None
        assert result.p999_response >= result.p99_response > 0.0

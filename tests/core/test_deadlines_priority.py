"""Unit tests for the offline phase: virtual deadlines and priorities."""

import pytest

from repro.core.deadlines import (
    absolute_stage_deadlines,
    apply_virtual_deadlines,
    assign_virtual_deadlines,
)
from repro.core.priority import initial_priority, promote_if_predecessor_missed
from repro.core.profiling import prepare_task
from repro.dnn.models import build_simple_cnn
from repro.gpu.kernel import PriorityLevel


class TestVirtualDeadlines:
    def test_proportional_to_wcet(self):
        slices = assign_virtual_deadlines([1.0, 3.0], 8.0)
        assert slices == pytest.approx([2.0, 6.0])

    def test_sum_is_exact(self):
        wcets = [0.1, 0.22, 0.37, 0.18, 0.05, 0.08]
        slices = assign_virtual_deadlines(wcets, 1 / 30)
        assert sum(slices) == pytest.approx(1 / 30, abs=0.0)

    def test_equal_wcets_equal_slices(self):
        slices = assign_virtual_deadlines([2.0] * 4, 1.0)
        assert slices == pytest.approx([0.25] * 4)

    def test_single_stage_gets_whole_deadline(self):
        assert assign_virtual_deadlines([5.0], 0.5) == pytest.approx([0.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            assign_virtual_deadlines([], 1.0)

    def test_zero_wcet_rejected(self):
        with pytest.raises(ValueError):
            assign_virtual_deadlines([1.0, 0.0], 1.0)

    def test_zero_deadline_rejected(self):
        with pytest.raises(ValueError):
            assign_virtual_deadlines([1.0], 0.0)


class TestAbsoluteDeadlines:
    def make_task(self):
        return prepare_task(
            "t", build_simple_cnn(), period=0.1, num_stages=3, nominal_sms=34.0
        )

    def test_cumulative_layout(self):
        task = self.make_task()
        deadlines = absolute_stage_deadlines(task, release_time=1.0)
        assert len(deadlines) == 3
        assert all(b > a for a, b in zip(deadlines, deadlines[1:]))
        assert deadlines[0] > 1.0

    def test_last_deadline_is_job_deadline(self):
        task = self.make_task()
        deadlines = absolute_stage_deadlines(task, release_time=2.0)
        assert deadlines[-1] == pytest.approx(2.0 + task.relative_deadline)

    def test_requires_offline_phase(self):
        task = self.make_task()
        task.stages[0].virtual_deadline = None
        with pytest.raises(ValueError):
            absolute_stage_deadlines(task, 0.0)

    def test_apply_virtual_deadlines_idempotent(self):
        task = self.make_task()
        before = [s.virtual_deadline for s in task.stages]
        apply_virtual_deadlines(task)
        assert [s.virtual_deadline for s in task.stages] == pytest.approx(before)


class TestTwoLevelPriority:
    def test_last_stage_high(self):
        assert initial_priority(5, 6) is PriorityLevel.HIGH

    def test_earlier_stages_low(self):
        for index in range(5):
            assert initial_priority(index, 6) is PriorityLevel.LOW

    def test_single_stage_task_high(self):
        assert initial_priority(0, 1) is PriorityLevel.HIGH

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            initial_priority(6, 6)
        with pytest.raises(ValueError):
            initial_priority(-1, 6)
        with pytest.raises(ValueError):
            initial_priority(0, 0)


class TestMediumPromotion:
    def test_low_promoted_when_predecessor_missed(self):
        result = promote_if_predecessor_missed(PriorityLevel.LOW, True)
        assert result is PriorityLevel.MEDIUM

    def test_low_stays_low_otherwise(self):
        result = promote_if_predecessor_missed(PriorityLevel.LOW, False)
        assert result is PriorityLevel.LOW

    def test_high_never_demoted_or_changed(self):
        assert (
            promote_if_predecessor_missed(PriorityLevel.HIGH, True)
            is PriorityLevel.HIGH
        )

    def test_medium_stays_medium(self):
        assert (
            promote_if_predecessor_missed(PriorityLevel.MEDIUM, True)
            is PriorityLevel.MEDIUM
        )

"""Unit tests for offline WCET profiling."""

import pytest

from repro.core.profiling import (
    WCET_MARGIN,
    measure_stage_wcet_simulated,
    prepare_task,
    profile_stage_wcets,
)
from repro.dnn.models import build_simple_cnn
from repro.dnn.resnet import build_resnet18
from repro.speedup.composite import composite_for_ops


@pytest.fixture(scope="module")
def cnn_composite():
    graph = build_simple_cnn()
    return composite_for_ops("net", graph.topological_order())


class TestProfileWcets:
    def test_margin_applied(self, cnn_composite):
        wcets = profile_stage_wcets([cnn_composite], sms=34.0)
        assert wcets[0] == pytest.approx(
            WCET_MARGIN * cnn_composite.time_at(34.0)
        )

    def test_smaller_partition_larger_wcet(self, cnn_composite):
        small = profile_stage_wcets([cnn_composite], sms=8.0)[0]
        large = profile_stage_wcets([cnn_composite], sms=51.0)[0]
        assert small > large

    def test_margin_below_one_rejected(self, cnn_composite):
        with pytest.raises(ValueError):
            profile_stage_wcets([cnn_composite], sms=34.0, margin=0.9)

    def test_zero_sms_rejected(self, cnn_composite):
        with pytest.raises(ValueError):
            profile_stage_wcets([cnn_composite], sms=0.0)


class TestAnalyticVsSimulated:
    """The analytic WCET must match what the execution engine produces."""

    def test_isolated_stage_matches(self, cnn_composite):
        simulated = measure_stage_wcet_simulated(cnn_composite, sms=34.0)
        analytic = cnn_composite.time_at(34.0)
        assert simulated == pytest.approx(analytic, rel=1e-6)

    def test_matches_at_multiple_partition_sizes(self, cnn_composite):
        for sms in (8.0, 22.7, 51.0):
            simulated = measure_stage_wcet_simulated(cnn_composite, sms=sms)
            assert simulated == pytest.approx(
                cnn_composite.time_at(sms), rel=1e-6
            )

    def test_resnet_stage_matches(self):
        graph = build_resnet18()
        order = graph.topological_order()
        composite = composite_for_ops("slice", order[: len(order) // 6])
        simulated = measure_stage_wcet_simulated(composite, sms=34.0)
        assert simulated == pytest.approx(composite.time_at(34.0), rel=1e-6)


class TestPrepareTask:
    def test_resnet_six_stages(self):
        task = prepare_task(
            "cam", build_resnet18(), period=1 / 30, num_stages=6,
            nominal_sms=34.0,
        )
        task.validate()
        assert task.num_stages == 6
        assert task.fps == pytest.approx(30.0)

    def test_default_deadline_is_period(self):
        task = prepare_task(
            "t", build_simple_cnn(), period=0.05, num_stages=2, nominal_sms=34.0
        )
        assert task.relative_deadline == pytest.approx(0.05)

    def test_explicit_deadline(self):
        task = prepare_task(
            "t", build_simple_cnn(), period=0.05, num_stages=2,
            nominal_sms=34.0, relative_deadline=0.04,
        )
        assert task.relative_deadline == pytest.approx(0.04)

    def test_virtual_deadlines_sum_to_deadline(self):
        task = prepare_task(
            "t", build_resnet18(), period=1 / 30, num_stages=6, nominal_sms=34.0
        )
        total = sum(s.virtual_deadline for s in task.stages)
        assert total == pytest.approx(task.relative_deadline)

    def test_stage_wcets_cover_whole_network(self):
        task = prepare_task(
            "t", build_resnet18(), period=1 / 30, num_stages=6, nominal_sms=34.0
        )
        whole = composite_for_ops(
            "net", build_resnet18().topological_order()
        ).time_at(34.0)
        assert task.total_wcet == pytest.approx(WCET_MARGIN * whole, rel=1e-6)

    def test_width_demands_reasonable(self):
        task = prepare_task(
            "t", build_resnet18(), period=1 / 30, num_stages=6, nominal_sms=34.0
        )
        for stage in task.stages:
            assert 1.0 <= stage.width_demand <= 68.0

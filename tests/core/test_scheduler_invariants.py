"""Property/invariant tests for :class:`SchedulerBase`.

Three contracts the whole evaluation silently relies on:

* **Job conservation** — every released job is accounted for: it either
  completed, was skipped at the source (``job_skip``), was shed
  (``job_shed``), or is still in flight at the horizon (at most one per
  task under the default blocking-client admission).
* **Trace monotonicity** — a run's trace is ordered by engine time and
  stays within the simulated horizon.
* **Seed determinism** — for a fixed seed the jittered simulation is a
  pure function: two runs produce bit-identical metrics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context_pool import ContextPoolConfig
from repro.core.runner import RunConfig, run_simulation
from repro.gpu.spec import RTX_2080_TI
from repro.workloads.generator import identical_periodic_tasks


def run_traced(
    num_tasks,
    num_contexts=1,
    oversubscription=1.0,
    duration=1.0,
    work_jitter_cv=0.0,
    seed=0,
):
    pool = ContextPoolConfig.from_oversubscription(
        num_contexts, oversubscription, RTX_2080_TI
    )
    tasks = identical_periodic_tasks(
        num_tasks, nominal_sms=pool.sms_per_context
    )
    return run_simulation(
        tasks,
        RunConfig(
            pool=pool,
            duration=duration,
            warmup=0.2,
            record_trace=True,
            work_jitter_cv=work_jitter_cv,
            seed=seed,
        ),
    )


class TestJobConservation:
    @given(
        num_tasks=st.integers(min_value=1, max_value=32),
        seed=st.integers(min_value=0, max_value=2**31),
        jitter=st.sampled_from([0.0, 0.1, 0.3]),
    )
    @settings(max_examples=6, deadline=None)
    def test_released_jobs_are_all_accounted_for(
        self, num_tasks, seed, jitter
    ):
        result = run_traced(
            num_tasks, work_jitter_cv=jitter, seed=seed, duration=0.8
        )
        trace = result.trace
        kinds = trace.kinds()
        released = kinds.get("job_release", 0)
        completed = kinds.get("job_complete", 0)
        skipped = kinds.get("job_skip", 0)
        shed = kinds.get("job_shed", 0)
        in_flight = released - completed - skipped - shed
        # under blocking admission at most one job per task is in flight
        assert 0 <= in_flight <= num_tasks
        # the metrics collector agrees with the trace
        assert result.released == released
        assert result.completed == completed

    @given(
        num_tasks=st.integers(min_value=1, max_value=32),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=5, deadline=None)
    def test_per_task_conservation(self, num_tasks, seed):
        result = run_traced(num_tasks, seed=seed, duration=0.8)
        trace = result.trace
        for task_index in range(num_tasks):
            name = f"cam{task_index}"
            by_task = trace.where(lambda r, n=name: r.get("task") == n)
            released = sum(1 for r in by_task if r.kind == "job_release")
            finished = sum(
                1
                for r in by_task
                if r.kind in ("job_complete", "job_skip", "job_shed")
            )
            # at most one job of each task may still be in flight
            assert finished <= released <= finished + 1, name

    def test_unfinished_released_jobs_count_as_misses(self):
        # deep overload: skipped jobs must surface as deadline misses
        result = run_traced(30, duration=1.0)
        skips = result.trace.kinds().get("job_skip", 0)
        assert skips > 0
        assert result.dmr > 0.0


class TestTraceMonotonicity:
    @given(
        num_tasks=st.integers(min_value=1, max_value=24),
        jitter=st.sampled_from([0.0, 0.2]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=6, deadline=None)
    def test_trace_times_nondecreasing(self, num_tasks, jitter, seed):
        duration = 0.8
        result = run_traced(
            num_tasks, work_jitter_cv=jitter, seed=seed, duration=duration
        )
        times = [record.time for record in result.trace]
        assert times, "a run must emit trace records"
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert times[0] >= 0.0
        # kernels in flight at the horizon may finish (slightly) past it,
        # but releases never happen at or beyond the horizon
        release_times = [
            r.time for r in result.trace.of_kind("job_release")
        ]
        assert all(t < duration for t in release_times)


class TestSeedDeterminism:
    def metrics_tuple(self, result):
        return (
            result.total_fps,
            result.dmr,
            result.utilization,
            result.mean_pressure,
            result.released,
            result.completed,
            tuple(sorted(result.per_task_fps.items())),
        )

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=3, deadline=None)
    def test_fixed_seed_is_bit_identical(self, seed):
        first = run_traced(
            6, work_jitter_cv=0.25, seed=seed, duration=0.8
        )
        second = run_traced(
            6, work_jitter_cv=0.25, seed=seed, duration=0.8
        )
        assert self.metrics_tuple(first) == self.metrics_tuple(second)
        # the traces agree event for event, not just in aggregate
        assert [(r.time, r.kind) for r in first.trace] == [
            (r.time, r.kind) for r in second.trace
        ]

    def test_different_seeds_perturb_the_jittered_run(self):
        runs = {
            self.metrics_tuple(
                run_traced(6, work_jitter_cv=0.25, seed=seed, duration=0.8)
            )
            for seed in range(4)
        }
        assert len(runs) > 1, "jitter seeds should change the trajectory"

class TestSheddingWorkConservation:
    """``abort_job`` (the shedding path) and the device's work accounting.

    Shedding a job mid-flight must neither lose the work its kernels
    already performed nor conjure work they never did: ``total_work_done``
    stays within the total work submitted to the device, and busy time
    within the elapsed span.
    """

    def _run_shedding(self, num_tasks=32, duration=1.0):
        from repro.core.context_pool import build_contexts
        from repro.core.sgprs import SgprsScheduler
        from repro.gpu.device import GpuDevice
        from repro.sim.engine import SimulationEngine
        from repro.sim.metrics import MetricsCollector
        from repro.sim.trace import TraceRecorder

        class SheddingSgprs(SgprsScheduler):
            """Admit every release, shed jobs still alive at half-deadline
            (an aggressive policy that guarantees mid-flight aborts under
            overload)."""

            name = "sgprs_shedding"
            admit_all_releases = True

            def _release_job(self, task):
                super()._release_job(task)
                job = self._latest_job.get(task.name)
                if job is not None and not job.finished:
                    self.engine.schedule_at(
                        job.release_time + 0.5 * task.relative_deadline,
                        lambda j=job: self.abort_job(j),
                        tag=f"shed:{task.name}/j{job.index}",
                    )

        pool = ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)
        tasks = identical_periodic_tasks(
            num_tasks, nominal_sms=pool.sms_per_context
        )
        engine = SimulationEngine()
        contexts = build_contexts(pool, RTX_2080_TI)
        trace = TraceRecorder()
        device = GpuDevice(engine, RTX_2080_TI, contexts, trace=trace)
        submitted = []
        original_submit = device.submit

        def tracking_submit(kernel, context):
            submitted.append(kernel.work_total)
            original_submit(kernel, context)

        device.submit = tracking_submit
        scheduler = SheddingSgprs(
            engine,
            device,
            tasks,
            MetricsCollector(warmup=0.0),
            trace=trace,
            horizon=duration,
        )
        scheduler.start()
        engine.run_until(duration)
        return engine, device, trace, sum(submitted)

    def test_shed_jobs_never_overcount_work(self):
        engine, device, trace, submitted_work = self._run_shedding()
        assert trace.kinds().get("job_shed", 0) > 0, (
            "scenario must actually shed jobs to exercise the abort path"
        )
        assert 0.0 < device.total_work_done <= submitted_work + 1e-9
        assert device.busy_time <= engine.now + 1e-12
        assert 0.0 < device.utilization() <= 1.0

    def test_shed_work_is_not_lost_from_the_integral(self):
        # Sharp pin for the integrate-before-detach abort fix: a single
        # job, shed mid-first-stage with NO intervening change point.
        # Without the fix the abort detaches the kernel before its only
        # progress segment is integrated, so total_work_done is exactly 0.
        from repro.core.context_pool import build_contexts
        from repro.core.sgprs import SgprsScheduler
        from repro.gpu.device import GpuDevice
        from repro.sim.engine import SimulationEngine
        from repro.sim.metrics import MetricsCollector
        from repro.sim.trace import TraceRecorder

        # well inside the first stage (it completes at ~0.52 ms on the
        # full device), so the abort is the only change point after release
        shed_at = 0.0003
        pool = ContextPoolConfig.from_oversubscription(1, 1.0, RTX_2080_TI)
        tasks = identical_periodic_tasks(1, nominal_sms=pool.sms_per_context)
        engine = SimulationEngine()
        trace = TraceRecorder()
        device = GpuDevice(
            engine, RTX_2080_TI, build_contexts(pool, RTX_2080_TI),
            trace=trace,
        )
        scheduler = SgprsScheduler(
            engine, device, tasks, MetricsCollector(warmup=0.0),
            trace=trace, horizon=2 * shed_at,
        )
        scheduler.start()

        def shed_the_job():
            (job,) = scheduler._latest_job.values()
            scheduler.abort_job(job)

        engine.schedule_at(shed_at, shed_the_job, tag="shed")
        engine.run_until(2 * shed_at)
        kinds = trace.kinds()
        assert kinds.get("job_shed") == 1
        # precondition for sharpness: the first stage was still running,
        # so the abort was the only change point after the release
        assert kinds.get("kernel_done", 0) == 0
        assert device.busy_time == pytest.approx(shed_at)
        # the shed kernel's partial progress (rate * shed_at) is integrated;
        # without the fix this is exactly 0.0
        assert device.total_work_done > 0.0


class TestInflightAccounting:
    """The admit/depart ledger: non-negative always, loud when forged.

    ``_job_departed`` used to compute ``self._inflight.get(name, 1) - 1``,
    silently inventing a phantom admission for a missing key — drift in
    the ledger produced negative totals instead of an error.
    """

    def _build(self, num_tasks, duration, admission=None, shedding=False):
        from repro.core.context_pool import build_contexts
        from repro.core.sgprs import SgprsScheduler
        from repro.gpu.device import GpuDevice
        from repro.sim.engine import SimulationEngine
        from repro.sim.metrics import MetricsCollector
        from repro.sim.trace import TraceRecorder

        base = SgprsScheduler
        if shedding:

            class SheddingSgprs(SgprsScheduler):
                name = "sgprs_shedding"

                def _release_job(self, task):
                    super()._release_job(task)
                    job = self._latest_job.get(task.name)
                    # Shed every third job mid-flight; the rest run long
                    # enough that overload also produces source skips.
                    if (
                        job is not None
                        and not job.finished
                        and job.index % 3 == 0
                    ):
                        self.engine.schedule_at(
                            job.release_time + 0.5 * task.relative_deadline,
                            lambda j=job: self.abort_job(j),
                            tag=f"shed:{task.name}/j{job.index}",
                        )

            base = SheddingSgprs

        pool = ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)
        tasks = identical_periodic_tasks(
            num_tasks, nominal_sms=pool.sms_per_context
        )
        engine = SimulationEngine()
        trace = TraceRecorder()
        device = GpuDevice(
            engine, RTX_2080_TI, build_contexts(pool, RTX_2080_TI),
            trace=trace,
        )
        metrics = MetricsCollector(warmup=0.0)
        depths = []
        original = metrics.record_queue_depth

        def sampling_record(now, depth):
            depths.append(depth)
            original(now, depth)

        metrics.record_queue_depth = sampling_record
        scheduler = base(
            engine, device, tasks, metrics,
            trace=trace, horizon=duration, admission=admission,
        )
        return engine, scheduler, trace, depths

    def _check_ledger(self, scheduler, depths):
        assert depths, "the run must exercise the in-flight ledger"
        assert min(depths) >= 0
        assert all(count >= 0 for count in scheduler._inflight.values())
        assert scheduler._inflight_total == sum(
            scheduler._inflight.values()
        )

    def test_never_negative_under_overload_skips_and_sheds(self):
        engine, scheduler, trace, depths = self._build(
            num_tasks=72, duration=1.0, shedding=True
        )
        scheduler.start()
        engine.run_until(1.0)
        kinds = trace.kinds()
        assert kinds.get("job_skip", 0) > 0
        assert kinds.get("job_shed", 0) > 0
        self._check_ledger(scheduler, depths)

    def test_never_negative_under_admission_rejects(self):
        from repro.core.admission import resolve_admission

        engine, scheduler, trace, depths = self._build(
            num_tasks=72, duration=1.0,
            admission=resolve_admission("queue:depth=1"),
        )
        scheduler.start()
        engine.run_until(1.0)
        assert trace.kinds().get("job_reject", 0) > 0
        self._check_ledger(scheduler, depths)

    def test_forged_departure_fails_loudly(self):
        engine, scheduler, trace, depths = self._build(
            num_tasks=1, duration=0.1
        )
        scheduler.start()
        engine.run_until(0.1)
        job = next(iter(scheduler._latest_job.values()))
        assert job.admitted
        # Forge a second departure of the same job with the ledger empty:
        # the old code silently invented a count of 1 and drove the
        # per-task entry to 0 and the total negative.
        job._departed = False
        scheduler._inflight[job.task.name] = 0
        scheduler._inflight_total = 0
        with pytest.raises(RuntimeError, match="accounting drift"):
            scheduler._job_departed(job)

"""Property/invariant tests for :class:`SchedulerBase`.

Three contracts the whole evaluation silently relies on:

* **Job conservation** — every released job is accounted for: it either
  completed, was skipped at the source (``job_skip``), was shed
  (``job_shed``), or is still in flight at the horizon (at most one per
  task under the default blocking-client admission).
* **Trace monotonicity** — a run's trace is ordered by engine time and
  stays within the simulated horizon.
* **Seed determinism** — for a fixed seed the jittered simulation is a
  pure function: two runs produce bit-identical metrics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context_pool import ContextPoolConfig
from repro.core.runner import RunConfig, run_simulation
from repro.gpu.spec import RTX_2080_TI
from repro.workloads.generator import identical_periodic_tasks


def run_traced(
    num_tasks,
    num_contexts=1,
    oversubscription=1.0,
    duration=1.0,
    work_jitter_cv=0.0,
    seed=0,
):
    pool = ContextPoolConfig.from_oversubscription(
        num_contexts, oversubscription, RTX_2080_TI
    )
    tasks = identical_periodic_tasks(
        num_tasks, nominal_sms=pool.sms_per_context
    )
    return run_simulation(
        tasks,
        RunConfig(
            pool=pool,
            duration=duration,
            warmup=0.2,
            record_trace=True,
            work_jitter_cv=work_jitter_cv,
            seed=seed,
        ),
    )


class TestJobConservation:
    @given(
        num_tasks=st.integers(min_value=1, max_value=32),
        seed=st.integers(min_value=0, max_value=2**31),
        jitter=st.sampled_from([0.0, 0.1, 0.3]),
    )
    @settings(max_examples=6, deadline=None)
    def test_released_jobs_are_all_accounted_for(
        self, num_tasks, seed, jitter
    ):
        result = run_traced(
            num_tasks, work_jitter_cv=jitter, seed=seed, duration=0.8
        )
        trace = result.trace
        kinds = trace.kinds()
        released = kinds.get("job_release", 0)
        completed = kinds.get("job_complete", 0)
        skipped = kinds.get("job_skip", 0)
        shed = kinds.get("job_shed", 0)
        in_flight = released - completed - skipped - shed
        # under blocking admission at most one job per task is in flight
        assert 0 <= in_flight <= num_tasks
        # the metrics collector agrees with the trace
        assert result.released == released
        assert result.completed == completed

    @given(
        num_tasks=st.integers(min_value=1, max_value=32),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=5, deadline=None)
    def test_per_task_conservation(self, num_tasks, seed):
        result = run_traced(num_tasks, seed=seed, duration=0.8)
        trace = result.trace
        for task_index in range(num_tasks):
            name = f"cam{task_index}"
            by_task = trace.where(lambda r, n=name: r.get("task") == n)
            released = sum(1 for r in by_task if r.kind == "job_release")
            finished = sum(
                1
                for r in by_task
                if r.kind in ("job_complete", "job_skip", "job_shed")
            )
            # at most one job of each task may still be in flight
            assert finished <= released <= finished + 1, name

    def test_unfinished_released_jobs_count_as_misses(self):
        # deep overload: skipped jobs must surface as deadline misses
        result = run_traced(30, duration=1.0)
        skips = result.trace.kinds().get("job_skip", 0)
        assert skips > 0
        assert result.dmr > 0.0


class TestTraceMonotonicity:
    @given(
        num_tasks=st.integers(min_value=1, max_value=24),
        jitter=st.sampled_from([0.0, 0.2]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=6, deadline=None)
    def test_trace_times_nondecreasing(self, num_tasks, jitter, seed):
        duration = 0.8
        result = run_traced(
            num_tasks, work_jitter_cv=jitter, seed=seed, duration=duration
        )
        times = [record.time for record in result.trace]
        assert times, "a run must emit trace records"
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert times[0] >= 0.0
        # kernels in flight at the horizon may finish (slightly) past it,
        # but releases never happen at or beyond the horizon
        release_times = [
            r.time for r in result.trace.of_kind("job_release")
        ]
        assert all(t < duration for t in release_times)


class TestSeedDeterminism:
    def metrics_tuple(self, result):
        return (
            result.total_fps,
            result.dmr,
            result.utilization,
            result.mean_pressure,
            result.released,
            result.completed,
            tuple(sorted(result.per_task_fps.items())),
        )

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=3, deadline=None)
    def test_fixed_seed_is_bit_identical(self, seed):
        first = run_traced(
            6, work_jitter_cv=0.25, seed=seed, duration=0.8
        )
        second = run_traced(
            6, work_jitter_cv=0.25, seed=seed, duration=0.8
        )
        assert self.metrics_tuple(first) == self.metrics_tuple(second)
        # the traces agree event for event, not just in aggregate
        assert [(r.time, r.kind) for r in first.trace] == [
            (r.time, r.kind) for r in second.trace
        ]

    def test_different_seeds_perturb_the_jittered_run(self):
        runs = {
            self.metrics_tuple(
                run_traced(6, work_jitter_cv=0.25, seed=seed, duration=0.8)
            )
            for seed in range(4)
        }
        assert len(runs) > 1, "jitter seeds should change the trajectory"
"""Behavioural tests for SGPRS and the naive baseline."""

import pytest

from repro.core.context_pool import ContextPoolConfig, build_contexts
from repro.core.naive import NaiveScheduler, build_naive_contexts
from repro.core.profiling import prepare_task
from repro.core.runner import RunConfig, run_simulation
from repro.core.sgprs import SgprsScheduler
from repro.core.task import TaskSet
from repro.dnn.models import build_simple_cnn
from repro.dnn.resnet import build_resnet18
from repro.gpu.allocator import AllocationParams
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import PriorityLevel
from repro.gpu.mps import SpatialReconfig
from repro.gpu.spec import RTX_2080_TI
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsCollector
from repro.sim.trace import TraceRecorder
from repro.workloads.generator import identical_periodic_tasks


def build_sgprs(tasks, num_contexts=2, oversubscription=1.0, horizon=1.0,
                trace=None, jitter=0.0):
    engine = SimulationEngine()
    pool = ContextPoolConfig.from_oversubscription(
        num_contexts, oversubscription, RTX_2080_TI
    )
    contexts = build_contexts(pool, RTX_2080_TI)
    device = GpuDevice(engine, RTX_2080_TI, contexts, AllocationParams(),
                       trace=trace)
    metrics = MetricsCollector()
    scheduler = SgprsScheduler(
        engine, device, tasks, metrics, trace=trace, horizon=horizon,
        work_jitter_cv=jitter,
    )
    return engine, device, scheduler, metrics


def small_tasks(count, num_stages=3, period=0.05):
    tasks = []
    for index in range(count):
        task = prepare_task(
            f"t{index}", build_simple_cnn(), period=period,
            num_stages=num_stages, nominal_sms=34.0,
            release_offset=index * period / max(count, 1),
        )
        tasks.append(task)
    return TaskSet(tasks)


class TestJobLifecycle:
    def test_every_stage_runs_exactly_once(self):
        trace = TraceRecorder()
        tasks = small_tasks(1, num_stages=3, period=0.5)
        engine, device, scheduler, metrics = build_sgprs(
            tasks, horizon=0.4, trace=trace
        )
        scheduler.start()
        engine.run()
        assert metrics.completed_count() == 1
        assert len(trace.of_kind("stage_release")) == 3

    def test_stages_run_in_order(self):
        trace = TraceRecorder()
        tasks = small_tasks(1, num_stages=4, period=0.5)
        engine, device, scheduler, metrics = build_sgprs(
            tasks, horizon=0.4, trace=trace
        )
        scheduler.start()
        engine.run()
        stages = [r.get("stage") for r in trace.of_kind("stage_release")]
        assert stages == [f"t0/j0/s{i}" for i in range(4)]

    def test_periodic_releases(self):
        tasks = small_tasks(1, period=0.1)
        engine, device, scheduler, metrics = build_sgprs(tasks, horizon=0.55)
        scheduler.start()
        engine.run()
        assert metrics.released_count() == 6  # t = 0, .1, .2, .3, .4, .5

    def test_fast_task_meets_all_deadlines(self):
        tasks = small_tasks(2, period=0.05)
        engine, device, scheduler, metrics = build_sgprs(tasks, horizon=0.5)
        scheduler.start()
        engine.run()
        assert metrics.deadline_miss_rate(engine.now) == 0.0

    def test_job_completion_recorded_in_metrics(self):
        tasks = small_tasks(1, period=0.5)
        engine, device, scheduler, metrics = build_sgprs(tasks, horizon=0.4)
        scheduler.start()
        engine.run()
        job = metrics.jobs[0]
        assert job.finish_time is not None
        assert job.finish_time > job.release_time


class TestPriorities:
    def test_last_stage_released_high(self):
        trace = TraceRecorder()
        tasks = small_tasks(1, num_stages=3, period=0.5)
        engine, device, scheduler, metrics = build_sgprs(
            tasks, horizon=0.4, trace=trace
        )
        scheduler.start()
        engine.run()
        releases = trace.of_kind("stage_release")
        assert releases[0].get("priority") == "LOW"
        assert releases[1].get("priority") == "LOW"
        assert releases[2].get("priority") == "HIGH"

    def test_medium_promotion_on_virtual_deadline_miss(self):
        """Squeeze the deadline so early stages overrun their virtual
        deadlines; successors must then be released MEDIUM."""
        trace = TraceRecorder()
        task = prepare_task(
            "tight", build_resnet18(), period=0.5, num_stages=4,
            nominal_sms=34.0, relative_deadline=0.004,
        )
        tasks = TaskSet([task])
        engine, device, scheduler, metrics = build_sgprs(
            tasks, horizon=0.4, trace=trace
        )
        scheduler.start()
        engine.run()
        priorities = [r.get("priority") for r in trace.of_kind("stage_release")]
        assert "MEDIUM" in priorities
        # the final stage stays HIGH even when the job is late
        assert priorities[3] == "HIGH"


class TestContextAssignment:
    def test_empty_queue_context_preferred(self):
        """With two idle contexts, consecutive released stages spread out."""
        trace = TraceRecorder()
        tasks = small_tasks(2, num_stages=1, period=0.5)
        # release both at t=0
        for task in tasks:
            task.release_offset = 0.0
        engine, device, scheduler, metrics = build_sgprs(
            tasks, horizon=0.1, trace=trace
        )
        scheduler.start()
        engine.run()
        contexts = {r.get("context") for r in trace.of_kind("stage_release")}
        assert contexts == {0, 1}

    def test_all_stages_get_a_context(self):
        trace = TraceRecorder()
        tasks = small_tasks(4, num_stages=3, period=0.1)
        engine, device, scheduler, metrics = build_sgprs(
            tasks, horizon=0.3, trace=trace
        )
        scheduler.start()
        engine.run()
        for record in trace.of_kind("stage_release"):
            assert record.get("context") in (0, 1)

    def test_concurrency_capped_at_four_per_context(self):
        trace = TraceRecorder()
        tasks = small_tasks(12, num_stages=2, period=0.05)
        engine, device, scheduler, metrics = build_sgprs(
            tasks, num_contexts=2, horizon=0.2, trace=trace
        )
        scheduler.start()
        # replay the trace: count residency via start/done events
        engine.run()
        resident = {0: 0, 1: 0}
        for record in trace:
            if record.kind == "kernel_start":
                resident[record.get("context")] += 1
                assert resident[record.get("context")] <= 4
            elif record.kind == "kernel_done":
                resident[record.get("context")] -= 1


class TestAdmission:
    def test_release_skipped_while_previous_in_flight(self):
        trace = TraceRecorder()
        # one task whose job takes much longer than its period
        task = prepare_task(
            "slow", build_resnet18(), period=0.002, num_stages=2,
            nominal_sms=8.0,
        )
        tasks = TaskSet([task])
        engine, device, scheduler, metrics = build_sgprs(
            tasks, num_contexts=1, horizon=0.02, trace=trace
        )
        scheduler.start()
        engine.run()
        skips = trace.of_kind("job_skip")
        assert skips, "overloaded task should skip releases"
        # skipped jobs count as released and missed
        assert metrics.released_count() > metrics.completed_count()
        assert metrics.deadline_miss_rate(engine.now) > 0.0

    def test_no_skip_when_system_keeps_up(self):
        trace = TraceRecorder()
        tasks = small_tasks(1, period=0.1)
        engine, device, scheduler, metrics = build_sgprs(
            tasks, horizon=0.5, trace=trace
        )
        scheduler.start()
        engine.run()
        assert trace.of_kind("job_skip") == []


class TestNaive:
    def make_naive(self, num_tasks, num_contexts=2, horizon=0.5, period=0.05):
        engine = SimulationEngine()
        pool = ContextPoolConfig.from_oversubscription(
            num_contexts, 1.0, RTX_2080_TI
        )
        contexts = build_naive_contexts(pool, RTX_2080_TI)
        device = GpuDevice(engine, RTX_2080_TI, contexts, AllocationParams())
        metrics = MetricsCollector()
        tasks = []
        for index in range(num_tasks):
            tasks.append(
                prepare_task(
                    f"t{index}", build_simple_cnn(), period=period,
                    num_stages=1, nominal_sms=pool.sms_per_context,
                    release_offset=index * period / num_tasks,
                )
            )
        scheduler = NaiveScheduler(
            engine, device, TaskSet(tasks), metrics, horizon=horizon
        )
        return engine, device, scheduler, metrics

    def test_round_robin_pinning(self):
        engine, device, scheduler, metrics = self.make_naive(4)
        assert scheduler.pinned_context("t0").context_id == 0
        assert scheduler.pinned_context("t1").context_id == 1
        assert scheduler.pinned_context("t2").context_id == 0
        assert scheduler.pinned_context("t3").context_id == 1

    def test_single_stream_serialises_jobs(self):
        engine, device, scheduler, metrics = self.make_naive(2, num_contexts=1)
        scheduler.start()
        engine.run()
        # never more than one resident kernel in a naive context
        assert len(device.contexts[0].streams) == 1

    def test_uses_spatial_reconfig_by_default(self):
        engine, device, scheduler, metrics = self.make_naive(2)
        assert isinstance(scheduler.reconfig, SpatialReconfig)

    def test_meets_deadlines_under_light_load(self):
        engine, device, scheduler, metrics = self.make_naive(2, horizon=0.4)
        scheduler.start()
        engine.run()
        assert metrics.deadline_miss_rate(engine.now) == 0.0
        assert metrics.completed_count() > 0

    def test_task_switch_pays_reconfiguration(self):
        """Two tasks pinned to one context alternate, paying setup on every
        job; a single pinned task pays only once.  Response times show it."""
        engine_a, _, scheduler_a, metrics_a = self.make_naive(
            2, num_contexts=1, horizon=0.5, period=0.01
        )
        scheduler_a.start()
        engine_a.run()
        engine_b, _, scheduler_b, metrics_b = self.make_naive(
            1, num_contexts=1, horizon=0.5, period=0.005
        )
        scheduler_b.start()
        engine_b.run()
        # same total demand (200 jobs/s), but alternation adds a
        # reconfiguration latency to (almost) every job
        mean_a = sum(metrics_a.response_times()) / len(metrics_a.response_times())
        mean_b = sum(metrics_b.response_times()) / len(metrics_b.response_times())
        assert mean_a > mean_b + 5e-5


class TestDeterminism:
    def test_identical_runs_identical_metrics(self):
        def run_once():
            pool = ContextPoolConfig.from_oversubscription(2, 1.5, RTX_2080_TI)
            tasks = identical_periodic_tasks(6, nominal_sms=pool.sms_per_context)
            result = run_simulation(
                tasks,
                RunConfig(pool=pool, duration=1.0, warmup=0.2,
                          work_jitter_cv=0.1, seed=123),
            )
            return result.total_fps, result.dmr, result.completed
        assert run_once() == run_once()

    def test_seed_changes_jittered_run(self):
        def run_once(seed):
            pool = ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)
            tasks = identical_periodic_tasks(26, nominal_sms=pool.sms_per_context)
            result = run_simulation(
                tasks,
                RunConfig(pool=pool, duration=1.0, warmup=0.2,
                          work_jitter_cv=0.2, seed=seed),
            )
            return result.metrics.response_times()
        assert run_once(1) != run_once(2)


class TestValidation:
    def test_invalid_jitter_rejected(self):
        tasks = small_tasks(1)
        with pytest.raises(ValueError):
            build_sgprs(tasks, jitter=1.5)

"""Unit tests for speedup curve primitives."""

import pytest

from repro.speedup.model import (
    SaturatingCurve,
    TabulatedCurve,
    WidthLimitedCurve,
    sigma_for_target,
)


class TestSigmaForTarget:
    def test_exact_fit(self):
        sigma = sigma_for_target(32.0, 68)
        curve = SaturatingCurve(sigma)
        assert curve.speedup(68) == pytest.approx(32.0)

    def test_linear_speedup_gives_zero_sigma(self):
        assert sigma_for_target(68.0, 68) == pytest.approx(0.0)

    def test_no_speedup_gives_sigma_one(self):
        assert sigma_for_target(1.0, 68) == pytest.approx(1.0)

    def test_target_above_sms_rejected(self):
        with pytest.raises(ValueError):
            sigma_for_target(100.0, 68)

    def test_target_below_one_rejected(self):
        with pytest.raises(ValueError):
            sigma_for_target(0.5, 68)

    def test_at_sms_of_one_rejected(self):
        with pytest.raises(ValueError):
            sigma_for_target(1.0, 1)


class TestSaturatingCurve:
    def test_identity_at_one_sm(self):
        assert SaturatingCurve(0.1).speedup(1.0) == pytest.approx(1.0)

    def test_monotone_increasing(self):
        curve = SaturatingCurve(0.05)
        values = [curve.speedup(s) for s in range(1, 69)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_concave(self):
        curve = SaturatingCurve(0.05)
        gains = [
            curve.speedup(s + 1) - curve.speedup(s) for s in range(1, 68)
        ]
        assert all(b < a + 1e-12 for a, b in zip(gains, gains[1:]))

    def test_asymptote(self):
        assert SaturatingCurve(0.1).asymptote == pytest.approx(10.0)
        assert SaturatingCurve(0.0).asymptote == float("inf")

    def test_fractional_share_degrades_linearly(self):
        assert SaturatingCurve(0.1).speedup(0.5) == pytest.approx(0.5)

    def test_zero_share_is_zero(self):
        assert SaturatingCurve(0.1).speedup(0.0) == 0.0

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            SaturatingCurve(-0.1)
        with pytest.raises(ValueError):
            SaturatingCurve(1.5)

    def test_sms_for_fraction_inverts_curve(self):
        curve = SaturatingCurve(sigma_for_target(20.0, 68))
        sms = curve.sms_for_fraction(0.9, 68)
        assert curve.speedup(sms) == pytest.approx(0.9 * 20.0, rel=1e-6)
        assert sms < 68

    def test_sms_for_fraction_full(self):
        curve = SaturatingCurve(0.05)
        assert curve.sms_for_fraction(1.0, 68) == pytest.approx(68.0)

    def test_sms_for_fraction_validates(self):
        with pytest.raises(ValueError):
            SaturatingCurve(0.05).sms_for_fraction(0.0, 68)


class TestWidthLimitedCurve:
    def test_below_width_matches_inner(self):
        inner = SaturatingCurve(0.05)
        limited = WidthLimitedCurve(inner, width=16.0)
        assert limited.speedup(8.0) == pytest.approx(inner.speedup(8.0))

    def test_above_width_clamps(self):
        inner = SaturatingCurve(0.05)
        limited = WidthLimitedCurve(inner, width=16.0)
        assert limited.speedup(64.0) == pytest.approx(inner.speedup(16.0))

    def test_width_below_one_rejected(self):
        with pytest.raises(ValueError):
            WidthLimitedCurve(SaturatingCurve(0.05), width=0.5)


class TestTabulatedCurve:
    def test_interpolation(self):
        curve = TabulatedCurve([(1, 1.0), (3, 3.0)])
        assert curve.speedup(2.0) == pytest.approx(2.0)

    def test_clamps_above(self):
        curve = TabulatedCurve([(1, 1.0), (4, 2.0)])
        assert curve.speedup(100.0) == pytest.approx(2.0)

    def test_proportional_below(self):
        curve = TabulatedCurve([(2, 1.5), (4, 2.0)])
        assert curve.speedup(1.0) == pytest.approx(0.75)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            TabulatedCurve([(1, 1.0)])

    def test_rejects_non_increasing_sms(self):
        with pytest.raises(ValueError):
            TabulatedCurve([(1, 1.0), (1, 2.0)])

    def test_rejects_decreasing_speedup(self):
        with pytest.raises(ValueError):
            TabulatedCurve([(1, 2.0), (2, 1.0)])

    def test_rejects_non_positive_speedup(self):
        with pytest.raises(ValueError):
            TabulatedCurve([(1, 0.0), (2, 1.0)])

    def test_unsorted_input_accepted(self):
        curve = TabulatedCurve([(4, 2.0), (1, 1.0)])
        assert curve.speedup(4) == pytest.approx(2.0)

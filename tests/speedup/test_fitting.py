"""Unit tests for curve fitting."""

import pytest

from repro.speedup.fitting import fit_curve, fit_quality, fit_sigma
from repro.speedup.model import SaturatingCurve


class TestFitSigma:
    def test_recovers_exact_sigma(self):
        truth = SaturatingCurve(0.03)
        points = [(s, truth.speedup(s)) for s in (2, 8, 16, 34, 68)]
        assert fit_sigma(points) == pytest.approx(0.03, rel=1e-9)

    def test_recovers_linear_speedup(self):
        points = [(s, float(s)) for s in (2, 4, 8)]
        assert fit_sigma(points) == pytest.approx(0.0, abs=1e-12)

    def test_noisy_fit_close(self):
        truth = SaturatingCurve(0.05)
        points = [
            (s, truth.speedup(s) * factor)
            for s, factor in [(4, 1.02), (16, 0.98), (34, 1.01), (68, 0.99)]
        ]
        assert fit_sigma(points) == pytest.approx(0.05, rel=0.3)

    def test_ignores_one_sm_point(self):
        truth = SaturatingCurve(0.1)
        points = [(1, 1.0)] + [(s, truth.speedup(s)) for s in (8, 34)]
        assert fit_sigma(points) == pytest.approx(0.1, rel=1e-9)

    def test_requires_informative_point(self):
        with pytest.raises(ValueError):
            fit_sigma([(1, 1.0)])

    def test_rejects_non_positive_speedup(self):
        with pytest.raises(ValueError):
            fit_sigma([(8, 0.0)])

    def test_clamped_to_valid_range(self):
        # pathological data implying negative sigma
        points = [(8, 9.0), (16, 20.0)]
        assert 0.0 <= fit_sigma(points) <= 1.0


class TestFitCurve:
    def test_returns_curve(self):
        truth = SaturatingCurve(0.02)
        curve = fit_curve([(s, truth.speedup(s)) for s in (8, 34, 68)])
        assert curve.speedup(68) == pytest.approx(truth.speedup(68), rel=1e-6)


class TestFitQuality:
    def test_perfect_fit_zero_error(self):
        truth = SaturatingCurve(0.04)
        points = [(s, truth.speedup(s)) for s in (4, 16, 68)]
        assert fit_quality(truth, points) == pytest.approx(0.0, abs=1e-12)

    def test_error_grows_with_mismatch(self):
        points = [(s, SaturatingCurve(0.04).speedup(s)) for s in (4, 16, 68)]
        close = fit_quality(SaturatingCurve(0.05), points)
        far = fit_quality(SaturatingCurve(0.5), points)
        assert far > close

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            fit_quality(SaturatingCurve(0.1), [])

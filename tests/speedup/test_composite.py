"""Unit tests for composite workloads."""

import pytest

from repro.dnn.models import build_simple_cnn
from repro.dnn.resnet import build_resnet18
from repro.speedup.composite import CompositeWorkload, composite_for_ops
from repro.speedup.model import SaturatingCurve, WidthLimitedCurve


def make_composite(works=(1e-3, 2e-3), sigma=0.05, overhead=1e-5, width=68.0):
    curve = WidthLimitedCurve(SaturatingCurve(sigma), width)
    return CompositeWorkload(
        name="stage",
        segments=tuple((w, curve) for w in works),
        overhead=overhead,
    )


class TestTimeModel:
    def test_base_time_is_time_at_one(self):
        composite = make_composite()
        assert composite.base_time == pytest.approx(composite.time_at(1.0))

    def test_base_time_sums_work_and_overhead(self):
        composite = make_composite(works=(1e-3, 2e-3), overhead=1e-5)
        assert composite.base_time == pytest.approx(3e-3 + 1e-5)

    def test_time_decreases_with_sms(self):
        composite = make_composite()
        assert composite.time_at(34) < composite.time_at(8) < composite.time_at(1)

    def test_overhead_not_parallelised(self):
        composite = make_composite(works=(1e-9,), overhead=1e-3)
        # With negligible work, time is dominated by the serial overhead at
        # any SM count.
        assert composite.time_at(68) == pytest.approx(1e-3, rel=1e-3)

    def test_zero_sms_rejected(self):
        with pytest.raises(ValueError):
            make_composite().time_at(0)


class TestSpeedup:
    def test_identity_at_one(self):
        assert make_composite().speedup(1.0) == pytest.approx(1.0)

    def test_monotone(self):
        composite = make_composite()
        values = [composite.speedup(s) for s in (1, 2, 4, 8, 16, 32, 68)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_zero_share_rate_is_zero(self):
        assert make_composite().speedup(0.0) == 0.0

    def test_bounded_by_best_segment_curve(self):
        composite = make_composite(sigma=0.05)
        assert composite.speedup(68) <= SaturatingCurve(0.05).speedup(68)


class TestWidthDemand:
    def test_width_demand_below_total(self):
        composite = make_composite(sigma=0.1)
        demand = composite.width_demand(68.0, fraction=0.9)
        assert 1.0 <= demand < 68.0

    def test_higher_fraction_needs_more_width(self):
        composite = make_composite(sigma=0.1)
        assert composite.width_demand(68.0, 0.95) > composite.width_demand(68.0, 0.8)

    def test_demand_meets_fraction(self):
        composite = make_composite(sigma=0.1)
        demand = composite.width_demand(68.0, 0.9)
        assert composite.speedup(demand) >= 0.9 * composite.speedup(68.0) - 1e-6

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            make_composite().width_demand(68.0, 0.0)


class TestValidation:
    def test_empty_segments_rejected(self):
        with pytest.raises(ValueError):
            CompositeWorkload(name="x", segments=(), overhead=0.0)

    def test_negative_overhead_rejected(self):
        curve = WidthLimitedCurve(SaturatingCurve(0.05), 68.0)
        with pytest.raises(ValueError):
            CompositeWorkload(name="x", segments=((1.0, curve),), overhead=-1.0)

    def test_negative_work_rejected(self):
        curve = WidthLimitedCurve(SaturatingCurve(0.05), 68.0)
        with pytest.raises(ValueError):
            CompositeWorkload(name="x", segments=((-1.0, curve),), overhead=0.0)


class TestCompositeForOps:
    def test_skips_zero_cost_markers(self):
        graph = build_simple_cnn()
        composite = composite_for_ops("net", graph.topological_order())
        # the synthetic input marker contributes no segment
        assert len(composite.segments) == len(graph) - 1

    def test_whole_network_time_is_sum_of_stage_times(self):
        graph = build_resnet18()
        order = graph.topological_order()
        whole = composite_for_ops("net", order)
        mid = len(order) // 2
        first = composite_for_ops("a", order[:mid])
        second = composite_for_ops("b", order[mid:])
        for sms in (1.0, 8.0, 34.0, 68.0):
            assert whole.time_at(sms) == pytest.approx(
                first.time_at(sms) + second.time_at(sms), rel=1e-9
            )

    def test_rejects_all_marker_sequence(self):
        graph = build_resnet18()
        marker = graph.node("input")
        with pytest.raises(ValueError):
            composite_for_ops("empty", [marker])

    def test_total_work_positive(self):
        graph = build_resnet18()
        composite = composite_for_ops("net", graph.topological_order())
        assert composite.total_work > 0

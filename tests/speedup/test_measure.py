"""Unit tests for the isolation measurement harness."""

import pytest

from repro.dnn.models import build_mlp, build_simple_cnn
from repro.dnn.ops import OpType
from repro.dnn.resnet import build_resnet18
from repro.speedup.measure import (
    default_sm_grid,
    measure_network_speedup,
    measure_op_speedups,
    measure_operator_curve,
    speedup_at,
    widest_instance,
)


class TestSmGrid:
    def test_includes_device_max(self):
        assert default_sm_grid(68)[-1] == 68

    def test_starts_at_one(self):
        assert default_sm_grid(68)[0] == 1

    def test_strictly_increasing(self):
        grid = default_sm_grid(68)
        assert all(b > a for a, b in zip(grid, grid[1:]))

    def test_small_device(self):
        grid = default_sm_grid(10)
        assert grid == [1, 2, 4, 8, 10]


class TestWidestInstance:
    def test_conv_widest_is_stem(self):
        graph = build_resnet18()
        instance = widest_instance(graph, OpType.CONV2D)
        assert instance.name == "conv1"

    def test_missing_type_returns_none(self):
        graph = build_mlp()
        assert widest_instance(graph, OpType.CONV2D) is None

    def test_marker_nodes_skipped(self):
        graph = build_resnet18()
        # the zero-cost input marker is FLATTEN-typed but must not win
        instance = widest_instance(graph, OpType.FLATTEN)
        assert instance.name != "input"


class TestMeasurement:
    def test_measures_all_types_present(self):
        graph = build_simple_cnn()
        curves = measure_op_speedups(graph, sm_counts=[1, 68])
        present = {op.op_type for op in graph if op.flops > 0 or op.bytes_moved > 0}
        assert set(curves) == present

    def test_explicit_type_subset(self):
        graph = build_resnet18()
        curves = measure_op_speedups(
            graph, sm_counts=[1, 68], op_types=[OpType.CONV2D]
        )
        assert list(curves) == [OpType.CONV2D]

    def test_curve_points_match_grid(self):
        graph = build_simple_cnn()
        curves = measure_op_speedups(graph, sm_counts=[1, 8, 68])
        for points in curves.values():
            assert [sms for sms, _ in points] == [1, 8, 68]

    def test_operator_curve_normalised_to_one_sm(self):
        graph = build_resnet18()
        conv = widest_instance(graph, OpType.CONV2D)
        points = measure_operator_curve(conv, [1, 34])
        assert points[0][1] == pytest.approx(1.0)

    def test_network_curve_monotone(self):
        graph = build_simple_cnn()
        points = measure_network_speedup(graph)
        values = [v for _, v in points]
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestSpeedupAt:
    def test_lookup(self):
        assert speedup_at([(1, 1.0), (68, 20.0)], 68) == 20.0

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            speedup_at([(1, 1.0)], 34)

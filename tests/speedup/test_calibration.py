"""Calibration tests: the simulated device must reproduce the paper's Fig. 1.

These are the quantitative anchors of the whole reproduction: convolution
~32x, max pooling ~14x, every other operation below 7x, and the composite
ResNet18 at ~23x on 68 SMs.
"""

import pytest

from repro.dnn.ops import Operator, OpType
from repro.dnn.resnet import build_resnet18
from repro.speedup.calibration import (
    DEFAULT_CALIBRATION,
    DeviceCalibration,
    instance_curve,
    operator_base_time,
    operator_curve,
    operator_time_at,
    operator_width_limit,
    operator_work_time,
)
from repro.speedup.measure import (
    measure_network_speedup,
    measure_op_speedups,
    speedup_at,
)


@pytest.fixture(scope="module")
def resnet18():
    return build_resnet18()


@pytest.fixture(scope="module")
def fig1(resnet18):
    return measure_op_speedups(resnet18, sm_counts=[1, 8, 34, 68])


class TestFig1Anchors:
    def test_conv_reaches_about_32x(self, fig1):
        value = speedup_at(fig1[OpType.CONV2D], 68)
        assert 30.0 <= value <= 34.0

    def test_maxpool_reaches_about_14x(self, fig1):
        value = speedup_at(fig1[OpType.MAXPOOL], 68)
        assert 12.5 <= value <= 15.5

    def test_other_operations_below_7x(self, fig1):
        for op_type, points in fig1.items():
            if op_type in (OpType.CONV2D, OpType.MAXPOOL):
                continue
            assert speedup_at(points, 68) <= 7.0, op_type

    def test_conv_dominates_everything(self, fig1):
        conv = speedup_at(fig1[OpType.CONV2D], 68)
        for op_type, points in fig1.items():
            if op_type is not OpType.CONV2D:
                assert conv > speedup_at(points, 68)

    def test_maxpool_second_best(self, fig1):
        maxpool = speedup_at(fig1[OpType.MAXPOOL], 68)
        for op_type, points in fig1.items():
            if op_type not in (OpType.CONV2D, OpType.MAXPOOL):
                assert maxpool > speedup_at(points, 68)

    def test_all_curves_monotone(self, fig1):
        for points in fig1.values():
            speedups = [v for _, v in points]
            assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))

    def test_speedup_at_one_sm_is_one(self, fig1):
        for points in fig1.values():
            assert speedup_at(points, 1) == pytest.approx(1.0)


class TestNetworkComposite:
    def test_resnet18_reaches_about_23x(self, resnet18):
        curve = measure_network_speedup(resnet18, sm_counts=[68])
        assert 21.0 <= curve[0][1] <= 25.0

    def test_network_below_conv_alone(self, resnet18, fig1):
        net = measure_network_speedup(resnet18, sm_counts=[68])[0][1]
        conv = speedup_at(fig1[OpType.CONV2D], 68)
        assert net < conv

    def test_full_gpu_latency_in_milliseconds(self, resnet18):
        """ResNet18 on the full device should land in the 2-5 ms range
        reported for this device class."""
        from repro.speedup.composite import composite_for_ops
        composite = composite_for_ops("net", resnet18.topological_order())
        assert 2e-3 <= composite.time_at(68) <= 5e-3


class TestCostModel:
    def make_conv(self):
        return Operator(
            name="c",
            op_type=OpType.CONV2D,
            input_shape=(64, 56, 56),
            output_shape=(64, 56, 56),
            flops=1e9,
            bytes_moved=1e6,
        )

    def test_compute_bound_op_uses_flop_time(self):
        op = self.make_conv()
        expected = 1e9 / DEFAULT_CALIBRATION.compute_rate_per_sm
        assert operator_work_time(op) == pytest.approx(expected)

    def test_memory_bound_op_uses_byte_time(self):
        op = Operator(
            name="r",
            op_type=OpType.RELU,
            input_shape=(64, 56, 56),
            output_shape=(64, 56, 56),
            flops=200704.0,
            bytes_moved=1.6e6,
        )
        expected = 1.6e6 / DEFAULT_CALIBRATION.bandwidth_per_sm
        assert operator_work_time(op) == pytest.approx(expected)

    def test_base_time_includes_launch_overhead(self):
        op = self.make_conv()
        assert operator_base_time(op) == pytest.approx(
            operator_work_time(op) + DEFAULT_CALIBRATION.launch_overhead
        )

    def test_time_at_decreases_with_sms(self):
        op = self.make_conv()
        assert operator_time_at(op, 34) < operator_time_at(op, 8)

    def test_time_at_rejects_zero_sms(self):
        with pytest.raises(ValueError):
            operator_time_at(self.make_conv(), 0)

    def test_width_limit_small_output(self):
        op = Operator(
            name="fc",
            op_type=OpType.LINEAR,
            input_shape=(512,),
            output_shape=(10,),
            flops=10240.0,
            bytes_moved=2088.0,
        )
        assert operator_width_limit(op) == pytest.approx(1.0)

    def test_width_limit_large_tensor_capped_at_device(self):
        op = self.make_conv()
        assert operator_width_limit(op) == DEFAULT_CALIBRATION.total_sms

    def test_instance_curve_respects_width(self):
        op = Operator(
            name="tiny",
            op_type=OpType.CONV2D,
            input_shape=(8, 8, 8),
            output_shape=(8, 8, 8),
            flops=1e6,
            bytes_moved=1e4,
        )
        curve = instance_curve(op)
        assert curve.speedup(68) == pytest.approx(curve.speedup(curve.width))


class TestDeviceCalibration:
    def test_default_is_68_sms(self):
        assert DEFAULT_CALIBRATION.total_sms == 68

    def test_sigma_lookup(self):
        sigma = DEFAULT_CALIBRATION.sigma(OpType.CONV2D)
        assert 0.0 < sigma < 0.05

    def test_validation_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            DeviceCalibration(compute_rate_per_sm=0)

    def test_validation_rejects_bad_targets(self):
        with pytest.raises(ValueError):
            DeviceCalibration(speedup_targets={OpType.CONV2D: 100.0})

    def test_curve_cache_returns_same_object(self):
        a = operator_curve(OpType.CONV2D)
        b = operator_curve(OpType.CONV2D)
        assert a is b

"""Property-based tests (hypothesis) on core invariants.

Each property pins down an invariant the rest of the system silently relies
on: engine time monotonicity, allocation conservation, speedup curve shape,
deadline decomposition, and partitioner correctness.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deadlines import assign_virtual_deadlines
from repro.dnn.graph import LayerGraph
from repro.dnn.ops import Operator, OpType
from repro.dnn.stages import partition_into_stages
from repro.gpu.allocator import AllocationParams, compute_allocation, intra_context_shares
from repro.gpu.context import SimContext
from repro.gpu.kernel import PriorityLevel, StageKernel
from repro.sim.engine import SimulationEngine
from repro.speedup.model import SaturatingCurve, sigma_for_target

# ---------------------------------------------------------------------------
# Engine properties
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
@settings(max_examples=100)
def test_engine_fires_in_nondecreasing_time_order(delays):
    engine = SimulationEngine()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda: fired.append(engine.now))
    engine.run()
    assert len(fired) == len(delays)
    assert all(b >= a for a, b in zip(fired, fired[1:]))


@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30),
    st.data(),
)
@settings(max_examples=50)
def test_engine_cancellation_only_removes_cancelled(delays, data):
    engine = SimulationEngine()
    events = [engine.schedule(d, lambda: None) for d in delays]
    cancel_indices = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(events) - 1))
    )
    for index in cancel_indices:
        engine.cancel(events[index])
    fired = engine.run()
    assert fired == len(delays) - len(cancel_indices)


# ---------------------------------------------------------------------------
# Speedup curve properties
# ---------------------------------------------------------------------------


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.1, max_value=128.0),
    st.floats(min_value=0.1, max_value=128.0),
)
@settings(max_examples=200)
def test_saturating_curve_monotone(sigma, a, b):
    curve = SaturatingCurve(sigma)
    low, high = sorted((a, b))
    assert curve.speedup(low) <= curve.speedup(high) + 1e-12


@given(st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100)
def test_saturating_curve_identity_at_one(sigma):
    assert math.isclose(SaturatingCurve(sigma).speedup(1.0), 1.0)


@given(
    st.floats(min_value=1.0, max_value=68.0),
    st.floats(min_value=2.0, max_value=68.0),
)
@settings(max_examples=200)
def test_sigma_for_target_round_trips(target, at_sms):
    if target > at_sms:
        target = at_sms
    sigma = sigma_for_target(target, at_sms)
    assert 0.0 <= sigma <= 1.0
    assert math.isclose(
        SaturatingCurve(sigma).speedup(at_sms), target, rel_tol=1e-9
    )


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=1.0, max_value=68.0),
)
@settings(max_examples=100)
def test_curve_never_exceeds_sms(sigma, sms):
    # speedup on s SMs can never exceed s (no super-linear speedup)
    assert SaturatingCurve(sigma).speedup(sms) <= sms + 1e-9


# ---------------------------------------------------------------------------
# Deadline decomposition properties
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.floats(min_value=1e-6, max_value=1e3), min_size=1, max_size=12
    ),
    st.floats(min_value=1e-6, max_value=10.0),
)
@settings(max_examples=200)
def test_virtual_deadlines_sum_exactly_and_stay_positive(wcets, deadline):
    slices = assign_virtual_deadlines(wcets, deadline)
    assert len(slices) == len(wcets)
    # the final slice absorbs rounding residue; float re-summation may still
    # differ by one ulp, hence the tight relative tolerance
    assert math.isclose(sum(slices), deadline, rel_tol=1e-12)
    assert all(s > 0 or math.isclose(s, 0.0, abs_tol=1e-12) for s in slices)


@given(
    st.lists(
        st.floats(min_value=1e-3, max_value=1e3), min_size=2, max_size=12
    )
)
@settings(max_examples=100)
def test_virtual_deadlines_ordered_like_wcets(wcets):
    slices = assign_virtual_deadlines(wcets, 1.0)
    for (wa, sa), (wb, sb) in zip(
        zip(wcets, slices), list(zip(wcets, slices))[1:]
    ):
        if wa < wb:
            assert sa <= sb + 1e-9


# ---------------------------------------------------------------------------
# Allocation properties
# ---------------------------------------------------------------------------


def _kernels(widths_and_priorities):
    kernels = []
    for index, (width, priority) in enumerate(widths_and_priorities):
        kernels.append(
            StageKernel(
                label=f"k{index}",
                curve=SaturatingCurve(0.05),
                work=1.0,
                width_demand=width,
                deadline=1.0,
                priority=priority,
            )
        )
    return kernels


kernel_strategy = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=68.0),
        st.sampled_from(list(PriorityLevel)),
    ),
    min_size=1,
    max_size=4,
)


@given(kernel_strategy, st.floats(min_value=1.0, max_value=136.0))
@settings(max_examples=200)
def test_intra_context_shares_conserve_budget(spec, nominal):
    kernels = _kernels(spec)
    shares = intra_context_shares(kernels, nominal)
    assert sum(shares.values()) <= nominal + 1e-6
    assert all(share >= 0 for share in shares.values())


@given(
    st.lists(kernel_strategy, min_size=1, max_size=3),
    st.floats(min_value=10.0, max_value=136.0),
)
@settings(max_examples=100)
def test_device_allocation_bounded_by_physical_sms(context_specs, nominal):
    contexts = []
    for index, spec in enumerate(context_specs):
        context = SimContext(index, nominal)
        for kernel in _kernels(spec):
            context.enqueue(kernel)
        context.dispatch_ready()
        contexts.append(context)
    result = compute_allocation(
        contexts, 68.0, 53.5, AllocationParams()
    )
    assert sum(result.shares.values()) <= 68.0 + 1e-6
    assert result.aggregate_rate <= 53.5 + 1e-6
    assert all(rate >= 0 for rate in result.rates.values())


# ---------------------------------------------------------------------------
# Partitioner properties
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=40
    ),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=100)
def test_partition_covers_chain_exactly(costs, parts):
    if parts > len(costs):
        parts = len(costs)
    graph = LayerGraph("chain")
    previous = None
    for index, cost in enumerate(costs):
        name = f"n{index}"
        graph.add_node(
            Operator(
                name=name,
                op_type=OpType.RELU,
                input_shape=(4,),
                output_shape=(4,),
                flops=cost,
                bytes_moved=cost,
            )
        )
        if previous:
            graph.add_edge(previous, name)
        previous = name
    plan = partition_into_stages(graph, parts, cost_fn=lambda op: op.flops)
    plan.validate()
    assert plan.num_stages == parts
    # min-max objective: the best stage can never exceed total, and the
    # max stage is at least total/parts
    total = sum(costs)
    assert max(plan.costs) >= total / parts - 1e-9
    assert max(plan.costs) <= total + 1e-9


@given(
    st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=4, max_size=30)
)
@settings(max_examples=50)
def test_partition_into_n_never_worse_than_fewer_parts(costs):
    """More stages can only reduce (or keep) the max stage cost."""
    graph = LayerGraph("chain")
    previous = None
    for index, cost in enumerate(costs):
        name = f"n{index}"
        graph.add_node(
            Operator(
                name=name,
                op_type=OpType.RELU,
                input_shape=(4,),
                output_shape=(4,),
                flops=cost,
                bytes_moved=0.0,
            )
        )
        if previous:
            graph.add_edge(previous, name)
        previous = name
    plan2 = partition_into_stages(graph, 2, cost_fn=lambda op: op.flops)
    plan4 = partition_into_stages(graph, 4, cost_fn=lambda op: op.flops)
    assert max(plan4.costs) <= max(plan2.costs) + 1e-9


# ---------------------------------------------------------------------------
# Kernel progress properties
# ---------------------------------------------------------------------------


@given(
    st.floats(min_value=1e-6, max_value=10.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=20),
)
@settings(max_examples=100)
def test_kernel_progress_is_conserved(work, setup, steps):
    kernel = StageKernel(
        label="k",
        curve=SaturatingCurve(0.0),
        work=work,
        width_demand=1.0,
        deadline=1.0,
        setup_time=setup,
    )
    kernel.rate = 1.0
    consumed = 0.0
    for step in steps:
        before = kernel.setup_remaining + kernel.work_remaining
        kernel.advance(step)
        after = kernel.setup_remaining + kernel.work_remaining
        assert after <= before + 1e-12
        consumed += before - after
    assert consumed <= setup + work + 1e-6

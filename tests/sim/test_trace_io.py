"""Round-trip and error-path tests for the on-disk trace format."""

import struct

import pytest

from repro.core.context_pool import ContextPoolConfig
from repro.core.runner import RunConfig, run_simulation
from repro.gpu.device import REARM_MODES
from repro.gpu.spec import RTX_2080_TI
from repro.sim.trace import TraceRecorder
from repro.sim.trace_columnar import ColumnarTrace
from repro.sim.trace_io import (
    MAGIC,
    TRACE_FORMAT_VERSION,
    read_trace,
    trace_from_bytes,
    trace_to_bytes,
    write_trace,
)


def traced_run(rearm_mode="incremental", seed=0, trace_backend="columnar"):
    """A short overloaded run that exercises every trace kind."""
    pool = ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)
    from repro.workloads.generator import identical_periodic_tasks

    tasks = identical_periodic_tasks(12, nominal_sms=pool.sms_per_context)
    result = run_simulation(
        tasks,
        RunConfig(
            pool=pool,
            duration=0.5,
            warmup=0.1,
            record_trace=True,
            trace_backend=trace_backend,
            rearm_mode=rearm_mode,
            work_jitter_cv=0.1,
            seed=seed,
        ),
    )
    return result.trace


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("rearm_mode", REARM_MODES)
    def test_simulation_trace_round_trips(self, rearm_mode, seed):
        trace = traced_run(rearm_mode=rearm_mode, seed=seed)
        listed = traced_run(
            rearm_mode=rearm_mode, seed=seed, trace_backend="list"
        )
        # both recorders observe the same run identically: records,
        # kind histogram and of_kind query results all agree
        assert list(trace) == list(listed)
        assert trace.kinds() == listed.kinds()
        for kind in trace.kinds():
            assert trace.of_kind(kind) == listed.of_kind(kind)
        data = trace_to_bytes(trace)
        rebuilt = trace_from_bytes(data)
        assert len(rebuilt) == len(trace)
        assert list(rebuilt) == list(trace)
        # serialisation is deterministic and stable under a round trip
        assert trace_to_bytes(rebuilt) == data

    def test_list_backend_serialises_identically(self):
        listed = traced_run(trace_backend="list")
        columnar = traced_run(trace_backend="columnar")
        assert trace_to_bytes(listed) == trace_to_bytes(columnar)

    def test_empty_trace_round_trips(self):
        data = trace_to_bytes(ColumnarTrace())
        rebuilt = trace_from_bytes(data)
        assert len(rebuilt) == 0
        assert trace_to_bytes(rebuilt) == data

    def test_object_column_round_trips(self):
        trace = ColumnarTrace()
        trace.record(1.0, "tick", value=1)
        trace.record(2.0, "tick", value="mixed")
        trace.record(3.0, "tick", flag=True)
        rebuilt = trace_from_bytes(trace_to_bytes(trace))
        assert list(rebuilt) == list(trace)

    def test_file_round_trip(self, tmp_path):
        trace = TraceRecorder()
        trace.record(0.25, "job_release", task="t0", job=0, deadline=0.5)
        trace.record(0.5, "job_complete", task="t0", job=0, missed=False)
        path = write_trace(trace, tmp_path / "point.trace")
        rebuilt = read_trace(path)
        assert list(rebuilt) == list(trace)

    def test_magic_and_version_lead_the_file(self):
        data = trace_to_bytes(ColumnarTrace())
        assert data[:4] == MAGIC
        (version,) = struct.unpack_from("<H", data, 4)
        assert version == TRACE_FORMAT_VERSION


class TestErrorPaths:
    def payload(self):
        trace = ColumnarTrace()
        trace.record(1.0, "tick", i=1)
        return trace_to_bytes(trace)

    def test_bad_magic_rejected(self):
        data = b"XXXX" + self.payload()[4:]
        with pytest.raises(ValueError, match="magic"):
            trace_from_bytes(data)

    def test_unknown_version_rejected(self):
        data = self.payload()
        bumped = data[:4] + struct.pack("<H", 99) + data[6:]
        with pytest.raises(ValueError, match="version"):
            trace_from_bytes(bumped)

    def test_truncated_payload_rejected(self):
        data = self.payload()
        with pytest.raises(ValueError, match="truncated"):
            trace_from_bytes(data[:-4])

    def test_corrupt_header_rejected(self):
        data = self.payload()
        (hlen,) = struct.unpack_from("<I", data, 6)
        corrupted = data[:10] + b"\xff" * hlen + data[10 + hlen :]
        with pytest.raises(ValueError, match="header"):
            trace_from_bytes(corrupted)

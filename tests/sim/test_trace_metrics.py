"""Streaming trace-metric accumulation matches the live collector.

:class:`TraceMetricsAccumulator` recomputes the steady-state metrics
from a trace stream alone; every scenario here runs a real simulation
twice through the same numbers — once live (MetricsCollector inside the
run) and once streamed (feeding the recorded trace) — and demands they
agree to float precision, including under admission control where
releases can be rejected or queued.
"""

import pytest

from repro.core.context_pool import ContextPoolConfig
from repro.core.runner import RunConfig, run_simulation
from repro.gpu.spec import RTX_2080_TI
from repro.sim.metrics import TraceMetricsAccumulator, metrics_from_trace
from repro.sim.trace import TraceRecord
from repro.workloads.generator import identical_periodic_tasks

DURATION = 0.6
WARMUP = 0.15

SCENARIOS = [
    # (id, num_tasks, extra RunConfig kwargs)
    ("closed_overload", 20, {}),
    ("reject_poisson", 8, {"admission": "reject", "arrival": "poisson"}),
    ("queue_mmpp", 8, {"admission": "queue:depth=2", "arrival": "mmpp"}),
]


def run_traced(num_tasks, trace_backend, **kwargs):
    pool = ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)
    tasks = identical_periodic_tasks(
        num_tasks, nominal_sms=pool.sms_per_context
    )
    return run_simulation(
        tasks,
        RunConfig(
            pool=pool,
            duration=DURATION,
            warmup=WARMUP,
            record_trace=True,
            trace_backend=trace_backend,
            **kwargs,
        ),
    )


def assert_matches_summary(streamed, summary):
    for key, value in streamed.items():
        reference = summary[key]
        if reference is None or value is None:
            assert value == reference, key
        else:
            assert value == pytest.approx(reference, abs=1e-9), key


class TestAccumulatorEquivalence:
    @pytest.mark.parametrize("trace_backend", ["list", "columnar"])
    @pytest.mark.parametrize(
        "num_tasks,kwargs",
        [s[1:] for s in SCENARIOS],
        ids=[s[0] for s in SCENARIOS],
    )
    def test_matches_live_collector(self, num_tasks, kwargs, trace_backend):
        result = run_traced(num_tasks, trace_backend, **kwargs)
        streamed = metrics_from_trace(result.trace, WARMUP, DURATION)
        summary = result.metrics_summary()
        assert streamed["released"] > 0
        assert_matches_summary(streamed, summary)

    def test_survives_disk_round_trip(self):
        from repro.sim.trace_io import trace_from_bytes, trace_to_bytes

        result = run_traced(20, "columnar")
        rebuilt = trace_from_bytes(trace_to_bytes(result.trace))
        streamed = metrics_from_trace(rebuilt, WARMUP, DURATION)
        assert_matches_summary(streamed, result.metrics_summary())

    def test_incremental_feed_equals_one_shot(self):
        result = run_traced(20, "columnar")
        accumulator = TraceMetricsAccumulator(warmup=WARMUP)
        for record in result.trace:
            accumulator.feed(record)
        assert accumulator.finalize(DURATION) == metrics_from_trace(
            result.trace, WARMUP, DURATION
        )


class TestAccumulatorContract:
    def test_release_without_deadline_rejected(self):
        accumulator = TraceMetricsAccumulator()
        stale = TraceRecord(0.0, "job_release", {"task": "t0", "job": 0})
        with pytest.raises(ValueError, match="deadline"):
            accumulator.feed(stale)

    def test_empty_trace_finalizes_to_zeros(self):
        metrics = TraceMetricsAccumulator(warmup=0.5).finalize(1.0)
        assert metrics["total_fps"] == 0.0
        assert metrics["dmr"] == 0.0
        assert metrics["released"] == 0
        assert metrics["p99_response"] is None
        assert metrics["max_queue_depth"] == 0

    def test_finalize_is_repeatable(self):
        result = run_traced(20, "columnar")
        accumulator = TraceMetricsAccumulator(warmup=WARMUP)
        for record in result.trace:
            accumulator.feed(record)
        first = accumulator.finalize(DURATION)
        assert accumulator.finalize(DURATION) == first

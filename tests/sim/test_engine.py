"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationEngine, SimulationError


class TestScheduling:
    def test_starts_at_zero(self):
        assert SimulationEngine().now == 0.0

    def test_custom_start_time(self):
        assert SimulationEngine(start_time=5.0).now == 5.0

    def test_negative_start_time_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine(start_time=-1.0)

    def test_schedule_advances_clock_on_fire(self):
        engine = SimulationEngine()
        engine.schedule(2.5, lambda: None)
        engine.run()
        assert engine.now == 2.5

    def test_schedule_at_absolute_time(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(3.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [3.0]

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)

    def test_zero_delay_fires_same_instant(self):
        engine = SimulationEngine()
        order = []
        def outer():
            order.append("outer")
            engine.schedule(0.0, lambda: order.append("inner"))
        engine.schedule(1.0, outer)
        engine.run()
        assert order == ["outer", "inner"]
        assert engine.now == 1.0

    def test_nan_time_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule_at(float("nan"), lambda: None)

    def test_infinite_time_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule_at(float("inf"), lambda: None)


class TestOrdering:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        for delay in (3.0, 1.0, 2.0):
            engine.schedule(delay, lambda d=delay: fired.append(d))
        engine.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_same_time_fifo_order(self):
        engine = SimulationEngine()
        fired = []
        for index in range(10):
            engine.schedule(1.0, lambda i=index: fired.append(i))
        engine.run()
        assert fired == list(range(10))

    def test_deterministic_across_runs(self):
        def run_once():
            engine = SimulationEngine()
            fired = []
            for index in range(20):
                engine.schedule((index * 7) % 5 * 0.1, lambda i=index: fired.append(i))
            engine.run()
            return fired
        assert run_once() == run_once()


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append(1))
        engine.cancel(event)
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.cancel(event)
        engine.cancel(event)
        assert engine.pending_count == 0

    def test_pending_count_excludes_cancelled(self):
        engine = SimulationEngine()
        keep = engine.schedule(1.0, lambda: None)
        drop = engine.schedule(2.0, lambda: None)
        engine.cancel(drop)
        assert engine.pending_count == 1

    def test_cancel_mid_run(self):
        engine = SimulationEngine()
        fired = []
        later = engine.schedule(2.0, lambda: fired.append("later"))
        engine.schedule(1.0, lambda: engine.cancel(later))
        engine.run()
        assert fired == []

    def test_direct_handle_cancel_updates_pending_count(self):
        # Event.cancel() is public API on the handle returned by schedule;
        # it must route through the engine so pending_count stays exact.
        engine = SimulationEngine()
        keep = engine.schedule(1.0, lambda: None)
        drop = engine.schedule(2.0, lambda: None)
        drop.cancel()
        assert engine.pending_count == 1
        engine.run()
        # draining the heap (including the tombstone) must not drive the
        # cancelled-pending counter negative
        assert engine.pending_count == 0
        assert engine.processed_count == 1

    def test_direct_handle_cancel_is_idempotent_with_engine_cancel(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        event.cancel()
        engine.cancel(event)
        event.cancel()
        assert engine.pending_count == 0
        engine.run()
        assert engine.pending_count == 0

    def test_detached_event_cancel_without_engine(self):
        from repro.sim.engine import Event

        event = Event(time=1.0, seq=0, action=lambda: None)
        event.cancel()
        assert event.cancelled

    def test_cancel_after_fire_is_a_noop(self):
        # A fired event is no longer in the heap; cancelling it (via either
        # API) must not corrupt the pending-tombstone accounting.
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.run()
        event.cancel()
        engine.cancel(event)
        assert engine.pending_count == 0
        engine.schedule(1.0, lambda: None)
        assert engine.pending_count == 1


class TestReschedule:
    def test_reschedule_preserves_tie_break(self):
        # a was scheduled before b; rescheduling a must not demote it
        # behind b at their shared timestamp
        engine = SimulationEngine()
        fired = []
        a = engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(1.0, lambda: fired.append("b"))
        engine.reschedule(a)
        engine.run()
        assert fired == ["a", "b"]

    def test_reschedule_counts_churn_and_tombstones(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        before = engine.scheduled_count
        engine.reschedule(event)
        assert engine.scheduled_count == before + 1
        assert engine.pending_count == 1  # old copy is a tombstone
        assert engine.heap_size == 2

    def test_reschedule_fired_or_cancelled_rejected(self):
        from repro.sim.engine import SimulationError

        engine = SimulationEngine()
        fired_event = engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.reschedule(fired_event)
        cancelled_event = engine.schedule(1.0, lambda: None)
        engine.cancel(cancelled_event)
        with pytest.raises(SimulationError):
            engine.reschedule(cancelled_event)


class TestCompaction:
    def test_tombstone_majority_triggers_compaction(self):
        engine = SimulationEngine()
        events = [engine.schedule(float(i + 1), lambda: None)
                  for i in range(SimulationEngine.COMPACT_MIN_SIZE)]
        for event in events[: SimulationEngine.COMPACT_MIN_SIZE // 2 + 1]:
            engine.cancel(event)
        assert engine.compaction_count == 1
        # tombstones are physically gone, live events all survive
        assert engine.heap_size == engine.pending_count
        assert engine.pending_count == (
            SimulationEngine.COMPACT_MIN_SIZE
            - SimulationEngine.COMPACT_MIN_SIZE // 2
            - 1
        )

    def test_small_heaps_never_compact(self):
        engine = SimulationEngine()
        events = [engine.schedule(float(i + 1), lambda: None)
                  for i in range(8)]
        for event in events:
            engine.cancel(event)
        assert engine.compaction_count == 0

    def test_compaction_preserves_firing_order(self):
        engine = SimulationEngine()
        fired = []
        keep = []
        for index in range(SimulationEngine.COMPACT_MIN_SIZE * 2):
            event = engine.schedule(
                ((index * 37) % 100) * 0.1,
                lambda i=index: fired.append(i),
            )
            if index % 3 == 0:
                keep.append((((index * 37) % 100) * 0.1, index))
            else:
                engine.cancel(event)
        assert engine.compaction_count >= 1
        engine.run()
        assert fired == [i for _, i in sorted(keep)]

    def test_cancel_remains_idempotent_across_compaction(self):
        engine = SimulationEngine()
        events = [engine.schedule(float(i + 1), lambda: None)
                  for i in range(SimulationEngine.COMPACT_MIN_SIZE)]
        doomed = events[: SimulationEngine.COMPACT_MIN_SIZE // 2 + 1]
        for event in doomed:
            engine.cancel(event)
        for event in doomed:  # second cancel after the rebuild dropped them
            engine.cancel(event)
        assert engine.pending_count == len(events) - len(doomed)
        assert engine.run() == len(events) - len(doomed)


class TestRunUntil:
    def test_stops_at_horizon(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(5.0, lambda: fired.append(5))
        engine.run_until(3.0)
        assert fired == [1]
        assert engine.now == 3.0
        assert engine.pending_count == 1

    def test_event_exactly_at_horizon_fires(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(3.0, lambda: fired.append(3))
        engine.run_until(3.0)
        assert fired == [3]

    def test_event_half_eps_beyond_horizon_stays_queued(self):
        from repro.sim.clock import TIME_EPS

        engine = SimulationEngine()
        fired = []
        engine.schedule_at(3.0 + TIME_EPS / 2, lambda: fired.append("late"))
        engine.run_until(3.0)
        # the boundary is exact-or-under: the clock must never pass the
        # horizon and then be forced back down over a fired event
        assert fired == []
        assert engine.now == 3.0
        assert engine.pending_count == 1
        engine.run()
        assert fired == ["late"]

    def test_event_half_eps_before_horizon_fires(self):
        from repro.sim.clock import TIME_EPS

        engine = SimulationEngine()
        fired = []
        engine.schedule_at(3.0 - TIME_EPS / 2, lambda: fired.append("early"))
        engine.run_until(3.0)
        assert fired == ["early"]
        assert engine.now == 3.0

    def test_horizon_before_now_rejected(self):
        engine = SimulationEngine()
        engine.schedule(2.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run_until(1.0)

    def test_clock_set_to_horizon_when_idle(self):
        engine = SimulationEngine()
        engine.run_until(10.0)
        assert engine.now == 10.0

    def test_max_events_limit(self):
        engine = SimulationEngine()
        for index in range(10):
            engine.schedule(0.1 * (index + 1), lambda: None)
        fired = engine.run_until(100.0, max_events=3)
        assert fired == 3
        assert engine.pending_count == 7

    def test_max_events_stop_does_not_jump_clock_past_due_events(self):
        # stopping on max_events with sub-horizon events still queued must
        # leave the clock at the last fired event, so the remaining events
        # later fire with their own (correct) timestamps
        engine = SimulationEngine()
        times = []
        for index in range(5):
            engine.schedule(0.1 * (index + 1), lambda: times.append(engine.now))
        fired = engine.run_until(100.0, max_events=2)
        assert fired == 2
        assert engine.now == pytest.approx(0.2)
        engine.run()
        assert times == [pytest.approx(0.1 * (i + 1)) for i in range(5)]

    def test_max_events_stop_at_drained_queue_still_reaches_horizon(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        fired = engine.run_until(5.0, max_events=2)
        assert fired == 2
        assert engine.now == 5.0  # limit hit, but nothing due remained

    def test_returns_event_count(self):
        engine = SimulationEngine()
        for index in range(5):
            engine.schedule(0.1 * (index + 1), lambda: None)
        assert engine.run_until(1.0) == 5


class TestIntrospection:
    def test_peek_time(self):
        engine = SimulationEngine()
        engine.schedule(2.0, lambda: None)
        engine.schedule(1.0, lambda: None)
        assert engine.peek_time() == 1.0

    def test_peek_time_empty(self):
        assert SimulationEngine().peek_time() is None

    def test_peek_skips_cancelled(self):
        engine = SimulationEngine()
        first = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.cancel(first)
        assert engine.peek_time() == 2.0

    def test_processed_count(self):
        engine = SimulationEngine()
        for index in range(4):
            engine.schedule(0.1, lambda: None)
        engine.run()
        assert engine.processed_count == 4

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False


class TestReentrancy:
    def test_action_can_schedule_more_events(self):
        engine = SimulationEngine()
        fired = []
        def chain(depth):
            fired.append(depth)
            if depth < 5:
                engine.schedule(1.0, lambda: chain(depth + 1))
        engine.schedule(1.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert engine.now == 6.0

    def test_run_with_max_events(self):
        engine = SimulationEngine()
        def rearm():
            engine.schedule(1.0, rearm)
        engine.schedule(1.0, rearm)
        fired = engine.run(max_events=50)
        assert fired == 50
        assert engine.now == 50.0

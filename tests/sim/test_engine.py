"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationEngine, SimulationError


class TestScheduling:
    def test_starts_at_zero(self):
        assert SimulationEngine().now == 0.0

    def test_custom_start_time(self):
        assert SimulationEngine(start_time=5.0).now == 5.0

    def test_negative_start_time_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine(start_time=-1.0)

    def test_schedule_advances_clock_on_fire(self):
        engine = SimulationEngine()
        engine.schedule(2.5, lambda: None)
        engine.run()
        assert engine.now == 2.5

    def test_schedule_at_absolute_time(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(3.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [3.0]

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)

    def test_zero_delay_fires_same_instant(self):
        engine = SimulationEngine()
        order = []
        def outer():
            order.append("outer")
            engine.schedule(0.0, lambda: order.append("inner"))
        engine.schedule(1.0, outer)
        engine.run()
        assert order == ["outer", "inner"]
        assert engine.now == 1.0

    def test_nan_time_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule_at(float("nan"), lambda: None)

    def test_infinite_time_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule_at(float("inf"), lambda: None)


class TestOrdering:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        for delay in (3.0, 1.0, 2.0):
            engine.schedule(delay, lambda d=delay: fired.append(d))
        engine.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_same_time_fifo_order(self):
        engine = SimulationEngine()
        fired = []
        for index in range(10):
            engine.schedule(1.0, lambda i=index: fired.append(i))
        engine.run()
        assert fired == list(range(10))

    def test_deterministic_across_runs(self):
        def run_once():
            engine = SimulationEngine()
            fired = []
            for index in range(20):
                engine.schedule((index * 7) % 5 * 0.1, lambda i=index: fired.append(i))
            engine.run()
            return fired
        assert run_once() == run_once()


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append(1))
        engine.cancel(event)
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.cancel(event)
        engine.cancel(event)
        assert engine.pending_count == 0

    def test_pending_count_excludes_cancelled(self):
        engine = SimulationEngine()
        keep = engine.schedule(1.0, lambda: None)
        drop = engine.schedule(2.0, lambda: None)
        engine.cancel(drop)
        assert engine.pending_count == 1

    def test_cancel_mid_run(self):
        engine = SimulationEngine()
        fired = []
        later = engine.schedule(2.0, lambda: fired.append("later"))
        engine.schedule(1.0, lambda: engine.cancel(later))
        engine.run()
        assert fired == []


class TestRunUntil:
    def test_stops_at_horizon(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(5.0, lambda: fired.append(5))
        engine.run_until(3.0)
        assert fired == [1]
        assert engine.now == 3.0
        assert engine.pending_count == 1

    def test_event_exactly_at_horizon_fires(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(3.0, lambda: fired.append(3))
        engine.run_until(3.0)
        assert fired == [3]

    def test_horizon_before_now_rejected(self):
        engine = SimulationEngine()
        engine.schedule(2.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run_until(1.0)

    def test_clock_set_to_horizon_when_idle(self):
        engine = SimulationEngine()
        engine.run_until(10.0)
        assert engine.now == 10.0

    def test_max_events_limit(self):
        engine = SimulationEngine()
        for index in range(10):
            engine.schedule(0.1 * (index + 1), lambda: None)
        fired = engine.run_until(100.0, max_events=3)
        assert fired == 3
        assert engine.pending_count == 7

    def test_returns_event_count(self):
        engine = SimulationEngine()
        for index in range(5):
            engine.schedule(0.1 * (index + 1), lambda: None)
        assert engine.run_until(1.0) == 5


class TestIntrospection:
    def test_peek_time(self):
        engine = SimulationEngine()
        engine.schedule(2.0, lambda: None)
        engine.schedule(1.0, lambda: None)
        assert engine.peek_time() == 1.0

    def test_peek_time_empty(self):
        assert SimulationEngine().peek_time() is None

    def test_peek_skips_cancelled(self):
        engine = SimulationEngine()
        first = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.cancel(first)
        assert engine.peek_time() == 2.0

    def test_processed_count(self):
        engine = SimulationEngine()
        for index in range(4):
            engine.schedule(0.1, lambda: None)
        engine.run()
        assert engine.processed_count == 4

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False


class TestReentrancy:
    def test_action_can_schedule_more_events(self):
        engine = SimulationEngine()
        fired = []
        def chain(depth):
            fired.append(depth)
            if depth < 5:
                engine.schedule(1.0, lambda: chain(depth + 1))
        engine.schedule(1.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert engine.now == 6.0

    def test_run_with_max_events(self):
        engine = SimulationEngine()
        def rearm():
            engine.schedule(1.0, rearm)
        engine.schedule(1.0, rearm)
        fired = engine.run(max_events=50)
        assert fired == 50
        assert engine.now == 50.0

"""Unit tests for the trace recorders (list-backed and columnar)."""

import pytest

from repro.sim.trace import (
    TRACE_BACKENDS,
    TraceRecord,
    TraceRecorder,
    make_trace_recorder,
)
from repro.sim.trace_columnar import ColumnarTrace

#: Every trace kind the simulation stack may emit: the scheduler's five
#: (documented on :class:`repro.core.scheduler.SchedulerBase`) plus the
#: device layer's three.
DOCUMENTED_KINDS = {
    "job_release",
    "job_skip",
    "job_complete",
    "job_shed",
    "stage_release",
    "kernel_start",
    "kernel_done",
    "allocation",
}


@pytest.fixture(params=TRACE_BACKENDS)
def backend(request):
    return request.param


class TestRecording:
    def test_record_and_len(self, backend):
        trace = make_trace_recorder(backend)
        trace.record(1.0, "alpha", x=1)
        trace.record(2.0, "beta")
        assert len(trace) == 2

    def test_disabled_recorder_drops_everything(self, backend):
        trace = make_trace_recorder(backend, enabled=False)
        trace.record(1.0, "alpha")
        assert len(trace) == 0

    def test_kind_filter(self, backend):
        trace = make_trace_recorder(backend, kinds={"keep"})
        trace.record(1.0, "keep")
        trace.record(2.0, "drop")
        assert len(trace) == 1
        assert trace.of_kind("drop") == []

    def test_clear(self, backend):
        trace = make_trace_recorder(backend)
        trace.record(1.0, "alpha")
        trace.clear()
        assert len(trace) == 0

    def test_iteration_preserves_order(self, backend):
        trace = make_trace_recorder(backend)
        for index in range(5):
            trace.record(float(index), "tick", i=index)
        assert [r.get("i") for r in trace] == [0, 1, 2, 3, 4]

    def test_iteration_yields_trace_records(self, backend):
        trace = make_trace_recorder(backend)
        trace.record(1.5, "alpha", task="t0", job=3)
        (record,) = list(trace)
        assert isinstance(record, TraceRecord)
        assert record.time == 1.5
        assert record.kind == "alpha"
        assert record.get("task") == "t0"
        assert record.get("job") == 3


class TestQueries:
    def make_trace(self, backend):
        trace = make_trace_recorder(backend)
        trace.record(1.0, "start", job=1)
        trace.record(2.0, "finish", job=1)
        trace.record(3.0, "start", job=2)
        return trace

    def test_of_kind(self, backend):
        trace = self.make_trace(backend)
        starts = trace.of_kind("start")
        assert [r.get("job") for r in starts] == [1, 2]

    def test_where(self, backend):
        trace = self.make_trace(backend)
        late = trace.where(lambda r: r.time >= 2.0)
        assert len(late) == 2

    def test_kinds_histogram(self, backend):
        trace = self.make_trace(backend)
        assert trace.kinds() == {"start": 2, "finish": 1}

    def test_last(self, backend):
        trace = self.make_trace(backend)
        assert trace.last().time == 3.0

    def test_last_of_kind(self, backend):
        trace = self.make_trace(backend)
        assert trace.last("finish").time == 2.0

    def test_last_missing_kind(self, backend):
        trace = self.make_trace(backend)
        assert trace.last("nonexistent") is None

    def test_last_empty(self, backend):
        assert make_trace_recorder(backend).last() is None


class TestBackendFactory:
    def test_default_is_list_backed(self):
        assert isinstance(make_trace_recorder("list"), TraceRecorder)

    def test_columnar(self):
        assert isinstance(make_trace_recorder("columnar"), ColumnarTrace)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="trace_backend"):
            make_trace_recorder("parquet")


class TestColumnarInternals:
    """Behaviour specific to the struct-of-arrays backend."""

    def test_equivalent_records_to_list_backend(self):
        listed = TraceRecorder()
        columnar = ColumnarTrace()
        for trace in (listed, columnar):
            trace.record(0.5, "kernel_start", task="t0", job=0, stage=1)
            trace.record(0.75, "kernel_done", task="t0", job=0, stage=1)
            trace.record(1.0, "job_complete", task="t0", job=0, missed=False)
        assert list(columnar) == list(listed)

    def test_heterogeneous_field_sets_per_kind(self):
        trace = ColumnarTrace()
        trace.record(1.0, "tick", a=1)
        trace.record(2.0, "tick", b=2.5)
        records = list(trace)
        assert records[0].fields == {"a": 1}
        assert records[1].fields == {"b": 2.5}

    def test_type_clash_demotes_to_object_column(self):
        trace = ColumnarTrace()
        trace.record(1.0, "tick", value=7)
        trace.record(2.0, "tick", value="seven")
        trace.record(3.0, "tick", value=7.5)
        assert [r.get("value") for r in trace] == [7, "seven", 7.5]

    def test_bool_round_trip_preserves_type(self):
        trace = ColumnarTrace()
        trace.record(1.0, "job_complete", missed=True)
        trace.record(2.0, "job_complete", missed=False)
        values = [r.get("missed") for r in trace]
        assert values == [True, False]
        assert all(type(v) is bool for v in values)

    def test_times_and_column(self):
        trace = ColumnarTrace()
        trace.record(1.0, "start", job=1)
        trace.record(2.0, "finish", job=1)
        trace.record(3.0, "start", job=2)
        assert list(trace.times()) == [1.0, 2.0, 3.0]
        assert list(trace.column("start", "job")) == [1, 2]

    def test_nbytes_grows_with_events(self):
        trace = ColumnarTrace()
        empty = trace.nbytes()
        for index in range(100):
            trace.record(float(index), "tick", i=index)
        assert trace.nbytes() > empty

    def test_from_records(self):
        listed = TraceRecorder()
        listed.record(1.0, "start", job=1, name="a")
        listed.record(2.0, "finish", job=1, ok=True)
        rebuilt = ColumnarTrace.from_records(listed)
        assert list(rebuilt) == list(listed)

    def test_clear_resets_columns(self):
        trace = ColumnarTrace()
        trace.record(1.0, "tick", i=1)
        trace.clear()
        assert len(trace) == 0
        assert list(trace) == []
        trace.record(2.0, "tock", j=2)
        assert [r.kind for r in trace] == ["tock"]


class TestTraceRecord:
    def test_get_with_default(self):
        record = TraceRecord(1.0, "kind", {"a": 1})
        assert record.get("a") == 1
        assert record.get("b", "fallback") == "fallback"


class TestEmittedKinds:
    """The kinds a real run emits match the documented contract.

    Guards the :class:`SchedulerBase` docstring against silently growing
    or renaming trace kinds (it once omitted ``job_skip``).
    """

    _trace_cache = {}

    def run_traced(self, num_tasks, num_contexts=1, trace_backend="list"):
        # one simulation per parameter set, shared across the test class
        key = (num_tasks, num_contexts, trace_backend)
        if key in self._trace_cache:
            return self._trace_cache[key]
        from repro.core.context_pool import ContextPoolConfig
        from repro.core.runner import RunConfig, run_simulation
        from repro.gpu.spec import RTX_2080_TI
        from repro.workloads.generator import identical_periodic_tasks

        pool = ContextPoolConfig.from_oversubscription(
            num_contexts, 1.0, RTX_2080_TI
        )
        tasks = identical_periodic_tasks(
            num_tasks, nominal_sms=pool.sms_per_context
        )
        result = run_simulation(
            tasks,
            RunConfig(
                pool=pool,
                duration=1.0,
                warmup=0.2,
                record_trace=True,
                trace_backend=trace_backend,
            ),
        )
        self._trace_cache[key] = result.trace
        return result.trace

    def test_all_emitted_kinds_are_documented(self, backend):
        # one heavily overloaded single context: releases, stages,
        # completions and source-dropped (skipped) jobs all occur
        trace = self.run_traced(num_tasks=30, trace_backend=backend)
        emitted = set(trace.kinds())
        assert emitted <= DOCUMENTED_KINDS, emitted - DOCUMENTED_KINDS

    def test_overload_emits_job_skip(self, backend):
        trace = self.run_traced(num_tasks=30, trace_backend=backend)
        assert trace.of_kind("job_skip"), "overload should drop releases"

    def test_backends_record_identical_runs(self):
        listed = self.run_traced(num_tasks=30, trace_backend="list")
        columnar = self.run_traced(num_tasks=30, trace_backend="columnar")
        assert list(columnar) == list(listed)
        assert columnar.kinds() == listed.kinds()

    def test_docstring_documents_every_scheduler_kind(self):
        from repro.core.scheduler import SchedulerBase

        doc = SchedulerBase.__doc__
        for kind in (
            "job_release",
            "job_skip",
            "job_complete",
            "job_shed",
            "stage_release",
        ):
            assert kind in doc, f"SchedulerBase docstring omits {kind!r}"

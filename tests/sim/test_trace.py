"""Unit tests for the trace recorder."""

from repro.sim.trace import TraceRecord, TraceRecorder


class TestRecording:
    def test_record_and_len(self):
        trace = TraceRecorder()
        trace.record(1.0, "alpha", x=1)
        trace.record(2.0, "beta")
        assert len(trace) == 2

    def test_disabled_recorder_drops_everything(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "alpha")
        assert len(trace) == 0

    def test_kind_filter(self):
        trace = TraceRecorder(kinds={"keep"})
        trace.record(1.0, "keep")
        trace.record(2.0, "drop")
        assert len(trace) == 1
        assert trace.of_kind("drop") == []

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(1.0, "alpha")
        trace.clear()
        assert len(trace) == 0

    def test_iteration_preserves_order(self):
        trace = TraceRecorder()
        for index in range(5):
            trace.record(float(index), "tick", i=index)
        assert [r.get("i") for r in trace] == [0, 1, 2, 3, 4]


class TestQueries:
    def make_trace(self):
        trace = TraceRecorder()
        trace.record(1.0, "start", job=1)
        trace.record(2.0, "finish", job=1)
        trace.record(3.0, "start", job=2)
        return trace

    def test_of_kind(self):
        trace = self.make_trace()
        starts = trace.of_kind("start")
        assert [r.get("job") for r in starts] == [1, 2]

    def test_where(self):
        trace = self.make_trace()
        late = trace.where(lambda r: r.time >= 2.0)
        assert len(late) == 2

    def test_kinds_histogram(self):
        trace = self.make_trace()
        assert trace.kinds() == {"start": 2, "finish": 1}

    def test_last(self):
        trace = self.make_trace()
        assert trace.last().time == 3.0

    def test_last_of_kind(self):
        trace = self.make_trace()
        assert trace.last("finish").time == 2.0

    def test_last_missing_kind(self):
        trace = self.make_trace()
        assert trace.last("nonexistent") is None

    def test_last_empty(self):
        assert TraceRecorder().last() is None


class TestTraceRecord:
    def test_get_with_default(self):
        record = TraceRecord(1.0, "kind", {"a": 1})
        assert record.get("a") == 1
        assert record.get("b", "fallback") == "fallback"

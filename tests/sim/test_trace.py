"""Unit tests for the trace recorder."""

from repro.sim.trace import TraceRecord, TraceRecorder

#: Every trace kind the simulation stack may emit: the scheduler's five
#: (documented on :class:`repro.core.scheduler.SchedulerBase`) plus the
#: device layer's three.
DOCUMENTED_KINDS = {
    "job_release",
    "job_skip",
    "job_complete",
    "job_shed",
    "stage_release",
    "kernel_start",
    "kernel_done",
    "allocation",
}


class TestRecording:
    def test_record_and_len(self):
        trace = TraceRecorder()
        trace.record(1.0, "alpha", x=1)
        trace.record(2.0, "beta")
        assert len(trace) == 2

    def test_disabled_recorder_drops_everything(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "alpha")
        assert len(trace) == 0

    def test_kind_filter(self):
        trace = TraceRecorder(kinds={"keep"})
        trace.record(1.0, "keep")
        trace.record(2.0, "drop")
        assert len(trace) == 1
        assert trace.of_kind("drop") == []

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(1.0, "alpha")
        trace.clear()
        assert len(trace) == 0

    def test_iteration_preserves_order(self):
        trace = TraceRecorder()
        for index in range(5):
            trace.record(float(index), "tick", i=index)
        assert [r.get("i") for r in trace] == [0, 1, 2, 3, 4]


class TestQueries:
    def make_trace(self):
        trace = TraceRecorder()
        trace.record(1.0, "start", job=1)
        trace.record(2.0, "finish", job=1)
        trace.record(3.0, "start", job=2)
        return trace

    def test_of_kind(self):
        trace = self.make_trace()
        starts = trace.of_kind("start")
        assert [r.get("job") for r in starts] == [1, 2]

    def test_where(self):
        trace = self.make_trace()
        late = trace.where(lambda r: r.time >= 2.0)
        assert len(late) == 2

    def test_kinds_histogram(self):
        trace = self.make_trace()
        assert trace.kinds() == {"start": 2, "finish": 1}

    def test_last(self):
        trace = self.make_trace()
        assert trace.last().time == 3.0

    def test_last_of_kind(self):
        trace = self.make_trace()
        assert trace.last("finish").time == 2.0

    def test_last_missing_kind(self):
        trace = self.make_trace()
        assert trace.last("nonexistent") is None

    def test_last_empty(self):
        assert TraceRecorder().last() is None


class TestTraceRecord:
    def test_get_with_default(self):
        record = TraceRecord(1.0, "kind", {"a": 1})
        assert record.get("a") == 1
        assert record.get("b", "fallback") == "fallback"


class TestEmittedKinds:
    """The kinds a real run emits match the documented contract.

    Guards the :class:`SchedulerBase` docstring against silently growing
    or renaming trace kinds (it once omitted ``job_skip``).
    """

    _trace_cache = {}

    def run_traced(self, num_tasks, num_contexts=1):
        # one simulation per parameter set, shared across the test class
        key = (num_tasks, num_contexts)
        if key in self._trace_cache:
            return self._trace_cache[key]
        from repro.core.context_pool import ContextPoolConfig
        from repro.core.runner import RunConfig, run_simulation
        from repro.gpu.spec import RTX_2080_TI
        from repro.workloads.generator import identical_periodic_tasks

        pool = ContextPoolConfig.from_oversubscription(
            num_contexts, 1.0, RTX_2080_TI
        )
        tasks = identical_periodic_tasks(
            num_tasks, nominal_sms=pool.sms_per_context
        )
        result = run_simulation(
            tasks,
            RunConfig(
                pool=pool, duration=1.0, warmup=0.2, record_trace=True
            ),
        )
        self._trace_cache[key] = result.trace
        return result.trace

    def test_all_emitted_kinds_are_documented(self):
        # one heavily overloaded single context: releases, stages,
        # completions and source-dropped (skipped) jobs all occur
        trace = self.run_traced(num_tasks=30)
        emitted = set(trace.kinds())
        assert emitted <= DOCUMENTED_KINDS, emitted - DOCUMENTED_KINDS

    def test_overload_emits_job_skip(self):
        trace = self.run_traced(num_tasks=30)
        assert trace.of_kind("job_skip"), "overload should drop releases"

    def test_docstring_documents_every_scheduler_kind(self):
        from repro.core.scheduler import SchedulerBase

        doc = SchedulerBase.__doc__
        for kind in (
            "job_release",
            "job_skip",
            "job_complete",
            "job_shed",
            "stage_release",
        ):
            assert kind in doc, f"SchedulerBase docstring omits {kind!r}"

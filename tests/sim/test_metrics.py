"""Unit tests for FPS / DMR metrics."""

import pytest

from repro.sim.metrics import JobRecord, MetricsCollector, StageRecord


class TestJobRecord:
    def test_completed_on_time_not_missed(self):
        job = JobRecord("t", 0, release_time=0.0, absolute_deadline=1.0,
                        finish_time=0.8)
        assert not job.missed(now=10.0)

    def test_completed_late_is_missed(self):
        job = JobRecord("t", 0, 0.0, 1.0, finish_time=1.2)
        assert job.missed(now=10.0)

    def test_unfinished_past_deadline_is_missed(self):
        job = JobRecord("t", 0, 0.0, 1.0)
        assert job.missed(now=2.0)

    def test_unfinished_before_deadline_not_missed_yet(self):
        job = JobRecord("t", 0, 0.0, 1.0)
        assert not job.missed(now=0.5)

    def test_response_time(self):
        job = JobRecord("t", 0, 1.0, 2.0, finish_time=1.7)
        assert job.response_time == pytest.approx(0.7)

    def test_response_time_none_when_unfinished(self):
        assert JobRecord("t", 0, 0.0, 1.0).response_time is None


class TestStageRecord:
    def test_missed_when_late(self):
        stage = StageRecord("t", 0, 2, 0.0, 0.5, finish_time=0.6)
        assert stage.missed(now=10.0)

    def test_not_missed_when_on_time(self):
        stage = StageRecord("t", 0, 2, 0.0, 0.5, finish_time=0.4)
        assert not stage.missed(now=10.0)


class TestCollectorLifecycle:
    def test_release_then_complete(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 1.0)
        metrics.job_completed("a", 0, 0.5)
        assert metrics.completed_count() == 1

    def test_unknown_completion_raises(self):
        metrics = MetricsCollector()
        with pytest.raises(KeyError):
            metrics.job_completed("ghost", 0, 1.0)

    def test_double_completion_raises(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 1.0)
        metrics.job_completed("a", 0, 0.5)
        with pytest.raises(ValueError):
            metrics.job_completed("a", 0, 0.6)

    def test_released_count(self):
        metrics = MetricsCollector()
        for index in range(3):
            metrics.job_released("a", index, float(index), float(index) + 1)
        assert metrics.released_count() == 3


class TestFps:
    def test_fps_counts_completions_per_second(self):
        metrics = MetricsCollector()
        for index in range(10):
            metrics.job_released("a", index, index * 0.1, index * 0.1 + 1)
            metrics.job_completed("a", index, index * 0.1 + 0.05)
        assert metrics.total_fps(now=2.0) == pytest.approx(5.0)

    def test_fps_excludes_warmup_completions(self):
        metrics = MetricsCollector(warmup=1.0)
        metrics.job_released("a", 0, 0.0, 10.0)
        metrics.job_completed("a", 0, 0.5)  # inside warmup
        metrics.job_released("a", 1, 1.0, 10.0)
        metrics.job_completed("a", 1, 1.5)
        assert metrics.total_fps(now=2.0) == pytest.approx(1.0)

    def test_fps_zero_window(self):
        metrics = MetricsCollector(warmup=1.0)
        assert metrics.total_fps(now=1.0) == 0.0

    def test_per_task_fps(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 5.0)
        metrics.job_completed("a", 0, 0.5)
        metrics.job_released("b", 0, 0.0, 5.0)
        metrics.job_completed("b", 0, 0.6)
        metrics.job_released("b", 1, 1.0, 5.0)
        metrics.job_completed("b", 1, 1.1)
        per_task = metrics.per_task_fps(now=2.0)
        assert per_task["a"] == pytest.approx(0.5)
        assert per_task["b"] == pytest.approx(1.0)


class TestDmr:
    def test_no_jobs_zero_dmr(self):
        assert MetricsCollector().deadline_miss_rate(now=10.0) == 0.0

    def test_all_on_time(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 1.0)
        metrics.job_completed("a", 0, 0.9)
        assert metrics.deadline_miss_rate(now=2.0) == 0.0

    def test_half_missed(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 1.0)
        metrics.job_completed("a", 0, 0.9)
        metrics.job_released("a", 1, 0.0, 1.0)
        metrics.job_completed("a", 1, 1.5)
        assert metrics.deadline_miss_rate(now=2.0) == pytest.approx(0.5)

    def test_undecided_jobs_excluded(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 5.0)  # deadline not reached yet
        assert metrics.deadline_miss_rate(now=1.0) == 0.0

    def test_unfinished_expired_job_counts_missed(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 1.0)
        assert metrics.deadline_miss_rate(now=2.0) == 1.0

    def test_warmup_jobs_excluded(self):
        metrics = MetricsCollector(warmup=1.0)
        metrics.job_released("a", 0, 0.5, 0.9)  # inside warmup, missed
        metrics.job_released("a", 1, 1.5, 2.0)
        metrics.job_completed("a", 1, 1.8)
        assert metrics.deadline_miss_rate(now=3.0) == 0.0

    def test_per_task_dmr(self):
        metrics = MetricsCollector()
        metrics.job_released("good", 0, 0.0, 1.0)
        metrics.job_completed("good", 0, 0.5)
        metrics.job_released("bad", 0, 0.0, 1.0)
        per_task = metrics.per_task_dmr(now=2.0)
        assert per_task["good"] == 0.0
        assert per_task["bad"] == 1.0


class TestStageMetrics:
    def test_stage_miss_rate(self):
        metrics = MetricsCollector()
        record = metrics.stage_released("a", 0, 0, 0.0, 0.5)
        record.finish_time = 0.6
        record2 = metrics.stage_released("a", 0, 1, 0.5, 1.0)
        record2.finish_time = 0.9
        assert metrics.stage_miss_rate(now=2.0) == pytest.approx(0.5)

    def test_stage_miss_rate_empty(self):
        assert MetricsCollector().stage_miss_rate(now=1.0) == 0.0


class TestResponseTimes:
    def make_metrics(self):
        metrics = MetricsCollector()
        for index, response in enumerate([0.1, 0.3, 0.2, 0.5, 0.4]):
            metrics.job_released("a", index, 1.0, 2.0)
            metrics.job_completed("a", index, 1.0 + response)
        return metrics

    def test_sorted_response_times(self):
        metrics = self.make_metrics()
        assert metrics.response_times() == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])

    def test_median(self):
        metrics = self.make_metrics()
        assert metrics.response_time_percentile(0.5) == pytest.approx(0.3)

    def test_max_percentile(self):
        metrics = self.make_metrics()
        assert metrics.response_time_percentile(1.0) == pytest.approx(0.5)

    def test_percentile_empty(self):
        assert MetricsCollector().response_time_percentile(0.5) is None

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            self.make_metrics().response_time_percentile(1.5)


class TestPercentileNearestRank:
    """The ceil-based nearest-rank definition, pinned explicitly.

    A previous implementation used round-half-even, so half-way ranks
    (``fraction * n == k + 0.5``) flapped between adjacent order
    statistics as the sample count changed parity.  These pins make the
    ceil definition (and its stability) load-bearing.
    """

    def make_metrics(self, responses):
        metrics = MetricsCollector()
        for index, response in enumerate(responses):
            metrics.job_released("a", index, 1.0, 2.0)
            metrics.job_completed("a", index, 1.0 + response)
        return metrics

    def test_half_way_rank_rounds_up_not_half_even(self):
        # n=5, p50: rank ceil(2.5) = 3 -> third order statistic.  The old
        # round-half-even picked rank 2 here (round(2.5) == 2).
        metrics = self.make_metrics([0.1, 0.2, 0.3, 0.4, 0.5])
        assert metrics.response_time_percentile(0.5) == pytest.approx(0.3)
        # n=5, p30: ceil(1.5) = 2; round-half-even also gave 2 -- agreement
        # on one side of the flap, disagreement on the other, was the bug.
        assert metrics.response_time_percentile(0.3) == pytest.approx(0.2)

    def test_rank_table_across_sample_parities(self):
        for n, fraction, expected_rank in [
            (4, 0.5, 2),
            (5, 0.5, 3),
            (6, 0.5, 3),
            (100, 0.99, 99),
            (101, 0.99, 100),
            (10, 0.999, 10),
        ]:
            values = [float(i + 1) for i in range(n)]
            metrics = self.make_metrics(values)
            assert metrics.response_time_percentile(fraction) == pytest.approx(
                float(expected_rank)
            ), (n, fraction)

    def test_fraction_zero_is_minimum(self):
        metrics = self.make_metrics([0.3, 0.1, 0.2])
        assert metrics.response_time_percentile(0.0) == pytest.approx(0.1)

    def test_monotone_in_fraction(self):
        metrics = self.make_metrics([0.5, 0.1, 0.4, 0.2, 0.3, 0.6, 0.7])
        values = [
            metrics.response_time_percentile(f / 100.0) for f in range(101)
        ]
        assert values == sorted(values)


class TestWarmupBoundaries:
    """Exact boundary semantics: release == warmup and finish == now."""

    def test_release_exactly_at_warmup_counts_for_dmr(self):
        metrics = MetricsCollector(warmup=1.0)
        metrics.job_released("a", 0, 1.0, 1.5)  # release == warmup
        assert metrics.deadline_miss_rate(2.0) == 1.0
        assert metrics.per_task_dmr(2.0) == {"a": 1.0}

    def test_release_just_before_warmup_excluded_from_dmr(self):
        metrics = MetricsCollector(warmup=1.0)
        metrics.job_released("a", 0, 1.0 - 1e-12, 1.5)
        assert metrics.deadline_miss_rate(2.0) == 0.0
        assert metrics.per_task_dmr(2.0) == {}

    def test_release_exactly_at_warmup_counts_for_fps(self):
        # One population for every per-job metric: FPS counts the same
        # release >= warmup jobs DMR measures (boundary included).
        metrics = MetricsCollector(warmup=1.0)
        metrics.job_released("a", 0, 1.0, 3.0)  # release == warmup
        metrics.job_completed("a", 0, 1.5)
        assert metrics.total_fps(2.0) == pytest.approx(1.0)
        assert metrics.per_task_fps(2.0) == {"a": pytest.approx(1.0)}

    def test_warmup_released_job_excluded_from_fps(self):
        # A warmup-released job used to count for FPS while being
        # excluded from DMR; both now measure the same population, so
        # its completion after warmup contributes to neither.
        metrics = MetricsCollector(warmup=1.0)
        metrics.job_released("a", 0, 1.0 - 1e-12, 3.0)
        metrics.job_completed("a", 0, 1.5)  # finishes inside the window
        assert metrics.total_fps(2.0) == 0.0
        assert metrics.per_task_fps(2.0) == {}
        assert metrics.goodput(2.0) == 0.0
        assert metrics.deadline_miss_rate(2.0) == 0.0

    def test_finish_exactly_at_warmup_still_needs_post_warmup_release(self):
        # finish == warmup is not enough under the unified rule: the
        # release decides the population, and this one pre-dates warmup
        metrics = MetricsCollector(warmup=1.0)
        metrics.job_released("a", 0, 0.5, 3.0)
        metrics.job_completed("a", 0, 1.0)  # finish == warmup
        assert metrics.total_fps(2.0) == 0.0
        assert metrics.deadline_miss_rate(2.0) == 0.0

    def test_finish_exactly_at_now_counts_for_fps(self):
        metrics = MetricsCollector(warmup=1.0)
        metrics.job_released("a", 0, 1.5, 3.0)
        metrics.job_completed("a", 0, 2.0)  # finish == now
        assert metrics.total_fps(2.0) == pytest.approx(1.0)
        assert metrics.per_task_fps(2.0) == {"a": pytest.approx(1.0)}

    def test_finish_just_after_now_excluded_from_fps(self):
        metrics = MetricsCollector(warmup=1.0)
        metrics.job_released("a", 0, 1.5, 3.0)
        metrics.job_completed("a", 0, 2.0 + 1e-12)
        assert metrics.total_fps(2.0) == 0.0
        assert metrics.per_task_fps(2.0) == {}

    def test_goodput_boundaries_match_fps_and_deadline(self):
        metrics = MetricsCollector(warmup=1.0)
        metrics.job_released("a", 0, 1.0, 2.0)
        metrics.job_completed("a", 0, 2.0)  # finish == deadline == now
        assert metrics.goodput(2.0) == pytest.approx(1.0)
        metrics.job_released("a", 1, 1.0, 1.2)
        metrics.job_completed("a", 1, 1.5)  # late: fps yes, goodput no
        assert metrics.total_fps(2.0) == pytest.approx(2.0)
        assert metrics.goodput(2.0) == pytest.approx(1.0)


class TestRejectionAccounting:
    def test_rejected_jobs_leave_dmr_and_feed_rate(self):
        metrics = MetricsCollector(warmup=0.0)
        metrics.job_released("a", 0, 0.1, 0.2)
        metrics.job_rejected("a", 0)
        metrics.job_released("a", 1, 0.3, 0.4)
        assert metrics.deadline_miss_rate(1.0) == 1.0  # only job 1 counts
        assert metrics.rejection_rate(1.0) == 0.5
        assert metrics.rejected_count() == 1

    def test_rejection_rate_window_is_release_based(self):
        metrics = MetricsCollector(warmup=1.0)
        metrics.job_released("a", 0, 0.5, 0.6)  # pre-warmup
        metrics.job_rejected("a", 0)
        metrics.job_released("a", 1, 1.0, 1.1)  # release == warmup
        metrics.job_rejected("a", 1)
        assert metrics.rejection_rate(2.0) == 1.0
        assert metrics.rejected_count() == 2  # warmup included in the raw count

    def test_rejection_rate_boundary_matches_other_metrics(self):
        """The population is ``release_time >= warmup``, same as DMR/FPS.

        Edge pins: a release at exactly ``warmup`` is post-warmup and
        counted; a release at exactly ``now`` is counted too (``now`` does
        not bound the population — an earlier implementation filtered
        ``release_time <= now``, which both dropped a release at exactly
        ``now`` under float noise and disagreed with the trace-engine
        accumulator's release-based population).
        """
        metrics = MetricsCollector(warmup=1.0)
        metrics.job_released("a", 0, 1.0, 2.0)  # release == warmup: counted
        metrics.job_rejected("a", 0)
        assert metrics.rejection_rate(1.0) == 1.0  # release == now: counted
        metrics.job_released("a", 1, 3.0, 4.0)  # admitted, not rejected
        assert metrics.rejection_rate(3.0) == 0.5
        # now below every release: population is still release-based, not
        # clock-based, matching TraceMetricsAccumulator.finalize().
        assert metrics.rejection_rate(0.9) == 0.5

    def test_reject_unknown_job_raises(self):
        with pytest.raises(KeyError):
            MetricsCollector().job_rejected("ghost", 0)

    def test_reject_after_completion_raises(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 1.0)
        metrics.job_completed("a", 0, 0.5)
        with pytest.raises(ValueError):
            metrics.job_rejected("a", 0)

    def test_completion_after_rejection_raises(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 1.0)
        metrics.job_rejected("a", 0)
        with pytest.raises(ValueError):
            metrics.job_completed("a", 0, 0.5)


class TestQueueDepth:
    def test_validates_inputs(self):
        metrics = MetricsCollector()
        with pytest.raises(ValueError):
            metrics.record_queue_depth(0.0, -1)
        metrics.record_queue_depth(1.0, 2)
        with pytest.raises(ValueError):
            metrics.record_queue_depth(0.5, 1)  # time rewound

    def test_time_weighted_mean(self):
        metrics = MetricsCollector(warmup=0.0)
        metrics.record_queue_depth(0.0, 1)
        metrics.record_queue_depth(1.0, 3)
        metrics.record_queue_depth(3.0, 0)
        # 1 for 1s, 3 for 2s, 0 for 1s over [0, 4] -> 7/4.
        assert metrics.mean_queue_depth(4.0) == pytest.approx(1.75)
        assert metrics.max_queue_depth(4.0) == 3

    def test_carries_depth_into_the_warmup_window(self):
        metrics = MetricsCollector(warmup=2.0)
        metrics.record_queue_depth(0.0, 5)  # in effect when warmup starts
        metrics.record_queue_depth(3.0, 1)
        # 5 for [2, 3], 1 for [3, 4] -> 6/2.
        assert metrics.mean_queue_depth(4.0) == pytest.approx(3.0)
        assert metrics.max_queue_depth(4.0) == 5  # the carried-in peak

    def test_empty_is_zero(self):
        metrics = MetricsCollector()
        assert metrics.mean_queue_depth(1.0) == 0.0
        assert metrics.max_queue_depth(1.0) == 0

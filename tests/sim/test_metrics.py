"""Unit tests for FPS / DMR metrics."""

import pytest

from repro.sim.metrics import JobRecord, MetricsCollector, StageRecord


class TestJobRecord:
    def test_completed_on_time_not_missed(self):
        job = JobRecord("t", 0, release_time=0.0, absolute_deadline=1.0,
                        finish_time=0.8)
        assert not job.missed(now=10.0)

    def test_completed_late_is_missed(self):
        job = JobRecord("t", 0, 0.0, 1.0, finish_time=1.2)
        assert job.missed(now=10.0)

    def test_unfinished_past_deadline_is_missed(self):
        job = JobRecord("t", 0, 0.0, 1.0)
        assert job.missed(now=2.0)

    def test_unfinished_before_deadline_not_missed_yet(self):
        job = JobRecord("t", 0, 0.0, 1.0)
        assert not job.missed(now=0.5)

    def test_response_time(self):
        job = JobRecord("t", 0, 1.0, 2.0, finish_time=1.7)
        assert job.response_time == pytest.approx(0.7)

    def test_response_time_none_when_unfinished(self):
        assert JobRecord("t", 0, 0.0, 1.0).response_time is None


class TestStageRecord:
    def test_missed_when_late(self):
        stage = StageRecord("t", 0, 2, 0.0, 0.5, finish_time=0.6)
        assert stage.missed(now=10.0)

    def test_not_missed_when_on_time(self):
        stage = StageRecord("t", 0, 2, 0.0, 0.5, finish_time=0.4)
        assert not stage.missed(now=10.0)


class TestCollectorLifecycle:
    def test_release_then_complete(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 1.0)
        metrics.job_completed("a", 0, 0.5)
        assert metrics.completed_count() == 1

    def test_unknown_completion_raises(self):
        metrics = MetricsCollector()
        with pytest.raises(KeyError):
            metrics.job_completed("ghost", 0, 1.0)

    def test_double_completion_raises(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 1.0)
        metrics.job_completed("a", 0, 0.5)
        with pytest.raises(ValueError):
            metrics.job_completed("a", 0, 0.6)

    def test_released_count(self):
        metrics = MetricsCollector()
        for index in range(3):
            metrics.job_released("a", index, float(index), float(index) + 1)
        assert metrics.released_count() == 3


class TestFps:
    def test_fps_counts_completions_per_second(self):
        metrics = MetricsCollector()
        for index in range(10):
            metrics.job_released("a", index, index * 0.1, index * 0.1 + 1)
            metrics.job_completed("a", index, index * 0.1 + 0.05)
        assert metrics.total_fps(now=2.0) == pytest.approx(5.0)

    def test_fps_excludes_warmup_completions(self):
        metrics = MetricsCollector(warmup=1.0)
        metrics.job_released("a", 0, 0.0, 10.0)
        metrics.job_completed("a", 0, 0.5)  # inside warmup
        metrics.job_released("a", 1, 1.0, 10.0)
        metrics.job_completed("a", 1, 1.5)
        assert metrics.total_fps(now=2.0) == pytest.approx(1.0)

    def test_fps_zero_window(self):
        metrics = MetricsCollector(warmup=1.0)
        assert metrics.total_fps(now=1.0) == 0.0

    def test_per_task_fps(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 5.0)
        metrics.job_completed("a", 0, 0.5)
        metrics.job_released("b", 0, 0.0, 5.0)
        metrics.job_completed("b", 0, 0.6)
        metrics.job_released("b", 1, 1.0, 5.0)
        metrics.job_completed("b", 1, 1.1)
        per_task = metrics.per_task_fps(now=2.0)
        assert per_task["a"] == pytest.approx(0.5)
        assert per_task["b"] == pytest.approx(1.0)


class TestDmr:
    def test_no_jobs_zero_dmr(self):
        assert MetricsCollector().deadline_miss_rate(now=10.0) == 0.0

    def test_all_on_time(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 1.0)
        metrics.job_completed("a", 0, 0.9)
        assert metrics.deadline_miss_rate(now=2.0) == 0.0

    def test_half_missed(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 1.0)
        metrics.job_completed("a", 0, 0.9)
        metrics.job_released("a", 1, 0.0, 1.0)
        metrics.job_completed("a", 1, 1.5)
        assert metrics.deadline_miss_rate(now=2.0) == pytest.approx(0.5)

    def test_undecided_jobs_excluded(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 5.0)  # deadline not reached yet
        assert metrics.deadline_miss_rate(now=1.0) == 0.0

    def test_unfinished_expired_job_counts_missed(self):
        metrics = MetricsCollector()
        metrics.job_released("a", 0, 0.0, 1.0)
        assert metrics.deadline_miss_rate(now=2.0) == 1.0

    def test_warmup_jobs_excluded(self):
        metrics = MetricsCollector(warmup=1.0)
        metrics.job_released("a", 0, 0.5, 0.9)  # inside warmup, missed
        metrics.job_released("a", 1, 1.5, 2.0)
        metrics.job_completed("a", 1, 1.8)
        assert metrics.deadline_miss_rate(now=3.0) == 0.0

    def test_per_task_dmr(self):
        metrics = MetricsCollector()
        metrics.job_released("good", 0, 0.0, 1.0)
        metrics.job_completed("good", 0, 0.5)
        metrics.job_released("bad", 0, 0.0, 1.0)
        per_task = metrics.per_task_dmr(now=2.0)
        assert per_task["good"] == 0.0
        assert per_task["bad"] == 1.0


class TestStageMetrics:
    def test_stage_miss_rate(self):
        metrics = MetricsCollector()
        record = metrics.stage_released("a", 0, 0, 0.0, 0.5)
        record.finish_time = 0.6
        record2 = metrics.stage_released("a", 0, 1, 0.5, 1.0)
        record2.finish_time = 0.9
        assert metrics.stage_miss_rate(now=2.0) == pytest.approx(0.5)

    def test_stage_miss_rate_empty(self):
        assert MetricsCollector().stage_miss_rate(now=1.0) == 0.0


class TestResponseTimes:
    def make_metrics(self):
        metrics = MetricsCollector()
        for index, response in enumerate([0.1, 0.3, 0.2, 0.5, 0.4]):
            metrics.job_released("a", index, 1.0, 2.0)
            metrics.job_completed("a", index, 1.0 + response)
        return metrics

    def test_sorted_response_times(self):
        metrics = self.make_metrics()
        assert metrics.response_times() == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])

    def test_median(self):
        metrics = self.make_metrics()
        assert metrics.response_time_percentile(0.5) == pytest.approx(0.3)

    def test_max_percentile(self):
        metrics = self.make_metrics()
        assert metrics.response_time_percentile(1.0) == pytest.approx(0.5)

    def test_percentile_empty(self):
        assert MetricsCollector().response_time_percentile(0.5) is None

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            self.make_metrics().response_time_percentile(1.5)

"""Unit tests for time helpers."""

import pytest

from repro.sim.clock import TIME_EPS, is_before, times_close, validate_time


class TestTimesClose:
    def test_equal_times(self):
        assert times_close(1.0, 1.0)

    def test_within_epsilon(self):
        assert times_close(1.0, 1.0 + TIME_EPS / 2)

    def test_beyond_epsilon(self):
        assert not times_close(1.0, 1.0 + 10 * TIME_EPS)

    def test_custom_epsilon(self):
        assert times_close(1.0, 1.5, eps=1.0)


class TestIsBefore:
    def test_strictly_before(self):
        assert is_before(1.0, 2.0)

    def test_not_before_when_equal(self):
        assert not is_before(1.0, 1.0)

    def test_simultaneous_within_epsilon(self):
        assert not is_before(1.0, 1.0 + TIME_EPS / 10)

    def test_after(self):
        assert not is_before(2.0, 1.0)


class TestValidateTime:
    def test_accepts_zero(self):
        assert validate_time(0.0) == 0.0

    def test_accepts_positive(self):
        assert validate_time(12.5) == 12.5

    def test_coerces_int(self):
        value = validate_time(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_time(-0.1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            validate_time(float("nan"))

    def test_rejects_infinity(self):
        with pytest.raises(ValueError):
            validate_time(float("inf"))

    def test_rejects_non_number(self):
        with pytest.raises(TypeError):
            validate_time("soon")

    def test_error_mentions_name(self):
        with pytest.raises(ValueError, match="horizon"):
            validate_time(-1.0, name="horizon")

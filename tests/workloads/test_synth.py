"""Synthesis invariants: UUniFast, determinism, axes semantics."""

import math
import random

import pytest

from repro.workloads.synth import (
    CAMERA_PERIODS,
    SynthSpec,
    get_synth_scenario,
    list_synth_scenarios,
    synthesize_taskset,
    taskset_signature,
    uunifast,
    uunifast_discard,
)
from repro.workloads.synth.taskset import CAMERA_BASE_FPS
from repro.workloads.synth.zoo import get_mix

NOMINAL_SMS = 34.0


class TestUUniFast:
    @pytest.mark.parametrize("n,total", [(1, 0.5), (4, 2.0), (16, 3.5), (40, 8.0)])
    def test_sums_to_target_within_tolerance(self, n, total):
        utils = uunifast(n, total, random.Random(0))
        assert len(utils) == n
        assert math.isclose(sum(utils), total, rel_tol=1e-12)

    def test_values_positive(self):
        for seed in range(10):
            utils = uunifast(12, 4.0, random.Random(seed))
            assert all(u > 0 for u in utils)

    def test_deterministic_for_fixed_seed(self):
        assert uunifast(8, 2.0, random.Random(7)) == uunifast(
            8, 2.0, random.Random(7)
        )

    def test_scales_linearly_with_target_on_fixed_stream(self):
        # the property the utilization axis relies on: same seed => same
        # relative partition, scaled by the target
        a = uunifast(6, 1.0, random.Random(3))
        b = uunifast(6, 2.5, random.Random(3))
        for x, y in zip(a, b):
            assert y == pytest.approx(2.5 * x, rel=1e-12)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            uunifast(0, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            uunifast(4, 0.0, random.Random(0))


class TestUUniFastDiscard:
    def test_respects_cap(self):
        for seed in range(10):
            utils = uunifast_discard(
                10, 3.0, random.Random(seed), max_utilization=0.5
            )
            assert max(utils) <= 0.5
            assert math.isclose(sum(utils), 3.0, rel_tol=1e-12)

    def test_infeasible_cap_rejected(self):
        with pytest.raises(ValueError):
            uunifast_discard(4, 4.0, random.Random(0), max_utilization=0.5)


class TestSynthSpecValidation:
    def test_bad_axes_rejected(self):
        with pytest.raises(ValueError):
            SynthSpec(num_tasks=0, total_utilization=1.0)
        with pytest.raises(ValueError):
            SynthSpec(num_tasks=2, total_utilization=-1.0)
        with pytest.raises(ValueError):
            SynthSpec(num_tasks=2, total_utilization=1.0, period_class="weekly")
        with pytest.raises(ValueError):
            SynthSpec(num_tasks=2, total_utilization=1.0, deadline_mode="soft")
        with pytest.raises(ValueError):
            SynthSpec(num_tasks=2, total_utilization=1.0, stage_choices=())
        with pytest.raises(ValueError):
            SynthSpec(
                num_tasks=2, total_utilization=1.0, constrained_ratio=(0.9, 0.2)
            )

    def test_dict_roundtrip(self):
        spec = SynthSpec(
            num_tasks=5,
            total_utilization=2.0,
            period_class="loguniform",
            deadline_mode="constrained",
            seed=9,
        )
        assert SynthSpec.from_dict(spec.config_dict()) == spec


class TestSynthesizeTaskset:
    def spec(self, **overrides):
        fields = dict(
            num_tasks=6, total_utilization=2.0, zoo_mix="fleet", seed=11
        )
        fields.update(overrides)
        return SynthSpec(**fields)

    @pytest.mark.parametrize("period_class", ["implied", "camera", "loguniform"])
    def test_total_utilization_hits_target(self, period_class):
        tasks = synthesize_taskset(
            self.spec(period_class=period_class), NOMINAL_SMS
        )
        assert tasks.total_utilization() == pytest.approx(2.0, rel=1e-9)

    def test_fixed_seed_is_bit_identical(self):
        spec = self.spec(period_class="loguniform", deadline_mode="constrained")
        first = synthesize_taskset(spec, NOMINAL_SMS)
        second = synthesize_taskset(spec, NOMINAL_SMS)
        assert taskset_signature(first) == taskset_signature(second)

    def test_different_seeds_differ(self):
        a = synthesize_taskset(self.spec(seed=1), NOMINAL_SMS)
        b = synthesize_taskset(self.spec(seed=2), NOMINAL_SMS)
        assert taskset_signature(a) != taskset_signature(b)

    def test_tasksets_validate_and_have_unique_names(self):
        tasks = synthesize_taskset(self.spec(), NOMINAL_SMS)
        tasks.validate()  # raises on inconsistency
        names = [t.name for t in tasks]
        assert len(set(names)) == len(names)

    def test_models_come_from_the_mix(self):
        mix_models = {key for key, _ in get_mix("fleet")}
        tasks = synthesize_taskset(self.spec(num_tasks=12), NOMINAL_SMS)
        for task in tasks:
            model = task.name.split("_", 1)[1]
            assert model in mix_models

    def test_stage_counts_from_choices(self):
        tasks = synthesize_taskset(
            self.spec(num_tasks=10, stage_choices=(3, 5)), NOMINAL_SMS
        )
        assert {t.num_stages for t in tasks} <= {3, 5}

    def test_camera_class_lands_on_harmonic_ladder(self):
        tasks = synthesize_taskset(
            self.spec(num_tasks=10, period_class="camera"), NOMINAL_SMS
        )
        # all rates are one global scale times a ladder rung: pairwise
        # ratios must be exact powers of two
        rates = sorted(t.fps for t in tasks)
        base = rates[0]
        for rate in rates:
            assert math.log2(rate / base) == pytest.approx(
                round(math.log2(rate / base)), abs=1e-9
            )

    def test_constrained_deadlines_within_period(self):
        tasks = synthesize_taskset(
            self.spec(deadline_mode="constrained", num_tasks=10), NOMINAL_SMS
        )
        for task in tasks:
            assert 0.7 * task.period <= task.relative_deadline <= task.period

    def test_implicit_deadlines_equal_period(self):
        tasks = synthesize_taskset(self.spec(), NOMINAL_SMS)
        for task in tasks:
            assert task.relative_deadline == task.period

    def test_monolithic_matches_staged_timing_exactly(self):
        spec = self.spec(period_class="camera")
        staged = synthesize_taskset(spec, NOMINAL_SMS)
        mono = synthesize_taskset(spec, NOMINAL_SMS, monolithic=True)
        assert [t.period for t in mono] == [t.period for t in staged]
        assert [t.relative_deadline for t in mono] == [
            t.relative_deadline for t in staged
        ]
        assert [t.release_offset for t in mono] == [
            t.release_offset for t in staged
        ]
        assert all(t.num_stages == 1 for t in mono)

    def test_offsets_within_period_and_stagger_off(self):
        staggered = synthesize_taskset(self.spec(num_tasks=8), NOMINAL_SMS)
        for task in staggered:
            assert 0.0 <= task.release_offset < task.period
        synchronous = synthesize_taskset(
            self.spec(num_tasks=8, stagger=False), NOMINAL_SMS
        )
        assert all(t.release_offset == 0.0 for t in synchronous)

    def test_task_mix_invariant_across_utilization_targets(self):
        # specs differing only in total_utilization must synthesize the
        # same model/stage/deadline draws: uunifast_discard's rejection
        # count varies with the target, so the draws happen first on the
        # RNG stream (this is what makes a utilization-axis pivot sweep
        # ramp load on one fixed mix)
        def mix(total):
            tasks = synthesize_taskset(
                self.spec(num_tasks=8, total_utilization=total), NOMINAL_SMS
            )
            return [(t.name, t.num_stages) for t in tasks]

        assert mix(1.0) == mix(2.0) == mix(4.5)

    def test_high_target_relaxes_the_discard_cap(self):
        # 5 tasks at total 4.0 is infeasible under the default 0.8 cap;
        # the synthesizer must relax rather than spin forever
        tasks = synthesize_taskset(
            self.spec(num_tasks=5, total_utilization=4.0), NOMINAL_SMS
        )
        assert tasks.total_utilization() == pytest.approx(4.0, rel=1e-9)


class TestScenarioRegistry:
    def test_named_scenarios_registered(self):
        names = {s.name for s in list_synth_scenarios()}
        assert {"mixed_fleet", "surveillance_burst", "util_ramp"} <= names

    def test_unknown_scenario_lists_known(self):
        with pytest.raises(KeyError) as excinfo:
            get_synth_scenario("missing")
        assert "mixed_fleet" in str(excinfo.value)

    def test_scenario_spec_applies_overrides(self):
        scenario = get_synth_scenario("mixed_fleet")
        spec = scenario.spec(
            num_tasks=4, seed=1, total_utilization=3.0, period_class="implied"
        )
        assert spec.total_utilization == 3.0
        assert spec.period_class == "implied"
        assert spec.zoo_mix == scenario.zoo_mix  # default preserved

    def test_camera_constants_exported(self):
        assert 1.0 / 30.0 in CAMERA_PERIODS
        assert CAMERA_BASE_FPS == 15.0

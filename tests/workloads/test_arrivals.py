"""The arrivals subsystem: processes, registry, determinism, replay.

Includes the fast-tier seed-determinism smoke: a pinned golden hash of
the first arrivals of every registered process x 2 seeds, so any change
to a stream's draws (new RNG, reordered draws, libm-visible formula
change) fails loudly instead of silently invalidating cached sweeps.
"""

import hashlib
import pickle

import pytest

from repro.core.task import TaskSpec
from repro.dnn.models import build_simple_cnn
from repro.workloads.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    MmppArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    ReplayArrivals,
    arrival_names,
    derive_arrival_seed,
    list_arrivals,
    read_arrival_log,
    record_arrivals,
    register_arrival,
    resolve_arrival,
    write_arrival_log,
)
from repro.workloads.generator import identical_periodic_tasks


def make_task(name="cam0", period=1 / 30, offset=0.0):
    return TaskSpec(
        name=name,
        graph=build_simple_cnn(),
        period=period,
        relative_deadline=period,
        release_offset=offset,
    )


def take(stream, n):
    return [next(stream) for _ in range(n)]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_are_registered(self):
        assert arrival_names() == (
            "periodic", "poisson", "mmpp", "diurnal", "replay",
        )

    def test_listing_carries_descriptions(self):
        assert all(desc for _, desc in list_arrivals())

    def test_resolve_spec_with_parameters(self):
        process = resolve_arrival("mmpp:burst=6,calm=0.5")
        assert isinstance(process, MmppArrivals)
        assert process.burst == 6
        assert process.calm == 0.5

    def test_resolve_passes_instances_through(self):
        process = PoissonArrivals(rate_scale=2.0)
        assert resolve_arrival(process) is process

    def test_resolve_rejects_unknown_and_bad_params(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            resolve_arrival("bogus")
        with pytest.raises(ValueError, match="bad parameters"):
            resolve_arrival("poisson:nope=1")
        with pytest.raises(ValueError, match="empty arrival spec"):
            resolve_arrival("")

    def test_custom_registration_is_resolvable(self):
        class EveryOther(ArrivalProcess):
            name = "every_other_test"

            def stream(self, task, seed):
                def generate():
                    when = task.release_offset
                    while True:
                        yield when
                        when += 2.0 * task.period

                return generate()

        register_arrival("every_other_test", EveryOther, "test-only")
        try:
            assert isinstance(
                resolve_arrival("every_other_test"), EveryOther
            )
        finally:
            from repro.workloads.arrivals.base import _ARRIVAL_REGISTRY

            del _ARRIVAL_REGISTRY["every_other_test"]


# ---------------------------------------------------------------------------
# Seed derivation and determinism
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_arrival_seed_is_stable_and_namespaced(self):
        a = derive_arrival_seed(0, "poisson", "cam0")
        assert a == derive_arrival_seed(0, "poisson", "cam0")
        assert a != derive_arrival_seed(1, "poisson", "cam0")
        assert a != derive_arrival_seed(0, "mmpp", "cam0")
        assert a != derive_arrival_seed(0, "poisson", "cam1")

    @pytest.mark.parametrize(
        "process",
        [PoissonArrivals(), MmppArrivals(), DiurnalArrivals()],
        ids=lambda p: p.name,
    )
    def test_streams_are_seed_deterministic(self, process):
        task = make_task()
        first = take(process.stream(task, 42), 50)
        second = take(process.stream(task, 42), 50)
        assert first == second
        assert take(process.stream(task, 43), 50) != first

    @pytest.mark.parametrize(
        "process",
        [
            PeriodicArrivals(),
            PoissonArrivals(),
            MmppArrivals(),
            DiurnalArrivals(),
            ReplayArrivals(events=[(0.0, "cam0"), (0.5, "cam0")]),
        ],
        ids=lambda p: p.name,
    )
    def test_streams_start_at_offset_and_never_decrease(self, process):
        task = make_task(offset=0.25)
        events = (
            [(0.25, "cam0"), (0.5, "cam0")]
            if isinstance(process, ReplayArrivals)
            else None
        )
        if events:
            process = ReplayArrivals(events=events)
        stream = process.stream(task, 7)
        times = take(stream, 2 if events else 50)
        assert times[0] >= task.release_offset
        assert all(b >= a for a, b in zip(times, times[1:]))

    @pytest.mark.parametrize(
        "process",
        [
            PeriodicArrivals(),
            PoissonArrivals(rate_scale=1.5),
            MmppArrivals(burst=6.0),
            DiurnalArrivals(peak=4.0),
            ReplayArrivals(events=[(0.0, "cam0")]),
        ],
        ids=lambda p: p.name,
    )
    def test_processes_are_picklable_and_equivalent(self, process):
        clone = pickle.loads(pickle.dumps(process))
        task = make_task()
        n = 1 if isinstance(process, ReplayArrivals) else 20
        assert take(process.stream(task, 5), n) == take(
            clone.stream(task, 5), n
        )

    def test_streams_are_interleaving_independent(self):
        """Pulling one task's stream never perturbs another task's."""
        process = PoissonArrivals()
        a, b = make_task("cam0"), make_task("cam1")
        seed_a = derive_arrival_seed(0, process.name, "cam0")
        seed_b = derive_arrival_seed(0, process.name, "cam1")
        solo = take(process.stream(a, seed_a), 30)
        stream_a = process.stream(a, seed_a)
        stream_b = process.stream(b, seed_b)
        interleaved = []
        for _ in range(30):
            interleaved.append(next(stream_a))
            next(stream_b)
        assert interleaved == solo


# ---------------------------------------------------------------------------
# Per-process behaviour
# ---------------------------------------------------------------------------
class TestPeriodic:
    def test_exact_legacy_float_sequence(self):
        """Repeated addition, not multiplication: when_k = (...((o+p)+p)...)."""
        task = make_task(period=1 / 30, offset=0.01)
        times = take(PeriodicArrivals().stream(task, 0), 100)
        when = task.release_offset
        for observed in times:
            assert observed == when  # exact float equality, bit for bit
            when = when + task.period

    def test_seed_is_ignored(self):
        task = make_task()
        assert take(PeriodicArrivals().stream(task, 0), 20) == take(
            PeriodicArrivals().stream(task, 999), 20
        )


class TestPoisson:
    def test_mean_rate_tracks_rate_scale(self):
        task = make_task(period=0.1)
        for scale in (0.5, 1.0, 2.0):
            times = take(PoissonArrivals(rate_scale=scale).stream(task, 3), 4000)
            mean_gap = (times[-1] - times[0]) / (len(times) - 1)
            assert mean_gap == pytest.approx(task.period / scale, rel=0.1)

    def test_rejects_nonpositive_rate_scale(self):
        with pytest.raises(ValueError, match="rate_scale"):
            PoissonArrivals(rate_scale=0.0)


class TestMmpp:
    def test_time_average_rate_between_states(self):
        task = make_task(period=0.1)
        process = MmppArrivals(burst=4.0, calm=0.25, sojourn_periods=8.0)
        times = take(process.stream(task, 11), 8000)
        rate = (len(times) - 1) / (times[-1] - times[0])
        calm_rate = 0.25 / task.period
        burst_rate = 4.0 / task.period
        # Equal mean sojourns: the long-run rate is the plain average.
        assert calm_rate < rate < burst_rate
        assert rate == pytest.approx((calm_rate + burst_rate) / 2, rel=0.25)

    def test_burst_gaps_are_shorter_than_calm_gaps(self):
        task = make_task(period=0.1)
        process = MmppArrivals(burst=8.0, calm=0.25, sojourn_periods=20.0)
        times = take(process.stream(task, 5), 4000)
        gaps = sorted(
            b - a for a, b in zip(times, times[1:]) if b > a
        )
        # Bimodal gap distribution: the shortest quartile is far below
        # the longest quartile (>= the two state rates' ratio would give).
        q = len(gaps) // 4
        assert sum(gaps[:q]) / q < sum(gaps[-q:]) / q / 4

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="state rates"):
            MmppArrivals(burst=0.0)
        with pytest.raises(ValueError, match="sojourn_periods"):
            MmppArrivals(sojourn_periods=-1.0)


class TestDiurnal:
    def test_rate_follows_the_phase_curve(self):
        task = make_task(period=0.01)
        process = DiurnalArrivals(day=2.0, trough=0.25, peak=4.0)
        times = take(process.stream(task, 9), 20000)
        horizon = times[-1]
        full_days = int(horizon // 2.0)
        assert full_days >= 2
        # Count arrivals landing in trough vs peak quarters of whole days.
        trough_count = peak_count = 0
        for t in times:
            day, pos = divmod(t, 2.0)
            if day >= full_days:
                break
            phase = pos / 2.0
            if phase < 0.25:
                trough_count += 1
            elif 0.5 <= phase < 0.75:
                peak_count += 1
        assert peak_count > 4 * trough_count  # 16x rate ratio, halved margin

    def test_phase_boundaries(self):
        process = DiurnalArrivals(day=2.0, trough=0.25, peak=3.0)
        base = 1.0
        rate, boundary = process._rate_at(0.0, base)
        assert rate == 0.25 and boundary == 0.5
        rate, boundary = process._rate_at(1.0, base)
        assert rate == 3.0 and boundary == 1.5
        rate, boundary = process._rate_at(1.9, base)
        assert rate == pytest.approx(1.625) and boundary == 2.0
        # Second day repeats the curve.
        rate, boundary = process._rate_at(2.0, base)
        assert rate == 0.25 and boundary == 2.5

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="day"):
            DiurnalArrivals(day=0.0)
        with pytest.raises(ValueError, match="rate multipliers"):
            DiurnalArrivals(trough=-1.0)


# ---------------------------------------------------------------------------
# Replay: logs, recording, round trips
# ---------------------------------------------------------------------------
class TestReplay:
    def test_log_round_trip(self, tmp_path):
        path = tmp_path / "arrivals.jsonl"
        events = [(0.0, "cam0"), (0.01, "cam1"), (0.02, "cam0")]
        assert write_arrival_log(path, events) == 3
        assert read_arrival_log(path) == events

    def test_write_rejects_unsorted(self, tmp_path):
        with pytest.raises(ValueError, match="not sorted"):
            write_arrival_log(
                tmp_path / "bad.jsonl", [(1.0, "a"), (0.5, "a")]
            )

    def test_read_rejects_malformed_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 0.0, "task": "a"}\n{"time": "x"}\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            read_arrival_log(path)

    def test_read_rejects_negative_and_unsorted(self, tmp_path):
        path = tmp_path / "neg.jsonl"
        path.write_text('{"time": -1.0, "task": "a"}\n')
        with pytest.raises(ValueError, match="negative"):
            read_arrival_log(path)
        path.write_text(
            '{"time": 1.0, "task": "a"}\n{"time": 0.5, "task": "a"}\n'
        )
        with pytest.raises(ValueError, match="not sorted"):
            read_arrival_log(path)

    def test_record_matches_live_streams(self):
        tasks = identical_periodic_tasks(count=3, nominal_sms=34)
        process = PoissonArrivals()
        events = record_arrivals(process, tasks, horizon=0.5, seed=7)
        assert events == sorted(events, key=lambda e: e[0])
        for task in tasks:
            logged = [t for t, name in events if name == task.name]
            stream = process.stream(
                task, derive_arrival_seed(7, process.name, task.name)
            )
            live = []
            for t in stream:
                if t >= 0.5:
                    break
                live.append(t)
            assert logged == live

    def test_replay_feeds_back_exactly(self, tmp_path):
        tasks = identical_periodic_tasks(count=2, nominal_sms=34)
        events = record_arrivals(MmppArrivals(), tasks, horizon=0.4, seed=3)
        path = tmp_path / "log.jsonl"
        write_arrival_log(path, events)
        replay = ReplayArrivals(path=path)
        for task in tasks:
            expected = [t for t, name in events if name == task.name]
            assert list(replay.stream(task, 0)) == expected

    def test_events_and_path_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            ReplayArrivals(events=[(0.0, "a")], path=tmp_path / "x.jsonl")

    def test_lazy_path_instance_pickles_before_reading(self, tmp_path):
        path = tmp_path / "log.jsonl"
        write_arrival_log(path, [(0.0, "cam0")])
        replay = pickle.loads(pickle.dumps(ReplayArrivals(path=path)))
        assert list(replay.stream(make_task("cam0"), 0)) == [0.0]

    def test_unknown_tasks_never_release(self):
        replay = ReplayArrivals(events=[(0.0, "cam0")])
        assert list(replay.stream(make_task("other"), 0)) == []


# ---------------------------------------------------------------------------
# Golden hashes: the fast-tier seed-determinism smoke
# ---------------------------------------------------------------------------
def stream_digest(spec: str, seed: int, count: int = 64) -> str:
    """Hash of the first ``count`` arrivals of the resolved process.

    Times are rounded through ``%.12e`` so the pin survives sub-ulp libm
    differences while still catching any real change to the draws.
    """
    task = make_task(period=1 / 30)
    process = resolve_arrival(spec)
    stream = process.stream(
        task, derive_arrival_seed(seed, process.name, task.name)
    )
    payload = ",".join(f"{t:.12e}" for _, t in zip(range(count), stream))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


#: (spec, seed) -> first-64-arrivals digest.  Regenerate with
#: ``python -c "from tests.workloads.test_arrivals import stream_digest; ..."``
#: ONLY when a stream's draws change on purpose (a cache-invalidating
#: event that must ride a SCHEMA_VERSION bump).
GOLDEN_DIGESTS = {
    ("periodic", 0): "239c7aff7b25a0f0",
    ("periodic", 1): "239c7aff7b25a0f0",
    ("poisson", 0): "31e46bb73f83914f",
    ("poisson", 1): "ba21ca0e0c556052",
    ("mmpp", 0): "ed008ccc1a045a54",
    ("mmpp", 1): "d5214e7644508115",
    ("diurnal", 0): "c708f000e2aab4f3",
    ("diurnal", 1): "ca1250b1525079ee",
}


class TestGoldenDigests:
    @pytest.mark.parametrize("spec,seed", sorted(GOLDEN_DIGESTS))
    def test_stream_digest_is_pinned(self, spec, seed):
        assert stream_digest(spec, seed) == GOLDEN_DIGESTS[(spec, seed)]

    def test_every_stochastic_builtin_is_pinned(self):
        pinned = {spec for spec, _ in GOLDEN_DIGESTS}
        assert pinned == set(arrival_names()) - {"replay"}

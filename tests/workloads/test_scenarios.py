"""Unit tests for the scenario sweep harness."""

import pytest

from repro.gpu.spec import RTX_2080_TI
from repro.workloads.scenarios import (
    OVERSUBSCRIPTION_LEVELS,
    SCENARIO_1,
    SCENARIO_2,
    default_variants,
    run_scenario_sweep,
    sweep_point,
)


class TestScenarioDefinitions:
    def test_scenario_context_counts(self):
        assert SCENARIO_1.num_contexts == 2
        assert SCENARIO_2.num_contexts == 3

    def test_paper_oversubscription_levels(self):
        assert OVERSUBSCRIPTION_LEVELS == (1.0, 1.5, 2.0)

    def test_pool_sizing(self):
        pool = SCENARIO_1.pool(1.5)
        assert pool.num_contexts == 2
        assert pool.sms_per_context == pytest.approx(51.0)

    def test_default_variants(self):
        assert default_variants() == ["naive", "sgprs_1", "sgprs_1.5", "sgprs_2"]


class TestSweepPoint:
    def test_sgprs_point(self):
        point = sweep_point(SCENARIO_1, "sgprs_1.5", 4, duration=1.0, warmup=0.2)
        assert point.num_tasks == 4
        assert point.total_fps == pytest.approx(120.0, rel=0.05)
        assert point.dmr == 0.0

    def test_naive_point(self):
        point = sweep_point(SCENARIO_1, "naive", 4, duration=1.0, warmup=0.2)
        assert point.variant == "naive"
        assert point.total_fps > 0

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            sweep_point(SCENARIO_1, "mystery", 4)

    def test_oversubscription_parsed_from_variant(self):
        point = sweep_point(SCENARIO_2, "sgprs_2", 2, duration=0.5, warmup=0.1)
        assert point.total_fps > 0


class TestSweep:
    def test_sweep_structure(self):
        sweep = run_scenario_sweep(
            SCENARIO_1, [2, 4], variants=["naive", "sgprs_1"],
            duration=0.6, warmup=0.1,
        )
        assert set(sweep) == {"naive", "sgprs_1"}
        for points in sweep.values():
            assert [p.num_tasks for p in points] == [2, 4]

    def test_fps_monotone_below_capacity(self):
        sweep = run_scenario_sweep(
            SCENARIO_1, [2, 4, 8], variants=["sgprs_1.5"],
            duration=0.6, warmup=0.1,
        )
        fps = [p.total_fps for p in sweep["sgprs_1.5"]]
        assert fps[0] < fps[1] < fps[2]

"""Unit tests for workload generation."""

import pytest

from repro.dnn.models import build_simple_cnn
from repro.dnn.resnet import build_resnet34
from repro.workloads.generator import (
    DEFAULT_NUM_STAGES,
    DEFAULT_PERIOD,
    clone_task,
    identical_periodic_tasks,
    mixed_task_set,
)


class TestIdenticalTasks:
    def test_count(self):
        tasks = identical_periodic_tasks(5, nominal_sms=34.0)
        assert len(tasks) == 5

    def test_default_rate_is_30fps(self):
        tasks = identical_periodic_tasks(2, nominal_sms=34.0)
        for task in tasks:
            assert task.fps == pytest.approx(30.0)

    def test_default_six_stages(self):
        tasks = identical_periodic_tasks(1, nominal_sms=34.0)
        assert tasks[0].num_stages == DEFAULT_NUM_STAGES == 6

    def test_unique_names(self):
        tasks = identical_periodic_tasks(4, nominal_sms=34.0)
        names = [t.name for t in tasks]
        assert len(set(names)) == 4

    def test_staggered_offsets(self):
        tasks = identical_periodic_tasks(4, nominal_sms=34.0)
        offsets = [t.release_offset for t in tasks]
        assert offsets == pytest.approx(
            [i * DEFAULT_PERIOD / 4 for i in range(4)]
        )
        assert all(offset < DEFAULT_PERIOD for offset in offsets)

    def test_synchronous_option(self):
        tasks = identical_periodic_tasks(4, nominal_sms=34.0, stagger=False)
        assert all(t.release_offset == 0.0 for t in tasks)

    def test_tasks_identical_except_name_offset(self):
        tasks = identical_periodic_tasks(2, nominal_sms=34.0)
        first, second = tasks[0], tasks[1]
        assert first.total_wcet == pytest.approx(second.total_wcet)
        assert [s.wcet for s in first.stages] == pytest.approx(
            [s.wcet for s in second.stages]
        )

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            identical_periodic_tasks(0, nominal_sms=34.0)

    def test_template_cache_shares_composites(self):
        a = identical_periodic_tasks(1, nominal_sms=34.0)
        b = identical_periodic_tasks(1, nominal_sms=34.0)
        assert a[0].stages[0].composite is b[0].stages[0].composite

    def test_custom_stage_count(self):
        tasks = identical_periodic_tasks(1, nominal_sms=34.0, num_stages=1)
        assert tasks[0].num_stages == 1


class TestCloneTask:
    def test_clone_independent_stage_specs(self):
        tasks = identical_periodic_tasks(1, nominal_sms=34.0)
        clone = clone_task(tasks[0], "copy", 0.01)
        clone.stages[0].virtual_deadline = 999.0
        assert tasks[0].stages[0].virtual_deadline != 999.0

    def test_clone_fields(self):
        tasks = identical_periodic_tasks(1, nominal_sms=34.0)
        clone = clone_task(tasks[0], "copy", 0.02)
        assert clone.name == "copy"
        assert clone.release_offset == pytest.approx(0.02)
        assert clone.period == tasks[0].period


class TestTemplateCacheCalibrationKeying:
    def custom_calibration(self):
        from repro.speedup.calibration import DeviceCalibration

        # half the compute rate: visibly different WCETs from the default
        return DeviceCalibration(compute_rate_per_sm=27.5e9)

    def test_custom_calibration_never_collides_with_default(self):
        default = identical_periodic_tasks(1, nominal_sms=34.0)
        custom = identical_periodic_tasks(
            1, nominal_sms=34.0, calibration=self.custom_calibration()
        )
        # a slower device must measure longer WCETs; an id()-keyed cache
        # could silently serve the default entry here
        assert custom[0].total_wcet > default[0].total_wcet
        # and asking for the default again still returns the default
        again = identical_periodic_tasks(1, nominal_sms=34.0)
        assert again[0].total_wcet == default[0].total_wcet

    def test_equal_valued_calibrations_share_one_template(self):
        first = identical_periodic_tasks(
            1, nominal_sms=34.0, calibration=self.custom_calibration()
        )
        second = identical_periodic_tasks(
            1, nominal_sms=34.0, calibration=self.custom_calibration()
        )
        # distinct objects, equal constants -> same cached template
        assert first[0].stages[0].composite is second[0].stages[0].composite

    def test_fingerprint_distinguishes_and_matches(self):
        from repro.speedup.calibration import DEFAULT_CALIBRATION

        a = self.custom_calibration()
        b = self.custom_calibration()
        assert a is not b
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != DEFAULT_CALIBRATION.fingerprint


class TestMixedTaskSet:
    def test_heterogeneous_mix(self):
        tasks = mixed_task_set(
            [
                (build_simple_cnn, "cnn", 1 / 60, 2),
                (build_resnet34, "resnet34", 1 / 10, 6),
            ],
            nominal_sms=34.0,
        )
        assert len(tasks) == 2
        assert tasks[0].fps == pytest.approx(60.0)
        assert tasks[1].num_stages == 6

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            mixed_task_set([], nominal_sms=34.0)

    def test_heavier_network_longer_wcet(self):
        tasks = mixed_task_set(
            [
                (build_simple_cnn, "cnn", 1 / 30, 2),
                (build_resnet34, "resnet34", 1 / 30, 2),
            ],
            nominal_sms=34.0,
        )
        assert tasks[1].total_wcet > tasks[0].total_wcet * 10

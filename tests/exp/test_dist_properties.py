"""Property/invariant tests for the distributed sweep protocol.

Three families, each over randomized grids:

* shard partitions are a disjoint exact cover of the grid for every
  shard count (and order-preserving within a shard);
* the claim protocol never yields two owners for one point, under
  concurrent threaded claimers, for both fresh claims and stale steals;
* ``merge(shards) == run_grid(whole)`` bit-identically, whether the
  shards come from static ``shard=(i, n)`` partitions or from concurrent
  claim-mode workers over one run directory.

The physics is exercised elsewhere (the simulator is deterministic by
construction); here the point function is a pure stand-in derived from
the point's config hash, so hundreds of protocol runs cost milliseconds.
"""

import json
import random
import threading

import pytest

from repro.exp.cache import ResultCache
from repro.exp.dist import (
    CACHE_SUBDIR,
    ClaimBoard,
    init_run,
    load_manifest,
    merge_run,
    parse_shard,
    pending_points,
    run_dist_worker,
    run_id_for,
)
from repro.exp.grid import GridPoint, GridSpec
from repro.exp.runner import run_grid
from repro.exp.worker import PointResult

VARIANT_POOL = ("naive", "sgprs_1", "sgprs_1.5", "sgprs_2")


def fake_point(point: GridPoint) -> PointResult:
    """A pure, deterministic stand-in for the simulator: metrics derived
    from the point's own config hash, so any two computations of one
    point are bit-identical — exactly the contract ``run_point`` has."""
    blob = int(point.config_hash()[:12], 16)
    return PointResult(
        point=point,
        total_fps=float(blob % 10_000) / 7.0,
        dmr=(blob % 101) / 100.0,
        utilization=(blob % 97) / 96.0,
        mean_pressure=(blob % 89) / 88.0,
        released=blob % 1000,
        completed=blob % 997,
        elapsed=0.0,
    )


def random_spec(rng: random.Random) -> GridSpec:
    """A randomized (never-executed-by-the-simulator) grid."""
    return GridSpec(
        scenario="scenario1",
        num_contexts=rng.randint(1, 3),
        variants=tuple(
            rng.sample(VARIANT_POOL, k=rng.randint(1, len(VARIANT_POOL)))
        ),
        task_counts=tuple(
            sorted(rng.sample(range(2, 30), k=rng.randint(1, 5)))
        ),
        seeds=tuple(range(rng.randint(1, 3))),
        duration=0.5,
        warmup=0.1,
        work_jitter_cv=rng.choice((0.0, 0.1)),
    )


def identity(results):
    """Order-sensitive value identity of a result list, minus ``elapsed``
    (wall-clock provenance, zeroed by cache hits)."""
    rows = []
    for result in results:
        payload = result.to_dict()
        payload.pop("elapsed")
        rows.append(json.dumps(payload, sort_keys=True))
    return rows


class TestShardPartition:
    @pytest.mark.parametrize("trial", range(10))
    def test_disjoint_exact_cover_for_all_counts(self, trial):
        rng = random.Random(trial)
        spec = random_spec(rng)
        points = list(spec.points())
        hashes = [p.config_hash() for p in points]
        for count in range(1, 8):
            shards = [spec.shard(i, count) for i in range(1, count + 1)]
            flat = [p.config_hash() for shard in shards for p in shard]
            # exact cover: same multiset, no duplicates across shards
            assert sorted(flat) == sorted(hashes)
            assert len(set(flat)) == len(flat)

    def test_shards_preserve_grid_order(self):
        spec = random_spec(random.Random(99))
        order = {p.config_hash(): k for k, p in enumerate(spec.points())}
        for count in (2, 3, 5):
            for i in range(1, count + 1):
                positions = [order[p.config_hash()] for p in spec.shard(i, count)]
                assert positions == sorted(positions)

    def test_round_robin_balance(self):
        # shard sizes differ by at most one point
        spec = random_spec(random.Random(7))
        for count in (2, 3, 4):
            sizes = [len(spec.shard(i, count)) for i in range(1, count + 1)]
            assert max(sizes) - min(sizes) <= 1
            assert sum(sizes) == len(spec)

    def test_bad_shard_args_rejected(self):
        spec = random_spec(random.Random(0))
        for index, count in ((0, 2), (3, 2), (1, 0), (-1, 4)):
            with pytest.raises(ValueError):
                spec.shard(index, count)

    def test_parse_shard(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("2/8") == (2, 8)
        for bad in ("0/4", "5/4", "2", "a/b", "2/8/1", ""):
            with pytest.raises(ValueError):
                parse_shard(bad)


class TestClaimProtocol:
    SPEC = GridSpec(
        scenario="scenario1",
        num_contexts=2,
        variants=("naive", "sgprs_1", "sgprs_1.5", "sgprs_2"),
        task_counts=(2, 3, 5, 8, 13),
        seeds=(0, 1),
        duration=0.5,
        warmup=0.1,
    )

    def test_fresh_claims_have_single_owner(self, tmp_path):
        """Threaded stress: every point is won by exactly one claimer."""
        init_run(tmp_path, self.SPEC)
        points = list(self.SPEC.points())
        winners = {}  # hash -> list of owners that claimed it
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def claimer(owner):
            board = ClaimBoard(tmp_path, owner=owner, ttl=60.0)
            barrier.wait()
            for point in points:
                if board.try_claim(point):
                    with lock:
                        winners.setdefault(point.config_hash(), []).append(
                            owner
                        )

        threads = [
            threading.Thread(target=claimer, args=(f"w{i}",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(winners) == {p.config_hash() for p in points}
        multi = {h: o for h, o in winners.items() if len(o) != 1}
        assert multi == {}, f"points with != 1 owner: {multi}"

    def test_stale_steal_has_single_winner(self, tmp_path):
        """Concurrent stealers of one stale claim: exactly one wins."""
        init_run(tmp_path, self.SPEC)
        point = next(self.SPEC.points())
        # a dead worker's claim, long past any TTL
        dead = ClaimBoard(tmp_path, owner="dead", ttl=60.0, clock=lambda: 0.0)
        assert dead.try_claim(point)
        wins = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def stealer(owner):
            board = ClaimBoard(tmp_path, owner=owner, ttl=60.0)
            barrier.wait()
            if board.try_claim(point):
                with lock:
                    wins.append(owner)

        threads = [
            threading.Thread(target=stealer, args=(f"s{i}",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1, f"stale claim stolen by {wins}"

    def test_serial_worker_claims_lazily(self, tmp_path):
        """A serial worker holds at most ONE claim at any moment — it
        must never fence off the whole grid up front (that would starve
        late-joining workers and out-age the TTL on the last points)."""
        init_run(tmp_path, self.SPEC)
        claims_dir = tmp_path / "claims"
        held = []

        def watching(point):
            held.append(len(list(claims_dir.glob("*.claim"))))
            return fake_point(point)

        run_dist_worker(tmp_path, owner="solo", point_fn=watching)
        assert held, "worker computed nothing"
        assert max(held) == 1, f"held {max(held)} claims at once"

    def test_late_joining_worker_finds_work(self, tmp_path):
        """A worker joining while another is mid-sweep picks up the
        unclaimed remainder instead of finding everything fenced off."""
        total = len(self.SPEC)
        init_run(tmp_path, self.SPEC)
        first_started = threading.Event()
        gate = threading.Event()

        def slow_fn(point):
            first_started.set()
            assert gate.wait(timeout=30)
            return fake_point(point)

        reports = {}

        def early():
            reports["early"] = run_dist_worker(
                tmp_path, owner="early", point_fn=slow_fn
            )

        thread = threading.Thread(target=early)
        thread.start()
        assert first_started.wait(timeout=30)
        # the early worker is mid-point, holding exactly one claim: a
        # late joiner must drain the other total-1 points
        reports["late"] = run_dist_worker(
            tmp_path, owner="late", point_fn=fake_point
        )
        gate.set()
        thread.join()
        assert reports["late"].cache_misses == total - 1
        assert reports["early"].cache_misses == 1
        assert reports["early"].cache_hits == total - 1

    def test_fresh_claim_is_not_stolen(self, tmp_path):
        init_run(tmp_path, self.SPEC)
        point = next(self.SPEC.points())
        holder = ClaimBoard(tmp_path, owner="holder", ttl=60.0)
        assert holder.try_claim(point)
        rival = ClaimBoard(tmp_path, owner="rival", ttl=60.0)
        assert not rival.try_claim(point)
        assert rival.owner_of(point) == "holder"

    def test_release_frees_the_point(self, tmp_path):
        init_run(tmp_path, self.SPEC)
        point = next(self.SPEC.points())
        holder = ClaimBoard(tmp_path, owner="holder", ttl=60.0)
        assert holder.try_claim(point)
        assert holder.release(point)
        assert holder.owner_of(point) is None
        rival = ClaimBoard(tmp_path, owner="rival", ttl=60.0)
        assert rival.try_claim(point)

    def test_release_verify_gate_restores_a_stolen_claim(
        self, tmp_path, monkeypatch
    ):
        """The release TOCTOU window: a stealer replaces our stale claim
        between release's ownership read and its rename.  The
        rename-then-verify gate must detect the foreign owner, restore
        the stolen claim, and report the loss — never delete it."""
        import time

        init_run(tmp_path, self.SPEC)
        point = next(self.SPEC.points())
        holder = ClaimBoard(tmp_path, owner="holder", ttl=0.001, skew=0.0)
        rival = ClaimBoard(tmp_path, owner="rival", ttl=0.001, skew=0.0)
        assert holder.try_claim(point)
        time.sleep(0.01)  # the holder's claim is now stale
        assert rival.try_claim(point)  # ...and stolen
        # simulate the race: the holder's pre-release read still saw its
        # own (stale) claim; everything after reads the real files
        real_read = holder._read
        lied = []

        def lying_read(path):
            if not lied:
                lied.append(True)
                return ("holder", time.time())
            return real_read(path)

        monkeypatch.setattr(holder, "_read", lying_read)
        assert holder.release(point) is False
        assert rival.owner_of(point) == "rival"

    def test_release_of_foreign_claim_is_refused(self, tmp_path):
        init_run(tmp_path, self.SPEC)
        point = next(self.SPEC.points())
        holder = ClaimBoard(tmp_path, owner="holder", ttl=60.0)
        assert holder.try_claim(point)
        rival = ClaimBoard(tmp_path, owner="rival", ttl=60.0)
        assert not rival.release(point)
        assert holder.owner_of(point) == "holder"

    def test_refresh_keeps_a_claim_alive(self, tmp_path):
        init_run(tmp_path, self.SPEC)
        point = next(self.SPEC.points())
        now = [1000.0]
        holder = ClaimBoard(
            tmp_path, owner="holder", ttl=60.0, clock=lambda: now[0]
        )
        rival = ClaimBoard(
            tmp_path, owner="rival", ttl=60.0, clock=lambda: now[0]
        )
        assert holder.try_claim(point)
        now[0] += 50.0
        assert holder.refresh(point)
        now[0] += 50.0  # 100s after claim, 50s after refresh: still fresh
        assert not rival.try_claim(point)
        assert holder.owner_of(point) == "holder"

    def test_refresh_detects_a_lost_claim(self, tmp_path):
        init_run(tmp_path, self.SPEC)
        point = next(self.SPEC.points())
        now = [1000.0]
        holder = ClaimBoard(
            tmp_path, owner="holder", ttl=10.0, clock=lambda: now[0]
        )
        rival = ClaimBoard(
            tmp_path, owner="rival", ttl=10.0, clock=lambda: now[0]
        )
        assert holder.try_claim(point)
        now[0] += 60.0  # holder presumed dead
        assert rival.try_claim(point)
        assert not holder.refresh(point)

    def test_skewed_clock_does_not_steal_a_live_claim(self, tmp_path):
        """The cross-host regression the ``skew`` parameter fixes: the
        holder's clock runs 4 s behind the rival's, so a raw
        ``time.time()`` comparison ages the heartbeat 4 s early and the
        rival steals a claim whose real age is still under the TTL.
        Folding ``skew`` into the staleness check absorbs the offset."""
        init_run(tmp_path, self.SPEC)
        point = next(self.SPEC.points())
        now = [2000.0]  # "real" time; the two hosts read it offset
        behind = lambda: now[0] - 4.0  # noqa: E731 - tiny test clocks
        ahead = lambda: now[0]  # noqa: E731

        holder = ClaimBoard(
            tmp_path, owner="holder", ttl=10.0, clock=behind, skew=5.0
        )
        rival = ClaimBoard(
            tmp_path, owner="rival", ttl=10.0, clock=ahead, skew=5.0
        )
        assert holder.try_claim(point)
        now[0] += 7.0  # real age 7 < ttl, but the rival *sees* age 11
        assert not rival.try_claim(point), "live claim stolen across skew"
        assert rival.owner_of(point) == "holder"
        # genuinely dead (real age 21 > ttl + skew): the steal proceeds
        now[0] += 14.0
        assert rival.try_claim(point)
        assert rival.owner_of(point) == "rival"

    def test_without_skew_tolerance_the_premature_steal_happens(
        self, tmp_path
    ):
        """The control for the regression above: with ``skew=0`` the same
        4-s clock offset steals a claim that is only 7 s old — exactly
        the bug the default tolerance exists to prevent."""
        init_run(tmp_path, self.SPEC)
        point = next(self.SPEC.points())
        now = [2000.0]
        holder = ClaimBoard(
            tmp_path, owner="holder", ttl=10.0,
            clock=lambda: now[0] - 4.0, skew=0.0,
        )
        rival = ClaimBoard(
            tmp_path, owner="rival", ttl=10.0,
            clock=lambda: now[0], skew=0.0,
        )
        assert holder.try_claim(point)
        now[0] += 7.0
        assert rival.try_claim(point)  # premature: real age is only 7 s


class TestMergeEqualsWhole:
    @pytest.mark.parametrize("trial", range(5))
    def test_static_shards_merge_to_whole(self, trial, tmp_path):
        from repro.analysis.persistence import grid_to_dict, merge_grid_dicts

        rng = random.Random(100 + trial)
        spec = random_spec(rng)
        count = rng.randint(2, 5)
        whole = run_grid(spec, point_fn=fake_point)
        payloads = [
            grid_to_dict(
                run_grid(spec, shard=(i, count), point_fn=fake_point)
            )
            for i in range(1, count + 1)
        ]
        rng.shuffle(payloads)  # merge must not depend on shard order
        merged = merge_grid_dicts(payloads)
        assert identity(merged.results) == identity(whole.results)
        assert [r.point for r in merged.results] == list(spec.points())

    @pytest.mark.parametrize("trial", range(3))
    def test_claim_workers_merge_to_whole(self, trial, tmp_path):
        rng = random.Random(200 + trial)
        spec = random_spec(rng)
        init_run(tmp_path, spec)
        reports = []
        lock = threading.Lock()
        barrier = threading.Barrier(4)

        def worker(owner):
            barrier.wait()
            report = run_dist_worker(
                tmp_path, owner=owner, point_fn=fake_point
            )
            with lock:
                reports.append(report)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # every point computed exactly once across the fleet
        assert sum(r.cache_misses for r in reports) == len(spec)
        merged = merge_run(tmp_path)
        whole = run_grid(spec, point_fn=fake_point)
        assert identity(merged.results) == identity(whole.results)

    @pytest.mark.parametrize("trial", range(3))
    def test_shard_and_claim_modes_compose(self, trial, tmp_path):
        """Static shards and claim fleets are interchangeable per shard:
        a grid where shards 2..n are drained statically and shard 1 is
        instead drained by a fleet of concurrent claim workers still
        merges to exactly the whole grid — no gaps, no conflicts."""
        from repro.analysis.persistence import grid_to_dict, merge_grid_dicts
        from repro.exp.dist import ClaimConfig, run_payload

        rng = random.Random(300 + trial)
        spec = random_spec(rng)
        count = rng.randint(2, 4)
        payloads = [
            grid_to_dict(run_grid(spec, shard=(i, count), point_fn=fake_point))
            for i in range(2, count + 1)
        ]
        # shard 1 goes to a claim fleet sharing one run directory
        init_run(tmp_path, spec)
        barrier = threading.Barrier(3)
        reports = []
        lock = threading.Lock()

        def claim_worker(owner):
            barrier.wait()
            report = run_grid(
                spec,
                shard=(1, count),
                claim=ClaimConfig(run_dir=tmp_path, owner=owner),
                point_fn=fake_point,
            )
            with lock:
                reports.append(report)

        threads = [
            threading.Thread(target=claim_worker, args=(f"w{i}",))
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        shard1_size = len(spec.shard(1, count))
        assert sum(r.cache_misses for r in reports) == shard1_size
        # the run dir covers only shard 1: read it permissively, then
        # demand full coverage of the *combined* documents
        payloads.append(run_payload(tmp_path, allow_partial=True))
        rng.shuffle(payloads)
        merged = merge_grid_dicts(payloads)
        whole = run_grid(spec, point_fn=fake_point)
        assert identity(merged.results) == identity(whole.results)
        assert [r.point for r in merged.results] == list(spec.points())

    def test_shard_of_real_points_is_bit_identical_to_whole(self):
        """One tiny *simulated* grid proves the physics path composes
        with sharding the same way the fake does."""
        spec = GridSpec(
            scenario="scenario1",
            num_contexts=2,
            variants=("naive", "sgprs_1.5"),
            task_counts=(2, 3),
            duration=0.5,
            warmup=0.1,
        )
        whole = {
            r.point.config_hash(): r.total_fps
            for r in run_grid(spec).results
        }
        for i in (1, 2):
            for result in run_grid(spec, shard=(i, 2)).results:
                assert result.total_fps == whole[result.point.config_hash()]


class TestRunDirectory:
    SPEC = TestClaimProtocol.SPEC

    def test_run_id_is_deterministic(self):
        assert run_id_for(self.SPEC) == run_id_for(self.SPEC)
        other = GridSpec(
            scenario="scenario1",
            num_contexts=2,
            variants=("naive",),
            task_counts=(2,),
            duration=0.5,
            warmup=0.1,
        )
        assert run_id_for(self.SPEC) != run_id_for(other)

    def test_init_is_idempotent(self, tmp_path):
        first = init_run(tmp_path, self.SPEC)
        second = init_run(tmp_path, self.SPEC)
        assert first.run_id == second.run_id
        assert load_manifest(tmp_path).spec == self.SPEC

    def test_init_refuses_a_different_grid(self, tmp_path):
        init_run(tmp_path, self.SPEC)
        import dataclasses

        other = dataclasses.replace(self.SPEC, duration=9.0)
        with pytest.raises(ValueError, match="different grid"):
            init_run(tmp_path, other)

    def test_load_manifest_requires_a_run_dir(self, tmp_path):
        with pytest.raises(ValueError, match="not a run directory"):
            load_manifest(tmp_path / "nope")

    def test_pending_points_shrink_as_the_cache_fills(self, tmp_path):
        init_run(tmp_path, self.SPEC)
        points = list(self.SPEC.points())
        assert pending_points(tmp_path) == points
        cache = ResultCache(tmp_path / CACHE_SUBDIR)
        for point in points[:3]:
            cache.put(fake_point(point))
        assert pending_points(tmp_path) == points[3:]

    def test_merge_refuses_an_incomplete_run(self, tmp_path):
        init_run(tmp_path, self.SPEC)
        cache = ResultCache(tmp_path / CACHE_SUBDIR)
        points = list(self.SPEC.points())
        for point in points[:-1]:
            cache.put(fake_point(point))
        with pytest.raises(ValueError, match="incomplete"):
            merge_run(tmp_path)
        partial = merge_run(tmp_path, allow_partial=True)
        assert len(partial.results) == len(points) - 1

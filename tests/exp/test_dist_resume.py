"""Crash/resume behaviour of the distributed sweep protocol.

A sweep killed after K points must leave K valid checkpoints behind; a
re-run with the same cache (the ``--resume`` path) must recompute *only*
the missing points and produce a final grid identical to an
uninterrupted run's.  Claim-mode crashes additionally leave a claim file
behind, which peers must steal once it goes stale — and must NOT steal
while it is fresh.
"""

import json
import threading

import pytest

from repro.analysis.persistence import grid_to_dict
from repro.exp.cache import ResultCache
from repro.exp.dist import (
    CACHE_SUBDIR,
    ClaimBoard,
    init_run,
    merge_run,
    run_dist_worker,
)
from repro.exp.grid import GridSpec
from repro.exp.runner import run_grid

from tests.exp.test_dist_properties import fake_point, identity

SPEC = GridSpec(
    scenario="scenario1",
    num_contexts=2,
    variants=("naive", "sgprs_1", "sgprs_1.5"),
    task_counts=(2, 4, 6),
    seeds=(0, 1),
    duration=0.5,
    warmup=0.1,
)
NUM_POINTS = len(SPEC)  # 18


class WorkerKilled(RuntimeError):
    """The simulated mid-sweep crash."""


class CrashingWorker:
    """A fault-injecting point function: dies after ``budget`` points."""

    def __init__(self, budget):
        self.budget = budget
        self.calls = 0

    def __call__(self, point):
        if self.calls >= self.budget:
            raise WorkerKilled(f"killed after {self.budget} points")
        self.calls += 1
        return fake_point(point)


class CountingWorker:
    """Counts how many points actually recompute on resume."""

    def __init__(self):
        self.calls = 0

    def __call__(self, point):
        self.calls += 1
        return fake_point(point)


class TestCacheResume:
    KILL_AFTER = 5

    def test_resume_recomputes_only_missing_points(self, tmp_path):
        crasher = CrashingWorker(self.KILL_AFTER)
        with pytest.raises(WorkerKilled):
            run_grid(SPEC, cache_dir=tmp_path, point_fn=crasher)
        # the crash left exactly K valid checkpoints behind
        assert len(ResultCache(tmp_path)) == self.KILL_AFTER

        counter = CountingWorker()
        resumed = run_grid(SPEC, cache_dir=tmp_path, point_fn=counter)
        assert resumed.cache_hits == self.KILL_AFTER
        assert resumed.cache_misses == NUM_POINTS - self.KILL_AFTER
        assert counter.calls == NUM_POINTS - self.KILL_AFTER

        uninterrupted = run_grid(SPEC, point_fn=fake_point)
        assert identity(resumed.results) == identity(uninterrupted.results)
        # ... and so is the persisted document
        assert json.dumps(
            {**grid_to_dict(resumed), "points": identity(resumed.results)},
            sort_keys=True,
        ) == json.dumps(
            {
                **grid_to_dict(uninterrupted),
                "points": identity(uninterrupted.results),
            },
            sort_keys=True,
        )

    def test_double_crash_then_resume(self, tmp_path):
        for budget in (3, 4):  # two crashes at different depths
            with pytest.raises(WorkerKilled):
                run_grid(
                    SPEC, cache_dir=tmp_path, point_fn=CrashingWorker(budget)
                )
        counter = CountingWorker()
        resumed = run_grid(SPEC, cache_dir=tmp_path, point_fn=counter)
        assert counter.calls == NUM_POINTS - 7
        assert identity(resumed.results) == identity(
            run_grid(SPEC, point_fn=fake_point).results
        )


class TestClaimResume:
    def test_crashed_worker_frees_its_claims_on_clean_failure(self, tmp_path):
        """A point_fn exception releases held claims so peers need not
        wait out the TTL."""
        init_run(tmp_path, SPEC)
        with pytest.raises(WorkerKilled):
            run_dist_worker(
                tmp_path, owner="doomed", point_fn=CrashingWorker(4)
            )
        board = ClaimBoard(tmp_path, owner="observer", ttl=60.0)
        for point in SPEC.points():
            assert board.owner_of(point) is None

    def test_stale_claim_of_hard_crashed_worker_is_recovered(self, tmp_path):
        """A hard crash (no cleanup) leaves a claim file; a peer steals
        it once stale and the run completes."""
        import time

        init_run(tmp_path, SPEC)
        points = list(SPEC.points())
        victim = points[2]
        # the hard-crashed worker: claimed a point just now, never
        # released it, never checkpointed it
        dead = ClaimBoard(tmp_path, owner="dead", ttl=30.0)
        assert dead.try_claim(victim)

        # while the claim is fresh, a worker pass must skip the point
        fresh = run_dist_worker(
            tmp_path,
            owner="early",
            ttl=3600.0,
            point_fn=fake_point,
        )
        assert fresh.skipped == 1
        assert len(fresh.results) == NUM_POINTS - 1
        with pytest.raises(ValueError, match="incomplete"):
            merge_run(tmp_path)

        # past the TTL (clock advanced, no sleeping) the claim is stale:
        # the next pass steals and finishes the point, completing the run
        recovery = run_dist_worker(
            tmp_path,
            owner="late",
            ttl=30.0,
            point_fn=fake_point,
            clock=lambda: time.time() + 3600.0,
        )
        assert recovery.cache_misses == 1
        assert recovery.skipped == 0
        merged = merge_run(tmp_path)
        assert identity(merged.results) == identity(
            run_grid(SPEC, point_fn=fake_point).results
        )

    def test_interleaved_crash_and_recovery_fleet(self, tmp_path):
        """A fleet where some workers crash mid-pass still converges: the
        survivors' passes drain everything the crashers left behind."""
        init_run(tmp_path, SPEC)
        barrier = threading.Barrier(4)

        def crasher(owner):
            barrier.wait()
            try:
                run_dist_worker(
                    tmp_path, owner=owner, point_fn=CrashingWorker(2)
                )
            except WorkerKilled:
                pass

        threads = [
            threading.Thread(target=crasher, args=(f"c{i}",))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # crashed workers released their claims; one clean pass finishes
        run_dist_worker(tmp_path, owner="finisher", point_fn=fake_point)
        merged = merge_run(tmp_path)
        assert identity(merged.results) == identity(
            run_grid(SPEC, point_fn=fake_point).results
        )


class TestCliResume:
    """The ``--resume`` surface end-to-end, against the real simulator
    (a 4-point grid at a 0.4 s horizon keeps this in the fast tier)."""

    ARGS = [
        "sweep",
        "--scenario",
        "1",
        "--tasks",
        "2,3",
        "--duration",
        "0.4",
        "--warmup",
        "0.1",
    ]

    def test_resume_by_run_dir_and_by_id(self, tmp_path, capsys):
        from repro.cli import main

        run_dir = tmp_path / "run"
        assert main(self.ARGS + ["--run-dir", str(run_dir)]) == 0
        first = capsys.readouterr().out
        assert "8 computed" in first

        # resume by directory: everything is cached now
        assert main(["sweep", "--resume", str(run_dir)]) == 0
        resumed = capsys.readouterr().out
        assert "8 cached, 0 computed" in resumed

        # resume by id under --runs-root
        run_id = run_dir.name
        assert (
            main(
                [
                    "sweep",
                    "--resume",
                    run_id,
                    "--runs-root",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert "8 cached, 0 computed" in capsys.readouterr().out

    def test_resume_recomputes_only_evicted_points(self, tmp_path, capsys):
        from repro.cli import main
        from repro.exp.dist import load_manifest

        run_dir = tmp_path / "run"
        assert main(self.ARGS + ["--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        # simulate an interrupted run: drop three checkpoints
        cache = ResultCache(run_dir / CACHE_SUBDIR)
        spec = load_manifest(run_dir).spec
        for point in list(spec.points())[:3]:
            cache.path_for(point).unlink()
        assert main(["sweep", "--resume", str(run_dir)]) == 0
        assert "5 cached, 3 computed" in capsys.readouterr().out

    def test_resume_of_unknown_run_fails_cleanly(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="not a run directory"):
            main(["sweep", "--resume", str(tmp_path / "ghost")])

"""Daemon-mode worker behaviour (:mod:`repro.exp.daemon`).

The daemon's promises, each pinned here:

* one ``--once`` pass drains every pending run under the root;
* runs *hot-added* while the daemon is serving are discovered on the
  next poll cycle, with no restart;
* ``--max-idle`` bounds how long an idle daemon lingers;
* a stop request (signal or caller-owned event) interrupts a drain at
  the next wave boundary and releases every claim still held;
* the background heartbeat ticker keeps a held claim fresh for as long
  as its point computes, even with a TTL far below the compute cost;
* the CLI surface (``python -m repro worker``) exits 0 on SIGTERM.

Everything but the CLI tests drives :func:`repro.exp.daemon.serve`
in-process with the pure ``fake_point`` stand-in, parametrized over the
storage backends, so a whole fleet lifecycle costs milliseconds.
"""

import os
import random
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.exp.backend import InMemoryBackend, ObjectStoreBackend
from repro.exp.daemon import (
    DaemonConfig,
    HeartbeatTicker,
    discover_runs,
    run_store,
    serve,
)
from repro.exp.dist import ClaimBoard, init_run, merge_run, pending_points
from repro.exp.grid import GridSpec
from repro.exp.runner import run_grid

from tests.exp.test_dist_properties import fake_point, identity

SPEC_A = GridSpec(
    scenario="scenario1",
    num_contexts=2,
    variants=("naive", "sgprs_1.5"),
    task_counts=(2, 4),
    seeds=(0, 1),
    duration=0.5,
    warmup=0.1,
)
SPEC_B = GridSpec(
    scenario="scenario2",
    num_contexts=3,
    variants=("naive", "sgprs_1"),
    task_counts=(3,),
    seeds=(0,),
    duration=0.5,
    warmup=0.1,
)


@pytest.fixture(params=("local", "memory", "objectstore"))
def runs_root(request, tmp_path):
    """A runs root per backend flavour (a path for the local one, so the
    daemon exercises the same coercion the CLI does)."""
    if request.param == "local":
        return tmp_path / "runs"
    if request.param == "memory":
        return InMemoryBackend()
    return ObjectStoreBackend()


def wait_until(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestDiscovery:
    def test_only_manifest_holding_children_are_runs(self, runs_root):
        assert discover_runs(runs_root) == []
        init_run(run_store(runs_root, "runA"), SPEC_A)
        run_store(runs_root, "noise").atomic_replace("stray.json", b"{}")
        assert discover_runs(runs_root) == ["runA"]
        init_run(run_store(runs_root, "runB"), SPEC_B)
        assert discover_runs(runs_root) == ["runA", "runB"]

    def test_discovery_order_independent_of_creation_order(self, runs_root):
        """Drain order must not follow filesystem/creation order.

        ``discover_runs`` feeds the fleet's drain loop; on the local
        backend it globs the runs root, and directory-entry order is
        whatever the filesystem hands back (often creation order).  Pin
        the sort: however the run directories came into being, every
        worker sees the same deterministic run sequence.
        """
        names = [f"run{i:02d}" for i in range(8)]
        shuffled = list(names)
        random.Random(20240807).shuffle(shuffled)
        assert shuffled != names  # the scenario must exercise the sort
        for name in shuffled:
            init_run(run_store(runs_root, name), SPEC_A)
        assert discover_runs(runs_root) == names

    def test_corrupt_manifest_is_skipped_not_fatal(self, runs_root):
        init_run(run_store(runs_root, "good"), SPEC_A)
        run_store(runs_root, "bad").atomic_replace(
            "manifest.json", b"{truncated"
        )
        lines = []
        stats = serve(
            DaemonConfig(runs_root=runs_root, once=True),
            point_fn=fake_point,
            echo=lines.append,
        )
        assert stats.drained_runs == ["good"]
        assert any("skipping bad" in line for line in lines)
        assert pending_points(run_store(runs_root, "good")) == []


class TestServe:
    def test_once_drains_every_pending_run(self, runs_root):
        init_run(run_store(runs_root, "runA"), SPEC_A)
        init_run(run_store(runs_root, "runB"), SPEC_B)
        stats = serve(
            DaemonConfig(runs_root=runs_root, once=True),
            point_fn=fake_point,
        )
        assert stats.stopped_by == "once"
        assert stats.points_computed == len(SPEC_A) + len(SPEC_B)
        for run_id, spec in (("runA", SPEC_A), ("runB", SPEC_B)):
            merged = merge_run(run_store(runs_root, run_id))
            whole = run_grid(spec, point_fn=fake_point)
            assert identity(merged.results) == identity(whole.results)

    def test_hot_added_run_is_discovered_and_drained(self, runs_root):
        init_run(run_store(runs_root, "runA"), SPEC_A)
        stop = threading.Event()
        done = {}

        def daemon():
            done["stats"] = serve(
                DaemonConfig(runs_root=runs_root, poll=0.02, ttl=60.0),
                point_fn=fake_point,
                stop=stop,
            )

        thread = threading.Thread(target=daemon)
        thread.start()
        try:
            assert wait_until(
                lambda: not pending_points(run_store(runs_root, "runA"))
            ), "runA never drained"
            # hot-add a second run while the daemon is live
            init_run(run_store(runs_root, "runB"), SPEC_B)
            assert wait_until(
                lambda: not pending_points(run_store(runs_root, "runB"))
            ), "hot-added runB never discovered"
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert done["stats"].points_computed == len(SPEC_A) + len(SPEC_B)
        assert done["stats"].stopped_by == "signal"

    def test_max_idle_bounds_an_idle_daemon(self, runs_root):
        stats = serve(
            DaemonConfig(runs_root=runs_root, poll=0.001, max_idle=3),
            point_fn=fake_point,
        )
        assert stats.stopped_by == "idle"
        assert stats.cycles == 3
        assert stats.points_computed == 0

    def test_work_resets_the_idle_counter(self, runs_root):
        init_run(run_store(runs_root, "runA"), SPEC_A)
        stats = serve(
            DaemonConfig(runs_root=runs_root, poll=0.001, max_idle=2),
            point_fn=fake_point,
        )
        # cycle 1 drains, then 2 idle cycles before exiting
        assert stats.cycles == 3
        assert stats.points_computed == len(SPEC_A)

    def test_stop_mid_drain_releases_held_claims(self, runs_root):
        init_run(run_store(runs_root, "runA"), SPEC_A)
        stop = threading.Event()
        first_point = threading.Event()
        gate = threading.Event()

        def slow_point(point):
            first_point.set()
            assert gate.wait(timeout=30)
            return fake_point(point)

        done = {}

        def daemon():
            done["stats"] = serve(
                DaemonConfig(runs_root=runs_root, poll=0.02, ttl=60.0),
                point_fn=slow_point,
                stop=stop,
            )

        thread = threading.Thread(target=daemon)
        thread.start()
        try:
            assert first_point.wait(timeout=30)
            stop.set()  # shutdown requested mid-point
        finally:
            gate.set()
            thread.join(timeout=30)
        assert not thread.is_alive()
        # only the in-flight wave finished; the rest was left unclaimed
        assert 1 <= done["stats"].points_computed < len(SPEC_A)
        store = run_store(runs_root, "runA")
        observer = ClaimBoard(store, owner="observer", ttl=60.0)
        for point in SPEC_A.points():
            assert observer.owner_of(point) is None, "claim left behind"

    def test_completed_runs_are_not_reprobed_every_cycle(self):
        """An idle daemon's steady-state footprint is one listing per
        poll cycle — never a per-point existence probe of runs it has
        already seen fully checkpointed."""
        from repro.exp.backend import FaultInjectingBackend

        root = FaultInjectingBackend(InMemoryBackend())
        init_run(run_store(root, "runA"), SPEC_A)
        stats = serve(
            DaemonConfig(runs_root=root, poll=0.001, max_idle=5),
            point_fn=fake_point,
        )
        assert stats.points_computed == len(SPEC_A)
        assert stats.cycles == 6  # 1 drain + 5 idle
        # pending_points probes exactly twice (pre-drain, post-drain);
        # the idle cycles must add none
        assert root.calls("exists") == 2 * len(SPEC_A)

    def test_two_daemons_split_one_run(self, runs_root):
        init_run(run_store(runs_root, "runA"), SPEC_A)
        barrier = threading.Barrier(2)
        reports = {}

        def daemon(name):
            barrier.wait()
            reports[name] = serve(
                DaemonConfig(
                    runs_root=runs_root, poll=0.001, max_idle=2, owner=name
                ),
                point_fn=fake_point,
            )

        threads = [
            threading.Thread(target=daemon, args=(f"d{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(r.points_computed for r in reports.values())
        assert total == len(SPEC_A)  # exactly once across the fleet
        merged = merge_run(run_store(runs_root, "runA"))
        whole = run_grid(SPEC_A, point_fn=fake_point)
        assert identity(merged.results) == identity(whole.results)


class TestHeartbeatTicker:
    def test_ticker_keeps_a_slow_point_claim_fresh(self, tmp_path):
        """With a TTL far below the point's compute time, the ticker's
        refreshes are the only thing standing between a live claim and
        a rival's steal — exactly the daemon's long-point scenario."""
        init_run(tmp_path, SPEC_A)
        point = next(SPEC_A.points())
        board = ClaimBoard(tmp_path, owner="slow", ttl=0.3, skew=0.0)
        rival = ClaimBoard(tmp_path, owner="rival", ttl=0.3, skew=0.0)
        assert board.try_claim(point)
        with HeartbeatTicker(board, interval=0.05):
            time.sleep(0.8)  # well past TTL: only refreshes keep it alive
            assert not rival.try_claim(point)
            assert rival.owner_of(point) == "slow"
        # ticker stopped (worker "crashed"): the claim ages out normally
        time.sleep(0.5)
        assert rival.try_claim(point)

    def test_ticker_stops_cleanly_and_rejects_bad_intervals(self, tmp_path):
        init_run(tmp_path, SPEC_A)
        board = ClaimBoard(tmp_path, owner="w", ttl=60.0)
        ticker = HeartbeatTicker(board, interval=0.01)
        with ticker:
            time.sleep(0.05)
        assert ticker._thread is None  # joined, not leaked
        with pytest.raises(ValueError):
            HeartbeatTicker(board, interval=0.0)

    def test_refresh_held_reports_lost_claims(self, tmp_path):
        init_run(tmp_path, SPEC_A)
        points = list(SPEC_A.points())
        now = [1000.0]
        board = ClaimBoard(
            tmp_path, owner="w", ttl=10.0, skew=0.0, clock=lambda: now[0]
        )
        rival = ClaimBoard(
            tmp_path, owner="r", ttl=10.0, skew=0.0, clock=lambda: now[0]
        )
        assert board.try_claim(points[0])
        assert board.try_claim(points[1])
        assert board.refresh_held() == 2
        now[0] += 60.0  # both stale; the rival steals one
        assert rival.try_claim(points[0])
        assert board.refresh_held() == 1  # the stolen claim is reported lost
        assert set(board.held()) == {points[1]}


class TestWorkerCli:
    """The ``python -m repro worker`` surface, as real subprocesses."""

    @staticmethod
    def _spawn(*argv):
        from pathlib import Path

        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", *argv],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    def test_sigterm_shuts_down_cleanly(self, tmp_path):
        init_run(tmp_path / "runA", SPEC_A)
        proc = self._spawn(
            "--runs-root", str(tmp_path), "--poll", "0.2", "--owner", "cli"
        )
        try:
            deadline = time.monotonic() + 60
            while pending_points(tmp_path / "runA") and (
                time.monotonic() < deadline
            ):
                time.sleep(0.1)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "received SIGTERM, shutting down cleanly" in out
        assert "stopped by signal" in out
        merged = merge_run(tmp_path / "runA")
        assert len(merged.results) == len(SPEC_A)

    def test_max_idle_exits_zero_after_draining(self, tmp_path):
        init_run(tmp_path / "runA", SPEC_A)
        proc = self._spawn(
            "--runs-root",
            str(tmp_path),
            "--poll",
            "0.05",
            "--max-idle",
            "2",
        )
        out, _ = proc.communicate(timeout=120)
        assert proc.returncode == 0, out
        assert "stopped by idle" in out
        assert pending_points(tmp_path / "runA") == []

"""Unit tests for the experiment-grid specification."""

import pytest

from repro.core.naive import NaiveScheduler
from repro.core.sgprs import SgprsScheduler
from repro.exp.grid import (
    GridPoint,
    GridSpec,
    derive_seed,
    register_variant,
    resolve_variant,
)


def small_spec(**overrides):
    fields = dict(
        scenario="scenario1",
        num_contexts=2,
        variants=("naive", "sgprs_1.5"),
        task_counts=(2, 4),
        seeds=(0, 1),
        duration=1.0,
        warmup=0.2,
    )
    fields.update(overrides)
    return GridSpec(**fields)


class TestResolveVariant:
    def test_naive_is_monolithic(self):
        scheduler, oversub, stages = resolve_variant("naive", num_stages=6)
        assert scheduler is NaiveScheduler
        assert oversub == 1.0
        assert stages == 1

    def test_sgprs_parses_oversubscription(self):
        scheduler, oversub, stages = resolve_variant("sgprs_1.5", num_stages=6)
        assert scheduler is SgprsScheduler
        assert oversub == 1.5
        assert stages == 6

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            resolve_variant("mystery")
        with pytest.raises(ValueError):
            resolve_variant("sgprs_abc")

    def test_registered_variant_resolves(self):
        class Custom(SgprsScheduler):
            name = "custom"

        register_variant("grid_test_custom", lambda s: (Custom, 2.0, s))
        scheduler, oversub, stages = resolve_variant(
            "grid_test_custom", num_stages=4
        )
        assert scheduler is Custom
        assert oversub == 2.0
        assert stages == 4

    def test_registration_cannot_shadow_builtins(self):
        with pytest.raises(ValueError):
            register_variant("naive", lambda s: (NaiveScheduler, 1.0, 1))
        with pytest.raises(ValueError):
            register_variant("sgprs_9", lambda s: (SgprsScheduler, 9.0, s))


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "a", 1) == derive_seed(0, "a", 1)

    def test_sensitive_to_every_coordinate(self):
        base = derive_seed(0, "scenario1", "naive", 4)
        assert derive_seed(1, "scenario1", "naive", 4) != base
        assert derive_seed(0, "scenario2", "naive", 4) != base
        assert derive_seed(0, "scenario1", "sgprs_1", 4) != base
        assert derive_seed(0, "scenario1", "naive", 8) != base


class TestGridPoint:
    def point(self, **overrides):
        fields = dict(
            scenario="scenario1",
            num_contexts=2,
            variant="sgprs_1.5",
            num_tasks=4,
            seed=7,
        )
        fields.update(overrides)
        return GridPoint(**fields)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.point(num_tasks=0)
        with pytest.raises(ValueError):
            self.point(num_contexts=0)
        with pytest.raises(ValueError):
            self.point(variant="mystery")

    def test_hash_is_stable_and_sensitive(self):
        assert self.point().config_hash() == self.point().config_hash()
        assert (
            self.point(num_tasks=5).config_hash()
            != self.point().config_hash()
        )
        assert self.point(seed=8).config_hash() != self.point().config_hash()
        assert (
            self.point(allow_stream_borrowing=False).config_hash()
            != self.point().config_hash()
        )

    def test_dict_roundtrip(self):
        point = self.point(work_jitter_cv=0.1, base_seed=3)
        assert GridPoint.from_dict(point.config_dict()) == point

    def test_label(self):
        assert self.point(base_seed=3).label == "scenario1/sgprs_1.5/n4/s3"


class TestGridSpec:
    def test_len_and_order(self):
        spec = small_spec()
        points = list(spec.points())
        assert len(points) == len(spec) == 2 * 2 * 2
        # deterministic (variant, count, seed) order
        coords = [(p.variant, p.num_tasks, p.base_seed) for p in points]
        assert coords == [
            ("naive", 2, 0),
            ("naive", 2, 1),
            ("naive", 4, 0),
            ("naive", 4, 1),
            ("sgprs_1.5", 2, 0),
            ("sgprs_1.5", 2, 1),
            ("sgprs_1.5", 4, 0),
            ("sgprs_1.5", 4, 1),
        ]
        assert list(spec.points()) == points

    def test_zero_jitter_passes_seed_through(self):
        for point in small_spec().points():
            assert point.seed == point.base_seed

    def test_jitter_derives_per_point_seeds(self):
        points = list(small_spec(work_jitter_cv=0.1).points())
        seeds = {p.seed for p in points}
        assert len(seeds) == len(points), "every point gets its own stream"
        for point in points:
            assert point.seed == derive_seed(
                point.base_seed, "scenario1", point.variant, point.num_tasks
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            small_spec(variants=())
        with pytest.raises(ValueError):
            small_spec(task_counts=())
        with pytest.raises(ValueError):
            small_spec(seeds=())
        with pytest.raises(ValueError):
            small_spec(variants=("mystery",))

    def test_from_scenario(self):
        from repro.workloads.scenarios import SCENARIO_2

        spec = GridSpec.from_scenario(
            SCENARIO_2, variants=("naive",), task_counts=(2,)
        )
        assert spec.scenario == "scenario2"
        assert spec.num_contexts == 3

class TestArrivalAxis:
    """The open-system axis introduced with schema v3."""

    def test_default_spec_is_closed_system(self):
        spec = small_spec()
        assert spec.arrivals == ("periodic",)
        assert spec.admission == ""
        for point in spec.points():
            assert point.arrival == "periodic"
            assert point.admission == ""
            assert "/periodic" not in point.label

    def test_arrival_axis_multiplies_the_grid(self):
        spec = small_spec(arrivals=("periodic", "poisson"))
        points = list(spec.points())
        assert len(points) == len(spec) == 2 * 2 * 2 * 2
        arrivals = {p.arrival for p in points}
        assert arrivals == {"periodic", "poisson"}

    def test_non_periodic_arrival_shows_in_label(self):
        spec = small_spec(arrivals=("poisson",))
        point = next(iter(spec.points()))
        assert point.label.endswith("/poisson")

    def test_admission_flows_to_every_point(self):
        spec = small_spec(
            arrivals=("mmpp:burst=6",), admission="queue:depth=2"
        )
        for point in spec.points():
            assert point.arrival == "mmpp:burst=6"
            assert point.admission == "queue:depth=2"

    def test_validation(self):
        with pytest.raises(ValueError):
            small_spec(arrivals=())
        with pytest.raises(ValueError):
            small_spec(arrivals=("bogus_process",))
        with pytest.raises(ValueError):
            small_spec(admission="bogus_policy")
        with pytest.raises(ValueError):
            GridPoint(
                scenario="scenario1",
                num_contexts=2,
                variant="naive",
                num_tasks=2,
                seed=0,
                arrival="",
            )

    def test_hash_sensitive_to_arrival_and_admission(self):
        def point(**overrides):
            fields = dict(
                scenario="scenario1",
                num_contexts=2,
                variant="naive",
                num_tasks=2,
                seed=0,
            )
            fields.update(overrides)
            return GridPoint(**fields)

        base = point().config_hash()
        assert point(arrival="poisson").config_hash() != base
        assert point(admission="reject").config_hash() != base

    def test_dict_roundtrip_carries_the_axis(self):
        point = GridPoint(
            scenario="scenario1",
            num_contexts=2,
            variant="naive",
            num_tasks=2,
            seed=0,
            arrival="mmpp:burst=6",
            admission="queue:depth=2",
        )
        assert GridPoint.from_dict(point.config_dict()) == point

    def test_seed_streams_are_arrival_independent(self):
        """Adding the arrival axis must not reshuffle historical seeds."""
        jittered = small_spec(
            work_jitter_cv=0.1, arrivals=("periodic", "poisson")
        )
        by_coords = {}
        for point in jittered.points():
            key = (point.variant, point.num_tasks, point.base_seed)
            by_coords.setdefault(key, set()).add(point.seed)
        assert all(len(seeds) == 1 for seeds in by_coords.values())

"""Tests for the sharded grid runner and seed aggregation.

The fast tier proves correctness (serial == parallel == cached, CI math);
the slow tier measures the wall-clock acceptance criteria on a real
fig-3-sized grid.
"""

import math
import os

import pytest

from repro.exp.aggregate import aggregate_results, mean_ci, to_sweep
from repro.exp.grid import GridPoint, GridSpec
from repro.exp.runner import run_grid
from repro.exp.worker import PointResult, run_point

TINY = GridSpec(
    scenario="scenario1",
    num_contexts=2,
    variants=("naive", "sgprs_1.5"),
    task_counts=(2, 4),
    duration=0.6,
    warmup=0.2,
)


def metric_rows(result):
    return [
        (r.point.label, r.total_fps, r.dmr, r.utilization)
        for r in result.results
    ]


class TestRunGrid:
    def test_serial_matches_grid_order(self):
        result = run_grid(TINY)
        assert [r.point for r in result.results] == list(TINY.points())
        assert result.cache_hits == 0
        assert result.cache_misses == len(TINY)

    def test_parallel_is_bit_identical_to_serial(self):
        serial = run_grid(TINY, workers=0)
        parallel = run_grid(TINY, workers=2)
        assert metric_rows(serial) == metric_rows(parallel)

    def test_cache_second_run_is_all_hits(self, tmp_path):
        first = run_grid(TINY, cache_dir=tmp_path)
        second = run_grid(TINY, cache_dir=tmp_path)
        assert second.cache_hits == len(TINY)
        assert second.cache_misses == 0
        assert metric_rows(first) == metric_rows(second)

    def test_cache_is_config_sensitive(self, tmp_path):
        import dataclasses

        run_grid(TINY, cache_dir=tmp_path)
        longer = dataclasses.replace(TINY, duration=0.8)
        result = run_grid(longer, cache_dir=tmp_path)
        assert result.cache_hits == 0

    def test_progress_callback_sees_every_point(self, tmp_path):
        seen = []
        run_grid(TINY, cache_dir=tmp_path, progress=seen.append)
        assert len(seen) == len(TINY)
        run_grid(TINY, cache_dir=tmp_path, progress=seen.append)
        assert len(seen) == 2 * len(TINY)

    def test_sweep_shape(self):
        sweep = run_grid(TINY).sweep()
        assert set(sweep) == {"naive", "sgprs_1.5"}
        assert [p.num_tasks for p in sweep["naive"]] == [2, 4]

    def test_sweep_preserves_grid_order(self):
        # caller-supplied variant and task-count order survives
        # aggregation (render_sweep_table columns follow dict order)
        import dataclasses

        spec = dataclasses.replace(
            TINY, variants=("sgprs_1.5", "naive"), task_counts=(4, 2)
        )
        sweep = run_grid(spec).sweep()
        assert list(sweep) == ["sgprs_1.5", "naive"]
        assert [p.num_tasks for p in sweep["naive"]] == [4, 2]

    def test_worker_point_matches_inline_run(self):
        point = next(TINY.points())
        assert run_point(point).total_fps == run_point(point).total_fps

    def test_sweep_point_matches_grid_cell_under_jitter(self):
        # the standalone entry point derives the same per-point seed as
        # the grid, so both produce bit-identical metrics
        from repro.workloads.scenarios import SCENARIO_1, run_scenario_sweep, sweep_point

        standalone = sweep_point(
            SCENARIO_1,
            "sgprs_1.5",
            3,
            duration=0.6,
            warmup=0.2,
            seed=5,
            work_jitter_cv=0.2,
        )
        (cell,) = run_scenario_sweep(
            SCENARIO_1,
            [3],
            variants=["sgprs_1.5"],
            duration=0.6,
            warmup=0.2,
            seeds=(5,),
            work_jitter_cv=0.2,
        )["sgprs_1.5"]
        assert standalone.total_fps == cell.total_fps
        assert standalone.dmr == cell.dmr
        assert standalone.utilization == cell.utilization


class TestMeanCi:
    def test_single_value_has_zero_ci(self):
        assert mean_ci([5.0]) == (5.0, 0.0)

    def test_known_sample(self):
        mean, ci = mean_ci([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        # t(df=2, 95%) = 4.303, stdev = 1.0, n = 3
        assert ci == pytest.approx(4.303 / math.sqrt(3), rel=1e-3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])


class TestAggregation:
    @pytest.fixture(scope="class")
    def replicated(self):
        spec = GridSpec(
            scenario="scenario1",
            num_contexts=2,
            variants=("sgprs_1.5",),
            task_counts=(3,),
            seeds=(0, 1, 2),
            duration=0.6,
            warmup=0.2,
            work_jitter_cv=0.2,
        )
        return run_grid(spec)

    def test_cells_group_over_seeds(self, replicated):
        aggregates = aggregate_results(replicated.results)
        assert set(aggregates) == {"sgprs_1.5"}
        (cell,) = aggregates["sgprs_1.5"]
        assert cell.n == 3
        assert cell.ci_fps >= 0.0

    def test_mean_matches_manual(self, replicated):
        (cell,) = aggregate_results(replicated.results)["sgprs_1.5"]
        manual = sum(r.total_fps for r in replicated.results) / 3
        assert cell.mean_fps == pytest.approx(manual)

    def test_to_sweep_uses_means(self, replicated):
        sweep = to_sweep(replicated.results)
        (cell,) = aggregate_results(replicated.results)["sgprs_1.5"]
        assert sweep["sgprs_1.5"][0].total_fps == pytest.approx(
            cell.mean_fps
        )


class TestTailMetricAggregation:
    """p99/p999/queue-depth must aggregate, not silently drop (PR-8 fix)."""

    def tail_result(self, seed, p99, p999, mean_depth, max_depth):
        point = GridPoint(
            scenario="scenario1",
            num_contexts=2,
            variant="sgprs_1.5",
            num_tasks=4,
            seed=seed,
            base_seed=seed,
        )
        return PointResult(
            point=point,
            total_fps=100.0,
            dmr=0.0,
            utilization=0.5,
            mean_pressure=1.0,
            released=10,
            completed=10,
            p99_response=p99,
            p999_response=p999,
            mean_queue_depth=mean_depth,
            max_queue_depth=max_depth,
        )

    def test_percentiles_mean_and_ci(self):
        results = [
            self.tail_result(0, 0.010, 0.012, 1.0, 3),
            self.tail_result(1, 0.020, 0.022, 2.0, 5),
            self.tail_result(2, 0.030, 0.032, 3.0, 4),
        ]
        (cell,) = aggregate_results(results)["sgprs_1.5"]
        assert cell.mean_p99 == pytest.approx(0.020)
        assert cell.mean_p999 == pytest.approx(0.022)
        assert cell.ci_p99 > 0.0
        assert cell.mean_queue_depth == pytest.approx(2.0)
        assert cell.ci_queue_depth > 0.0
        # max depth is a peak over seeds, not a mean
        assert cell.max_queue_depth == 5

    def test_none_percentile_seeds_skipped(self):
        results = [
            self.tail_result(0, None, None, 0.0, 0),
            self.tail_result(1, 0.020, 0.025, 1.0, 2),
        ]
        (cell,) = aggregate_results(results)["sgprs_1.5"]
        assert cell.mean_p99 == pytest.approx(0.020)
        assert cell.mean_p999 == pytest.approx(0.025)
        assert cell.ci_p99 == 0.0

    def test_all_none_percentiles_stay_none(self):
        results = [
            self.tail_result(0, None, None, 0.0, 0),
            self.tail_result(1, None, None, 0.0, 0),
        ]
        (cell,) = aggregate_results(results)["sgprs_1.5"]
        assert cell.mean_p99 is None
        assert cell.mean_p999 is None
        assert cell.ci_p99 == 0.0

    def test_real_runs_carry_tail_metrics_through(self):
        spec = GridSpec(
            scenario="scenario1",
            num_contexts=2,
            variants=("sgprs_1.5",),
            task_counts=(6,),
            seeds=(0, 1),
            duration=0.6,
            warmup=0.2,
            work_jitter_cv=0.2,
        )
        result = run_grid(spec)
        (cell,) = aggregate_results(result.results)["sgprs_1.5"]
        assert cell.mean_p99 is not None and cell.mean_p99 > 0.0
        manual = sum(r.p99_response for r in result.results) / 2
        assert cell.mean_p99 == pytest.approx(manual)
        assert cell.max_queue_depth == max(
            r.max_queue_depth for r in result.results
        )


def synth_result(zoo_mix, seed=0, dmr=0.0, total_utilization=2.0,
                 fps=100.0):
    """A hand-built synth-axis PointResult (no simulation needed)."""
    point = GridPoint(
        scenario="util_ramp",
        num_contexts=2,
        variant="sgprs_1.5",
        num_tasks=4,
        seed=seed,
        base_seed=seed,
        workload="util_ramp",
        total_utilization=total_utilization,
        zoo_mix=zoo_mix,
    )
    return PointResult(
        point=point,
        total_fps=fps,
        dmr=dmr,
        utilization=0.5,
        mean_pressure=1.0,
        released=10,
        completed=10,
    )


class TestMultiAxisAggregation:
    """Regression: synthesis axes must separate cells, not pool as seeds.

    A grid sweeping ``zoo_mix`` (or ``period_class`` / ``deadline_mode``)
    used to collapse onto ``(variant, num_tasks, total_utilization)``
    cells, averaging genuinely different workloads as if the axis values
    were replication seeds.
    """

    def test_distinct_zoo_mixes_form_distinct_cells(self):
        results = [
            synth_result("fleet", seed=s, fps=100.0) for s in (0, 1)
        ] + [
            synth_result("surveillance", seed=s, fps=200.0) for s in (0, 1)
        ]
        aggregates = aggregate_results(results)["sgprs_1.5"]
        # same variant, num_tasks and utilization — still two cells
        assert len(aggregates) == 2
        by_mix = {cell.zoo_mix: cell for cell in aggregates}
        assert set(by_mix) == {"fleet", "surveillance"}
        assert by_mix["fleet"].n == 2
        assert by_mix["fleet"].mean_fps == pytest.approx(100.0)
        assert by_mix["surveillance"].mean_fps == pytest.approx(200.0)

    def test_same_axes_still_pool_over_seeds(self):
        results = [synth_result("fleet", seed=s) for s in (0, 1, 2)]
        (cell,) = aggregate_results(results)["sgprs_1.5"]
        assert cell.n == 3
        assert cell.zoo_mix == "fleet"
        assert cell.workload == "util_ramp"

    def test_to_sweep_rejects_inexpressible_axis(self):
        results = [synth_result("fleet"), synth_result("surveillance")]
        with pytest.raises(ValueError, match="zoo_mix"):
            to_sweep(results)

    def test_pivot_table_rejects_mixed_axis_columns(self):
        from repro.analysis.pivot import utilization_pivot_table

        mixed = [
            synth_result("fleet", total_utilization=1.0),
            synth_result("surveillance", total_utilization=2.0, dmr=0.5),
        ]
        with pytest.raises(ValueError, match="zoo_mix"):
            utilization_pivot_table(mixed)

    def test_pivot_table_accepts_one_axis_slice(self):
        from repro.analysis.pivot import utilization_pivot_table

        clean = [
            synth_result("fleet", total_utilization=1.0, dmr=0.0),
            synth_result("fleet", total_utilization=2.0, dmr=0.0),
            synth_result("fleet", total_utilization=3.0, dmr=0.4),
        ]
        assert utilization_pivot_table(clean) == {"sgprs_1.5": 2.0}


@pytest.mark.slow
class TestAcceptance:
    """ISSUE 1 acceptance: speedup and cache pay-off on a fig-3 grid."""

    GRID = GridSpec(
        scenario="scenario1",
        num_contexts=2,
        variants=("naive", "sgprs_1", "sgprs_1.5", "sgprs_2"),
        task_counts=(8, 14, 16, 20, 23, 25, 28, 30),
        duration=3.0,
        warmup=1.0,
    )

    def test_parallel_identical_and_cache_fast(self, tmp_path):
        import time

        serial = run_grid(self.GRID)
        parallel = run_grid(self.GRID, workers=4, cache_dir=tmp_path)
        assert metric_rows(serial) == metric_rows(parallel)
        started = time.perf_counter()
        cached = run_grid(self.GRID, workers=4, cache_dir=tmp_path)
        cached_elapsed = time.perf_counter() - started
        assert cached.cache_hits == len(self.GRID)
        assert metric_rows(cached) == metric_rows(serial)
        # a cached invocation costs under 10% of the computing run
        assert cached_elapsed < 0.1 * parallel.elapsed

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="wall-clock speedup needs >= 4 physical cores",
    )
    def test_four_workers_give_3x(self, tmp_path):
        serial = run_grid(self.GRID)
        parallel = run_grid(self.GRID, workers=4)
        assert metric_rows(serial) == metric_rows(parallel)
        assert serial.elapsed / parallel.elapsed >= 3.0

class TestResultVersioning:
    def result(self):
        point = GridPoint(
            scenario="scenario1",
            num_contexts=2,
            variant="naive",
            num_tasks=2,
            seed=0,
        )
        return PointResult(
            point=point,
            total_fps=10.0,
            dmr=0.1,
            utilization=0.5,
            mean_pressure=0.2,
            released=20,
            completed=18,
            goodput=9.0,
            rejection_rate=0.05,
            rejected=1,
            p99_response=0.4,
            p999_response=0.6,
            mean_queue_depth=1.5,
            max_queue_depth=3,
        )

    def test_v2_roundtrip_keeps_open_system_fields(self):
        result = self.result()
        clone = PointResult.from_dict(result.to_dict())
        assert clone == result

    def test_v1_records_load_with_open_system_defaults(self):
        payload = self.result().to_dict()
        for key in (
            "goodput",
            "rejection_rate",
            "rejected",
            "p99_response",
            "p999_response",
            "mean_queue_depth",
            "max_queue_depth",
        ):
            del payload[key]
        payload["version"] = 1
        loaded = PointResult.from_dict(payload)
        assert loaded.total_fps == 10.0
        assert loaded.goodput == 0.0
        assert loaded.rejected == 0
        assert loaded.p99_response is None
        assert loaded.max_queue_depth == 0

    def test_unknown_version_rejected(self):
        payload = self.result().to_dict()
        payload["version"] = 99
        with pytest.raises(ValueError, match="unsupported result version"):
            PointResult.from_dict(payload)

"""Unit tests for the on-disk result cache."""

import json

from repro.exp.cache import ResultCache
from repro.exp.grid import GridPoint
from repro.exp.worker import PointResult


def make_point(**overrides):
    fields = dict(
        scenario="scenario1",
        num_contexts=2,
        variant="sgprs_1.5",
        num_tasks=4,
        seed=7,
        duration=1.0,
        warmup=0.2,
    )
    fields.update(overrides)
    return GridPoint(**fields)


def make_result(point=None, fps=120.0):
    return PointResult(
        point=point if point is not None else make_point(),
        total_fps=fps,
        dmr=0.0,
        utilization=0.4,
        mean_pressure=0.5,
        released=120,
        completed=118,
        elapsed=0.25,
    )


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = make_result()
        cache.put(result)
        loaded = cache.get(result.point)
        assert loaded is not None
        assert loaded.total_fps == result.total_fps
        assert loaded.point == result.point
        assert cache.hits == 1

    def test_hit_zeroes_elapsed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_result())
        assert cache.get(make_point()).elapsed == 0.0

    def test_absent_point_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(make_point()) is None
        assert cache.misses == 1

    def test_different_config_is_different_slot(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_result())
        assert cache.get(make_point(num_tasks=8)) is None
        assert cache.get(make_point(seed=8)) is None
        assert len(cache) == 1


class TestRobustness:
    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = make_point()
        cache.path_for(point).write_text("{not json")
        assert cache.get(point) is None

    def test_wrong_version_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = make_point()
        payload = make_result().to_dict()
        payload["version"] = 999
        cache.path_for(point).write_text(json.dumps(payload))
        assert cache.get(point) is None

    def test_mismatched_point_is_a_miss(self, tmp_path):
        # a result stored under the wrong filename must not be served
        cache = ResultCache(tmp_path)
        point = make_point()
        other = make_result(point=make_point(num_tasks=9))
        cache.path_for(point).write_text(json.dumps(other.to_dict()))
        assert cache.get(point) is None

    def test_put_overwrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_result(fps=100.0))
        cache.put(make_result(fps=200.0))
        assert cache.get(make_point()).total_fps == 200.0
        assert len(cache) == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_result())
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.get(make_point()) is None
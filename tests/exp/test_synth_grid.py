"""Synthesis axes on the experiment grid: points, hashes, worker, cache."""

import pytest

from repro.exp.cache import ResultCache
from repro.exp.grid import GridPoint, GridSpec, derive_seed
from repro.exp.worker import run_point
from repro.workloads.synth.sweep import synth_grid


def synth_point(**overrides):
    fields = dict(
        scenario="util_ramp",
        num_contexts=2,
        variant="sgprs_1.5",
        num_tasks=4,
        seed=0,
        base_seed=0,
        duration=0.6,
        warmup=0.2,
        workload="util_ramp",
        total_utilization=1.5,
    )
    fields.update(overrides)
    return GridPoint(**fields)


class TestSynthGridPoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            synth_point(workload="missing_scenario")
        with pytest.raises(ValueError):
            synth_point(period_class="weekly")
        with pytest.raises(ValueError):
            synth_point(deadline_mode="soft")
        with pytest.raises(ValueError):
            synth_point(zoo_mix="party")
        # synthesis axes are rejected on the identical workload
        with pytest.raises(ValueError):
            synth_point(workload="identical")

    def test_hash_sensitive_to_every_synth_axis(self):
        base = synth_point().config_hash()
        assert synth_point(total_utilization=2.0).config_hash() != base
        assert synth_point(period_class="camera").config_hash() != base
        assert synth_point(zoo_mix="edge").config_hash() != base
        assert synth_point(deadline_mode="constrained").config_hash() != base
        assert synth_point(workload="mixed_fleet").config_hash() != base

    def test_identical_point_hash_unchanged_by_default_axes(self):
        # the defaulted synth fields must not leak variance into
        # identical-workload hashes
        a = GridPoint(
            scenario="scenario1",
            num_contexts=2,
            variant="naive",
            num_tasks=2,
            seed=0,
        )
        b = GridPoint(
            scenario="scenario1",
            num_contexts=2,
            variant="naive",
            num_tasks=2,
            seed=0,
            workload="identical",
            total_utilization=0.0,
        )
        assert a.config_hash() == b.config_hash()

    def test_label_shows_workload_and_utilization(self):
        assert synth_point().label == "util_ramp/u1.5/sgprs_1.5/n4/s0"

    def test_dict_roundtrip(self):
        point = synth_point(period_class="camera", deadline_mode="constrained")
        assert GridPoint.from_dict(point.config_dict()) == point


class TestSynthGridSpec:
    def test_utilization_axis_enumerates(self):
        spec = synth_grid(
            "util_ramp",
            utilizations=(1.0, 2.0),
            task_counts=(4, 6),
            variants=("naive", "sgprs_1.5"),
            seeds=(0, 1),
        )
        points = list(spec.points())
        assert len(points) == len(spec) == 2 * 2 * 2 * 2
        coords = [
            (p.variant, p.num_tasks, p.total_utilization, p.base_seed)
            for p in points
        ]
        expected = [
            (variant, count, utilization, seed)
            for variant in ("naive", "sgprs_1.5")
            for count in (4, 6)
            for utilization in (1.0, 2.0)
            for seed in (0, 1)
        ]
        assert coords == expected
        assert list(spec.points()) == points

    def test_empty_utilizations_single_default_column(self):
        spec = synth_grid("mixed_fleet", task_counts=(4,), variants=("naive",))
        points = list(spec.points())
        assert len(points) == 1
        assert points[0].total_utilization == 0.0  # scenario default marker

    def test_utilization_axis_requires_synth_workload(self):
        with pytest.raises(ValueError):
            GridSpec(
                scenario="scenario1",
                num_contexts=2,
                variants=("naive",),
                task_counts=(2,),
                utilizations=(1.0,),
            )

    def test_jitter_seed_derivation_covers_utilization(self):
        spec = synth_grid(
            "util_ramp",
            utilizations=(1.0, 2.0),
            task_counts=(4,),
            variants=("naive",),
            work_jitter_cv=0.1,
        )
        points = list(spec.points())
        assert points[0].seed != points[1].seed
        assert points[0].seed == derive_seed(
            0, "util_ramp", "util_ramp", "naive", 4, 1.0
        )


class TestSynthWorkerAndCache:
    @pytest.fixture(scope="class")
    def result(self):
        return run_point(synth_point())

    def test_run_point_produces_sane_metrics(self, result):
        assert result.total_fps > 0
        assert 0.0 <= result.dmr <= 1.0
        assert result.released >= result.completed > 0

    def test_run_point_deterministic(self, result):
        again = run_point(synth_point())
        assert again.total_fps == result.total_fps
        assert again.dmr == result.dmr
        assert again.released == result.released

    def test_naive_runs_monolithic_synth(self):
        result = run_point(synth_point(variant="naive"))
        assert result.total_fps > 0

    def test_cache_roundtrip(self, result, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(result)
        hit = cache.get(synth_point())
        assert hit is not None
        assert hit.point == result.point
        assert hit.total_fps == result.total_fps
        # a different utilization is a different cache slot
        assert cache.get(synth_point(total_utilization=2.0)) is None

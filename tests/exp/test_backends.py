"""Backend contract tests + the protocol property suite over every backend.

Two layers:

* **Contract tests** pin the atomicity guarantees each
  :class:`~repro.exp.backend.StorageBackend` must honor (exclusive put,
  CAS lease, owner-conditional delete — each single-winner under
  threads).  The claim protocol's correctness reduces to exactly these.
* **Protocol properties** re-run the distributed-sweep invariants
  (single-owner claims, stale-steal single-winner, merge==whole,
  crash/resume) *parametrized over all three backends*, so LocalFS,
  InMemory and ObjectStore are all held to the same behavior — the
  object store proving the claim/steal protocol survives without a
  rename primitive.
* **Fault injection** wraps each backend in
  :class:`~repro.exp.backend.FaultInjectingBackend` and proves a lost
  or duplicated operation never produces two owners or a corrupted
  merge — the failure modes a flaky NFS mount or an at-least-once
  object store actually exhibits.
"""

import json
import threading
import time

import pytest

from repro.exp.backend import (
    BackendFault,
    FaultInjectingBackend,
    InMemoryBackend,
    LocalFSBackend,
    ObjectStoreBackend,
    PrefixedBackend,
)
from repro.exp.dist import (
    ClaimBoard,
    init_run,
    merge_run,
    pending_points,
    run_cache,
    run_dist_worker,
)
from repro.exp.grid import GridSpec
from repro.exp.runner import run_grid

from tests.exp.test_dist_properties import fake_point, identity
from tests.exp.test_dist_resume import CrashingWorker, WorkerKilled

BACKEND_NAMES = ("local", "memory", "objectstore")

SPEC = GridSpec(
    scenario="scenario1",
    num_contexts=2,
    variants=("naive", "sgprs_1", "sgprs_1.5"),
    task_counts=(2, 4, 6),
    seeds=(0, 1),
    duration=0.5,
    warmup=0.1,
)
NUM_POINTS = len(SPEC)  # 18


def make_backend(name, tmp_path):
    if name == "local":
        return LocalFSBackend(tmp_path / "store")
    if name == "memory":
        return InMemoryBackend()
    return ObjectStoreBackend()


@pytest.fixture(params=BACKEND_NAMES)
def backend(request, tmp_path):
    """One raw backend instance per parametrized run."""
    return make_backend(request.param, tmp_path)


class TestBackendContract:
    def test_put_exclusive_is_single_winner(self, backend):
        winners = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def contender(name):
            barrier.wait()
            if backend.put_exclusive("key", name.encode()):
                with lock:
                    winners.append(name)

        threads = [
            threading.Thread(target=contender, args=(f"w{i}",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1, f"multiple exclusive-put winners: {winners}"
        record = backend.read("key")
        assert record is not None
        assert record.data == winners[0].encode()

    def test_put_exclusive_record_is_complete_on_appearance(self, backend):
        assert backend.put_exclusive("k", b"whole-record")
        assert not backend.put_exclusive("k", b"other")
        assert backend.read("k").data == b"whole-record"

    def test_atomic_replace_creates_and_replaces(self, backend):
        backend.atomic_replace("k", b"v1")
        assert backend.read("k").data == b"v1"
        backend.atomic_replace("k", b"v2")
        assert backend.read("k").data == b"v2"

    def test_lease_respects_the_version_token(self, backend):
        backend.atomic_replace("k", b"v1")
        token = backend.read("k").token
        assert backend.lease("k", b"v2", token)
        assert backend.read("k").data == b"v2"
        # the old revision's token must no longer swap
        assert not backend.lease("k", b"v3", token)
        assert backend.read("k").data == b"v2"

    def test_lease_on_missing_key_fails(self, backend):
        assert not backend.lease("ghost", b"x", b"ghost-token")

    def test_lease_is_single_winner(self, backend):
        backend.atomic_replace("k", b"stale")
        token = backend.read("k").token
        winners = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def stealer(name):
            barrier.wait()
            if backend.lease("k", name.encode(), token):
                with lock:
                    winners.append(name)

        threads = [
            threading.Thread(target=stealer, args=(f"s{i}",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1, f"multiple CAS winners: {winners}"
        assert backend.read("k").data == winners[0].encode()

    def test_delete_if_owner_conditions_on_the_owner(self, backend):
        record = json.dumps({"owner": "alice", "heartbeat": 1.0}).encode()
        backend.atomic_replace("k", record)
        assert not backend.delete_if_owner("k", "bob")
        assert backend.read("k") is not None
        assert backend.delete_if_owner("k", "alice")
        assert backend.read("k") is None
        assert not backend.delete_if_owner("k", "alice")  # already gone

    def test_delete_if_owner_never_matches_anonymous_records(self, backend):
        backend.atomic_replace("k", b"not json at all")
        assert not backend.delete_if_owner("k", "")
        assert backend.read("k") is not None

    def test_delete_and_exists_and_list_prefix(self, backend):
        backend.atomic_replace("a/one", b"1")
        backend.atomic_replace("a/two", b"2")
        backend.atomic_replace("b/three", b"3")
        assert backend.exists("a/one")
        assert not backend.exists("a/ghost")
        assert backend.list_prefix("a/") == ["a/one", "a/two"]
        assert backend.delete("a/one")
        assert not backend.delete("a/one")
        assert backend.list_prefix("a/") == ["a/two"]

    def test_prefixed_view_namespaces_keys(self, backend):
        view = PrefixedBackend(backend, "runA")
        assert view.put_exclusive("manifest.json", b"m")
        assert view.read("manifest.json").data == b"m"
        assert backend.read("runA/manifest.json").data == b"m"
        view.atomic_replace("cache/x.json", b"x")
        assert view.list_prefix("cache/") == ["cache/x.json"]
        assert backend.list_prefix("runA/cache/") == ["runA/cache/x.json"]


class TestFaultWrapper:
    def test_fail_raises_before_applying(self, backend):
        faulty = FaultInjectingBackend(backend)
        faulty.inject("put_exclusive", 1, "fail")
        with pytest.raises(BackendFault):
            faulty.put_exclusive("k", b"v")
        assert backend.read("k") is None  # the op never happened
        assert faulty.put_exclusive("k", b"v")  # only the Nth call faults

    def test_lost_applies_but_reports_failure(self, backend):
        faulty = FaultInjectingBackend(backend)
        faulty.inject("put_exclusive", 1, "lost")
        assert faulty.put_exclusive("k", b"v") is False
        assert backend.read("k").data == b"v"  # ...yet it landed

    def test_duplicate_applies_twice(self, backend):
        counting = FaultInjectingBackend(backend)
        faulty = FaultInjectingBackend(counting)
        faulty.inject("atomic_replace", 1, "duplicate")
        faulty.atomic_replace("k", b"v")
        assert counting.calls("atomic_replace") == 2
        assert backend.read("k").data == b"v"

    def test_hook_action_runs_before_applying(self, backend):
        order = []
        faulty = FaultInjectingBackend(backend)
        faulty.inject("read", 1, lambda: order.append("hook"))
        backend.atomic_replace("k", b"v")
        assert faulty.read("k").data == b"v"
        assert order == ["hook"]
        assert faulty.log == [("read", 1, "<lambda>")]

    def test_unknown_ops_and_bad_nth_rejected(self, backend):
        faulty = FaultInjectingBackend(backend)
        with pytest.raises(ValueError):
            faulty.inject("rename", 1)
        with pytest.raises(ValueError):
            faulty.inject("read", 0)


class TestProtocolOverBackends:
    """The PR-3 property suite, now over every backend."""

    def test_fresh_claims_have_single_owner(self, backend):
        init_run(backend, SPEC)
        points = list(SPEC.points())
        winners = {}
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def claimer(owner):
            board = ClaimBoard(backend, owner=owner, ttl=60.0)
            barrier.wait()
            for point in points:
                if board.try_claim(point):
                    with lock:
                        winners.setdefault(point.config_hash(), []).append(
                            owner
                        )

        threads = [
            threading.Thread(target=claimer, args=(f"w{i}",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(winners) == {p.config_hash() for p in points}
        multi = {h: o for h, o in winners.items() if len(o) != 1}
        assert multi == {}, f"points with != 1 owner: {multi}"

    def test_stale_steal_has_single_winner(self, backend):
        init_run(backend, SPEC)
        point = next(SPEC.points())
        dead = ClaimBoard(backend, owner="dead", ttl=60.0, clock=lambda: 0.0)
        assert dead.try_claim(point)
        wins = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def stealer(owner):
            board = ClaimBoard(backend, owner=owner, ttl=60.0)
            barrier.wait()
            if board.try_claim(point):
                with lock:
                    wins.append(owner)

        threads = [
            threading.Thread(target=stealer, args=(f"s{i}",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1, f"stale claim stolen by {wins}"
        observer = ClaimBoard(backend, owner="observer", ttl=60.0)
        assert observer.owner_of(point) == wins[0]

    def test_claim_fleet_merges_to_whole(self, backend):
        init_run(backend, SPEC)
        reports = []
        lock = threading.Lock()
        barrier = threading.Barrier(4)

        def worker(owner):
            barrier.wait()
            report = run_dist_worker(backend, owner=owner, point_fn=fake_point)
            with lock:
                reports.append(report)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # every point computed exactly once across the fleet
        assert sum(r.cache_misses for r in reports) == NUM_POINTS
        merged = merge_run(backend)
        whole = run_grid(SPEC, point_fn=fake_point)
        assert identity(merged.results) == identity(whole.results)

    def test_crash_then_resume_completes(self, backend):
        init_run(backend, SPEC)
        with pytest.raises(WorkerKilled):
            run_dist_worker(
                backend, owner="doomed", point_fn=CrashingWorker(5)
            )
        # the crash left exactly 5 checkpoints and zero held claims
        assert len(pending_points(backend)) == NUM_POINTS - 5
        observer = ClaimBoard(backend, owner="observer", ttl=60.0)
        for point in SPEC.points():
            assert observer.owner_of(point) is None
        finisher = run_dist_worker(
            backend, owner="finisher", point_fn=fake_point
        )
        assert finisher.cache_misses == NUM_POINTS - 5
        merged = merge_run(backend)
        whole = run_grid(SPEC, point_fn=fake_point)
        assert identity(merged.results) == identity(whole.results)

    def test_hard_crash_ttl_recovery(self, backend):
        """A kill -9'd worker's fresh claim blocks its point only until
        the TTL+skew window lapses; then a peer steals and completes."""
        init_run(backend, SPEC)
        victim = list(SPEC.points())[2]
        dead = ClaimBoard(backend, owner="dead", ttl=30.0)
        assert dead.try_claim(victim)

        fresh = run_dist_worker(
            backend, owner="early", ttl=3600.0, point_fn=fake_point
        )
        assert fresh.skipped == 1
        with pytest.raises(ValueError, match="incomplete"):
            merge_run(backend)

        recovery = run_dist_worker(
            backend,
            owner="late",
            ttl=30.0,
            point_fn=fake_point,
            clock=lambda: time.time() + 3600.0,
        )
        assert recovery.cache_misses == 1
        merged = merge_run(backend)
        whole = run_grid(SPEC, point_fn=fake_point)
        assert identity(merged.results) == identity(whole.results)

    def test_init_is_idempotent_and_validates(self, backend):
        first = init_run(backend, SPEC)
        second = init_run(backend, SPEC)
        assert first.run_id == second.run_id
        import dataclasses

        other = dataclasses.replace(SPEC, duration=9.0)
        with pytest.raises(ValueError, match="different grid"):
            init_run(backend, other)

    def test_pending_points_shrink_as_the_cache_fills(self, backend):
        init_run(backend, SPEC)
        points = list(SPEC.points())
        assert pending_points(backend) == points
        cache = run_cache(backend)
        for point in points[:3]:
            cache.put(fake_point(point))
        assert pending_points(backend) == points[3:]


class TestFaultInjection:
    """Lost/duplicated/failed operations never violate single-ownership.

    Each scenario runs over every backend (the acceptance criterion):
    the faulty fleet may skip or double-*attempt* work, but every point
    is checkpointed exactly once per content hash and the merge is
    bit-identical to an uninterrupted single-host run.
    """

    def test_lost_claim_put_is_recovered_by_ttl(self, backend):
        """A claim lands but its ack is lost: nobody computes the point
        (the writer itself sees a fresh foreign-looking claim), until
        the ghost claim goes stale and is stolen like any dead worker's."""
        init_run(backend, SPEC)
        faulty = FaultInjectingBackend(backend)
        faulty.inject("put_exclusive", 1, "lost")

        first = run_dist_worker(faulty, owner="w1", point_fn=fake_point)
        assert first.skipped == 1  # the ghost-claimed point
        assert first.cache_misses == NUM_POINTS - 1
        with pytest.raises(ValueError, match="incomplete"):
            merge_run(backend)

        # past the TTL the ghost claim is stale; a peer steals it
        recovery = run_dist_worker(
            backend,
            owner="w2",
            point_fn=fake_point,
            clock=lambda: time.time() + 3600.0,
        )
        assert recovery.cache_misses == 1
        merged = merge_run(backend)
        whole = run_grid(SPEC, point_fn=fake_point)
        assert identity(merged.results) == identity(whole.results)

    def test_duplicated_deliveries_are_idempotent(self, backend):
        """At-least-once delivery: claim puts and checkpoint writes
        applied twice change nothing — ownership stays single and the
        merge stays canonical."""
        init_run(backend, SPEC)
        faulty = FaultInjectingBackend(backend)
        for nth in (1, 3, 7):
            faulty.inject("put_exclusive", nth, "duplicate")
        for nth in (2, 5):
            faulty.inject("atomic_replace", nth, "duplicate")

        reports = []
        lock = threading.Lock()
        barrier = threading.Barrier(2)

        def worker(owner):
            barrier.wait()
            report = run_dist_worker(faulty, owner=owner, point_fn=fake_point)
            with lock:
                reports.append(report)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # exactly once per point, despite the duplicated deliveries
        assert sum(r.cache_misses for r in reports) == NUM_POINTS
        merged = merge_run(backend)
        whole = run_grid(SPEC, point_fn=fake_point)
        assert identity(merged.results) == identity(whole.results)

    def test_failed_steal_leaves_exactly_one_winner(self, backend):
        """One stealer's CAS raises mid-steal; the rival still wins the
        stale claim exactly once and the loser's error surfaces."""
        init_run(backend, SPEC)
        point = next(SPEC.points())
        dead = ClaimBoard(backend, owner="dead", ttl=60.0, clock=lambda: 0.0)
        assert dead.try_claim(point)

        faulty = FaultInjectingBackend(backend)
        faulty.inject("lease", 1, "fail")
        unlucky = ClaimBoard(faulty, owner="unlucky", ttl=60.0)
        with pytest.raises(BackendFault):
            unlucky.try_claim(point)
        lucky = ClaimBoard(backend, owner="lucky", ttl=60.0)
        assert lucky.try_claim(point)
        assert lucky.owner_of(point) == "lucky"

    def test_lost_release_is_harmless(self, backend):
        """A release whose ack is lost leaves a stray claim behind — but
        completion lives in the checkpoint, so the merge is whole and
        nothing is recomputed on resume."""
        init_run(backend, SPEC)
        faulty = FaultInjectingBackend(backend)
        faulty.inject("delete_if_owner", 1, "lost")
        report = run_dist_worker(faulty, owner="w1", point_fn=fake_point)
        assert report.cache_misses == NUM_POINTS
        merged = merge_run(backend)
        whole = run_grid(SPEC, point_fn=fake_point)
        assert identity(merged.results) == identity(whole.results)
        assert pending_points(backend) == []
        # the stray claim exists yet changes nothing: resume finds no work
        resumed = run_dist_worker(backend, owner="w2", point_fn=fake_point)
        assert resumed.cache_misses == 0

    def test_stale_refresh_cannot_resurrect_a_stolen_claim(self, backend):
        """The refresh TOCTOU: a stalled worker's heartbeat ticker wakes
        up after its claim was stolen, having already read the record
        showing itself as owner.  The CAS re-stamp must fail on the
        changed revision — never overwrite the thief's live claim —
        leaving exactly one owner."""
        init_run(backend, SPEC)
        point = next(SPEC.points())
        now = [1000.0]
        faulty = FaultInjectingBackend(backend)
        holder = ClaimBoard(
            faulty, owner="holder", ttl=10.0, skew=0.0, clock=lambda: now[0]
        )
        rival = ClaimBoard(
            backend, owner="rival", ttl=10.0, skew=0.0, clock=lambda: now[0]
        )
        assert holder.try_claim(point)

        def steal_in_the_window():
            # between the holder's read and its CAS write: the claim
            # goes stale and the rival steals it
            now[0] += 60.0
            assert rival.try_claim(point)

        # the holder's refresh CAS is its 2nd lease-capable write path;
        # its claim used put_exclusive, so this is lease call #1
        faulty.inject("lease", 1, steal_in_the_window)
        assert holder.refresh(point) is False
        assert rival.owner_of(point) == "rival"
        assert point not in holder.held()

    def test_delayed_read_does_not_double_own(self, backend):
        """A slow read overtaken by a rival's claim/compute cycle must
        not let the slow worker claim on top of the rival."""
        init_run(backend, SPEC)
        point = next(SPEC.points())
        rival = ClaimBoard(backend, owner="rival", ttl=60.0)

        faulty = FaultInjectingBackend(backend)
        started = threading.Event()
        overtaken = threading.Event()

        def slow_read():
            started.set()
            assert overtaken.wait(timeout=30)

        # the slow worker's first read (after losing the exclusive put)
        # parks while the rival completes a full claim cycle
        faulty.inject("read", 1, slow_read)
        slow = ClaimBoard(faulty, owner="slow", ttl=60.0)

        outcome = {}

        def slow_claimer():
            outcome["claimed"] = slow.try_claim(point)

        assert rival.try_claim(point)
        thread = threading.Thread(target=slow_claimer)
        thread.start()
        assert started.wait(timeout=30)
        overtaken.set()
        thread.join()
        assert outcome["claimed"] is False
        assert rival.owner_of(point) == "rival"

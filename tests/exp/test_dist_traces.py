"""Trace shipping through run stores (the sideways channel).

Traces are deliberately excluded from the slim ``PointResult`` IPC
payload; ``record_traces`` ships them into the store's ``traces/``
prefix instead.  These tests pin the contract end to end: worker-side
save, analysis-side bulk load, determinism of the stored bytes, and the
refusal paths.
"""

import pytest

from repro.analysis.persistence import load_run_traces
from repro.analysis.timeline import first_divergence
from repro.exp.dist import (
    init_run,
    load_point_trace,
    run_dist_worker,
    save_point_trace,
    trace_key,
)
from repro.exp.grid import GridSpec
from repro.exp.worker import run_point

SPEC = GridSpec(
    scenario="scenario1",
    num_contexts=2,
    variants=("naive", "sgprs_1.5"),
    task_counts=(2,),
    seeds=(0, 1),
    duration=0.5,
    warmup=0.1,
)


class TestPointTraceStore:
    def test_save_load_round_trip(self, tmp_path):
        point = next(SPEC.points())
        result = run_point(point, trace_store=tmp_path)
        stored = load_point_trace(tmp_path, point)
        assert stored is not None
        assert len(stored) == len(list(stored))
        assert result.total_fps > 0.0

    def test_missing_trace_loads_as_none(self, tmp_path):
        assert load_point_trace(tmp_path, next(SPEC.points())) is None

    def test_trace_key_is_per_config(self):
        points = list(SPEC.points())
        keys = {trace_key(p) for p in points}
        assert len(keys) == len(points)
        assert all(k.startswith("traces/") for k in keys)

    def test_double_save_is_idempotent(self, tmp_path):
        point = next(SPEC.points())
        run_point(point, trace_store=tmp_path)
        first = (tmp_path / trace_key(point)).read_bytes()
        run_point(point, trace_store=tmp_path)
        assert (tmp_path / trace_key(point)).read_bytes() == first


class TestWorkerRecordTraces:
    def test_worker_ships_every_computed_point(self, tmp_path):
        init_run(tmp_path, SPEC)
        run_dist_worker(tmp_path, owner="w0", record_traces=True)
        traces = load_run_traces(tmp_path)
        assert set(traces) == {p.label for p in SPEC.points()}
        assert all(len(t) > 0 for t in traces.values())

    def test_untraced_run_yields_empty_dict(self, tmp_path):
        init_run(tmp_path, SPEC)
        run_dist_worker(tmp_path, owner="w0")
        assert load_run_traces(tmp_path) == {}

    def test_record_traces_refuses_custom_point_fn(self, tmp_path):
        init_run(tmp_path, SPEC)
        with pytest.raises(ValueError, match="point_fn"):
            run_dist_worker(
                tmp_path,
                owner="w0",
                point_fn=lambda p: run_point(p),
                record_traces=True,
            )

    def test_stored_trace_matches_inline_run(self, tmp_path):
        from repro.exp.grid import GridPoint

        init_run(tmp_path, SPEC)
        run_dist_worker(tmp_path, owner="w0", record_traces=True)
        point = next(SPEC.points())
        stored = load_point_trace(tmp_path, point)
        inline = run_point(point, trace_store=tmp_path / "again")
        again = load_point_trace(tmp_path / "again", point)
        assert first_divergence(stored, again) is None
        assert inline.total_fps > 0.0

    def test_two_runs_diff_event_by_event(self, tmp_path):
        """The cross-run comparison workflow the trace store exists for."""
        import dataclasses

        init_run(tmp_path / "a", SPEC)
        run_dist_worker(tmp_path / "a", owner="w0", record_traces=True)
        jittered = dataclasses.replace(SPEC, work_jitter_cv=0.2)
        init_run(tmp_path / "b", jittered)
        run_dist_worker(tmp_path / "b", owner="w0", record_traces=True)

        traces_a = load_run_traces(tmp_path / "a")
        traces_b = load_run_traces(tmp_path / "b")
        label = next(iter(traces_a))
        # same grid coordinates, different dynamics: a divergence exists
        # and is reported with its index
        divergence = first_divergence(traces_a[label], traces_b[label])
        assert divergence is not None
        index, left, right = divergence
        assert index >= 0
        assert left is not None or right is not None

"""Validation paths of ``merge_grid_dicts`` / ``repro merge``.

The fix under test: merging must *refuse* to combine grid documents
whose format versions or calibration fingerprints differ, whose specs
describe different grids, or whose duplicate points disagree — instead
of silently concatenating them into a chimera result set.
"""

import copy

import pytest

from repro.analysis.persistence import (
    GRID_FORMAT_VERSION,
    grid_to_dict,
    merge_grid_dicts,
)
from repro.exp.grid import GridSpec
from repro.exp.runner import run_grid

from tests.exp.test_dist_properties import fake_point, identity

SPEC = GridSpec(
    scenario="scenario1",
    num_contexts=2,
    variants=("naive", "sgprs_1.5"),
    task_counts=(2, 4),
    seeds=(0, 1),
    duration=0.5,
    warmup=0.1,
)


@pytest.fixture()
def shards():
    """Two half-grid documents that together cover SPEC exactly."""
    return [
        grid_to_dict(run_grid(SPEC, shard=(i, 2), point_fn=fake_point))
        for i in (1, 2)
    ]


class TestHappyPath:
    def test_complementary_shards_merge(self, shards):
        merged = merge_grid_dicts(shards)
        assert len(merged.results) == len(SPEC)
        assert [r.point for r in merged.results] == list(SPEC.points())

    def test_identical_duplicates_dedupe(self, shards):
        merged = merge_grid_dicts(shards + [copy.deepcopy(shards[0])])
        assert len(merged.results) == len(SPEC)
        whole = run_grid(SPEC, point_fn=fake_point)
        assert identity(merged.results) == identity(whole.results)

    def test_merge_keeps_the_inputs_calibration(self, shards):
        # merging on a host with a different ambient calibration must
        # not re-label the output with that host's fingerprint
        foreign = "a" * 64
        for shard in shards:
            shard["calibration"] = foreign
        merged = merge_grid_dicts(shards)
        assert merged.calibration == foreign
        assert grid_to_dict(merged)["calibration"] == foreign

    def test_duplicates_differing_only_in_elapsed_dedupe(self, shards):
        # elapsed is provenance, not identity: a double-computed point
        # legitimately differs in wall-clock cost
        twin = copy.deepcopy(shards[0])
        for row in twin["points"]:
            row["elapsed"] = 123.456
        merged = merge_grid_dicts(shards + [twin])
        assert len(merged.results) == len(SPEC)


class TestRefusals:
    def test_empty_input_refused(self):
        with pytest.raises(ValueError, match="nothing to merge"):
            merge_grid_dicts([])

    def test_mixed_format_versions_refused(self, shards):
        shards[1]["version"] = GRID_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="mixed format versions"):
            merge_grid_dicts(shards)

    def test_unreadable_version_refused(self, shards):
        for shard in shards:
            shard["version"] = 999
        with pytest.raises(ValueError, match="unsupported grid format"):
            merge_grid_dicts(shards)

    def test_mixed_calibrations_refused(self, shards):
        shards[1]["calibration"] = "f" * 64
        with pytest.raises(ValueError, match="different device calibrations"):
            merge_grid_dicts(shards)

    def test_missing_calibration_is_wildcard(self, shards):
        # pre-dist documents carry no fingerprint; they merge with
        # fingerprinted ones rather than failing
        del shards[0]["calibration"]
        assert len(merge_grid_dicts(shards).results) == len(SPEC)

    def test_different_specs_refused(self, shards):
        import dataclasses

        other = dataclasses.replace(SPEC, duration=9.0)
        foreign = grid_to_dict(run_grid(other, shard=(1, 2), point_fn=fake_point))
        with pytest.raises(ValueError, match="different grids"):
            merge_grid_dicts([shards[0], foreign])

    def test_conflicting_duplicates_refused(self, shards):
        twin = copy.deepcopy(shards[0])
        twin["points"][0]["total_fps"] += 1.0
        with pytest.raises(ValueError, match="conflicting duplicate"):
            merge_grid_dicts(shards + [twin])

    def test_stray_points_refused(self, shards):
        import dataclasses

        other = dataclasses.replace(SPEC, duration=9.0)
        stray = grid_to_dict(run_grid(other, shard=(1, 2), point_fn=fake_point))
        # graft a foreign point row into an otherwise-valid document
        shards[0]["points"].append(stray["points"][0])
        with pytest.raises(ValueError, match="do not belong"):
            merge_grid_dicts(shards)

    def test_incomplete_coverage_refused_unless_allowed(self, shards):
        alone = [shards[0]]
        with pytest.raises(ValueError, match="cover only"):
            merge_grid_dicts(alone)
        partial = merge_grid_dicts(alone, allow_partial=True)
        assert len(partial.results) == len(SPEC) // 2


class TestCliMerge:
    def test_mixed_versions_fail_cleanly(self, shards, tmp_path):
        import json

        from repro.cli import main

        shards[1]["version"] = 999
        paths = []
        for k, shard in enumerate(shards):
            path = tmp_path / f"shard{k}.json"
            path.write_text(json.dumps(shard))
            paths.append(str(path))
        with pytest.raises(SystemExit, match="mixed format versions"):
            main(["merge"] + paths)

    def test_missing_input_fails_cleanly(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no such file"):
            main(["merge", str(tmp_path / "ghost.json")])

    def test_malformed_json_fails_cleanly(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{truncated")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["merge", str(bad)])

    def test_non_grid_document_fails_cleanly(self, tmp_path):
        import json

        from repro.cli import main

        stray = tmp_path / "stray.json"
        stray.write_text(json.dumps({"version": GRID_FORMAT_VERSION}))
        with pytest.raises(SystemExit, match="not a grid document"):
            main(["merge", str(stray)])

    def test_directory_of_documents_merges(self, shards, tmp_path):
        import json

        from repro.cli import main

        for k, shard in enumerate(shards):
            (tmp_path / f"shard{k}.json").write_text(json.dumps(shard))
        out = tmp_path / "merged.json"
        assert main(["merge", str(tmp_path), "--out", str(out)]) == 0
        merged = json.loads(out.read_text())
        assert len(merged["points"]) == len(SPEC)

"""Unit tests for the capacity planner and sweep persistence."""

import pytest

from repro.analysis.persistence import (
    load_sweep,
    save_sweep,
    sweep_from_dict,
    sweep_to_dict,
)
from repro.analysis.planner import naive_capacity_plan, sgprs_capacity_plan
from repro.core.context_pool import ContextPoolConfig
from repro.core.profiling import prepare_task
from repro.dnn.resnet import build_resnet18
from repro.gpu.spec import RTX_2080_TI
from repro.workloads.scenarios import SweepPoint


@pytest.fixture(scope="module")
def resnet_task():
    return prepare_task(
        "cam", build_resnet18(), period=1 / 30, num_stages=6, nominal_sms=51.0
    )


@pytest.fixture(scope="module")
def naive_task():
    return prepare_task(
        "cam", build_resnet18(), period=1 / 30, num_stages=1, nominal_sms=34.0
    )


class TestSgprsPlan:
    def test_pivot_matches_simulated_band(self, resnet_task):
        """The simulated sweeps pivot at 24-25 tasks; the analytic plan
        must land in the same band."""
        pool = ContextPoolConfig.from_oversubscription(2, 1.5, RTX_2080_TI)
        plan = sgprs_capacity_plan(resnet_task, pool, RTX_2080_TI)
        assert 22 <= plan.pivot_tasks <= 27

    def test_throughput_near_measured_plateau(self, resnet_task):
        pool = ContextPoolConfig.from_oversubscription(2, 1.5, RTX_2080_TI)
        plan = sgprs_capacity_plan(resnet_task, pool, RTX_2080_TI)
        # sweep plateau is ~744 fps for this pool
        assert plan.throughput_jobs_per_second == pytest.approx(744, rel=0.08)

    def test_aggregate_bound_at_high_concurrency(self, resnet_task):
        pool = ContextPoolConfig.from_oversubscription(3, 1.5, RTX_2080_TI)
        plan = sgprs_capacity_plan(resnet_task, pool, RTX_2080_TI)
        assert plan.bound == "aggregate"

    def test_higher_oversubscription_more_contention(self, resnet_task):
        pool_15 = ContextPoolConfig.from_oversubscription(3, 1.5, RTX_2080_TI)
        pool_20 = ContextPoolConfig.from_oversubscription(3, 2.0, RTX_2080_TI)
        plan_15 = sgprs_capacity_plan(resnet_task, pool_15, RTX_2080_TI)
        plan_20 = sgprs_capacity_plan(resnet_task, pool_20, RTX_2080_TI)
        assert plan_15.throughput_jobs_per_second > (
            plan_20.throughput_jobs_per_second
        )


class TestNaivePlan:
    def test_pivot_matches_simulated_band(self, naive_task):
        """The simulated naive pivot is 14; the plan must be close."""
        pool = ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)
        plan = naive_capacity_plan(naive_task, pool)
        assert 13 <= plan.pivot_tasks <= 17

    def test_throughput_near_measured(self, naive_task):
        pool = ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)
        plan = naive_capacity_plan(naive_task, pool)
        # measured naive saturation is ~465 fps
        assert plan.throughput_jobs_per_second == pytest.approx(465, rel=0.1)

    def test_switch_overhead_lowers_throughput(self, naive_task):
        pool = ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)
        cheap = naive_capacity_plan(naive_task, pool, switch_overhead=0.0)
        costly = naive_capacity_plan(naive_task, pool, switch_overhead=1e-3)
        assert costly.throughput_jobs_per_second < (
            cheap.throughput_jobs_per_second
        )

    def test_sgprs_plans_more_tasks_than_naive(self, resnet_task, naive_task):
        sg_pool = ContextPoolConfig.from_oversubscription(2, 1.5, RTX_2080_TI)
        nv_pool = ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)
        sg = sgprs_capacity_plan(resnet_task, sg_pool, RTX_2080_TI)
        nv = naive_capacity_plan(naive_task, nv_pool)
        assert sg.pivot_tasks >= nv.pivot_tasks + 6

    def test_unprofiled_task_rejected(self):
        from repro.core.task import TaskSpec
        task = TaskSpec(name="raw", graph=build_resnet18(), period=0.1,
                        relative_deadline=0.1)
        pool = ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)
        with pytest.raises(ValueError):
            naive_capacity_plan(task, pool)


def sample_sweep():
    return {
        "naive": [SweepPoint("naive", 2, 60.0, 0.0, 0.1)],
        "sgprs_1.5": [
            SweepPoint("sgprs_1.5", 2, 60.0, 0.0, 0.1),
            SweepPoint("sgprs_1.5", 4, 120.0, 0.01, 0.2),
        ],
    }


class TestPersistence:
    def test_round_trip_dict(self):
        sweep = sample_sweep()
        restored = sweep_from_dict(sweep_to_dict(sweep))
        assert set(restored) == set(sweep)
        assert restored["sgprs_1.5"][1].total_fps == 120.0
        assert restored["sgprs_1.5"][1].dmr == 0.01

    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sample_sweep(), path)
        restored = load_sweep(path)
        assert restored["naive"][0].num_tasks == 2

    def test_version_check(self):
        with pytest.raises(ValueError):
            sweep_from_dict({"version": 99, "variants": {}})

    def test_variant_field_restored(self):
        restored = sweep_from_dict(sweep_to_dict(sample_sweep()))
        assert restored["naive"][0].variant == "naive"

"""Unit tests for timeline analysis, fed by a real traced run."""

import pytest

from repro.analysis.timeline import (
    KernelSpan,
    context_occupancy,
    extract_spans,
    first_divergence,
    render_gantt,
    stage_latency_breakdown,
)
from repro.core.context_pool import ContextPoolConfig
from repro.core.runner import RunConfig, run_simulation
from repro.gpu.spec import RTX_2080_TI
from repro.sim.clock import TIME_EPS
from repro.sim.trace import TraceRecorder
from repro.workloads.generator import identical_periodic_tasks


@pytest.fixture(scope="module", params=["list", "columnar"])
def traced_run(request):
    pool = ContextPoolConfig.from_oversubscription(2, 1.5, RTX_2080_TI)
    tasks = identical_periodic_tasks(6, nominal_sms=pool.sms_per_context)
    return run_simulation(
        tasks,
        RunConfig(
            pool=pool,
            duration=1.0,
            warmup=0.0,
            record_trace=True,
            trace_backend=request.param,
        ),
    )


class TestExtractSpans:
    def test_spans_found(self, traced_run):
        spans = extract_spans(traced_run.trace)
        assert spans

    def test_spans_well_formed(self, traced_run):
        for span in extract_spans(traced_run.trace):
            assert span.end >= span.start
            assert span.context_id in (0, 1)
            assert span.duration >= 0

    def test_one_span_per_completed_stage(self, traced_run):
        spans = extract_spans(traced_run.trace)
        done = traced_run.trace.of_kind("kernel_done")
        assert len(spans) == len(done)

    def test_unfinished_kernels_dropped(self):
        trace = TraceRecorder()
        trace.record(0.0, "kernel_start", kernel="a", context=0)
        assert extract_spans(trace) == []


class TestOccupancy:
    def test_occupancy_positive_and_bounded(self, traced_run):
        spans = extract_spans(traced_run.trace)
        occupancy = context_occupancy(spans, horizon=1.0)
        for value in occupancy.values():
            assert 0.0 < value <= 4.0

    def test_manual_occupancy(self):
        spans = [
            KernelSpan("a", 0, 0.0, 0.5),
            KernelSpan("b", 0, 0.0, 1.0),
        ]
        occupancy = context_occupancy(spans, horizon=1.0)
        assert occupancy[0] == pytest.approx(1.5)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            context_occupancy([], horizon=0.0)


class TestLatencyBreakdown:
    def test_breakdown_covers_all_stage_indices(self, traced_run):
        breakdown = stage_latency_breakdown(traced_run.trace)
        assert set(breakdown) == set(range(6))

    def test_components_positive(self, traced_run):
        for queueing, execution in stage_latency_breakdown(
            traced_run.trace
        ).values():
            assert queueing >= 0.0
            assert execution > 0.0

    def test_execution_dominates_under_light_load(self, traced_run):
        # 6 tasks on a 2x51-SM pool are nowhere near saturation: most time
        # is execution, not queueing
        breakdown = stage_latency_breakdown(traced_run.trace)
        total_queue = sum(q for q, _ in breakdown.values())
        total_exec = sum(e for _, e in breakdown.values())
        assert total_exec > total_queue


class TestGantt:
    def test_renders_a_row_per_active_context(self, traced_run):
        spans = extract_spans(traced_run.trace)
        chart = render_gantt(spans, 0.0, 0.5, width=40)
        # under light load the empty-queue-first policy may keep all work
        # on context 0; every context that did run gets a row
        active = {span.context_id for span in spans}
        for context_id in active:
            assert f"ctx{context_id} |" in chart

    def test_busy_region_marked(self):
        spans = [KernelSpan("a", 0, 0.0, 1.0)]
        chart = render_gantt(spans, 0.0, 1.0, width=10)
        assert "1111111111" in chart

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            render_gantt([], 1.0, 1.0)


class TestZeroDurationSpans:
    """Zero-work stages produce point spans; they must stay visible."""

    def zero_span(self, start=0.5):
        return KernelSpan("a", 0, start, start)

    def test_point_span_lands_in_its_bucket(self):
        chart = render_gantt([self.zero_span(0.5)], 0.0, 1.0, width=10)
        row = chart.splitlines()[-1]
        cells = row.split("|")[1]
        assert cells.count("1") == 1
        assert cells[5] == "1"

    def test_point_span_at_window_end_lands_in_last_bucket(self):
        chart = render_gantt([self.zero_span(1.0)], 0.0, 1.0, width=10)
        cells = chart.splitlines()[-1].split("|")[1]
        assert cells[9] == "1"

    def test_point_span_outside_window_invisible(self):
        chart = render_gantt([self.zero_span(2.0)], 0.0, 1.0, width=10)
        assert "1" not in chart.split("|")[1]

    def test_occupancy_floors_point_span_at_time_eps(self):
        occupancy = context_occupancy([self.zero_span(0.5)], horizon=1.0)
        assert occupancy[0] == pytest.approx(TIME_EPS / 1.0)

    def test_zero_work_stage_trace_keeps_spans_visible(self):
        # a stage whose kernels start and finish on the same timestamp
        # (zero effective work at the trace's time resolution) must still
        # surface through the whole analysis chain
        trace = TraceRecorder()
        trace.record(0.2, "kernel_start", kernel="z/0", context=0)
        trace.record(0.2, "kernel_done", kernel="z/0", context=0)
        trace.record(0.4, "kernel_start", kernel="n/0", context=0)
        trace.record(0.6, "kernel_done", kernel="n/0", context=0)
        spans = extract_spans(trace)
        points = [s for s in spans if s.duration == 0.0]
        assert len(points) == 1
        occupancy = context_occupancy(spans, horizon=1.0)
        assert occupancy[0] == pytest.approx((0.2 + TIME_EPS) / 1.0)
        chart = render_gantt(points, 0.0, 1.0, width=10)
        assert "1" in chart.split("|")[1]


class TestFirstDivergence:
    def make_trace(self, times):
        trace = TraceRecorder()
        for index, time in enumerate(times):
            trace.record(time, "tick", i=index)
        return trace

    def test_identical_traces_diverge_nowhere(self):
        a = self.make_trace([0.0, 1.0])
        b = self.make_trace([0.0, 1.0])
        assert first_divergence(a, b) is None

    def test_differing_record_reported_with_index(self):
        a = self.make_trace([0.0, 1.0, 2.0])
        b = self.make_trace([0.0, 1.5, 2.0])
        index, left, right = first_divergence(a, b)
        assert index == 1
        assert left.time == 1.0
        assert right.time == 1.5

    def test_length_mismatch_reports_missing_side(self):
        a = self.make_trace([0.0, 1.0])
        b = self.make_trace([0.0])
        index, left, right = first_divergence(a, b)
        assert index == 1
        assert left.time == 1.0
        assert right is None

    def test_same_run_same_seed_traces_identical(self, traced_run):
        pool = ContextPoolConfig.from_oversubscription(
            2, 1.5, RTX_2080_TI
        )
        tasks = identical_periodic_tasks(
            6, nominal_sms=pool.sms_per_context
        )
        again = run_simulation(
            tasks,
            RunConfig(
                pool=pool,
                duration=1.0,
                warmup=0.0,
                record_trace=True,
                trace_backend="columnar",
            ),
        )
        assert first_divergence(traced_run.trace, again.trace) is None

"""Unit tests for pivot detection and schedulability estimates."""

import pytest

from repro.analysis.pivot import find_pivot, pivot_table
from repro.analysis.schedulability import (
    naive_capacity_estimate,
    sgprs_capacity_estimate,
    utilization_bound_tasks,
)
from repro.dnn.resnet import build_resnet18
from repro.gpu.spec import RTX_2080_TI
from repro.speedup.composite import composite_for_ops
from repro.workloads.scenarios import SweepPoint


def points(*pairs):
    return [
        SweepPoint(variant="v", num_tasks=n, total_fps=0.0, dmr=d,
                   utilization=0.0)
        for n, d in pairs
    ]


class TestFindPivot:
    def test_simple_pivot(self):
        assert find_pivot(points((1, 0.0), (2, 0.0), (3, 0.1))) == 2

    def test_all_feasible(self):
        assert find_pivot(points((1, 0.0), (2, 0.0))) == 2

    def test_none_feasible(self):
        assert find_pivot(points((1, 0.5), (2, 0.9))) is None

    def test_tolerance(self):
        data = points((1, 0.0), (2, 0.005), (3, 0.2))
        assert find_pivot(data) == 1
        assert find_pivot(data, dmr_tolerance=0.01) == 2

    def test_unordered_input(self):
        assert find_pivot(points((3, 0.1), (1, 0.0), (2, 0.0))) == 2

    def test_noise_beyond_first_miss_ignored(self):
        # an isolated zero after misses must not extend the pivot
        assert find_pivot(points((1, 0.0), (2, 0.3), (3, 0.0))) == 1

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            find_pivot(points((1, 0.0)), dmr_tolerance=-0.1)


class TestPivotTable:
    def test_per_variant(self):
        sweep = {
            "a": points((1, 0.0), (2, 0.5)),
            "b": points((1, 0.0), (2, 0.0)),
        }
        table = pivot_table(sweep)
        assert table == {"a": 1, "b": 2}


class TestCapacityEstimates:
    @pytest.fixture(scope="class")
    def network(self):
        graph = build_resnet18()
        return composite_for_ops("net", graph.topological_order())

    def test_naive_capacity_scenario1(self, network):
        capacity = naive_capacity_estimate(network, 2, 34.0)
        # two 34-SM partitions running ~4 ms jobs -> ~500/s
        assert 400 <= capacity <= 600

    def test_switch_overhead_reduces_capacity(self, network):
        base = naive_capacity_estimate(network, 2, 34.0)
        loaded = naive_capacity_estimate(network, 2, 34.0, switch_overhead=1e-3)
        assert loaded < base

    def test_sgprs_capacity(self, network):
        capacity = sgprs_capacity_estimate(network, RTX_2080_TI)
        # the sweep plateaus near 750 fps
        assert 700 <= capacity <= 800

    def test_utilization_bound(self, network):
        from repro.core.profiling import prepare_task
        task = prepare_task(
            "t", build_resnet18(), period=1 / 30, num_stages=6, nominal_sms=34.0
        )
        bound = utilization_bound_tasks(task, 750.0)
        assert bound == 25

    def test_invalid_inputs(self, network):
        with pytest.raises(ValueError):
            naive_capacity_estimate(network, 0, 34.0)
        from repro.core.profiling import prepare_task
        task = prepare_task(
            "t", build_resnet18(), period=1 / 30, num_stages=2, nominal_sms=34.0
        )
        with pytest.raises(ValueError):
            utilization_bound_tasks(task, 0.0)

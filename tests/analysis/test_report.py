"""Unit tests for text rendering and CSV export."""

import pytest

from repro.analysis.report import (
    AGGREGATE_METRICS,
    aggregate_to_csv,
    ascii_chart,
    render_aggregate_table,
    render_fig1_table,
    render_sweep_table,
    sweep_to_csv,
)
from repro.dnn.ops import OpType
from repro.exp.aggregate import AggregatePoint
from repro.workloads.scenarios import SweepPoint


def sweep():
    return {
        "naive": [
            SweepPoint("naive", 2, 60.0, 0.0, 0.1),
            SweepPoint("naive", 4, 118.0, 0.05, 0.2),
        ],
        "sgprs_1.5": [
            SweepPoint("sgprs_1.5", 2, 60.0, 0.0, 0.1),
            SweepPoint("sgprs_1.5", 4, 120.0, 0.0, 0.2),
        ],
    }


class TestSweepTable:
    def test_fps_table_contains_all_cells(self):
        table = render_sweep_table(sweep(), metric="total_fps")
        assert "naive" in table and "sgprs_1.5" in table
        assert "118.0" in table and "120.0" in table

    def test_dmr_table_percentages(self):
        table = render_sweep_table(sweep(), metric="dmr")
        assert "5.0%" in table
        assert "0.0%" in table

    def test_title_prefix(self):
        table = render_sweep_table(sweep(), title="Fig 3a")
        assert table.startswith("Fig 3a\n")

    def test_missing_points_dashed(self):
        data = sweep()
        data["naive"] = data["naive"][:1]
        table = render_sweep_table(data)
        assert "-" in table.splitlines()[-1]

    def test_invalid_metric_rejected(self):
        with pytest.raises(ValueError):
            render_sweep_table(sweep(), metric="latency")


class TestCsv:
    def test_header_and_rows(self):
        csv = sweep_to_csv(sweep())
        lines = csv.strip().splitlines()
        assert lines[0] == (
            "variant,num_tasks,target_utilization,total_fps,dmr,utilization"
        )
        assert len(lines) == 5

    def test_rows_sorted_by_task_count(self):
        csv = sweep_to_csv(sweep())
        naive_rows = [l for l in csv.splitlines() if l.startswith("naive")]
        assert naive_rows[0].split(",")[1] == "2"
        assert naive_rows[1].split(",")[1] == "4"


def aggregates(p99=0.02, p999=0.03):
    def cell(num_tasks, fps):
        return AggregatePoint(
            variant="sgprs_1.5",
            num_tasks=num_tasks,
            n=3,
            mean_fps=fps,
            ci_fps=1.5,
            mean_dmr=0.1,
            ci_dmr=0.01,
            mean_utilization=0.5,
            ci_utilization=0.05,
            mean_p99=p99,
            ci_p99=0.001 if p99 is not None else 0.0,
            mean_p999=p999,
            ci_p999=0.002 if p999 is not None else 0.0,
            mean_queue_depth=1.25,
            ci_queue_depth=0.25,
            max_queue_depth=7,
        )

    return {"sgprs_1.5": [cell(2, 60.0), cell(4, 118.0)]}


class TestAggregateTable:
    def test_tail_metrics_renderable(self):
        for metric in (
            "p99_response",
            "p999_response",
            "mean_queue_depth",
            "max_queue_depth",
        ):
            assert metric in AGGREGATE_METRICS
            table = render_aggregate_table(aggregates(), metric)
            assert "sgprs_1.5" in table

    def test_p99_rendered_in_ms(self):
        table = render_aggregate_table(aggregates(), "p99_response")
        assert "20.0" in table  # 0.02 s -> 20.0 ms

    def test_none_percentile_dashed(self):
        table = render_aggregate_table(
            aggregates(p99=None, p999=None), "p99_response"
        )
        assert "-" in table

    def test_max_queue_depth_is_plain_int(self):
        table = render_aggregate_table(aggregates(), "max_queue_depth")
        assert "7" in table

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            render_aggregate_table(aggregates(), "latency")


class TestAggregateCsv:
    def test_header_includes_tail_columns(self):
        csv = aggregate_to_csv(aggregates())
        header = csv.strip().splitlines()[0]
        for column in (
            "mean_p99",
            "ci_p99",
            "mean_p999",
            "ci_p999",
            "mean_queue_depth",
            "ci_queue_depth",
            "max_queue_depth",
        ):
            assert column in header.split(",")

    def test_rows_carry_tail_values(self):
        csv = aggregate_to_csv(aggregates())
        lines = csv.strip().splitlines()
        assert len(lines) == 3
        header = lines[0].split(",")
        row = dict(zip(header, lines[1].split(",")))
        assert float(row["mean_p99"]) == pytest.approx(0.02)
        assert float(row["mean_queue_depth"]) == pytest.approx(1.25)
        assert int(row["max_queue_depth"]) == 7

    def test_none_percentiles_emit_empty_cells(self):
        csv = aggregate_to_csv(aggregates(p99=None, p999=None))
        lines = csv.strip().splitlines()
        header = lines[0].split(",")
        row = dict(zip(header, lines[1].split(",")))
        assert row["mean_p99"] == ""
        assert row["mean_p999"] == ""


class TestFig1Table:
    def test_contains_ops_and_network(self):
        op_curves = {
            OpType.CONV2D: [(1, 1.0), (68, 32.0)],
            OpType.RELU: [(1, 1.0), (68, 5.5)],
        }
        net = [(1, 1.0), (68, 22.7)]
        table = render_fig1_table(op_curves, net)
        assert "conv2d" in table
        assert "32.00" in table
        assert "22.70" in table
        assert "resnet18" in table


class TestAsciiChart:
    def test_renders_markers_and_legend(self):
        chart = ascii_chart(
            {"a": [(0, 0.0), (10, 10.0)], "b": [(0, 10.0), (10, 0.0)]},
            title="demo",
        )
        assert chart.startswith("demo")
        assert "o=a" in chart and "x=b" in chart

    def test_empty_series(self):
        assert "(no data)" in ascii_chart({"a": []}, title="empty")

    def test_flat_series_no_crash(self):
        chart = ascii_chart({"flat": [(0, 5.0), (10, 5.0)]})
        assert "o" in chart

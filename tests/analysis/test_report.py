"""Unit tests for text rendering and CSV export."""

import pytest

from repro.analysis.report import (
    ascii_chart,
    render_fig1_table,
    render_sweep_table,
    sweep_to_csv,
)
from repro.dnn.ops import OpType
from repro.workloads.scenarios import SweepPoint


def sweep():
    return {
        "naive": [
            SweepPoint("naive", 2, 60.0, 0.0, 0.1),
            SweepPoint("naive", 4, 118.0, 0.05, 0.2),
        ],
        "sgprs_1.5": [
            SweepPoint("sgprs_1.5", 2, 60.0, 0.0, 0.1),
            SweepPoint("sgprs_1.5", 4, 120.0, 0.0, 0.2),
        ],
    }


class TestSweepTable:
    def test_fps_table_contains_all_cells(self):
        table = render_sweep_table(sweep(), metric="total_fps")
        assert "naive" in table and "sgprs_1.5" in table
        assert "118.0" in table and "120.0" in table

    def test_dmr_table_percentages(self):
        table = render_sweep_table(sweep(), metric="dmr")
        assert "5.0%" in table
        assert "0.0%" in table

    def test_title_prefix(self):
        table = render_sweep_table(sweep(), title="Fig 3a")
        assert table.startswith("Fig 3a\n")

    def test_missing_points_dashed(self):
        data = sweep()
        data["naive"] = data["naive"][:1]
        table = render_sweep_table(data)
        assert "-" in table.splitlines()[-1]

    def test_invalid_metric_rejected(self):
        with pytest.raises(ValueError):
            render_sweep_table(sweep(), metric="latency")


class TestCsv:
    def test_header_and_rows(self):
        csv = sweep_to_csv(sweep())
        lines = csv.strip().splitlines()
        assert lines[0] == (
            "variant,num_tasks,target_utilization,total_fps,dmr,utilization"
        )
        assert len(lines) == 5

    def test_rows_sorted_by_task_count(self):
        csv = sweep_to_csv(sweep())
        naive_rows = [l for l in csv.splitlines() if l.startswith("naive")]
        assert naive_rows[0].split(",")[1] == "2"
        assert naive_rows[1].split(",")[1] == "4"


class TestFig1Table:
    def test_contains_ops_and_network(self):
        op_curves = {
            OpType.CONV2D: [(1, 1.0), (68, 32.0)],
            OpType.RELU: [(1, 1.0), (68, 5.5)],
        }
        net = [(1, 1.0), (68, 22.7)]
        table = render_fig1_table(op_curves, net)
        assert "conv2d" in table
        assert "32.00" in table
        assert "22.70" in table
        assert "resnet18" in table


class TestAsciiChart:
    def test_renders_markers_and_legend(self):
        chart = ascii_chart(
            {"a": [(0, 0.0), (10, 10.0)], "b": [(0, 10.0), (10, 0.0)]},
            title="demo",
        )
        assert chart.startswith("demo")
        assert "o=a" in chart and "x=b" in chart

    def test_empty_series(self):
        assert "(no data)" in ascii_chart({"a": []}, title="empty")

    def test_flat_series_no_crash(self):
        chart = ascii_chart({"flat": [(0, 5.0), (10, 5.0)]})
        assert "o" in chart

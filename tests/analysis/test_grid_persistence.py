"""Grid-document persistence and aggregate-table rendering."""

import pytest

from repro.analysis.persistence import (
    grid_from_dict,
    grid_to_dict,
    load_grid,
    save_grid,
)
from repro.analysis.report import render_aggregate_table
from repro.exp.grid import GridSpec
from repro.exp.runner import run_grid

SPEC = GridSpec(
    scenario="scenario1",
    num_contexts=2,
    variants=("naive", "sgprs_1.5"),
    task_counts=(2, 3),
    seeds=(0, 1),
    duration=0.6,
    warmup=0.2,
    work_jitter_cv=0.15,
)


@pytest.fixture(scope="module")
def grid_result():
    return run_grid(SPEC)


class TestGridPersistence:
    def test_dict_roundtrip(self, grid_result):
        loaded = grid_from_dict(grid_to_dict(grid_result))
        assert loaded.spec == grid_result.spec
        assert loaded.results == grid_result.results

    def test_file_roundtrip(self, grid_result, tmp_path):
        path = tmp_path / "grid.json"
        save_grid(grid_result, path)
        loaded = load_grid(path)
        assert loaded.spec == SPEC
        assert [r.point for r in loaded.results] == [
            r.point for r in grid_result.results
        ]
        assert loaded.aggregate().keys() == grid_result.aggregate().keys()

    def test_version_guard(self, grid_result):
        payload = grid_to_dict(grid_result)
        payload["version"] = 999
        with pytest.raises(ValueError):
            grid_from_dict(payload)


class TestAggregateTable:
    def test_renders_mean_and_ci(self, grid_result):
        table = render_aggregate_table(grid_result.aggregate(), "total_fps")
        assert "naive" in table and "sgprs_1.5" in table
        assert "±" in table
        # one row per task count plus header/rule
        assert len(table.splitlines()) == 2 + len(SPEC.task_counts)

    def test_dmr_metric_and_title(self, grid_result):
        table = render_aggregate_table(
            grid_result.aggregate(), "dmr", title="hello"
        )
        assert table.startswith("hello\n")
        assert "%" in table

    def test_unknown_metric_rejected(self, grid_result):
        with pytest.raises(ValueError):
            render_aggregate_table(grid_result.aggregate(), "latency")
"""The repo's own tree must lint clean — and deterministically.

This is the fast-tier gate behind the CI lint step: if a change
introduces unseeded randomness, a wall-clock read in simulation code, a
bare trace-kind literal, an unsorted directory enumeration, a version
bump without a reader accept-set, or an unmarked benchmark module, this
test (and ``python -m repro lint``) fails before the change merges.

Suppressions are per-line pragmas with justifications, never a baseline
file — so a clean run here means the tree is actually clean.
"""

from pathlib import Path

import pytest

from repro import cli
from repro.devtools.lint import ALL_RULES, render_json, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
LINT_PATHS = [str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")]


def test_src_and_benchmarks_lint_clean():
    findings = run_lint(LINT_PATHS, ALL_RULES)
    assert findings == [], "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in findings
    )


def test_lint_output_is_byte_identical_across_runs():
    first = render_json(run_lint(LINT_PATHS, ALL_RULES))
    second = render_json(run_lint(LINT_PATHS, ALL_RULES))
    assert first == second
    assert first.encode("utf-8") == second.encode("utf-8")


def test_cli_lint_exits_zero_on_clean_tree(capsys):
    assert cli.main(["lint", "--format", "json", *LINT_PATHS]) == 0
    payload = capsys.readouterr().out
    assert '"errors": 0' in payload


def test_cli_lint_reports_findings_with_exit_one(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    assert cli.main(["lint", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "D001" in out


def test_cli_lint_rejects_unknown_rule(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert cli.main(["lint", "--select", "Z999", str(tmp_path)]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert cli.main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.rule_id in out

"""Per-rule fixture tests for ``repro lint`` (:mod:`repro.devtools.lint`).

Each rule gets three snippets: one that must fire (positive), one that
must not (negative), and the positive one again carrying a
``# repro: lint-ok[RULE]`` pragma (suppressed).  Framework behaviour —
pragma grammar, select/ignore filtering, ordering, parse errors, stable
ids — is pinned at the end.
"""

import json
import textwrap

import pytest

from repro.devtools.lint import (
    ALL_RULES,
    PARSE_ERROR,
    render_json,
    render_text,
    run_lint,
)

#: A minimal trace-kind registry for the S001 fixtures; mirrors the
#: shape of ``src/repro/sim/trace_kinds.py`` (parsed, never imported).
REGISTRY = '''
JOB_SKIP = "job_skip"
KERNEL_DONE = "kernel_done"
TRACE_KINDS = frozenset({JOB_SKIP, KERNEL_DONE})
'''


def lint_tree(tmp_path, files):
    """Write ``{relpath: source}`` under ``tmp_path`` and lint the tree."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source).lstrip("\n"))
    return run_lint([str(tmp_path)], ALL_RULES)


def rules_of(findings):
    return [finding.rule for finding in findings]


class TestD001UnseededRandom:
    def test_module_level_random_call_fires(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                import random

                def jitter():
                    return random.random() + random.uniform(0.0, 1.0)
            """},
        )
        assert rules_of(findings) == ["D001", "D001"]

    def test_from_import_and_bare_random_instance_fire(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                import random
                from random import choice

                def pick(items):
                    rng = random.Random()
                    return choice(items)
            """},
        )
        assert rules_of(findings) == ["D001", "D001"]

    def test_seeded_random_instance_is_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                import random

                def stream(seed):
                    rng = random.Random(seed)
                    return rng.random()
            """},
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                import random

                def jitter():
                    return random.random()  # repro: lint-ok[D001] demo only
            """},
        )
        assert findings == []


class TestD002WallClock:
    def test_time_and_datetime_reads_fire(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"sim/mod.py": """
                import time
                from datetime import datetime

                def stamp():
                    return time.time(), datetime.now()
            """},
        )
        assert rules_of(findings) == ["D002", "D002"]

    def test_from_import_perf_counter_fires(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                from time import perf_counter

                def elapsed():
                    return perf_counter()
            """},
        )
        assert rules_of(findings) == ["D002"]

    def test_allowlisted_module_is_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"repro/exp/daemon.py": """
                import time

                def poll():
                    return time.monotonic()
            """},
        )
        assert findings == []

    def test_engine_time_attribute_is_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                def now(engine):
                    return engine.now + engine.time()
            """},
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                import time

                def stamp():
                    # repro: lint-ok[D002] log decoration only
                    return time.time()
            """},
        )
        assert findings == []


class TestD003IdAsKey:
    def test_subscript_and_get_key_fire(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                def lookup(cache, obj):
                    cache[id(obj)] = 1
                    return cache.get(id(obj))
            """},
        )
        assert rules_of(findings) == ["D003", "D003"]

    def test_key_named_assignment_and_tuple_key_fire(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                def lookup(cache, obj, index):
                    cache_key = id(obj)
                    return cache[(id(obj), index)], cache_key
            """},
        )
        assert rules_of(findings) == ["D003", "D003"]

    def test_non_key_id_uses_are_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                def same(a, b):
                    label = f"obj-{id(a)}"
                    return id(a) == id(b), label
            """},
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                def lookup(cache, obj):
                    # repro: lint-ok[D003] obj is pinned by the cache value
                    cache[id(obj)] = obj
            """},
        )
        assert findings == []


class TestD004UnsortedFsEnum:
    def test_bare_glob_iterdir_listdir_fire(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                import os

                def walk(root):
                    for path in root.glob("*.json"):
                        yield path
                    for path in root.iterdir():
                        yield path
                    yield from os.listdir(root)
            """},
        )
        assert rules_of(findings) == ["D004", "D004", "D004"]

    def test_sorted_wrapping_is_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                import os

                def walk(root):
                    names = sorted(path.name for path in root.glob("*.json"))
                    count = len(root.iterdir())
                    present = set(os.listdir(root))
                    return names, count, present
            """},
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                def walk(root):
                    # repro: lint-ok[D004] order re-established downstream
                    return list(root.iterdir())
            """},
        )
        assert findings == []


class TestD005SetIteration:
    def test_set_literal_comprehension_and_constructor_fire(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                def total(values):
                    acc = 0.0
                    for v in {1.0, 2.0}:
                        acc += v
                    for v in set(values):
                        acc += v
                    return acc + sum(x for x in {v * 2 for v in values})
            """},
        )
        assert rules_of(findings) == ["D005", "D005", "D005"]

    def test_list_dict_and_sorted_iteration_are_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                def total(values, table):
                    acc = 0.0
                    for v in [1.0, 2.0]:
                        acc += v
                    for k in table:
                        acc += table[k]
                    for v in sorted(set(values)):
                        acc += v
                    return acc
            """},
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                def any_one(values):
                    # repro: lint-ok[D005] result is order-insensitive
                    for v in set(values):
                        return v
            """},
        )
        assert findings == []


class TestS001TraceKindLiterals:
    def test_bare_kind_literal_in_scoped_dirs_fires(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "sim/trace_kinds.py": REGISTRY,
                "core/emit.py": """
                    def emit(trace, now):
                        trace.record(now, "job_skip")
                """,
                "gpu/consume.py": """
                    def is_done(record):
                        return record.kind == "kernel_done"
                """,
            },
        )
        assert rules_of(findings) == ["S001", "S001"]
        assert "JOB_SKIP" in findings[0].message
        assert "KERNEL_DONE" in findings[1].message

    def test_constant_usage_and_out_of_scope_literals_are_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "sim/trace_kinds.py": REGISTRY,
                "sim/emit.py": """
                    from repro.sim.trace_kinds import JOB_SKIP

                    def emit(trace, now):
                        trace.record(now, JOB_SKIP)
                """,
                # analysis/ is outside the S001 scope: literals allowed
                "analysis/report.py": """
                    SKIPPED = "job_skip"
                """,
            },
        )
        assert findings == []

    def test_unregistered_strings_are_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "sim/trace_kinds.py": REGISTRY,
                "sim/emit.py": """
                    def emit(trace, now):
                        trace.record(now, "not_a_registered_kind")
                """,
            },
        )
        assert findings == []

    def test_without_registry_rule_is_skipped(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"sim/emit.py": """
                SKIPPED = "job_skip"
            """},
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "sim/trace_kinds.py": REGISTRY,
                "sim/emit.py": """
                    def emit(trace, now):
                        # repro: lint-ok[S001] golden-file literal kept verbatim
                        trace.record(now, "job_skip")
                """,
            },
        )
        assert findings == []


class TestS002VersionDiscipline:
    def test_version_bump_without_accept_set_fires(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                RESULT_VERSION = 2
            """},
        )
        assert rules_of(findings) == ["S002"]
        assert "RESULT_VERSION" in findings[0].message

    def test_accept_set_missing_a_prior_version_fires(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                GRID_FORMAT_VERSION = 3
                _READABLE_GRID_VERSIONS = (2, GRID_FORMAT_VERSION)
            """},
        )
        assert rules_of(findings) == ["S002"]
        assert "version 1" in findings[0].message

    def test_covering_accept_set_and_v1_writer_are_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                FORMAT_VERSION = 1
                RESULT_VERSION = 3
                _READABLE_RESULT_VERSIONS = (1, 2, RESULT_VERSION)
            """},
        )
        assert findings == []

    def test_two_formats_in_one_module_match_by_token(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                GRID_FORMAT_VERSION = 2
                TRACE_FORMAT_VERSION = 2
                _READABLE_GRID_VERSIONS = (1, GRID_FORMAT_VERSION)
            """},
        )
        assert rules_of(findings) == ["S002"]
        assert "TRACE_FORMAT_VERSION" in findings[0].message

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                # repro: lint-ok[S002] prototype format, no v1 artifacts exist
                SCRATCH_VERSION = 2
            """},
        )
        assert findings == []


class TestT001BenchmarkSlowMarker:
    def test_unmarked_benchmark_module_fires(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"benchmarks/test_bench_thing.py": """
                def test_expensive_sweep():
                    pass
            """},
        )
        assert rules_of(findings) == ["T001"]

    def test_pytestmark_and_decorator_forms_are_clean(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "benchmarks/test_module_marked.py": """
                    import pytest

                    pytestmark = pytest.mark.slow

                    def test_expensive_sweep():
                        pass
                """,
                "benchmarks/test_per_test_marked.py": """
                    import pytest

                    def test_fast_golden_smoke():
                        pass

                    @pytest.mark.slow
                    def test_expensive_sweep():
                        pass
                """,
                # conftest and non-test helpers carry no contract
                "benchmarks/conftest.py": """
                    def helper():
                        pass
                """,
                # test modules outside benchmarks/ carry no contract
                "tests/test_fast.py": """
                    def test_quick():
                        pass
                """,
            },
        )
        assert findings == []

    def test_pragma_suppresses(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"benchmarks/test_bench_thing.py": """
                # repro: lint-ok[T001] module is all fast golden smokes
                def test_golden():
                    pass
            """},
        )
        assert findings == []


class TestFramework:
    def test_findings_are_sorted_and_ids_stable(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "b.py": "import random\nx = random.random()\n",
                "a.py": "import time\ny = time.time()\nz = time.time()\n",
            },
        )
        paths = [f.path for f in findings]
        assert paths == sorted(paths)
        assert findings[0].finding_id == f"D002:{findings[0].path}:2:4"
        assert [f.line for f in findings[:2]] == [2, 3]

    def test_select_and_ignore_filter_rules(self, tmp_path):
        files = {"mod.py": "import random, time\nx = random.random()\ny = time.time()\n"}
        for relpath, source in files.items():
            (tmp_path / relpath).write_text(source)
        root = str(tmp_path)
        assert rules_of(run_lint([root], ALL_RULES)) == ["D001", "D002"]
        assert rules_of(run_lint([root], ALL_RULES, select=["D001"])) == ["D001"]
        assert rules_of(run_lint([root], ALL_RULES, ignore=["D001"])) == ["D002"]
        with pytest.raises(ValueError, match="unknown rule id"):
            run_lint([root], ALL_RULES, select=["D999"])

    def test_pragma_on_line_above_suppresses_only_that_rule(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                import random, time

                # repro: lint-ok[D001] demo stream
                x = random.random()
                y = time.time()
            """},
        )
        assert rules_of(findings) == ["D002"]

    def test_multi_rule_pragma(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                import random, time

                # repro: lint-ok[D001,D002] demo decoration
                x = random.random() + time.time()
            """},
        )
        assert findings == []

    def test_pragma_does_not_leak_to_other_lines(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {"mod.py": """
                import random

                # repro: lint-ok[D001] only the next line
                x = random.random()

                y = random.random()
            """},
        )
        assert rules_of(findings) == ["D001"]

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": "def broken(:\n    pass\n"})
        assert rules_of(findings) == [PARSE_ERROR]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_lint([str(tmp_path / "nope")], ALL_RULES)

    def test_render_json_shape(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": "import time\nx = time.time()\n"})
        payload = json.loads(render_json(findings))
        assert payload["version"] == 1
        assert payload["errors"] == 1
        (entry,) = payload["findings"]
        assert entry["rule"] == "D002"
        assert entry["id"] == f"D002:{entry['path']}:{entry['line']}:{entry['col']}"

    def test_render_text_tally(self, tmp_path):
        findings = lint_tree(tmp_path, {"mod.py": "import time\nx = time.time()\n"})
        text = render_text(findings)
        assert "1 finding (1 error)" in text
        assert render_text([]) == "clean: no lint findings\n"

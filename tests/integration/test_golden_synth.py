"""Golden regression test for one mixed-scenario sweep point.

Synthesis and simulation are deterministic at zero jitter, so one pinned
``mixed_fleet`` point (fast tier: 4 tasks, 1.0 s horizon) must keep
producing these exact numbers.  If a legitimate synthesis or scheduler
change moves them, update the constants *deliberately* — the point of the
pin is that heterogeneous-workload results can't shift silently.

The structural block pins the synthesized taskset itself (models, periods,
stage counts) at a second utilization, so a synthesis-stream change is
caught even when the aggregate metrics happen to survive it.
"""

import pytest

from repro.exp.grid import GridPoint
from repro.exp.worker import run_point
from repro.workloads.synth.scenarios import taskset_for_point

NUM_TASKS = 4
DURATION = 1.0
WARMUP = 0.25
TARGET_UTILIZATION = 2.2

# pinned steady-state metrics at utilization 2.2 (overloaded: the naive
# baseline sheds hard while SGPRS completes ~19% more frames).  The FPS
# values moved when the warmup rule was unified (FPS counts the same
# release >= warmup population DMR measures); DMR and release counts
# were unaffected by construction.
GOLDEN_NAIVE_FPS = 665.3333333333334
GOLDEN_NAIVE_DMR = 0.4924924924924925
GOLDEN_NAIVE_RELEASED = 893
GOLDEN_SGPRS_FPS = 789.3333333333334
GOLDEN_SGPRS_DMR = 0.4910941475826972
GOLDEN_SGPRS_RELEASED = 1053

# pinned taskset structure at utilization 1.5:
# (name, period, stages, total_wcet) rounded as in taskset_signature
GOLDEN_STRUCTURE = (
    ("synth0_resnet18", 0.007344519987, 4, 0.004244798871),
    ("synth1_mobilenet_small", 0.001836129997, 8, 0.000506020493),
    ("synth2_resnet18", 0.007344519987, 6, 0.004244798871),
    ("synth3_resnet34", 0.117512319784, 4, 0.008049604241),
)


def golden_point(variant, utilization=TARGET_UTILIZATION):
    return GridPoint(
        scenario="mixed_fleet",
        num_contexts=2,
        variant=variant,
        num_tasks=NUM_TASKS,
        seed=0,
        base_seed=0,
        duration=DURATION,
        warmup=WARMUP,
        workload="mixed_fleet",
        total_utilization=utilization,
    )


@pytest.fixture(scope="module")
def naive():
    return run_point(golden_point("naive"))


@pytest.fixture(scope="module")
def sgprs():
    return run_point(golden_point("sgprs_1.5"))


class TestGoldenSynthPoint:
    def test_naive_metrics_pinned(self, naive):
        assert naive.total_fps == pytest.approx(GOLDEN_NAIVE_FPS, rel=1e-9)
        assert naive.dmr == pytest.approx(GOLDEN_NAIVE_DMR, rel=1e-9)
        assert naive.released == GOLDEN_NAIVE_RELEASED

    def test_sgprs_metrics_pinned(self, sgprs):
        assert sgprs.total_fps == pytest.approx(GOLDEN_SGPRS_FPS, rel=1e-9)
        assert sgprs.dmr == pytest.approx(GOLDEN_SGPRS_DMR, rel=1e-9)
        assert sgprs.released == GOLDEN_SGPRS_RELEASED

    def test_sgprs_advantage_holds(self, naive, sgprs):
        assert sgprs.total_fps > naive.total_fps
        assert sgprs.dmr < naive.dmr


class TestGoldenSynthStructure:
    def test_taskset_structure_pinned(self):
        tasks = taskset_for_point(
            golden_point("sgprs_1.5", utilization=1.5), nominal_sms=34.0
        )
        observed = tuple(
            (
                task.name,
                round(task.period, 12),
                task.num_stages,
                round(task.total_wcet, 12),
            )
            for task in tasks
        )
        assert observed == GOLDEN_STRUCTURE

    def test_monolithic_variant_same_periods(self):
        staged = taskset_for_point(
            golden_point("sgprs_1.5", utilization=1.5), nominal_sms=34.0
        )
        mono = taskset_for_point(
            golden_point("naive", utilization=1.5),
            nominal_sms=34.0,
            monolithic=True,
        )
        assert [t.period for t in mono] == [t.period for t in staged]

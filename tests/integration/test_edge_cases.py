"""Integration edge cases: worst-case phasing, EDF evidence, robustness."""

import pytest

from repro.core.context_pool import ContextPoolConfig
from repro.core.runner import RunConfig, run_simulation
from repro.gpu.kernel import PriorityLevel
from repro.gpu.spec import GpuDeviceSpec, RTX_2080_TI
from repro.workloads.generator import identical_periodic_tasks


def run(tasks, pool, **overrides):
    config = dict(pool=pool, duration=1.5, warmup=0.3)
    config.update(overrides)
    return run_simulation(tasks, RunConfig(**config))


class TestSynchronousRelease:
    """All tasks releasing at t=0 is the worst-case phasing."""

    def test_synchronous_burst_still_schedulable_light(self):
        pool = ContextPoolConfig.from_oversubscription(2, 1.5, RTX_2080_TI)
        tasks = identical_periodic_tasks(
            8, nominal_sms=pool.sms_per_context, stagger=False
        )
        assert run(tasks, pool).dmr == 0.0

    def test_synchronous_no_worse_pivot_than_half_load(self):
        pool = ContextPoolConfig.from_oversubscription(2, 1.5, RTX_2080_TI)
        tasks = identical_periodic_tasks(
            16, nominal_sms=pool.sms_per_context, stagger=False
        )
        result = run(tasks, pool)
        # 16 tasks is well under the staggered pivot (24); the burst may
        # cost some latency but must not collapse the system
        assert result.dmr < 0.05

    def test_burst_latency_exceeds_staggered(self):
        pool = ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)
        def p99(stagger):
            tasks = identical_periodic_tasks(
                16, nominal_sms=pool.sms_per_context, stagger=stagger
            )
            result = run(tasks, pool)
            return result.metrics.response_time_percentile(0.99)
        assert p99(False) > p99(True)


class TestEdfEvidence:
    def test_trace_shows_edf_dispatch_within_level(self):
        """Among queued LOW stages on one context, dispatch must follow
        absolute-deadline order."""
        pool = ContextPoolConfig.from_oversubscription(1, 1.0, RTX_2080_TI)
        # synchronous release burst on one context guarantees queueing
        tasks = identical_periodic_tasks(
            12, nominal_sms=pool.sms_per_context, stagger=False
        )
        result = run(tasks, pool, record_trace=True, duration=0.5, warmup=0.0)
        trace = result.trace
        deadlines = {}
        for record in trace.of_kind("stage_release"):
            deadlines[record.get("stage")] = record.get("deadline")
        # reconstruct queue contents: starts that happen strictly after
        # their release (i.e. the stage actually waited in a queue)
        starts = trace.of_kind("kernel_start")
        released_at = {
            r.get("stage"): r.time for r in trace.of_kind("stage_release")
        }
        waited = [
            (record.time, record.get("kernel"), record.get("priority"))
            for record in starts
            if record.time > released_at.get(record.get("kernel"), 0.0) + 1e-9
        ]
        assert waited, "test needs enough load that some stages queue"
        # when two LOW stages start at the same instant from the queue, the
        # earlier-deadline one must start first (same-time order in the
        # trace is dispatch order)
        same_instant = {}
        for time, label, priority in waited:
            if priority == "LOW":
                same_instant.setdefault(round(time, 9), []).append(label)
        for labels in same_instant.values():
            queue_deadlines = [deadlines[l] for l in labels if l in deadlines]
            assert queue_deadlines == sorted(queue_deadlines)


class TestSmallDevices:
    def test_four_sm_device_still_works(self):
        spec = GpuDeviceSpec(name="tiny", total_sms=4,
                             aggregate_speedup_cap=4.0)
        pool = ContextPoolConfig(num_contexts=1, sms_per_context=4.0)
        tasks = identical_periodic_tasks(
            1, nominal_sms=4.0, period=0.5, num_stages=2
        )
        result = run_simulation(
            tasks, RunConfig(pool=pool, spec=spec, duration=2.0, warmup=0.0)
        )
        assert result.completed > 0

    def test_single_stream_spec(self):
        spec = GpuDeviceSpec(high_priority_streams=0, low_priority_streams=1)
        pool = ContextPoolConfig(num_contexts=2, sms_per_context=34.0)
        tasks = identical_periodic_tasks(4, nominal_sms=34.0)
        result = run_simulation(
            tasks, RunConfig(pool=pool, spec=spec, duration=1.0, warmup=0.2)
        )
        assert result.completed > 0


class TestJitterRobustness:
    def test_heavy_jitter_does_not_break_invariants(self):
        pool = ContextPoolConfig.from_oversubscription(2, 1.5, RTX_2080_TI)
        tasks = identical_periodic_tasks(20, nominal_sms=pool.sms_per_context)
        result = run(tasks, pool, work_jitter_cv=0.5, seed=99)
        assert 0.0 <= result.dmr <= 1.0
        assert result.completed <= result.released
        assert result.total_fps > 0

    def test_wcet_margin_covers_small_jitter(self):
        pool = ContextPoolConfig.from_oversubscription(2, 1.5, RTX_2080_TI)
        tasks = identical_periodic_tasks(16, nominal_sms=pool.sms_per_context)
        result = run(tasks, pool, work_jitter_cv=0.04, seed=5)
        assert result.dmr == 0.0


class TestMetricsConsistency:
    @pytest.mark.parametrize("num_tasks", [4, 16, 28])
    def test_fps_bounded_by_release_rate(self, num_tasks):
        pool = ContextPoolConfig.from_oversubscription(2, 1.5, RTX_2080_TI)
        tasks = identical_periodic_tasks(
            num_tasks, nominal_sms=pool.sms_per_context
        )
        result = run(tasks, pool)
        assert result.total_fps <= 30.0 * num_tasks * 1.05
        assert 0.0 <= result.dmr <= 1.0

    def test_completed_never_exceeds_released(self):
        pool = ContextPoolConfig.from_oversubscription(3, 2.0, RTX_2080_TI)
        tasks = identical_periodic_tasks(30, nominal_sms=pool.sms_per_context)
        result = run(tasks, pool)
        assert result.completed <= result.released

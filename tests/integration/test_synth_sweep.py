"""SGPRS-vs-naive pivot sweep over a utilization axis (fast tier).

The acceptance scenario of the synthesis subsystem: ramp the target total
utilization of a synthesized heterogeneous taskset and verify that the
sweep machinery resolves a pivot utilization per scheduler variant, with
SGPRS sustaining at least the naive baseline's pivot and strictly more
throughput under load — the paper's qualitative claim transported to a
workload it never measured.
"""

import pytest

from repro.analysis.pivot import utilization_pivot_table
from repro.workloads.synth.sweep import run_synth_sweep, utilization_pivots

UTILIZATIONS = (1.0, 1.8, 2.6)
VARIANTS = ("naive", "sgprs_1")


@pytest.fixture(scope="module")
def sweep_result():
    return run_synth_sweep(
        "util_ramp",
        utilizations=UTILIZATIONS,
        task_counts=(4,),
        variants=VARIANTS,
        duration=1.2,
        warmup=0.4,
    )


def by_cell(result):
    return {
        (r.point.variant, r.point.total_utilization): r
        for r in result.results
    }


class TestUtilizationPivotSweep:
    def test_grid_covers_the_axis(self, sweep_result):
        cells = by_cell(sweep_result)
        assert set(cells) == {
            (variant, u) for variant in VARIANTS for u in UTILIZATIONS
        }

    def test_low_utilization_meets_all_deadlines(self, sweep_result):
        cells = by_cell(sweep_result)
        for variant in VARIANTS:
            assert cells[(variant, 1.0)].dmr == 0.0, variant

    def test_overload_misses_on_the_baseline(self, sweep_result):
        cells = by_cell(sweep_result)
        assert cells[("naive", UTILIZATIONS[-1])].dmr > 0.1

    def test_sgprs_outperforms_naive_under_load(self, sweep_result):
        cells = by_cell(sweep_result)
        for u in UTILIZATIONS[1:]:
            naive = cells[("naive", u)]
            sgprs = cells[("sgprs_1", u)]
            assert sgprs.total_fps > naive.total_fps
            assert sgprs.dmr <= naive.dmr

    def test_pivot_utilizations_resolve_and_order(self, sweep_result):
        pivots = utilization_pivot_table(sweep_result.results)
        assert set(pivots) == set(VARIANTS)
        assert pivots["naive"] is not None
        assert pivots["sgprs_1"] is not None
        assert pivots["sgprs_1"] >= pivots["naive"]

    def test_sweep_helper_matches_analysis_pivots(self, sweep_result):
        assert utilization_pivots(sweep_result.results) == (
            utilization_pivot_table(sweep_result.results)
        )

    def test_tasksets_are_heterogeneous(self, sweep_result):
        # the sweep must actually exercise mixed models/periods/stages
        from repro.workloads.synth.scenarios import taskset_for_point

        point = next(iter(sweep_result.results)).point
        tasks = taskset_for_point(point, nominal_sms=34.0)
        models = {t.name.split("_", 1)[1] for t in tasks}
        assert len(models) > 1, "mix collapsed to one model"
        assert len({round(t.period, 9) for t in tasks}) > 1, "periods collapsed"

"""Smoke tests for the CLI (fig1 path only; sweeps are benchmark-scale)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_figures_accepted(self):
        parser = build_parser()
        for figure in ("fig1", "fig3", "fig4", "all"):
            assert parser.parse_args([figure]).figure == figure

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_flags(self):
        args = build_parser().parse_args(["fig3", "--fast", "--csv", "x.csv"])
        assert args.fast
        assert args.csv == "x.csv"


class TestFig1:
    def test_prints_table(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "conv2d" in out
        assert "maxpool" in out
        assert "resnet18" in out
        # the 68-SM row must be present
        assert "\n 68" in out or "\n68" in out.replace("  ", " ")

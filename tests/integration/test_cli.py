"""Smoke tests for the CLI (fig1 path only; sweeps are benchmark-scale)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_figures_accepted(self):
        parser = build_parser()
        for figure in ("fig1", "fig3", "fig4", "all"):
            assert parser.parse_args([figure]).figure == figure

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_flags(self):
        args = build_parser().parse_args(["fig3", "--fast", "--csv", "x.csv"])
        assert args.fast
        assert args.csv == "x.csv"


class TestSweepParser:
    def test_scenario_accepts_names(self):
        args = build_parser().parse_args(["sweep", "--scenario", "mixed_fleet"])
        assert args.scenario == "mixed_fleet"
        assert build_parser().parse_args(["sweep"]).scenario == "1"

    def test_axis_flags(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--scenario",
                "util_ramp",
                "--tasks",
                "4,8",
                "--utilizations",
                "1.0,1.5,2.0",
                "--period-class",
                "camera",
                "--zoo-mix",
                "edge",
                "--deadline-mode",
                "constrained",
            ]
        )
        assert args.tasks == (4, 8)
        assert args.utilizations == (1.0, 1.5, 2.0)
        assert args.period_class == "camera"
        assert args.zoo_mix == "edge"
        assert args.deadline_mode == "constrained"

    def test_bad_axis_values_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--tasks", "4,zero"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--utilizations", "0,-1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--period-class", "weekly"])


class TestListFlags:
    def test_list_scenarios(self, capsys):
        assert main(["sweep", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in (
            "scenario1",
            "scenario2",
            "mixed_fleet",
            "surveillance_burst",
            "util_ramp",
        ):
            assert name in out

    def test_list_variants(self, capsys):
        assert main(["sweep", "--list-variants"]) == 0
        out = capsys.readouterr().out
        assert "naive" in out
        assert "sgprs_1.5" in out


class TestSynthCommand:
    def test_prints_taskset_and_capacity(self, capsys):
        assert (
            main(
                [
                    "synth",
                    "--scenario",
                    "mixed_fleet",
                    "--tasks",
                    "4",
                    "--utilization",
                    "1.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mixed_fleet" in out
        assert "synth0_" in out
        assert "analytic demand" in out
        assert "naive" in out and "sgprs" in out


class TestDistParser:
    def test_shard_flag(self):
        args = build_parser().parse_args(["sweep", "--shard", "2/8"])
        assert args.shard == (2, 8)

    def test_bad_shard_rejected(self):
        for bad in ("0/4", "5/4", "x/y", "3"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["sweep", "--shard", bad])

    def test_claim_and_heartbeat_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--claim", "--heartbeat", "30", "--owner", "w1"]
        )
        assert args.claim
        assert args.heartbeat == 30.0
        assert args.owner == "w1"

    def test_merge_command(self):
        args = build_parser().parse_args(
            ["merge", "a.json", "b.json", "--out", "g.json", "--allow-partial"]
        )
        assert args.figure == "merge"
        assert args.inputs == ["a.json", "b.json"]
        assert args.allow_partial


class TestDistributedSweep:
    """ISSUE 3 acceptance: a grid run as 4 shards then merged is
    identical (modulo the unordered ``elapsed`` provenance) to the same
    grid run single-host."""

    ARGS = [
        "sweep",
        "--scenario",
        "1",
        "--tasks",
        "2,3",
        "--duration",
        "0.4",
        "--warmup",
        "0.1",
    ]

    @staticmethod
    def _identity(path):
        """Value identity of a grid document: point rows minus elapsed."""
        import json

        doc = json.loads(path.read_text())
        rows = sorted(
            json.dumps(
                {k: v for k, v in row.items() if k != "elapsed"},
                sort_keys=True,
            )
            for row in doc["points"]
        )
        return doc["version"], doc["spec"], rows

    def test_four_shards_merge_to_single_host_run(self, tmp_path, capsys):
        whole = tmp_path / "whole.json"
        assert main(self.ARGS + ["--out", str(whole)]) == 0
        shard_paths = []
        for i in range(1, 5):
            out = tmp_path / f"shard{i}.json"
            assert (
                main(self.ARGS + ["--shard", f"{i}/4", "--out", str(out)])
                == 0
            )
            shard_paths.append(str(out))
        merged = tmp_path / "merged.json"
        assert main(["merge", *shard_paths, "--out", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "merged 8 of 8 grid points from 4 document(s)" in out
        assert self._identity(merged) == self._identity(whole)

    def test_claim_run_dir_merges_to_single_host_run(self, tmp_path, capsys):
        whole = tmp_path / "whole.json"
        assert main(self.ARGS + ["--out", str(whole)]) == 0
        run_dir = tmp_path / "run"
        # two sequential claim passes from different owners share one
        # run directory (the first drains the grid, the second sees a
        # fully-cached run — the concurrent case is covered in
        # tests/exp/test_dist_properties.py)
        for owner in ("w1", "w2"):
            assert (
                main(
                    self.ARGS
                    + ["--claim", "--owner", owner, "--run-dir", str(run_dir)]
                )
                == 0
            )
        merged = tmp_path / "merged.json"
        assert main(["merge", str(run_dir), "--out", str(merged)]) == 0
        assert self._identity(merged) == self._identity(whole)

    def test_partial_run_dir_plus_completing_shard_merges(
        self, tmp_path, capsys
    ):
        # a run dir holding only shard 1's checkpoints merges with the
        # shard-2 JSON that completes it — without --allow-partial
        run_dir = tmp_path / "run"
        assert (
            main(self.ARGS + ["--shard", "1/2", "--run-dir", str(run_dir)])
            == 0
        )
        shard2 = tmp_path / "shard2.json"
        assert (
            main(self.ARGS + ["--shard", "2/2", "--out", str(shard2)]) == 0
        )
        capsys.readouterr()
        merged = tmp_path / "merged.json"
        assert (
            main(["merge", str(run_dir), str(shard2), "--out", str(merged)])
            == 0
        )
        assert "merged 8 of 8" in capsys.readouterr().out

    def test_cache_dir_conflicts_with_run_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="conflicts"):
            main(
                self.ARGS
                + [
                    "--claim",
                    "--cache-dir",
                    str(tmp_path / "warm"),
                    "--run-dir",
                    str(tmp_path / "run"),
                ]
            )

    def test_partial_shard_merge_reports_missing(self, tmp_path, capsys):
        out = tmp_path / "shard1.json"
        assert main(self.ARGS + ["--shard", "1/4", "--out", str(out)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="cover only"):
            main(["merge", str(out)])
        merged = tmp_path / "partial.json"
        assert (
            main(["merge", str(out), "--allow-partial", "--out", str(merged)])
            == 0
        )
        assert "2 of 8 grid points" in capsys.readouterr().out


class TestFig1:
    def test_prints_table(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "conv2d" in out
        assert "maxpool" in out
        assert "resnet18" in out
        # the 68-SM row must be present
        assert "\n 68" in out or "\n68" in out.replace("  ", " ")

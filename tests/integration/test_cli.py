"""Smoke tests for the CLI (fig1 path only; sweeps are benchmark-scale)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_figures_accepted(self):
        parser = build_parser()
        for figure in ("fig1", "fig3", "fig4", "all"):
            assert parser.parse_args([figure]).figure == figure

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_flags(self):
        args = build_parser().parse_args(["fig3", "--fast", "--csv", "x.csv"])
        assert args.fast
        assert args.csv == "x.csv"


class TestSweepParser:
    def test_scenario_accepts_names(self):
        args = build_parser().parse_args(["sweep", "--scenario", "mixed_fleet"])
        assert args.scenario == "mixed_fleet"
        assert build_parser().parse_args(["sweep"]).scenario == "1"

    def test_axis_flags(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--scenario",
                "util_ramp",
                "--tasks",
                "4,8",
                "--utilizations",
                "1.0,1.5,2.0",
                "--period-class",
                "camera",
                "--zoo-mix",
                "edge",
                "--deadline-mode",
                "constrained",
            ]
        )
        assert args.tasks == (4, 8)
        assert args.utilizations == (1.0, 1.5, 2.0)
        assert args.period_class == "camera"
        assert args.zoo_mix == "edge"
        assert args.deadline_mode == "constrained"

    def test_bad_axis_values_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--tasks", "4,zero"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--utilizations", "0,-1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--period-class", "weekly"])


class TestListFlags:
    def test_list_scenarios(self, capsys):
        assert main(["sweep", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in (
            "scenario1",
            "scenario2",
            "mixed_fleet",
            "surveillance_burst",
            "util_ramp",
        ):
            assert name in out

    def test_list_variants(self, capsys):
        assert main(["sweep", "--list-variants"]) == 0
        out = capsys.readouterr().out
        assert "naive" in out
        assert "sgprs_1.5" in out


class TestSynthCommand:
    def test_prints_taskset_and_capacity(self, capsys):
        assert (
            main(
                [
                    "synth",
                    "--scenario",
                    "mixed_fleet",
                    "--tasks",
                    "4",
                    "--utilization",
                    "1.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mixed_fleet" in out
        assert "synth0_" in out
        assert "analytic demand" in out
        assert "naive" in out and "sgprs" in out


class TestFig1:
    def test_prints_table(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "conv2d" in out
        assert "maxpool" in out
        assert "resnet18" in out
        # the 68-SM row must be present
        assert "\n 68" in out or "\n68" in out.replace("  ", " ")

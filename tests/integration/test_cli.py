"""Smoke tests for the CLI (fig1 path only; sweeps are benchmark-scale)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main


class TestParser:
    def test_figures_accepted(self):
        parser = build_parser()
        for figure in ("fig1", "fig3", "fig4", "all"):
            assert parser.parse_args([figure]).figure == figure

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_flags(self):
        args = build_parser().parse_args(["fig3", "--fast", "--csv", "x.csv"])
        assert args.fast
        assert args.csv == "x.csv"


class TestSweepParser:
    def test_scenario_accepts_names(self):
        args = build_parser().parse_args(["sweep", "--scenario", "mixed_fleet"])
        assert args.scenario == "mixed_fleet"
        assert build_parser().parse_args(["sweep"]).scenario == "1"

    def test_axis_flags(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--scenario",
                "util_ramp",
                "--tasks",
                "4,8",
                "--utilizations",
                "1.0,1.5,2.0",
                "--period-class",
                "camera",
                "--zoo-mix",
                "edge",
                "--deadline-mode",
                "constrained",
            ]
        )
        assert args.tasks == (4, 8)
        assert args.utilizations == (1.0, 1.5, 2.0)
        assert args.period_class == "camera"
        assert args.zoo_mix == "edge"
        assert args.deadline_mode == "constrained"

    def test_bad_axis_values_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--tasks", "4,zero"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--utilizations", "0,-1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--period-class", "weekly"])


class TestListFlags:
    def test_list_scenarios(self, capsys):
        assert main(["sweep", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in (
            "scenario1",
            "scenario2",
            "mixed_fleet",
            "surveillance_burst",
            "util_ramp",
        ):
            assert name in out

    def test_list_variants(self, capsys):
        assert main(["sweep", "--list-variants"]) == 0
        out = capsys.readouterr().out
        assert "naive" in out
        assert "sgprs_1.5" in out


class TestSynthCommand:
    def test_prints_taskset_and_capacity(self, capsys):
        assert (
            main(
                [
                    "synth",
                    "--scenario",
                    "mixed_fleet",
                    "--tasks",
                    "4",
                    "--utilization",
                    "1.5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mixed_fleet" in out
        assert "synth0_" in out
        assert "analytic demand" in out
        assert "naive" in out and "sgprs" in out


class TestDistParser:
    def test_shard_flag(self):
        args = build_parser().parse_args(["sweep", "--shard", "2/8"])
        assert args.shard == (2, 8)

    def test_bad_shard_rejected(self):
        for bad in ("0/4", "5/4", "x/y", "3"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["sweep", "--shard", bad])

    def test_claim_and_heartbeat_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--claim", "--heartbeat", "30", "--owner", "w1"]
        )
        assert args.claim
        assert args.heartbeat == 30.0
        assert args.owner == "w1"

    def test_merge_command(self):
        args = build_parser().parse_args(
            ["merge", "a.json", "b.json", "--out", "g.json", "--allow-partial"]
        )
        assert args.figure == "merge"
        assert args.inputs == ["a.json", "b.json"]
        assert args.allow_partial


class TestDistributedSweep:
    """ISSUE 3 acceptance: a grid run as 4 shards then merged is
    identical (modulo the unordered ``elapsed`` provenance) to the same
    grid run single-host."""

    ARGS = [
        "sweep",
        "--scenario",
        "1",
        "--tasks",
        "2,3",
        "--duration",
        "0.4",
        "--warmup",
        "0.1",
    ]

    @staticmethod
    def _identity(path):
        """Value identity of a grid document: point rows minus elapsed."""
        import json

        doc = json.loads(path.read_text())
        rows = sorted(
            json.dumps(
                {k: v for k, v in row.items() if k != "elapsed"},
                sort_keys=True,
            )
            for row in doc["points"]
        )
        return doc["version"], doc["spec"], rows

    def test_four_shards_merge_to_single_host_run(self, tmp_path, capsys):
        whole = tmp_path / "whole.json"
        assert main(self.ARGS + ["--out", str(whole)]) == 0
        shard_paths = []
        for i in range(1, 5):
            out = tmp_path / f"shard{i}.json"
            assert (
                main(self.ARGS + ["--shard", f"{i}/4", "--out", str(out)])
                == 0
            )
            shard_paths.append(str(out))
        merged = tmp_path / "merged.json"
        assert main(["merge", *shard_paths, "--out", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "merged 8 of 8 grid points from 4 document(s)" in out
        assert self._identity(merged) == self._identity(whole)

    def test_claim_run_dir_merges_to_single_host_run(self, tmp_path, capsys):
        whole = tmp_path / "whole.json"
        assert main(self.ARGS + ["--out", str(whole)]) == 0
        run_dir = tmp_path / "run"
        # two sequential claim passes from different owners share one
        # run directory (the first drains the grid, the second sees a
        # fully-cached run — the concurrent case is covered in
        # tests/exp/test_dist_properties.py)
        for owner in ("w1", "w2"):
            assert (
                main(
                    self.ARGS
                    + ["--claim", "--owner", owner, "--run-dir", str(run_dir)]
                )
                == 0
            )
        merged = tmp_path / "merged.json"
        assert main(["merge", str(run_dir), "--out", str(merged)]) == 0
        assert self._identity(merged) == self._identity(whole)

    def test_partial_run_dir_plus_completing_shard_merges(
        self, tmp_path, capsys
    ):
        # a run dir holding only shard 1's checkpoints merges with the
        # shard-2 JSON that completes it — without --allow-partial
        run_dir = tmp_path / "run"
        assert (
            main(self.ARGS + ["--shard", "1/2", "--run-dir", str(run_dir)])
            == 0
        )
        shard2 = tmp_path / "shard2.json"
        assert (
            main(self.ARGS + ["--shard", "2/2", "--out", str(shard2)]) == 0
        )
        capsys.readouterr()
        merged = tmp_path / "merged.json"
        assert (
            main(["merge", str(run_dir), str(shard2), "--out", str(merged)])
            == 0
        )
        assert "merged 8 of 8" in capsys.readouterr().out

    def test_cache_dir_conflicts_with_run_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="conflicts"):
            main(
                self.ARGS
                + [
                    "--claim",
                    "--cache-dir",
                    str(tmp_path / "warm"),
                    "--run-dir",
                    str(tmp_path / "run"),
                ]
            )

    def test_partial_shard_merge_reports_missing(self, tmp_path, capsys):
        out = tmp_path / "shard1.json"
        assert main(self.ARGS + ["--shard", "1/4", "--out", str(out)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="cover only"):
            main(["merge", str(out)])
        merged = tmp_path / "partial.json"
        assert (
            main(["merge", str(out), "--allow-partial", "--out", str(merged)])
            == 0
        )
        assert "2 of 8 grid points" in capsys.readouterr().out


class TestSubmitFlag:
    """``sweep --submit``: initialise the run directory, compute nothing."""

    ARGS = TestDistributedSweep.ARGS

    def test_submit_initialises_without_computing(self, tmp_path, capsys):
        from repro.exp.dist import load_manifest, pending_points

        assert (
            main(self.ARGS + ["--submit", "--runs-root", str(tmp_path)]) == 0
        )
        out = capsys.readouterr().out
        assert "submitted run" in out
        assert "python -m repro worker" in out
        (run_dir,) = [p for p in tmp_path.iterdir() if p.is_dir()]
        manifest = load_manifest(run_dir)
        assert len(pending_points(run_dir)) == len(manifest.spec) == 8
        # a later worker pass (here: --resume) drains the submitted run
        assert main(["sweep", "--resume", str(run_dir)]) == 0
        assert "8 computed" in capsys.readouterr().out
        assert pending_points(run_dir) == []

    def test_submit_hint_names_the_run_dirs_actual_parent(
        self, tmp_path, capsys
    ):
        # with --run-dir, workers must be pointed at the directory that
        # actually contains the run — not the (unused) --runs-root
        run_dir = tmp_path / "elsewhere" / "myrun"
        assert main(self.ARGS + ["--submit", "--run-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert f"--runs-root {tmp_path / 'elsewhere'}" in out
        assert ".repro-runs" not in out

    def test_submit_is_idempotent(self, tmp_path, capsys):
        for _ in range(2):
            assert (
                main(self.ARGS + ["--submit", "--runs-root", str(tmp_path)])
                == 0
            )
        assert len(list(tmp_path.iterdir())) == 1


class TestCliExitCodes:
    """Documented refusal paths, driven as real subprocesses.

    The function layer pins the ``ValueError`` messages; these pin the
    *process contract* scripts and CI depend on: each refusal exits
    non-zero with a one-line reason on stderr (and nothing half-merged
    on stdout).
    """

    @staticmethod
    def _repro(*argv):
        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )

    @staticmethod
    def _write_shards(tmp_path, mutate=None):
        """Two complementary half-grid documents (optionally mutated)."""
        from repro.analysis.persistence import grid_to_dict
        from repro.exp.runner import run_grid

        from tests.exp.test_dist_properties import fake_point
        from tests.exp.test_dist_merge import SPEC

        paths = []
        for i in (1, 2):
            doc = grid_to_dict(run_grid(SPEC, shard=(i, 2), point_fn=fake_point))
            if mutate is not None:
                mutate(i, doc)
            path = tmp_path / f"shard{i}.json"
            path.write_text(json.dumps(doc))
            paths.append(str(path))
        return paths

    def _assert_refusal(self, result, reason):
        assert result.returncode != 0, result.stdout
        stderr = result.stderr.strip()
        assert reason in stderr, stderr
        assert len(stderr.splitlines()) == 1, (
            f"expected a one-line reason, got:\n{stderr}"
        )

    def test_merge_refuses_mixed_calibrations(self, tmp_path):
        def mutate(i, doc):
            doc["calibration"] = ("a" if i == 1 else "f") * 64

        result = self._repro("merge", *self._write_shards(tmp_path, mutate))
        self._assert_refusal(result, "different device calibrations")

    def test_merge_refuses_a_foreign_spec(self, tmp_path):
        def mutate(i, doc):
            if i == 2:
                doc["spec"]["duration"] = 99.0

        result = self._repro("merge", *self._write_shards(tmp_path, mutate))
        self._assert_refusal(result, "different grids")

    def test_merge_refuses_incomplete_coverage(self, tmp_path):
        shard1, _ = self._write_shards(tmp_path)
        result = self._repro("merge", shard1)
        self._assert_refusal(result, "cover only")
        # ...and the documented escape hatch succeeds
        rescue = self._repro("merge", shard1, "--allow-partial")
        assert rescue.returncode == 0, rescue.stderr

    def test_merge_refuses_mixed_format_versions(self, tmp_path):
        def mutate(i, doc):
            if i == 2:
                doc["version"] += 1

        result = self._repro("merge", *self._write_shards(tmp_path, mutate))
        self._assert_refusal(result, "mixed format versions")

    def test_resume_of_unknown_run_fails_cleanly(self, tmp_path):
        result = self._repro("sweep", "--resume", str(tmp_path / "ghost"))
        self._assert_refusal(result, "not a run directory")


class TestFig1:
    def test_prints_table(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "conv2d" in out
        assert "maxpool" in out
        assert "resnet18" in out
        # the 68-SM row must be present
        assert "\n 68" in out or "\n68" in out.replace("  ", " ")

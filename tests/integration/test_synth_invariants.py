"""Scheduler invariants on synthesized heterogeneous tasksets.

The SchedulerBase contracts (tests/core/test_scheduler_invariants.py) were
established on the paper's homogeneous workload; a synthesized taskset —
mixed models, ladder periods, constrained deadlines, per-task stage counts
— must uphold the same guarantees on both SGPRS and the naive baseline.
"""

import pytest

from repro.core.context_pool import ContextPoolConfig
from repro.core.naive import NaiveScheduler
from repro.core.runner import RunConfig, run_simulation
from repro.core.sgprs import SgprsScheduler
from repro.gpu.spec import RTX_2080_TI
from repro.workloads.synth import SynthSpec, synthesize_taskset

DURATION = 0.8

_RUN_CACHE = {}


def run_synth_traced(scheduler, spec, num_contexts=2, oversubscription=1.0):
    """One traced run per (scheduler, spec), shared by the test methods."""
    key = (scheduler, spec, num_contexts, oversubscription)
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]
    pool = ContextPoolConfig.from_oversubscription(
        num_contexts, oversubscription, RTX_2080_TI
    )
    tasks = synthesize_taskset(
        spec,
        nominal_sms=pool.sms_per_context,
        monolithic=scheduler is NaiveScheduler,
    )
    result = run_simulation(
        tasks,
        RunConfig(
            pool=pool,
            scheduler=scheduler,
            duration=DURATION,
            warmup=0.2,
            record_trace=True,
        ),
    )
    _RUN_CACHE[key] = result
    return result


SPECS = [
    SynthSpec(num_tasks=4, total_utilization=1.2, zoo_mix="fleet", seed=0),
    SynthSpec(
        num_tasks=6,
        total_utilization=2.6,
        zoo_mix="surveillance",
        period_class="loguniform",
        deadline_mode="constrained",
        seed=5,
    ),
    SynthSpec(
        num_tasks=5,
        total_utilization=3.5,  # overload: skips/sheds must be accounted
        zoo_mix="fleet",
        period_class="camera",
        seed=9,
    ),
]


@pytest.mark.parametrize("scheduler", [SgprsScheduler, NaiveScheduler])
@pytest.mark.parametrize("spec", SPECS, ids=lambda s: f"u{s.total_utilization}")
class TestSynthSchedulerInvariants:
    def test_job_conservation(self, scheduler, spec):
        result = run_synth_traced(scheduler, spec)
        kinds = result.trace.kinds()
        released = kinds.get("job_release", 0)
        completed = kinds.get("job_complete", 0)
        skipped = kinds.get("job_skip", 0)
        shed = kinds.get("job_shed", 0)
        in_flight = released - completed - skipped - shed
        assert 0 <= in_flight <= spec.num_tasks
        assert result.released == released
        assert result.completed == completed

    def test_trace_monotonic_within_horizon(self, scheduler, spec):
        result = run_synth_traced(scheduler, spec)
        times = [record.time for record in result.trace]
        assert times, "a run must emit trace records"
        assert all(b >= a for a, b in zip(times, times[1:]))
        release_times = [r.time for r in result.trace.of_kind("job_release")]
        assert all(t < DURATION for t in release_times)

    def test_per_task_conservation(self, scheduler, spec):
        result = run_synth_traced(scheduler, spec)
        trace = result.trace
        names = {r.get("task") for r in trace if r.get("task")}
        assert names, "trace must attribute records to tasks"
        for name in names:
            by_task = trace.where(lambda r, n=name: r.get("task") == n)
            released = sum(1 for r in by_task if r.kind == "job_release")
            finished = sum(
                1
                for r in by_task
                if r.kind in ("job_complete", "job_skip", "job_shed")
            )
            assert finished <= released <= finished + 1, name

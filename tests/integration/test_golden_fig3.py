"""Golden regression test for the Fig. 3 headline numbers.

``results/bench_fig3.txt`` (benchmark tier, duration 3.0 / warmup 1.0)
reports the reproduction's headline row at 30 tasks in scenario 1:

* the naive baseline saturates and sags to ~461 FPS with a drastic
  (>90%) deadline miss rate;
* SGPRS_1 sustains its plateau at 756.5 FPS with a moderate miss rate.

The simulation is deterministic at zero jitter, so the same small-horizon
run must keep producing those numbers bit-for-bit; this test re-runs just
the two headline points (seconds, not the full benchmark sweep) and pins
them.  If a core/scheduler change legitimately moves the numbers,
regenerate the benchmark tier (``pytest benchmarks --runslow``) and update
the constants here alongside ``results/bench_fig3.txt``.
"""

import pytest

from repro.workloads.scenarios import SCENARIO_1, sweep_point

# results/bench_fig3.txt grid parameters
DURATION = 3.0
WARMUP = 1.0
TASKS = 30

# headline values from results/bench_fig3.txt at 30 tasks (the FPS pair
# moved ~10 fps when the warmup rule was unified — FPS now counts the
# same release >= warmup population DMR measures; DMR was unaffected)
GOLDEN_NAIVE_FPS = 450.5
GOLDEN_NAIVE_DMR = 0.976
GOLDEN_SGPRS1_FPS = 745.0
GOLDEN_SGPRS1_DMR = 0.323


@pytest.fixture(scope="module")
def naive():
    return sweep_point(
        SCENARIO_1, "naive", TASKS, duration=DURATION, warmup=WARMUP
    )


@pytest.fixture(scope="module")
def sgprs_1():
    return sweep_point(
        SCENARIO_1, "sgprs_1", TASKS, duration=DURATION, warmup=WARMUP
    )


class TestGoldenHeadline:
    def test_naive_plateaus_near_460(self, naive):
        assert naive.total_fps == pytest.approx(GOLDEN_NAIVE_FPS, abs=1.0)

    def test_naive_dmr_drastic(self, naive):
        assert naive.dmr == pytest.approx(GOLDEN_NAIVE_DMR, abs=0.005)

    def test_sgprs1_reaches_756(self, sgprs_1):
        assert sgprs_1.total_fps == pytest.approx(GOLDEN_SGPRS1_FPS, abs=1.0)

    def test_sgprs1_dmr_moderate(self, sgprs_1):
        assert sgprs_1.dmr == pytest.approx(GOLDEN_SGPRS1_DMR, abs=0.005)

    def test_sgprs_advantage_ratio(self, naive, sgprs_1):
        # the paper's headline: naive sags ~38% below SGPRS at 30 tasks
        drop = 1.0 - naive.total_fps / sgprs_1.total_fps
        assert drop == pytest.approx(0.39, abs=0.03)

    def test_golden_file_matches_pinned_constants(self):
        """The committed benchmark output and these constants stay in sync."""
        import pathlib

        path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "results"
            / "bench_fig3.txt"
        )
        if not path.exists():
            pytest.skip("results/bench_fig3.txt not present")
        text = path.read_text()
        assert f"{GOLDEN_SGPRS1_FPS:.1f}" in text
        assert f"{GOLDEN_NAIVE_FPS:.1f}" in text
"""Integration tests: the paper's qualitative claims at reduced scale.

These run the full stack (workload -> offline phase -> scheduler -> GPU
simulator -> metrics) and assert the *shape* results Section V reports.
Durations are kept short; the benchmark harness under ``benchmarks/`` runs
the full-fidelity versions.

Marked ``slow``: together these sweeps take the better part of a minute,
so they ride in the opt-in tier (``--runslow``) with the benchmarks.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.core.context_pool import ContextPoolConfig
from repro.core.naive import NaiveScheduler
from repro.core.runner import RunConfig, run_simulation
from repro.gpu.spec import RTX_2080_TI
from repro.workloads.generator import identical_periodic_tasks


def sgprs_run(num_tasks, num_contexts=2, oversubscription=1.5, duration=2.0):
    pool = ContextPoolConfig.from_oversubscription(
        num_contexts, oversubscription, RTX_2080_TI
    )
    tasks = identical_periodic_tasks(num_tasks, nominal_sms=pool.sms_per_context)
    return run_simulation(
        tasks, RunConfig(pool=pool, duration=duration, warmup=0.5)
    )


def naive_run(num_tasks, num_contexts=2, duration=2.0):
    pool = ContextPoolConfig.from_oversubscription(
        num_contexts, 1.0, RTX_2080_TI
    )
    tasks = identical_periodic_tasks(
        num_tasks, nominal_sms=pool.sms_per_context, num_stages=1
    )
    return run_simulation(
        tasks,
        RunConfig(pool=pool, scheduler=NaiveScheduler, duration=duration,
                  warmup=0.5),
    )


class TestPivotOrdering:
    """SGPRS' pivot point comes much later than the naive scheduler's."""

    def test_naive_misses_at_16_tasks(self):
        assert naive_run(16).dmr > 0.0

    def test_sgprs_meets_deadlines_at_16_tasks(self):
        assert sgprs_run(16).dmr == 0.0

    def test_sgprs_meets_deadlines_at_22_tasks(self):
        assert sgprs_run(22).dmr == 0.0

    def test_both_meet_at_8_tasks(self):
        assert naive_run(8).dmr == 0.0
        assert sgprs_run(8).dmr == 0.0


class TestSustainedFps:
    """Past the pivot, SGPRS sustains total FPS; naive sags well below."""

    def test_sgprs_fps_sustained_beyond_pivot(self):
        at_24 = sgprs_run(24).total_fps
        at_28 = sgprs_run(28).total_fps
        assert at_28 >= at_24 * 0.97

    def test_naive_fps_saturates_beyond_pivot(self):
        at_16 = naive_run(16).total_fps
        at_28 = naive_run(28).total_fps
        # naive cannot convert the extra offered load into frames
        assert at_28 < at_16 * 1.05

    def test_sgprs_outperforms_naive_at_high_load(self):
        sgprs = sgprs_run(28).total_fps
        naive = naive_run(28).total_fps
        # the paper reports a ~38% gap in scenario 1
        assert naive < 0.72 * sgprs


class TestDominoEffect:
    """Naive DMR explodes after the pivot; SGPRS grows gently."""

    def test_naive_dmr_drastic(self):
        assert naive_run(24).dmr > 0.5

    def test_sgprs_dmr_moderate(self):
        result = sgprs_run(27)
        assert 0.0 < result.dmr < 0.35

    def test_sgprs_dmr_increases_with_load(self):
        assert sgprs_run(30).dmr > sgprs_run(27).dmr


class TestScenario2:
    """Three contexts: 1.5x over-subscription beats 2.0x (paper Fig. 4a)."""

    def test_moderate_oversubscription_wins(self):
        fps_15 = sgprs_run(28, num_contexts=3, oversubscription=1.5).total_fps
        fps_20 = sgprs_run(28, num_contexts=3, oversubscription=2.0).total_fps
        assert fps_15 > fps_20
        # paper: 741 vs 731 — a small but consistent gap
        assert fps_15 / fps_20 < 1.05

    def test_scenario2_sgprs_beats_naive(self):
        sgprs = sgprs_run(28, num_contexts=3, oversubscription=1.5).total_fps
        naive = naive_run(28, num_contexts=3).total_fps
        assert sgprs > naive


class TestUtilization:
    def test_sgprs_saturates_device_in_overload(self):
        assert sgprs_run(28).utilization > 0.95

    def test_light_load_leaves_headroom(self):
        assert sgprs_run(4).utilization < 0.5

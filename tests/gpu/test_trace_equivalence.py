"""Trace equivalence: incremental completion re-arming vs. the reference.

The incremental device (``rearm="incremental"``, the default) re-arms a
kernel's provisional completion event only when its rate revision moved and
skips the allocation pass entirely when the resident set is untouched.  The
reference mode (``rearm="full"``) cancels and re-pushes every resident
kernel's event at every change point — the historical O(K)-per-settle
behaviour.

These tests pin the optimisation's whole correctness claim: for every named
scenario, scheduler variant, replication seed and jitter setting, the two
modes must produce **bit-identical** :class:`TraceRecorder` output (every
record's exact float timestamp, kind and payload) and identical steady-state
metrics.  The fast tier runs a one-seed slice on every push; the full
acceptance matrix (all named scenarios x 3 seeds x jitter on/off x both
scheduler families) runs in the slow tier.
"""

import pytest

from repro.core.context_pool import ContextPoolConfig
from repro.core.runner import RunConfig, run_simulation
from repro.core.sgprs import SgprsScheduler
from repro.exp.grid import GridPoint, resolve_variant
from repro.gpu.spec import RTX_2080_TI
from repro.workloads.generator import identical_periodic_tasks
from repro.workloads.synth.scenarios import taskset_for_point

#: Every named scenario: (scenario name, context count, workload axis).
NAMED_SCENARIOS = [
    ("scenario1", 2, "identical"),
    ("scenario2", 3, "identical"),
    ("mixed_fleet", 2, "mixed_fleet"),
    ("surveillance_burst", 3, "surveillance_burst"),
    ("util_ramp", 2, "util_ramp"),
]


def run_traced(point: GridPoint, rearm_mode: str, scheduler_cls=None):
    """One fully-traced run of a grid point under a re-arm mode.

    Mirrors :func:`repro.exp.worker.run_point`'s taskset construction, but
    keeps the trace (the sweep path deliberately drops it).
    """
    scheduler, oversubscription, task_stages = resolve_variant(
        point.variant, point.num_stages
    )
    pool = ContextPoolConfig.from_oversubscription(
        point.num_contexts, oversubscription, RTX_2080_TI
    )
    if point.workload == "identical":
        tasks = identical_periodic_tasks(
            count=point.num_tasks,
            nominal_sms=pool.sms_per_context,
            period=point.period,
            num_stages=task_stages,
        )
    else:
        tasks = taskset_for_point(
            point,
            nominal_sms=pool.sms_per_context,
            monolithic=task_stages == 1,
        )
    return run_simulation(
        tasks,
        RunConfig(
            pool=pool,
            scheduler=scheduler_cls if scheduler_cls is not None else scheduler,
            duration=point.duration,
            warmup=point.warmup,
            record_trace=True,
            work_jitter_cv=point.work_jitter_cv,
            seed=point.seed,
            rearm_mode=rearm_mode,
        ),
    )


def canonical_trace(result):
    """The trace as comparable tuples; floats compare exactly (bitwise)."""
    return [
        (record.time, record.kind, tuple(sorted(record.fields.items())))
        for record in result.trace
    ]


def assert_equivalent(point: GridPoint, scheduler_cls=None):
    incremental = run_traced(point, "incremental", scheduler_cls)
    reference = run_traced(point, "full", scheduler_cls)
    assert canonical_trace(incremental) == canonical_trace(reference)
    assert incremental.metrics_summary() == reference.metrics_summary()


def make_point(scenario, num_contexts, workload, variant, seed, jitter,
               num_tasks, duration):
    return GridPoint(
        scenario=scenario,
        num_contexts=num_contexts,
        variant=variant,
        num_tasks=num_tasks,
        seed=seed,
        duration=duration,
        warmup=duration / 4.0,
        work_jitter_cv=jitter,
        workload=workload,
    )


class TestFastSlice:
    """One-seed slice of the equivalence matrix; runs on every push."""

    @pytest.mark.parametrize(
        "scenario,num_contexts,workload", NAMED_SCENARIOS
    )
    @pytest.mark.parametrize("jitter", [0.0, 0.1])
    def test_sgprs_trace_equivalence(self, scenario, num_contexts, workload,
                                     jitter):
        assert_equivalent(
            make_point(scenario, num_contexts, workload, "sgprs_1.5",
                       seed=0, jitter=jitter, num_tasks=5, duration=0.8)
        )

    @pytest.mark.parametrize(
        "scenario,num_contexts,workload", NAMED_SCENARIOS[:2]
    )
    def test_naive_trace_equivalence(self, scenario, num_contexts, workload):
        # The naive baseline pays partition-reconfiguration setup time, the
        # one path where completion times mix setup and rate-based work.
        assert_equivalent(
            make_point(scenario, num_contexts, workload, "naive",
                       seed=0, jitter=0.1, num_tasks=5, duration=0.8)
        )


class _BacklogSgprs(SgprsScheduler):
    """Admit-everything ablation: queues snowball, change points are dense."""

    name = "sgprs_backlog"
    admit_all_releases = True


class TestSheddingEquivalence:
    """The abort path (``abort_job`` -> ``GpuDevice.abort_many``)."""

    @pytest.mark.parametrize("jitter", [0.0, 0.1])
    def test_shedding_run_is_equivalent(self, jitter):
        point = make_point("scenario1", 2, "identical", "sgprs_1.5",
                           seed=3, jitter=jitter, num_tasks=8, duration=0.8)

        class SheddingSgprs(_BacklogSgprs):
            """Backlog admission plus deadline-triggered job shedding."""

            name = "sgprs_shedding"

            def _release_job(self, task):
                super()._release_job(task)
                job = self._latest_job.get(task.name)
                if job is not None and not job.finished:
                    self.engine.schedule_at(
                        job.absolute_deadline,
                        lambda j=job: self.abort_job(j),
                        tag=f"shed:{task.name}/j{job.index}",
                    )

        assert_equivalent(point, scheduler_cls=SheddingSgprs)


@pytest.mark.slow
class TestFullMatrix:
    """The acceptance matrix: all named scenarios x 3 seeds x jitter on/off
    x both scheduler families, bit-identical traces throughout."""

    @pytest.mark.parametrize(
        "scenario,num_contexts,workload", NAMED_SCENARIOS
    )
    @pytest.mark.parametrize("variant", ["sgprs_1.5", "naive"])
    @pytest.mark.parametrize("jitter", [0.0, 0.1])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_trace_equivalence(self, scenario, num_contexts, workload,
                               variant, jitter, seed):
        assert_equivalent(
            make_point(scenario, num_contexts, workload, variant,
                       seed=seed, jitter=jitter, num_tasks=6, duration=1.2)
        )

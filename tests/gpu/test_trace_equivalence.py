"""Trace equivalence: all three completion re-arm modes vs. each other.

The incremental device (``rearm="incremental"``, the default) re-arms a
kernel's provisional completion event only when its rate revision moved and
skips the allocation pass entirely when the resident set is untouched.  The
reference mode (``rearm="full"``) cancels and re-pushes every resident
kernel's event at every change point — the historical O(K)-per-settle
behaviour.  The vectorised mode (``rearm="vectorised"``) runs the settle
core as whole-array passes over a structure-of-arrays kernel table with a
single sentinel completion event over per-slot ``(armed_time, stamp)``
anchors (see :mod:`repro.gpu.table`).

These tests pin the optimisations' whole correctness claim: for every named
scenario, scheduler variant, replication seed and jitter setting, all three
modes must produce **bit-identical** :class:`TraceRecorder` output (every
record's exact float timestamp, kind and payload) and identical steady-state
metrics.  The fast tier runs a one-seed slice on every push; the full
acceptance matrix (all named scenarios x 3 seeds x jitter on/off x both
scheduler families x all three modes) runs in the slow tier.

``TestCeilingBoundRearm`` additionally pins the vectorised mode's headline
complexity win: in the ceiling-bound regime (aggregate cap saturated, every
settle a uniform rescale) it pushes O(1) heap events per settle where the
incremental mode re-arms every resident kernel.
"""

import pytest

from repro.core.context_pool import ContextPoolConfig
from repro.core.runner import RunConfig, run_simulation
from repro.core.scheduler import JobInstance
from repro.core.sgprs import SgprsScheduler
from repro.exp.grid import GridPoint, resolve_variant
from repro.gpu.allocator import AllocationParams
from repro.gpu.context import SimContext
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import StageKernel
from repro.gpu.spec import RTX_2080_TI, GpuDeviceSpec
from repro.sim.engine import SimulationEngine
from repro.speedup.model import SaturatingCurve
from repro.workloads.generator import identical_periodic_tasks
from repro.workloads.synth.scenarios import taskset_for_point

#: Every named scenario: (scenario name, context count, workload axis).
NAMED_SCENARIOS = [
    ("scenario1", 2, "identical"),
    ("scenario2", 3, "identical"),
    ("mixed_fleet", 2, "mixed_fleet"),
    ("surveillance_burst", 3, "surveillance_burst"),
    ("util_ramp", 2, "util_ramp"),
]


def run_traced(point: GridPoint, rearm_mode: str, scheduler_cls=None):
    """One fully-traced run of a grid point under a re-arm mode.

    Mirrors :func:`repro.exp.worker.run_point`'s taskset construction, but
    keeps the trace (the sweep path deliberately drops it).
    """
    scheduler, oversubscription, task_stages = resolve_variant(
        point.variant, point.num_stages
    )
    pool = ContextPoolConfig.from_oversubscription(
        point.num_contexts, oversubscription, RTX_2080_TI
    )
    if point.workload == "identical":
        tasks = identical_periodic_tasks(
            count=point.num_tasks,
            nominal_sms=pool.sms_per_context,
            period=point.period,
            num_stages=task_stages,
        )
    else:
        tasks = taskset_for_point(
            point,
            nominal_sms=pool.sms_per_context,
            monolithic=task_stages == 1,
        )
    return run_simulation(
        tasks,
        RunConfig(
            pool=pool,
            scheduler=scheduler_cls if scheduler_cls is not None else scheduler,
            duration=point.duration,
            warmup=point.warmup,
            record_trace=True,
            work_jitter_cv=point.work_jitter_cv,
            seed=point.seed,
            rearm_mode=rearm_mode,
            arrival=point.arrival,
            admission=point.admission,
        ),
    )


def canonical_trace(result):
    """The trace as comparable tuples; floats compare exactly (bitwise)."""
    return [
        (record.time, record.kind, tuple(sorted(record.fields.items())))
        for record in result.trace
    ]


def assert_equivalent(point: GridPoint, scheduler_cls=None):
    incremental = run_traced(point, "incremental", scheduler_cls)
    reference = run_traced(point, "full", scheduler_cls)
    vectorised = run_traced(point, "vectorised", scheduler_cls)
    expected = canonical_trace(reference)
    assert canonical_trace(incremental) == expected
    assert canonical_trace(vectorised) == expected
    assert incremental.metrics_summary() == reference.metrics_summary()
    assert vectorised.metrics_summary() == reference.metrics_summary()


def make_point(scenario, num_contexts, workload, variant, seed, jitter,
               num_tasks, duration):
    return GridPoint(
        scenario=scenario,
        num_contexts=num_contexts,
        variant=variant,
        num_tasks=num_tasks,
        seed=seed,
        duration=duration,
        warmup=duration / 4.0,
        work_jitter_cv=jitter,
        workload=workload,
    )


class TestFastSlice:
    """One-seed slice of the equivalence matrix; runs on every push."""

    @pytest.mark.parametrize(
        "scenario,num_contexts,workload", NAMED_SCENARIOS
    )
    @pytest.mark.parametrize("jitter", [0.0, 0.1])
    def test_sgprs_trace_equivalence(self, scenario, num_contexts, workload,
                                     jitter):
        assert_equivalent(
            make_point(scenario, num_contexts, workload, "sgprs_1.5",
                       seed=0, jitter=jitter, num_tasks=5, duration=0.8)
        )

    @pytest.mark.parametrize(
        "scenario,num_contexts,workload", NAMED_SCENARIOS[:2]
    )
    def test_naive_trace_equivalence(self, scenario, num_contexts, workload):
        # The naive baseline pays partition-reconfiguration setup time, the
        # one path where completion times mix setup and rate-based work.
        assert_equivalent(
            make_point(scenario, num_contexts, workload, "naive",
                       seed=0, jitter=0.1, num_tasks=5, duration=0.8)
        )


class _BacklogSgprs(SgprsScheduler):
    """Admit-everything ablation: queues snowball, change points are dense."""

    name = "sgprs_backlog"
    admit_all_releases = True


class TestSheddingEquivalence:
    """The abort path (``abort_job`` -> ``GpuDevice.abort_many``)."""

    @pytest.mark.parametrize("jitter", [0.0, 0.1])
    def test_shedding_run_is_equivalent(self, jitter):
        point = make_point("scenario1", 2, "identical", "sgprs_1.5",
                           seed=3, jitter=jitter, num_tasks=8, duration=0.8)

        class SheddingSgprs(_BacklogSgprs):
            """Backlog admission plus deadline-triggered job shedding."""

            name = "sgprs_shedding"

            def _release_job(self, task):
                super()._release_job(task)
                job = self._latest_job.get(task.name)
                if job is not None and not job.finished:
                    self.engine.schedule_at(
                        job.absolute_deadline,
                        lambda j=job: self.abort_job(j),
                        tag=f"shed:{task.name}/j{job.index}",
                    )

        assert_equivalent(point, scheduler_cls=SheddingSgprs)


class TestCeilingBoundRearm:
    """The vectorised mode's headline complexity claim, pinned exactly.

    Setup: four contexts sized so summed grants equal the device
    (``pressure == 1``, ``device_scale == 1``) under a low aggregate
    ceiling that stays saturated throughout.  Every completion then
    changes *every* surviving kernel's rate — the aggregate drops, the
    ceiling rescale factor moves, and the rescale is uniform.  The
    incremental device must re-arm each survivor (O(K) heap pushes per
    settle); the vectorised device re-anchors the shared virtual-time
    axis in the table and refreshes its single sentinel event (O(1)
    pushes per settle), which is the whole point of the rescale-aware
    time base.
    """

    @staticmethod
    def _completion_push_deltas(rearm):
        """Heap pushes per completion settle, plus the completion count."""
        engine = SimulationEngine()
        spec = GpuDeviceSpec(total_sms=68, aggregate_speedup_cap=10.0)
        contexts = [SimContext(i, 17.0) for i in range(4)]
        device = GpuDevice(
            engine, spec, contexts,
            AllocationParams(alpha=0.0, beta=0.0), rearm=rearm,
        )
        completions = []
        device.on_kernel_complete = lambda kernel: completions.append(
            kernel.label
        )
        # 16 kernels with distinct work totals: completions are spread out,
        # so each settle sees one departure and a fresh uniform rescale.
        for ci, context in enumerate(contexts):
            for si in range(4):
                index = ci * 4 + si
                device.submit(
                    StageKernel(
                        label=f"c{ci}s{si}",
                        curve=SaturatingCurve(0.05),
                        work=0.5 + 0.25 * index,
                        width_demand=17.0,
                        deadline=1e9,
                    ),
                    context,
                )
        deltas = []
        while True:
            before = engine.scheduled_count
            seen = len(completions)
            if engine.run(max_events=1) == 0:
                break
            assert len(completions) == seen + 1  # only completion events
            deltas.append(engine.scheduled_count - before)
        return deltas, completions

    def test_vectorised_rearms_o1_per_settle(self):
        deltas, completions = self._completion_push_deltas("vectorised")
        assert len(completions) == 16
        # One sentinel refresh per settle, no matter how many survivors
        # got rescaled; the final settle (empty table) pushes nothing.
        assert all(delta <= 1 for delta in deltas)
        assert sum(deltas) <= 16

    def test_incremental_rearms_every_survivor(self):
        deltas, completions = self._completion_push_deltas("incremental")
        assert len(completions) == 16
        # After the k-th completion, all (16 - k) survivors changed rate
        # under the saturated ceiling and must each be re-armed.
        assert deltas == [16 - k for k in range(1, 17)]

    def test_ceiling_bound_modes_complete_identically(self):
        _, vec = self._completion_push_deltas("vectorised")
        _, inc = self._completion_push_deltas("incremental")
        _, full = self._completion_push_deltas("full")
        assert vec == inc == full


class _LegacyReleaseLoop:
    """The pre-arrivals hardcoded release loop, verbatim, as a mixin.

    The periodic arrival adapter claims bit-identity with the scheduler's
    historical ``start``/``_release_job`` (first release at
    ``task.release_offset``, every next one at ``now + task.period``).
    Pinning that claim against the adapter itself would be circular, so
    this mixin re-implements the legacy loop exactly as it stood before
    the arrivals subsystem and the tests compare traces across the two.
    """

    def start(self):
        for task in self.task_set:
            if task.release_offset < self.horizon:
                self.engine.schedule_at(
                    task.release_offset,
                    lambda t=task: self._release_job(t),
                    tag=f"release:{task.name}",
                )

    def _release_job(self, task):
        index = self._job_counters.get(task.name, 0)
        self._job_counters[task.name] = index + 1
        now = self.engine.now
        job = JobInstance(task, index, now)
        self.metrics.job_released(task.name, index, now, job.absolute_deadline)
        if self.trace is not None:
            self.trace.record(
                now,
                "job_release",
                task=task.name,
                job=index,
                deadline=job.absolute_deadline,
            )
        previous = self._latest_job.get(task.name)
        if self.admit_job(job, previous):
            self._latest_job[task.name] = job
            self._release_stage(job, 0, predecessor_missed=False)
        else:
            job.aborted = True
            if self.trace is not None:
                self.trace.record(now, "job_skip", task=task.name, job=index)
        next_release = now + task.period
        if next_release < self.horizon:
            self.engine.schedule_at(
                next_release,
                lambda t=task: self._release_job(t),
                tag=f"release:{task.name}",
            )


class TestLegacyReleaseLoopEquivalence:
    """Periodic adapter vs. the legacy loop: bit-identical, no rejections."""

    @pytest.mark.parametrize("variant", ["sgprs_1.5", "naive"])
    @pytest.mark.parametrize("rearm", ["incremental", "full", "vectorised"])
    @pytest.mark.parametrize("jitter", [0.0, 0.1])
    def test_periodic_adapter_matches_legacy_loop(self, variant, rearm,
                                                  jitter):
        point = make_point("scenario1", 2, "identical", variant,
                           seed=0, jitter=jitter, num_tasks=5, duration=0.8)
        base_cls, _, _ = resolve_variant(variant)
        legacy_cls = type(
            f"Legacy{base_cls.__name__}", (_LegacyReleaseLoop, base_cls), {}
        )
        modern = run_traced(point, rearm)
        legacy = run_traced(point, rearm, scheduler_cls=legacy_cls)
        assert canonical_trace(modern) == canonical_trace(legacy)
        # Default policy (legacy skip-if-in-flight hook) never rejects.
        assert all(r.kind != "job_reject" for r in modern.trace)
        modern_metrics = modern.metrics_summary()
        legacy_metrics = legacy.metrics_summary()
        # The legacy loop predates queue-depth accounting; everything
        # else must agree exactly.
        for key in ("mean_queue_depth", "max_queue_depth"):
            modern_metrics.pop(key)
            legacy_metrics.pop(key)
        assert modern_metrics == legacy_metrics

    def test_explicit_periodic_spec_matches_default(self):
        point = make_point("scenario1", 2, "identical", "sgprs_1.5",
                           seed=1, jitter=0.1, num_tasks=5, duration=0.8)
        import dataclasses

        explicit = dataclasses.replace(point, arrival="periodic")
        assert (
            canonical_trace(run_traced(point, "incremental"))
            == canonical_trace(run_traced(explicit, "incremental"))
        )


@pytest.mark.slow
class TestFullMatrix:
    """The acceptance matrix: all named scenarios x 3 seeds x jitter on/off
    x both scheduler families, bit-identical traces throughout."""

    @pytest.mark.parametrize(
        "scenario,num_contexts,workload", NAMED_SCENARIOS
    )
    @pytest.mark.parametrize("variant", ["sgprs_1.5", "naive"])
    @pytest.mark.parametrize("jitter", [0.0, 0.1])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_trace_equivalence(self, scenario, num_contexts, workload,
                               variant, jitter, seed):
        assert_equivalent(
            make_point(scenario, num_contexts, workload, variant,
                       seed=seed, jitter=jitter, num_tasks=6, duration=1.2)
        )

"""Unit tests for the GPU device's rate-based execution."""

import pytest

from repro.gpu.allocator import AllocationParams
from repro.gpu.context import SimContext
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import PriorityLevel, StageKernel
from repro.gpu.spec import GpuDeviceSpec
from repro.sim.engine import SimulationEngine
from repro.sim.trace import TraceRecorder
from repro.speedup.model import SaturatingCurve

IDEAL = AllocationParams(alpha=0.0, beta=0.0)


def make_kernel(label="k", work=1.0, setup=0.0, deadline=1e9,
                priority=PriorityLevel.LOW, width=68.0, sigma=0.0):
    return StageKernel(
        label=label,
        curve=SaturatingCurve(sigma),
        work=work,
        width_demand=width,
        deadline=deadline,
        priority=priority,
        setup_time=setup,
    )


def make_device(num_contexts=1, sms=68.0, cap=1e9, params=IDEAL, trace=None):
    engine = SimulationEngine()
    spec = GpuDeviceSpec(total_sms=68, aggregate_speedup_cap=cap)
    contexts = [SimContext(i, sms) for i in range(num_contexts)]
    device = GpuDevice(engine, spec, contexts, params, trace=trace)
    done = []
    device.on_kernel_complete = lambda kernel: done.append(
        (engine.now, kernel.label)
    )
    return engine, device, contexts, done


class TestSingleKernel:
    def test_completion_time_matches_curve(self):
        engine, device, contexts, done = make_device()
        # sigma=0: speedup(68) = 68, so 1.0 work finishes in 1/68 s
        device.submit(make_kernel(work=1.0), contexts[0])
        engine.run()
        assert done == [(pytest.approx(1.0 / 68.0), "k")]

    def test_setup_time_adds_wall_time(self):
        engine, device, contexts, done = make_device()
        device.submit(make_kernel(work=1.0, setup=0.5), contexts[0])
        engine.run()
        assert done[0][0] == pytest.approx(0.5 + 1.0 / 68.0)

    def test_width_limited_curve_bounds_rate(self):
        from repro.speedup.model import WidthLimitedCurve
        engine, device, contexts, done = make_device()
        kernel = StageKernel(
            label="narrow",
            curve=WidthLimitedCurve(SaturatingCurve(0.0), width=10.0),
            work=1.0,
            width_demand=10.0,
            deadline=1e9,
        )
        device.submit(kernel, contexts[0])
        engine.run()
        # the lone kernel receives the whole context but its grid-limited
        # curve caps useful width at 10 SMs
        assert done[0][0] == pytest.approx(1.0 / 10.0)


class TestConcurrency:
    def test_two_kernels_share_context(self):
        engine, device, contexts, done = make_device(sms=68.0)
        device.submit(make_kernel("a", work=1.0), contexts[0])
        device.submit(make_kernel("b", work=1.0), contexts[0])
        engine.run()
        # equal shares of 34 SMs at sigma=0: both finish at 1/34 s
        assert done[0][0] == pytest.approx(1.0 / 34.0)
        assert done[1][0] == pytest.approx(1.0 / 34.0)

    def test_rates_rescale_when_kernel_finishes(self):
        engine, device, contexts, done = make_device(sms=68.0)
        device.submit(make_kernel("short", work=0.5), contexts[0])
        device.submit(make_kernel("long", work=1.0), contexts[0])
        engine.run()
        # short finishes at 0.5/34; long then accelerates to 68 SMs:
        # remaining (1.0 - 0.5) work at rate 68
        t_short = 0.5 / 34.0
        t_long = t_short + 0.5 / 68.0
        assert dict(((l, pytest.approx(t)) for t, l in done))  # sanity
        assert done[0] == (pytest.approx(t_short), "short")
        assert done[1] == (pytest.approx(t_long), "long")

    def test_queued_kernel_starts_after_stream_frees(self):
        engine, device, contexts, done = make_device()
        # 5 kernels, 4 streams: the fifth must wait
        for index in range(5):
            device.submit(make_kernel(f"k{index}", work=0.4), contexts[0])
        engine.run()
        assert len(done) == 5
        assert done[-1][1] == "k4"
        assert done[-1][0] > done[0][0]

    def test_priority_weighted_shares(self):
        engine, device, contexts, done = make_device(sms=30.0)
        device.submit(
            make_kernel("high", work=1.0, priority=PriorityLevel.HIGH),
            contexts[0],
        )
        device.submit(
            make_kernel("low", work=1.0, priority=PriorityLevel.LOW),
            contexts[0],
        )
        engine.run()
        labels = [label for _, label in done]
        assert labels[0] == "high"  # 20 SMs vs 10 SMs


class TestAbort:
    def test_aborted_kernel_never_completes(self):
        engine, device, contexts, done = make_device()
        kernel = make_kernel(work=1.0)
        device.submit(kernel, contexts[0])
        device.abort(kernel)
        engine.run()
        assert done == []

    def test_abort_releases_stream(self):
        engine, device, contexts, done = make_device()
        kernel = make_kernel("a", work=1.0)
        device.submit(kernel, contexts[0])
        device.abort(kernel)
        device.submit(make_kernel("b", work=1.0), contexts[0])
        engine.run()
        assert [label for _, label in done] == ["b"]

    def test_abort_queued_kernel(self):
        engine, device, contexts, done = make_device()
        resident = [make_kernel(f"r{i}", work=1.0) for i in range(4)]
        for kernel in resident:
            device.submit(kernel, contexts[0])
        queued = make_kernel("queued", work=1.0)
        device.submit(queued, contexts[0])
        device.abort(queued)
        engine.run()
        assert len(done) == 4


class TestCallbacks:
    def test_callback_can_submit_followup(self):
        engine, device, contexts, done = make_device()
        def chain(kernel):
            done.append((engine.now, kernel.label))
            if kernel.label == "first":
                device.submit(make_kernel("second", work=1.0), contexts[0])
        device.on_kernel_complete = chain
        device.submit(make_kernel("first", work=1.0), contexts[0])
        engine.run()
        assert [label for _, label in done] == ["first", "second"]
        assert done[1][0] == pytest.approx(2.0 / 68.0)


class TestStatistics:
    def test_work_conservation(self):
        engine, device, contexts, done = make_device()
        total = 0.0
        for index in range(3):
            work = 0.3 * (index + 1)
            total += work
            device.submit(make_kernel(f"k{index}", work=work), contexts[0])
        engine.run()
        assert device.total_work_done == pytest.approx(total, rel=1e-6)

    def test_utilization_bounds(self):
        engine, device, contexts, done = make_device()
        device.submit(make_kernel(work=1.0), contexts[0])
        engine.run()
        assert 0.0 < device.utilization() <= 1.0

    def test_trace_records_lifecycle(self):
        trace = TraceRecorder()
        engine, device, contexts, done = make_device(trace=trace)
        device.submit(make_kernel(work=1.0), contexts[0])
        engine.run()
        kinds = trace.kinds()
        assert kinds.get("kernel_start") == 1
        assert kinds.get("kernel_done") == 1
        assert kinds.get("allocation", 0) >= 1

    def test_context_lookup(self):
        engine, device, contexts, done = make_device(num_contexts=2)
        assert device.context(1) is contexts[1]
        with pytest.raises(KeyError):
            device.context(99)

    def test_needs_at_least_one_context(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            GpuDevice(engine, GpuDeviceSpec(), [])


class TestMultiContext:
    def test_contexts_independent_below_capacity(self):
        engine, device, contexts, done = make_device(num_contexts=2, sms=34.0)
        device.submit(make_kernel("a", work=1.0), contexts[0])
        device.submit(make_kernel("b", work=1.0), contexts[1])
        engine.run()
        for t, _ in done:
            assert t == pytest.approx(1.0 / 34.0)

    def test_oversubscription_slows_everyone(self):
        engine, device, contexts, done = make_device(num_contexts=2, sms=68.0)
        device.submit(make_kernel("a", work=1.0), contexts[0])
        device.submit(make_kernel("b", work=1.0), contexts[1])
        engine.run()
        # both contexts demand 68 -> scaled to 34 each
        for t, _ in done:
            assert t == pytest.approx(1.0 / 34.0)

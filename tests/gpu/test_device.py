"""Unit tests for the GPU device's rate-based execution."""

import pytest

from repro.gpu.allocator import AllocationParams
from repro.gpu.context import SimContext
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import PriorityLevel, StageKernel
from repro.gpu.spec import GpuDeviceSpec
from repro.sim.engine import SimulationEngine
from repro.sim.trace import TraceRecorder
from repro.speedup.model import SaturatingCurve

IDEAL = AllocationParams(alpha=0.0, beta=0.0)


def make_kernel(label="k", work=1.0, setup=0.0, deadline=1e9,
                priority=PriorityLevel.LOW, width=68.0, sigma=0.0):
    return StageKernel(
        label=label,
        curve=SaturatingCurve(sigma),
        work=work,
        width_demand=width,
        deadline=deadline,
        priority=priority,
        setup_time=setup,
    )


def make_device(num_contexts=1, sms=68.0, cap=1e9, params=IDEAL, trace=None,
                start_time=0.0, rearm="incremental"):
    engine = SimulationEngine(start_time=start_time)
    spec = GpuDeviceSpec(total_sms=68, aggregate_speedup_cap=cap)
    contexts = [SimContext(i, sms) for i in range(num_contexts)]
    device = GpuDevice(engine, spec, contexts, params, trace=trace,
                       rearm=rearm)
    done = []
    device.on_kernel_complete = lambda kernel: done.append(
        (engine.now, kernel.label)
    )
    return engine, device, contexts, done


class TestSingleKernel:
    def test_completion_time_matches_curve(self):
        engine, device, contexts, done = make_device()
        # sigma=0: speedup(68) = 68, so 1.0 work finishes in 1/68 s
        device.submit(make_kernel(work=1.0), contexts[0])
        engine.run()
        assert done == [(pytest.approx(1.0 / 68.0), "k")]

    def test_setup_time_adds_wall_time(self):
        engine, device, contexts, done = make_device()
        device.submit(make_kernel(work=1.0, setup=0.5), contexts[0])
        engine.run()
        assert done[0][0] == pytest.approx(0.5 + 1.0 / 68.0)

    def test_width_limited_curve_bounds_rate(self):
        from repro.speedup.model import WidthLimitedCurve
        engine, device, contexts, done = make_device()
        kernel = StageKernel(
            label="narrow",
            curve=WidthLimitedCurve(SaturatingCurve(0.0), width=10.0),
            work=1.0,
            width_demand=10.0,
            deadline=1e9,
        )
        device.submit(kernel, contexts[0])
        engine.run()
        # the lone kernel receives the whole context but its grid-limited
        # curve caps useful width at 10 SMs
        assert done[0][0] == pytest.approx(1.0 / 10.0)


class TestConcurrency:
    def test_two_kernels_share_context(self):
        engine, device, contexts, done = make_device(sms=68.0)
        device.submit(make_kernel("a", work=1.0), contexts[0])
        device.submit(make_kernel("b", work=1.0), contexts[0])
        engine.run()
        # equal shares of 34 SMs at sigma=0: both finish at 1/34 s
        assert done[0][0] == pytest.approx(1.0 / 34.0)
        assert done[1][0] == pytest.approx(1.0 / 34.0)

    def test_rates_rescale_when_kernel_finishes(self):
        engine, device, contexts, done = make_device(sms=68.0)
        device.submit(make_kernel("short", work=0.5), contexts[0])
        device.submit(make_kernel("long", work=1.0), contexts[0])
        engine.run()
        # short finishes at 0.5/34; long then accelerates to 68 SMs:
        # remaining (1.0 - 0.5) work at rate 68
        t_short = 0.5 / 34.0
        t_long = t_short + 0.5 / 68.0
        assert dict(((l, pytest.approx(t)) for t, l in done))  # sanity
        assert done[0] == (pytest.approx(t_short), "short")
        assert done[1] == (pytest.approx(t_long), "long")

    def test_queued_kernel_starts_after_stream_frees(self):
        engine, device, contexts, done = make_device()
        # 5 kernels, 4 streams: the fifth must wait
        for index in range(5):
            device.submit(make_kernel(f"k{index}", work=0.4), contexts[0])
        engine.run()
        assert len(done) == 5
        assert done[-1][1] == "k4"
        assert done[-1][0] > done[0][0]

    def test_priority_weighted_shares(self):
        engine, device, contexts, done = make_device(sms=30.0)
        device.submit(
            make_kernel("high", work=1.0, priority=PriorityLevel.HIGH),
            contexts[0],
        )
        device.submit(
            make_kernel("low", work=1.0, priority=PriorityLevel.LOW),
            contexts[0],
        )
        engine.run()
        labels = [label for _, label in done]
        assert labels[0] == "high"  # 20 SMs vs 10 SMs


class TestAbort:
    def test_aborted_kernel_never_completes(self):
        engine, device, contexts, done = make_device()
        kernel = make_kernel(work=1.0)
        device.submit(kernel, contexts[0])
        device.abort(kernel)
        engine.run()
        assert done == []

    def test_abort_releases_stream(self):
        engine, device, contexts, done = make_device()
        kernel = make_kernel("a", work=1.0)
        device.submit(kernel, contexts[0])
        device.abort(kernel)
        device.submit(make_kernel("b", work=1.0), contexts[0])
        engine.run()
        assert [label for _, label in done] == ["b"]

    def test_abort_queued_kernel(self):
        engine, device, contexts, done = make_device()
        resident = [make_kernel(f"r{i}", work=1.0) for i in range(4)]
        for kernel in resident:
            device.submit(kernel, contexts[0])
        queued = make_kernel("queued", work=1.0)
        device.submit(queued, contexts[0])
        device.abort(queued)
        engine.run()
        assert len(done) == 4

    def test_abort_many_is_one_change_point(self):
        engine, device, contexts, done = make_device()
        kernels = [make_kernel(f"k{i}", work=1.0) for i in range(3)]
        for kernel in kernels:
            device.submit(kernel, contexts[0])
        passes_before = device.alloc_passes
        device.abort_many(kernels[:2])
        assert device.alloc_passes == passes_before + 1
        engine.run()
        assert [label for _, label in done] == ["k2"]

    def test_mid_flight_abort_statistics_invariants(self):
        # Abort one of two kernels halfway through: work done never exceeds
        # submitted work, and every accumulator respects its bound.
        engine, device, contexts, done = make_device()
        survivor = make_kernel("survivor", work=1.0)
        victim = make_kernel("victim", work=1.0)
        device.submit(survivor, contexts[0])
        device.submit(victim, contexts[0])
        engine.run_until(0.5 / 34.0)  # both at rate 34, half of victim's life
        device.abort(victim)
        engine.run()
        submitted = 2.0
        assert [label for _, label in done] == ["survivor"]
        assert device.total_work_done < submitted
        # survivor's full work plus the victim's partial progress
        assert device.total_work_done > 1.0
        assert device.busy_time <= engine.now + 1e-12
        assert 0.0 < device.utilization() <= 1.0

    def test_abort_all_work_never_exceeds_progress_made(self):
        engine, device, contexts, done = make_device()
        kernels = [make_kernel(f"k{i}", work=1.0) for i in range(4)]
        for kernel in kernels:
            device.submit(kernel, contexts[0])
        engine.run_until(0.25 / 17.0)  # quarter of each kernel's work
        device.abort_many(kernels)
        engine.run()
        assert done == []
        assert device.total_work_done == pytest.approx(4 * 0.25, rel=1e-9)
        assert device.busy_time == pytest.approx(0.25 / 17.0)


class TestCallbacks:
    def test_callback_can_submit_followup(self):
        engine, device, contexts, done = make_device()
        def chain(kernel):
            done.append((engine.now, kernel.label))
            if kernel.label == "first":
                device.submit(make_kernel("second", work=1.0), contexts[0])
        device.on_kernel_complete = chain
        device.submit(make_kernel("first", work=1.0), contexts[0])
        engine.run()
        assert [label for _, label in done] == ["first", "second"]
        assert done[1][0] == pytest.approx(2.0 / 68.0)


class TestStatistics:
    def test_work_conservation(self):
        engine, device, contexts, done = make_device()
        total = 0.0
        for index in range(3):
            work = 0.3 * (index + 1)
            total += work
            device.submit(make_kernel(f"k{index}", work=work), contexts[0])
        engine.run()
        assert device.total_work_done == pytest.approx(total, rel=1e-6)

    def test_setup_time_does_not_count_as_work(self):
        # setup burns wall time at rate 1 while the published work rate is
        # 68: integrating rate * elapsed over the setup span would claim
        # 0.5 * 68 = 34 single-SM seconds of phantom work for a 1.0 kernel
        engine, device, contexts, done = make_device()
        device.submit(make_kernel(work=1.0, setup=0.5), contexts[0])
        engine.run()
        assert done[0][0] == pytest.approx(0.5 + 1.0 / 68.0)
        assert device.total_work_done == pytest.approx(1.0, rel=1e-9)
        # the device was busy for the whole span, setup included
        assert device.busy_time == pytest.approx(0.5 + 1.0 / 68.0)

    def test_utilization_bounds(self):
        engine, device, contexts, done = make_device()
        device.submit(make_kernel(work=1.0), contexts[0])
        engine.run()
        assert 0.0 < device.utilization() <= 1.0

    def test_utilization_measured_since_construction(self):
        # A device created at start_time=10 that is busy from 10.0 until its
        # only kernel completes is 100% utilized over that span — dividing
        # by absolute `now` would dilute it by the 10 s that predate it.
        engine, device, contexts, done = make_device(start_time=10.0)
        device.submit(make_kernel(work=1.0), contexts[0])
        engine.run()
        assert engine.now == pytest.approx(10.0 + 1.0 / 68.0)
        assert device.utilization() == pytest.approx(1.0)

    def test_mean_pressure_measured_since_construction(self):
        engine, device, contexts, done = make_device(
            num_contexts=2, sms=68.0, start_time=10.0
        )
        device.submit(make_kernel("a", work=1.0), contexts[0])
        device.submit(make_kernel("b", work=1.0), contexts[1])
        engine.run()
        # both contexts demand the full device the whole (busy) time:
        # pressure 2.0 over the elapsed span, not diluted by t < 10
        assert device.mean_pressure() == pytest.approx(2.0)

    def test_statistics_zero_before_any_elapsed_time(self):
        engine, device, contexts, done = make_device(start_time=10.0)
        assert device.utilization() == 0.0
        assert device.mean_pressure() == 0.0

    def test_trace_records_lifecycle(self):
        trace = TraceRecorder()
        engine, device, contexts, done = make_device(trace=trace)
        device.submit(make_kernel(work=1.0), contexts[0])
        engine.run()
        kinds = trace.kinds()
        assert kinds.get("kernel_start") == 1
        assert kinds.get("kernel_done") == 1
        assert kinds.get("allocation", 0) >= 1

    def test_context_lookup(self):
        engine, device, contexts, done = make_device(num_contexts=2)
        assert device.context(1) is contexts[1]
        with pytest.raises(KeyError):
            device.context(99)

    def test_needs_at_least_one_context(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            GpuDevice(engine, GpuDeviceSpec(), [])

    def test_duplicate_context_ids_rejected(self):
        engine = SimulationEngine()
        contexts = [SimContext(0, 34.0), SimContext(0, 34.0)]
        with pytest.raises(ValueError, match="duplicate context id"):
            GpuDevice(engine, GpuDeviceSpec(), contexts)

    def test_unknown_rearm_mode_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError, match="rearm"):
            GpuDevice(
                engine, GpuDeviceSpec(), [SimContext(0, 34.0)],
                rearm="bogus",
            )


class TestIncrementalRearm:
    def test_unchanged_cross_context_rate_keeps_event(self):
        # Two under-subscribed contexts: submitting into context 1 cannot
        # change context 0's rates, so only ONE new completion event may be
        # scheduled (the old design re-armed both: 1 cancel + 2 pushes).
        engine, device, contexts, done = make_device(num_contexts=2, sms=34.0)
        device.submit(make_kernel("a", work=1.0), contexts[0])
        scheduled_before = engine.scheduled_count
        device.submit(make_kernel("b", work=1.0), contexts[1])
        assert engine.scheduled_count == scheduled_before + 1
        engine.run()
        assert len(done) == 2

    def test_full_mode_rearms_everything(self):
        engine, device, contexts, done = make_device(
            num_contexts=2, sms=34.0, rearm="full"
        )
        device.submit(make_kernel("a", work=1.0), contexts[0])
        scheduled_before = engine.scheduled_count
        device.submit(make_kernel("b", work=1.0), contexts[1])
        # reference mode churns: re-push for "a" plus the new event for "b"
        assert engine.scheduled_count == scheduled_before + 2
        engine.run()
        assert len(done) == 2

    def test_queue_only_submit_skips_allocation_pass(self):
        engine, device, contexts, done = make_device()
        for index in range(4):  # fill all four streams
            device.submit(make_kernel(f"r{index}", work=1.0), contexts[0])
        passes = device.alloc_passes
        skips = device.alloc_skips
        scheduled_before = engine.scheduled_count
        device.submit(make_kernel("queued", work=1.0), contexts[0])
        # the resident set is untouched: no allocation pass, no heap churn
        assert device.alloc_passes == passes
        assert device.alloc_skips == skips + 1
        assert engine.scheduled_count == scheduled_before
        engine.run()
        assert len(done) == 5

    def test_skipped_pass_still_traces_allocation(self):
        trace = TraceRecorder()
        engine, device, contexts, done = make_device(trace=trace)
        for index in range(4):
            device.submit(make_kernel(f"r{index}", work=1.0), contexts[0])
        allocations = len(trace.of_kind("allocation"))
        device.submit(make_kernel("queued", work=1.0), contexts[0])
        assert len(trace.of_kind("allocation")) == allocations + 1

    def test_completion_rearms_only_affected_context(self):
        # Kernel finishing in context 0 re-arms its context-mates; the
        # untouched context 1 keeps its event.
        engine, device, contexts, done = make_device(num_contexts=2, sms=34.0)
        device.submit(make_kernel("short", work=0.25), contexts[0])
        device.submit(make_kernel("long", work=1.0), contexts[0])
        device.submit(make_kernel("other", work=1.0), contexts[1])
        scheduled_before = engine.scheduled_count
        # run past short's completion only
        engine.run(max_events=1)
        assert [label for _, label in done] == ["short"]
        # exactly one re-arm: "long" accelerated; "other" was untouched
        assert engine.scheduled_count == scheduled_before + 1
        engine.run()
        assert len(done) == 3


class TestMultiContext:
    def test_contexts_independent_below_capacity(self):
        engine, device, contexts, done = make_device(num_contexts=2, sms=34.0)
        device.submit(make_kernel("a", work=1.0), contexts[0])
        device.submit(make_kernel("b", work=1.0), contexts[1])
        engine.run()
        for t, _ in done:
            assert t == pytest.approx(1.0 / 34.0)

    def test_oversubscription_slows_everyone(self):
        engine, device, contexts, done = make_device(num_contexts=2, sms=68.0)
        device.submit(make_kernel("a", work=1.0), contexts[0])
        device.submit(make_kernel("b", work=1.0), contexts[1])
        engine.run()
        # both contexts demand 68 -> scaled to 34 each
        for t, _ in done:
            assert t == pytest.approx(1.0 / 34.0)

"""Unit tests for reconfiguration policies."""

import pytest

from repro.gpu.context import SimContext
from repro.gpu.mps import SpatialReconfig, ZeroConfigPool


class TestZeroConfigPool:
    def test_always_free(self):
        policy = ZeroConfigPool()
        context = SimContext(0, 34.0)
        assert policy.setup_time(context, "a") == 0.0
        assert policy.setup_time(context, "b") == 0.0

    def test_records_configured_task(self):
        policy = ZeroConfigPool()
        context = SimContext(0, 34.0)
        policy.setup_time(context, "a")
        assert context.configured_task == "a"


class TestSpatialReconfig:
    def test_first_use_pays(self):
        policy = SpatialReconfig(base_cost=1e-4, per_task_cost=1e-5)
        context = SimContext(0, 34.0)
        assert policy.setup_time(context, "a") > 0.0

    def test_same_task_free(self):
        policy = SpatialReconfig()
        context = SimContext(0, 34.0)
        policy.setup_time(context, "a")
        assert policy.setup_time(context, "a") == 0.0

    def test_switch_pays_again(self):
        policy = SpatialReconfig(base_cost=1e-4, per_task_cost=0.0)
        context = SimContext(0, 34.0)
        policy.setup_time(context, "a")
        assert policy.setup_time(context, "b") == pytest.approx(1e-4)

    def test_cost_grows_with_distinct_tasks(self):
        policy = SpatialReconfig(base_cost=1e-4, per_task_cost=1e-5)
        context = SimContext(0, 34.0)
        for name in ("a", "b", "c"):
            policy.register_task(context, name)
        cost_three = policy.setup_time(context, "a")
        policy.register_task(context, "d")
        policy.register_task(context, "e")
        # switch away and back so the switch is paid again
        policy.setup_time(context, "b")
        cost_five = policy.setup_time(context, "a")
        assert cost_five > cost_three

    def test_distinct_tasks_counted_per_context(self):
        policy = SpatialReconfig()
        first = SimContext(0, 34.0)
        second = SimContext(1, 34.0)
        policy.register_task(first, "a")
        policy.register_task(second, "b")
        assert policy.distinct_tasks(first) == 1
        assert policy.distinct_tasks(second) == 1

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            SpatialReconfig(base_cost=-1.0)
        with pytest.raises(ValueError):
            SpatialReconfig(per_task_cost=-1.0)


class TestSpec:
    def test_rtx_2080_ti_constants(self):
        from repro.gpu.spec import RTX_2080_TI
        assert RTX_2080_TI.total_sms == 68
        assert RTX_2080_TI.streams_per_context == 4

    def test_spec_validation(self):
        from repro.gpu.spec import GpuDeviceSpec
        with pytest.raises(ValueError):
            GpuDeviceSpec(total_sms=0)
        with pytest.raises(ValueError):
            GpuDeviceSpec(high_priority_streams=0, low_priority_streams=0)
        with pytest.raises(ValueError):
            GpuDeviceSpec(aggregate_speedup_cap=0.0)

"""Unit tests for stage kernels."""

import pytest

from repro.gpu.kernel import PRIORITY_WEIGHTS, PriorityLevel, StageKernel
from repro.speedup.model import SaturatingCurve


def make_kernel(work=1.0, setup=0.0, priority=PriorityLevel.LOW):
    return StageKernel(
        label="k",
        curve=SaturatingCurve(0.05),
        work=work,
        width_demand=16.0,
        deadline=1.0,
        priority=priority,
        setup_time=setup,
    )


class TestConstruction:
    def test_defaults(self):
        kernel = make_kernel()
        assert kernel.work_remaining == 1.0
        assert not kernel.is_complete
        assert kernel.rate == 0.0

    def test_zero_work_rejected(self):
        with pytest.raises(ValueError):
            make_kernel(work=0.0)

    def test_width_below_one_rejected(self):
        with pytest.raises(ValueError):
            StageKernel("k", SaturatingCurve(0.0), 1.0, 0.5, 1.0)

    def test_negative_setup_rejected(self):
        with pytest.raises(ValueError):
            make_kernel(setup=-1.0)

    def test_unique_ids(self):
        assert make_kernel().kernel_id != make_kernel().kernel_id


class TestPriorities:
    def test_priority_ordering(self):
        assert PriorityLevel.HIGH > PriorityLevel.MEDIUM > PriorityLevel.LOW

    def test_weights_ordered(self):
        assert (
            PRIORITY_WEIGHTS[PriorityLevel.HIGH]
            > PRIORITY_WEIGHTS[PriorityLevel.MEDIUM]
            > PRIORITY_WEIGHTS[PriorityLevel.LOW]
        )

    def test_kernel_weight_follows_priority(self):
        assert make_kernel(priority=PriorityLevel.HIGH).weight == pytest.approx(2.0)


class TestProgress:
    def test_advance_consumes_work_at_rate(self):
        kernel = make_kernel(work=1.0)
        kernel.rate = 2.0
        kernel.advance(0.25)
        assert kernel.work_remaining == pytest.approx(0.5)

    def test_advance_to_completion(self):
        kernel = make_kernel(work=1.0)
        kernel.rate = 1.0
        kernel.advance(1.0)
        assert kernel.is_complete

    def test_setup_consumed_before_work(self):
        kernel = make_kernel(work=1.0, setup=0.5)
        kernel.rate = 1.0
        kernel.advance(0.5)
        assert kernel.setup_remaining == 0.0
        assert kernel.work_remaining == pytest.approx(1.0)
        kernel.advance(0.5)
        assert kernel.work_remaining == pytest.approx(0.5)

    def test_setup_burns_at_unit_rate_even_when_stalled(self):
        kernel = make_kernel(work=1.0, setup=0.5)
        kernel.rate = 0.0
        kernel.advance(0.5)
        assert kernel.setup_remaining == 0.0
        assert kernel.work_remaining == pytest.approx(1.0)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            make_kernel().advance(-1.0)

    def test_progress_fraction(self):
        kernel = make_kernel(work=2.0)
        kernel.rate = 1.0
        kernel.advance(1.0)
        assert kernel.progress_fraction() == pytest.approx(0.5)


class TestTimeToCompletion:
    def test_simple(self):
        kernel = make_kernel(work=1.0)
        kernel.rate = 2.0
        assert kernel.time_to_completion() == pytest.approx(0.5)

    def test_includes_setup(self):
        kernel = make_kernel(work=1.0, setup=0.25)
        kernel.rate = 1.0
        assert kernel.time_to_completion() == pytest.approx(1.25)

    def test_stalled_kernel_is_infinite(self):
        kernel = make_kernel(work=1.0)
        kernel.rate = 0.0
        assert kernel.time_to_completion() == float("inf")

    def test_complete_kernel_is_zero(self):
        kernel = make_kernel(work=1.0)
        kernel.rate = 1.0
        kernel.advance(1.0)
        assert kernel.time_to_completion() == 0.0

    def test_force_complete(self):
        kernel = make_kernel(work=1.0, setup=0.5)
        kernel.force_complete()
        assert kernel.is_complete

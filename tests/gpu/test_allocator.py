"""Unit tests for the SM allocation model."""

import pytest

from repro.gpu.allocator import (
    AllocationParams,
    compute_allocation,
    intra_context_shares,
)
from repro.gpu.context import SimContext
from repro.gpu.kernel import PriorityLevel, StageKernel
from repro.speedup.model import SaturatingCurve


def make_kernel(label="k", priority=PriorityLevel.LOW, width=64.0):
    return StageKernel(
        label=label,
        curve=SaturatingCurve(0.05),
        work=1.0,
        width_demand=width,
        deadline=1.0,
        priority=priority,
    )


def resident_context(context_id, sms, kernels):
    context = SimContext(context_id, sms)
    for kernel in kernels:
        context.enqueue(kernel)
    context.dispatch_ready()
    return context


class TestIntraContextShares:
    def test_single_kernel_gets_everything_up_to_width(self):
        kernel = make_kernel(width=64.0)
        shares = intra_context_shares([kernel], 34.0)
        assert shares[kernel.kernel_id] == pytest.approx(34.0)

    def test_lone_kernel_work_conserving_beyond_width(self):
        # width demand caps the *competitive* share, but a lone kernel
        # still absorbs the whole partition (its curve saturates anyway)
        kernel = make_kernel(width=10.0)
        shares = intra_context_shares([kernel], 34.0)
        assert shares[kernel.kernel_id] == pytest.approx(34.0)

    def test_width_demand_caps_competitive_share(self):
        narrow = make_kernel("n", width=4.0)
        rivals = [make_kernel(f"r{i}", width=64.0) for i in range(3)]
        shares = intra_context_shares([narrow] + rivals, 32.0)
        # narrow's demand-capped share is 4; the leftover goes to rivals
        # (equal weights would have given everyone 8)
        assert shares[narrow.kernel_id] < shares[rivals[0].kernel_id]

    def test_equal_weights_split_equally(self):
        kernels = [make_kernel(f"k{i}") for i in range(4)]
        shares = intra_context_shares(kernels, 32.0)
        for kernel in kernels:
            assert shares[kernel.kernel_id] == pytest.approx(8.0)

    def test_priority_weighting(self):
        high = make_kernel("h", priority=PriorityLevel.HIGH)
        low = make_kernel("l", priority=PriorityLevel.LOW)
        shares = intra_context_shares([high, low], 30.0)
        assert shares[high.kernel_id] == pytest.approx(20.0)
        assert shares[low.kernel_id] == pytest.approx(10.0)

    def test_capped_surplus_flows_to_others(self):
        narrow = make_kernel("n", width=2.0)
        wide = make_kernel("w", width=64.0)
        shares = intra_context_shares([narrow, wide], 34.0)
        assert shares[narrow.kernel_id] == pytest.approx(2.0)
        assert shares[wide.kernel_id] == pytest.approx(32.0)

    def test_leftover_spread_when_all_satisfied(self):
        kernels = [make_kernel(f"k{i}", width=5.0) for i in range(2)]
        shares = intra_context_shares(kernels, 34.0)
        # demands (5 + 5) < budget: the remaining 24 SMs are still handed
        # out, split equally between equal weights
        for kernel in kernels:
            assert shares[kernel.kernel_id] == pytest.approx(17.0)

    def test_never_exceeds_budget(self):
        kernels = [make_kernel(f"k{i}", width=5.0) for i in range(3)]
        shares = intra_context_shares(kernels, 34.0)
        assert sum(shares.values()) == pytest.approx(34.0)

    def test_empty_is_empty(self):
        assert intra_context_shares([], 34.0) == {}


class TestLeftoverSpread:
    """Regression pin for the work-conserving leftover spread.

    When every kernel's width demand is satisfied and budget remains, the
    spread hands the surplus to **every** kernel — width-capped ones
    included — so final shares deliberately exceed ``width_demand``.  The
    exact split is part of the trace contract (all three re-arm modes
    reuse :func:`intra_context_shares` verbatim); see the function's
    docstring for the rationale.  Changing the spread invalidates every
    pinned trace at once, so these tests pin the precise values.
    """

    def test_shares_exceed_width_demand(self):
        narrow = make_kernel("n", width=3.0)
        wide = make_kernel("w", width=6.0)
        shares = intra_context_shares([narrow, wide], 34.0)
        # Demands total 9; the remaining 25 SMs split equally (equal
        # weights), pushing both past their recorded width demand.
        assert shares[narrow.kernel_id] == 3.0 + 25.0 / 2.0
        assert shares[wide.kernel_id] == 6.0 + 25.0 / 2.0
        assert shares[narrow.kernel_id] > narrow.width_demand
        assert shares[wide.kernel_id] > wide.width_demand

    def test_leftover_split_is_weight_proportional(self):
        high = make_kernel("h", priority=PriorityLevel.HIGH, width=2.0)
        low = make_kernel("l", priority=PriorityLevel.LOW, width=2.0)
        shares = intra_context_shares([high, low], 32.0)
        # 28 leftover SMs split 2:1 by priority weight on top of the
        # 2-SM demands, exceeding both width demands.
        leftover = 32.0 - 4.0
        assert shares[high.kernel_id] == 2.0 + leftover * 2.0 / 3.0
        assert shares[low.kernel_id] == 2.0 + leftover * 1.0 / 3.0

    def test_spread_remains_work_conserving(self):
        kernels = [make_kernel(f"k{i}", width=1.0) for i in range(5)]
        shares = intra_context_shares(kernels, 34.0)
        assert sum(shares.values()) == pytest.approx(34.0)
        assert all(s > 1.0 for s in shares.values())


class TestComputeAllocation:
    def test_no_kernels(self):
        context = SimContext(0, 34.0)
        result = compute_allocation([context], 68.0, 53.5)
        assert result.pressure == 0.0
        assert result.rates == {}

    def test_single_kernel_rate_matches_curve(self):
        kernel = make_kernel()
        context = resident_context(0, 34.0, [kernel])
        result = compute_allocation([context], 68.0, 1e9,
                                    AllocationParams(alpha=0.0, beta=0.0))
        assert result.rates[kernel.kernel_id] == pytest.approx(
            SaturatingCurve(0.05).speedup(34.0)
        )
        assert kernel.rate == result.rates[kernel.kernel_id]

    def test_undersubscribed_no_scaling(self):
        kernel = make_kernel()
        context = resident_context(0, 34.0, [kernel])
        result = compute_allocation([context], 68.0, 1e9)
        assert result.device_scale == 1.0
        assert result.pressure == pytest.approx(0.5)

    def test_oversubscribed_scales_down(self):
        contexts = [
            resident_context(i, 68.0, [make_kernel(f"k{i}", width=68.0)])
            for i in range(2)
        ]
        result = compute_allocation(contexts, 68.0, 1e9)
        assert result.pressure == pytest.approx(2.0)
        assert result.device_scale == pytest.approx(0.5)
        for share in result.shares.values():
            assert share == pytest.approx(34.0)

    def test_contention_penalty_reduces_rates(self):
        def run(alpha):
            contexts = [
                resident_context(i, 68.0, [make_kernel(f"k{i}")])
                for i in range(2)
            ]
            return compute_allocation(
                contexts, 68.0, 1e9, AllocationParams(alpha=alpha, beta=0.0)
            ).aggregate_rate
        assert run(0.1) < run(0.0)

    def test_colocation_penalty(self):
        def run(beta, count):
            kernels = [make_kernel(f"k{i}") for i in range(count)]
            context = resident_context(0, 32.0, kernels)
            return compute_allocation(
                [context], 68.0, 1e9, AllocationParams(alpha=0.0, beta=beta)
            ).aggregate_rate
        # with four co-located kernels a positive beta cuts the rate
        assert run(0.1, 4) < run(0.0, 4)
        # a lone kernel pays nothing
        assert run(0.1, 1) == pytest.approx(run(0.0, 1))

    def test_aggregate_ceiling_binds(self):
        kernels = [make_kernel(f"k{i}") for i in range(4)]
        context = resident_context(0, 68.0, kernels)
        result = compute_allocation(
            [context], 68.0, 5.0, AllocationParams(alpha=0.0, beta=0.0)
        )
        assert result.aggregate_rate == pytest.approx(5.0)

    def test_ceiling_scales_uniformly(self):
        kernels = [make_kernel(f"k{i}") for i in range(2)]
        context = resident_context(0, 68.0, kernels)
        unbounded = compute_allocation(
            [context], 68.0, 1e9, AllocationParams(alpha=0.0, beta=0.0)
        )
        bounded_cap = unbounded.aggregate_rate / 2
        # fresh context because allocation mutates kernel state
        kernels2 = [make_kernel(f"j{i}") for i in range(2)]
        context2 = resident_context(1, 68.0, kernels2)
        bounded = compute_allocation(
            [context2], 68.0, bounded_cap, AllocationParams(alpha=0.0, beta=0.0)
        )
        rates = list(bounded.rates.values())
        assert rates[0] == pytest.approx(rates[1])
        assert sum(rates) == pytest.approx(bounded_cap)

    def test_hard_context_caps_not_work_conserving(self):
        """A context cannot exceed its nominal SMs even when the device has
        idle capacity — the core MPS semantics over-subscription exploits."""
        kernel = make_kernel(width=68.0)
        context = resident_context(0, 34.0, [kernel])
        result = compute_allocation([context], 68.0, 1e9)
        assert result.shares[kernel.kernel_id] == pytest.approx(34.0)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            AllocationParams(alpha=-1.0)
        with pytest.raises(ValueError):
            AllocationParams(width_fraction=0.0)

"""Unit tests for streams and contexts."""

import pytest

from repro.gpu.context import SimContext
from repro.gpu.kernel import PriorityLevel, StageKernel
from repro.gpu.stream import CudaStream, StreamClass
from repro.speedup.model import SaturatingCurve


def make_kernel(label="k", deadline=1.0, priority=PriorityLevel.LOW, work=1.0):
    return StageKernel(
        label=label,
        curve=SaturatingCurve(0.05),
        work=work,
        width_demand=16.0,
        deadline=deadline,
        priority=priority,
    )


class TestStream:
    def test_attach_detach(self):
        stream = CudaStream(0, StreamClass.HIGH)
        kernel = make_kernel()
        stream.attach(kernel)
        assert stream.busy
        assert kernel.stream_id == 0
        detached = stream.detach()
        assert detached is kernel
        assert not stream.busy
        assert kernel.stream_id is None

    def test_attach_busy_stream_raises(self):
        stream = CudaStream(0, StreamClass.LOW)
        stream.attach(make_kernel("a"))
        with pytest.raises(RuntimeError):
            stream.attach(make_kernel("b"))

    def test_detach_idle_stream_raises(self):
        with pytest.raises(RuntimeError):
            CudaStream(0, StreamClass.LOW).detach()


class TestContextConstruction:
    def test_default_stream_layout(self):
        context = SimContext(0, nominal_sms=34.0)
        classes = [s.stream_class for s in context.streams]
        assert classes.count(StreamClass.HIGH) == 2
        assert classes.count(StreamClass.LOW) == 2

    def test_invalid_sms_rejected(self):
        with pytest.raises(ValueError):
            SimContext(0, nominal_sms=0.0)

    def test_starts_idle(self):
        context = SimContext(0, 34.0)
        assert context.is_idle()
        assert context.queue_empty()


class TestDispatch:
    def test_dispatch_fills_free_streams(self):
        context = SimContext(0, 34.0)
        kernels = [make_kernel(f"k{i}") for i in range(3)]
        for kernel in kernels:
            context.enqueue(kernel)
        dispatched = context.dispatch_ready()
        assert len(dispatched) == 3
        assert len(context.resident_kernels()) == 3

    def test_at_most_four_resident(self):
        context = SimContext(0, 34.0)
        for index in range(6):
            context.enqueue(make_kernel(f"k{index}"))
        context.dispatch_ready()
        assert len(context.resident_kernels()) == 4
        assert context.queued_count() == 2

    def test_high_priority_prefers_high_stream(self):
        context = SimContext(0, 34.0)
        kernel = make_kernel(priority=PriorityLevel.HIGH)
        context.enqueue(kernel)
        context.dispatch_ready()
        stream = context.streams[kernel.stream_id]
        assert stream.stream_class is StreamClass.HIGH

    def test_low_priority_prefers_low_stream(self):
        context = SimContext(0, 34.0)
        kernel = make_kernel(priority=PriorityLevel.LOW)
        context.enqueue(kernel)
        context.dispatch_ready()
        assert context.streams[kernel.stream_id].stream_class is StreamClass.LOW

    def test_edf_order_within_level(self):
        context = SimContext(0, 34.0, high_streams=0, low_streams=1)
        late = make_kernel("late", deadline=2.0)
        early = make_kernel("early", deadline=1.0)
        context.enqueue(late)
        context.enqueue(early)
        dispatched = context.dispatch_ready()
        assert dispatched[0] is early

    def test_priority_order_across_levels(self):
        context = SimContext(0, 34.0, high_streams=1, low_streams=0)
        low = make_kernel("low", deadline=0.5, priority=PriorityLevel.LOW)
        high = make_kernel("high", deadline=2.0, priority=PriorityLevel.HIGH)
        context.enqueue(low)
        context.enqueue(high)
        dispatched = context.dispatch_ready()
        # HIGH dispatches first despite its later deadline.
        assert dispatched[0] is high

    def test_borrowing_lets_low_use_high_stream(self):
        context = SimContext(0, 34.0, high_streams=2, low_streams=0,
                             allow_stream_borrowing=True)
        kernel = make_kernel(priority=PriorityLevel.LOW)
        context.enqueue(kernel)
        assert context.dispatch_ready() == [kernel]

    def test_strict_mode_blocks_borrowing(self):
        context = SimContext(0, 34.0, high_streams=2, low_streams=0,
                             allow_stream_borrowing=False)
        kernel = make_kernel(priority=PriorityLevel.LOW)
        context.enqueue(kernel)
        assert context.dispatch_ready() == []
        assert context.queued_count() == 1

    def test_medium_targets_low_streams(self):
        context = SimContext(0, 34.0, high_streams=1, low_streams=1,
                             allow_stream_borrowing=False)
        medium = make_kernel("m", priority=PriorityLevel.MEDIUM)
        context.enqueue(medium)
        context.dispatch_ready()
        assert context.streams[medium.stream_id].stream_class is StreamClass.LOW


class TestRemove:
    def test_remove_resident(self):
        context = SimContext(0, 34.0)
        kernel = make_kernel()
        context.enqueue(kernel)
        context.dispatch_ready()
        context.remove(kernel)
        assert context.resident_kernels() == []

    def test_remove_queued_tombstones(self):
        context = SimContext(0, 34.0, high_streams=0, low_streams=1)
        first = make_kernel("a", deadline=1.0)
        second = make_kernel("b", deadline=2.0)
        context.enqueue(first)
        context.enqueue(second)
        context.dispatch_ready()  # first becomes resident
        context.remove(second)
        assert context.queued_count() == 0
        assert context.dispatch_ready() == []


class TestEstimates:
    def test_backlog_work_counts_resident_and_queued(self):
        context = SimContext(0, 34.0, high_streams=0, low_streams=1)
        context.enqueue(make_kernel("a", work=1.0))
        context.enqueue(make_kernel("b", work=2.0))
        context.dispatch_ready()
        assert context.backlog_work() == pytest.approx(3.0)

    def test_estimated_finish_time_grows_with_backlog(self):
        context = SimContext(0, 34.0)
        empty_eta = context.estimated_finish_time(now=0.0)
        context.enqueue(make_kernel("a"))
        context.dispatch_ready()
        assert context.estimated_finish_time(0.0) > empty_eta

    def test_estimate_completion_idle_context(self):
        context = SimContext(0, 34.0)
        kernel = make_kernel(work=1.0)
        eta = context.estimate_completion(kernel, now=0.0)
        expected = 1.0 / SaturatingCurve(0.05).speedup(34.0)
        assert eta == pytest.approx(expected)

    def test_estimate_completion_busy_context_larger(self):
        context = SimContext(0, 34.0, high_streams=0, low_streams=1)
        context.enqueue(make_kernel("a"))
        context.dispatch_ready()
        context.enqueue(make_kernel("b"))
        busy_eta = context.estimate_completion(make_kernel("c"), now=0.0)
        idle = SimContext(1, 34.0)
        idle_eta = idle.estimate_completion(make_kernel("d"), now=0.0)
        assert busy_eta > idle_eta

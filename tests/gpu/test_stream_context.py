"""Unit tests for streams and contexts."""

import pytest

from repro.gpu.context import SimContext
from repro.gpu.kernel import PriorityLevel, StageKernel
from repro.gpu.stream import CudaStream, StreamClass
from repro.speedup.model import SaturatingCurve


def make_kernel(label="k", deadline=1.0, priority=PriorityLevel.LOW, work=1.0):
    return StageKernel(
        label=label,
        curve=SaturatingCurve(0.05),
        work=work,
        width_demand=16.0,
        deadline=deadline,
        priority=priority,
    )


class TestStream:
    def test_attach_detach(self):
        stream = CudaStream(0, StreamClass.HIGH)
        kernel = make_kernel()
        stream.attach(kernel)
        assert stream.busy
        assert kernel.stream_id == 0
        detached = stream.detach()
        assert detached is kernel
        assert not stream.busy
        assert kernel.stream_id is None

    def test_attach_busy_stream_raises(self):
        stream = CudaStream(0, StreamClass.LOW)
        stream.attach(make_kernel("a"))
        with pytest.raises(RuntimeError):
            stream.attach(make_kernel("b"))

    def test_detach_idle_stream_raises(self):
        with pytest.raises(RuntimeError):
            CudaStream(0, StreamClass.LOW).detach()


class TestContextConstruction:
    def test_default_stream_layout(self):
        context = SimContext(0, nominal_sms=34.0)
        classes = [s.stream_class for s in context.streams]
        assert classes.count(StreamClass.HIGH) == 2
        assert classes.count(StreamClass.LOW) == 2

    def test_invalid_sms_rejected(self):
        with pytest.raises(ValueError):
            SimContext(0, nominal_sms=0.0)

    def test_starts_idle(self):
        context = SimContext(0, 34.0)
        assert context.is_idle()
        assert context.queue_empty()


class TestDispatch:
    def test_dispatch_fills_free_streams(self):
        context = SimContext(0, 34.0)
        kernels = [make_kernel(f"k{i}") for i in range(3)]
        for kernel in kernels:
            context.enqueue(kernel)
        dispatched = context.dispatch_ready()
        assert len(dispatched) == 3
        assert len(context.resident_kernels()) == 3

    def test_at_most_four_resident(self):
        context = SimContext(0, 34.0)
        for index in range(6):
            context.enqueue(make_kernel(f"k{index}"))
        context.dispatch_ready()
        assert len(context.resident_kernels()) == 4
        assert context.queued_count() == 2

    def test_high_priority_prefers_high_stream(self):
        context = SimContext(0, 34.0)
        kernel = make_kernel(priority=PriorityLevel.HIGH)
        context.enqueue(kernel)
        context.dispatch_ready()
        stream = context.streams[kernel.stream_id]
        assert stream.stream_class is StreamClass.HIGH

    def test_low_priority_prefers_low_stream(self):
        context = SimContext(0, 34.0)
        kernel = make_kernel(priority=PriorityLevel.LOW)
        context.enqueue(kernel)
        context.dispatch_ready()
        assert context.streams[kernel.stream_id].stream_class is StreamClass.LOW

    def test_edf_order_within_level(self):
        context = SimContext(0, 34.0, high_streams=0, low_streams=1)
        late = make_kernel("late", deadline=2.0)
        early = make_kernel("early", deadline=1.0)
        context.enqueue(late)
        context.enqueue(early)
        dispatched = context.dispatch_ready()
        assert dispatched[0] is early

    def test_priority_order_across_levels(self):
        context = SimContext(0, 34.0, high_streams=1, low_streams=0)
        low = make_kernel("low", deadline=0.5, priority=PriorityLevel.LOW)
        high = make_kernel("high", deadline=2.0, priority=PriorityLevel.HIGH)
        context.enqueue(low)
        context.enqueue(high)
        dispatched = context.dispatch_ready()
        # HIGH dispatches first despite its later deadline.
        assert dispatched[0] is high

    def test_borrowing_lets_low_use_high_stream(self):
        context = SimContext(0, 34.0, high_streams=2, low_streams=0,
                             allow_stream_borrowing=True)
        kernel = make_kernel(priority=PriorityLevel.LOW)
        context.enqueue(kernel)
        assert context.dispatch_ready() == [kernel]

    def test_strict_mode_blocks_borrowing(self):
        context = SimContext(0, 34.0, high_streams=2, low_streams=0,
                             allow_stream_borrowing=False)
        kernel = make_kernel(priority=PriorityLevel.LOW)
        context.enqueue(kernel)
        assert context.dispatch_ready() == []
        assert context.queued_count() == 1

    def test_medium_targets_low_streams(self):
        context = SimContext(0, 34.0, high_streams=1, low_streams=1,
                             allow_stream_borrowing=False)
        medium = make_kernel("m", priority=PriorityLevel.MEDIUM)
        context.enqueue(medium)
        context.dispatch_ready()
        assert context.streams[medium.stream_id].stream_class is StreamClass.LOW


class TestRemove:
    def test_remove_resident(self):
        context = SimContext(0, 34.0)
        kernel = make_kernel()
        context.enqueue(kernel)
        context.dispatch_ready()
        context.remove(kernel)
        assert context.resident_kernels() == []

    def test_remove_queued_tombstones(self):
        context = SimContext(0, 34.0, high_streams=0, low_streams=1)
        first = make_kernel("a", deadline=1.0)
        second = make_kernel("b", deadline=2.0)
        context.enqueue(first)
        context.enqueue(second)
        context.dispatch_ready()  # first becomes resident
        context.remove(second)
        assert context.queued_count() == 0
        assert context.dispatch_ready() == []


class TestEstimates:
    def test_backlog_work_counts_resident_and_queued(self):
        context = SimContext(0, 34.0, high_streams=0, low_streams=1)
        context.enqueue(make_kernel("a", work=1.0))
        context.enqueue(make_kernel("b", work=2.0))
        context.dispatch_ready()
        assert context.backlog_work() == pytest.approx(3.0)

    def test_estimated_finish_time_grows_with_backlog(self):
        context = SimContext(0, 34.0)
        empty_eta = context.estimated_finish_time(now=0.0)
        context.enqueue(make_kernel("a"))
        context.dispatch_ready()
        assert context.estimated_finish_time(0.0) > empty_eta

    def test_estimate_completion_idle_context(self):
        context = SimContext(0, 34.0)
        kernel = make_kernel(work=1.0)
        eta = context.estimate_completion(kernel, now=0.0)
        expected = 1.0 / SaturatingCurve(0.05).speedup(34.0)
        assert eta == pytest.approx(expected)

    def test_estimate_completion_busy_context_larger(self):
        context = SimContext(0, 34.0, high_streams=0, low_streams=1)
        context.enqueue(make_kernel("a"))
        context.dispatch_ready()
        context.enqueue(make_kernel("b"))
        busy_eta = context.estimate_completion(make_kernel("c"), now=0.0)
        idle = SimContext(1, 34.0)
        idle_eta = idle.estimate_completion(make_kernel("d"), now=0.0)
        assert busy_eta > idle_eta


class TestEdfFifoTieBreak:
    """A blocked stage must keep its FIFO rank among equal deadlines.

    Regression for a dispatch bug: the restart-scan dispatch loop used to
    re-enqueue a blocked stage under a *fresh* queue sequence number, so an
    equal-deadline peer that arrived later leapfrogged it after any settle
    that ran while the level was blocked.
    """

    @pytest.mark.parametrize("accounting", ["fast", "scan"])
    def test_blocked_settle_preserves_fifo_among_equal_deadlines(
        self, accounting
    ):
        context = SimContext(
            0,
            34.0,
            high_streams=1,
            low_streams=1,
            allow_stream_borrowing=False,
            accounting=accounting,
        )
        blocker = make_kernel("blocker", priority=PriorityLevel.HIGH)
        context.enqueue(blocker)
        assert context.dispatch_ready() == [blocker]
        first = make_kernel("first", deadline=5.0, priority=PriorityLevel.HIGH)
        second = make_kernel("second", deadline=5.0, priority=PriorityLevel.HIGH)
        context.enqueue(first)
        context.enqueue(second)
        # A settle while the HIGH stream is busy: nothing can dispatch, and
        # the blocked stages' queue positions must be left untouched.
        assert context.dispatch_ready() == []
        context.remove(blocker)
        # The earlier arrival must win the freed stream.
        assert context.dispatch_ready() == [first]
        context.remove(first)
        assert context.dispatch_ready() == [second]


class TestStrictBlockageDispatch:
    """borrowing=False with every level queued and no preferred slot free."""

    @pytest.mark.parametrize("accounting", ["fast", "scan"])
    def test_full_blockage_no_livelock_no_inversion(self, accounting):
        context = SimContext(
            0,
            34.0,
            high_streams=1,
            low_streams=1,
            allow_stream_borrowing=False,
            accounting=accounting,
        )
        high_blocker = make_kernel("hb", priority=PriorityLevel.HIGH)
        low_blocker = make_kernel("lb", priority=PriorityLevel.LOW)
        context.enqueue(high_blocker)
        context.enqueue(low_blocker)
        assert len(context.dispatch_ready()) == 2

        doomed = make_kernel("doomed", deadline=0.1, priority=PriorityLevel.HIGH)
        h1 = make_kernel("h1", deadline=1.0, priority=PriorityLevel.HIGH)
        h2 = make_kernel("h2", deadline=2.0, priority=PriorityLevel.HIGH)
        m1 = make_kernel("m1", deadline=3.0, priority=PriorityLevel.MEDIUM)
        l1 = make_kernel("l1", deadline=0.5, priority=PriorityLevel.LOW)
        for kernel in (doomed, h1, h2, m1, l1):
            context.enqueue(kernel)
        context.remove(doomed)  # tombstoned while queued

        # Fully blocked: dispatch must return (no livelock) with nothing
        # moved and the queue accounting intact.
        assert context.dispatch_ready() == []
        assert context.queued_count() == 4
        assert context.queued_count(PriorityLevel.HIGH) == 2

        # Free the low-class stream: MEDIUM outranks LOW for it, despite
        # l1's earlier deadline, and the tombstone never dispatches.
        context.remove(low_blocker)
        assert context.dispatch_ready() == [m1]
        context.remove(m1)
        assert context.dispatch_ready() == [l1]

        # Free the high-class stream: EDF order within the HIGH level.
        context.remove(high_blocker)
        assert context.dispatch_ready() == [h1]
        context.remove(h1)
        assert context.dispatch_ready() == [h2]
        assert context.queue_empty()


class TestQueueCompaction:
    def test_heavy_shedding_compacts_tombstones(self):
        context = SimContext(0, 34.0, high_streams=0, low_streams=1)
        blocker = make_kernel("blocker")
        context.enqueue(blocker)
        context.dispatch_ready()
        kernels = [
            make_kernel(f"k{i}", deadline=float(i + 1)) for i in range(40)
        ]
        for kernel in kernels:
            context.enqueue(kernel)
        for kernel in kernels[:21]:
            context.remove(kernel)
        # 21 tombstones in a 40-entry heap crosses the majority threshold:
        # the rebuilt heap holds exactly the 19 survivors.
        assert context.stat_compactions == 1
        assert len(context._queues[PriorityLevel.LOW]) == 19
        assert context.queued_count() == 19
        # Survivors still drain in EDF order.
        context.remove(blocker)
        order = []
        while not context.queue_empty():
            dispatched = context.dispatch_ready()
            order.extend(dispatched)
            for kernel in dispatched:
                context.remove(kernel)
        assert order == kernels[21:]

    def test_small_queues_never_compact(self):
        context = SimContext(0, 34.0, high_streams=0, low_streams=1)
        context.enqueue(make_kernel("blocker"))
        context.dispatch_ready()
        kernels = [make_kernel(f"k{i}") for i in range(8)]
        for kernel in kernels:
            context.enqueue(kernel)
        for kernel in kernels:
            context.remove(kernel)
        assert context.stat_compactions == 0
        assert context.queued_count() == 0


class TestAccountingModes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SimContext(0, 34.0, accounting="bogus")

    def test_fast_and_scan_agree(self):
        """Both modes answer every query identically on a mixed history."""
        contexts = {
            mode: SimContext(0, 34.0, accounting=mode)
            for mode in ("fast", "scan")
        }
        histories = {}
        for mode, context in contexts.items():
            kernels = [
                make_kernel("a", deadline=2.0, work=1.0),
                make_kernel("b", deadline=1.0, work=2.0,
                            priority=PriorityLevel.HIGH),
                make_kernel("c", deadline=3.0, work=0.5),
                make_kernel("d", deadline=1.5, work=1.5),
                make_kernel("e", deadline=2.5, work=3.0),
                make_kernel("f", deadline=0.5, work=0.25,
                            priority=PriorityLevel.MEDIUM),
            ]
            for kernel in kernels:
                context.enqueue(kernel)
            dispatched = [k.label for k in context.dispatch_ready()]
            context.remove(kernels[4])  # tombstone one queued stage
            histories[mode] = {
                "dispatched": dispatched,
                "queued": context.queued_count(),
                "queued_high": context.queued_count(PriorityLevel.HIGH),
                "empty": context.queue_empty(),
                "free": [s.stream_id for s in context.free_streams()],
                "free_count": context.free_stream_count(),
                "backlog": context.backlog_work(),
                "eta": context.estimated_finish_time(1.0),
            }
        fast, scan = histories["fast"], histories["scan"]
        assert fast["dispatched"] == scan["dispatched"]
        assert fast["queued"] == scan["queued"]
        assert fast["queued_high"] == scan["queued_high"]
        assert fast["empty"] == scan["empty"]
        assert fast["free"] == scan["free"]
        assert fast["free_count"] == scan["free_count"]
        assert fast["backlog"] == pytest.approx(scan["backlog"], abs=1e-12)
        assert fast["eta"] == pytest.approx(scan["eta"], abs=1e-9)

    def test_fast_accumulators_reset_on_drain(self):
        context = SimContext(0, 34.0, high_streams=0, low_streams=1)
        context.enqueue(make_kernel("blocker"))
        context.dispatch_ready()
        queued = [make_kernel(f"k{i}", work=0.1 * (i + 1)) for i in range(5)]
        for kernel in queued:
            context.enqueue(kernel)
        for kernel in queued:
            context.remove(kernel)
        # Exact zeros, not accumulated float residue.
        assert context.backlog_work() == pytest.approx(
            context.resident_kernels()[0].work_remaining
        )
        assert context._queued_work == 0.0
        assert context._queued_eta == 0.0

    def test_fast_mode_skips_scans_and_rebuilds(self):
        """The deterministic counters behind the benchmark guardrail."""
        contexts = {
            mode: SimContext(0, 34.0, accounting=mode)
            for mode in ("fast", "scan")
        }
        for context in contexts.values():
            for i in range(10):
                context.enqueue(make_kernel(f"k{i}", deadline=float(i)))
            context.dispatch_ready()
            for _ in range(25):
                context.queued_count()
                context.backlog_work()
                context.estimated_finish_time(0.0)
                context.free_streams()
        fast, scan = contexts["fast"], contexts["scan"]
        assert fast.stat_scan_elems == 0
        assert scan.stat_scan_elems > 0
        assert fast.stat_free_builds < scan.stat_free_builds
        assert fast.stat_requeues == 0

"""Synthesize a heterogeneous camera fleet and find its pivot utilization.

Demonstrates the taskset-synthesis subsystem end to end:

1. synthesize a ``mixed_fleet`` taskset (mixed models from the zoo,
   camera-ladder rates, UUniFast utilization shares) and inspect it;
2. compare the analytic capacity estimates for naive vs SGPRS;
3. sweep the target utilization through the parallel harness and report
   each scheduler's pivot utilization.

Run from the repository root::

    PYTHONPATH=src python examples/synthetic_fleet.py
"""

from repro.analysis.schedulability import (
    taskset_naive_utilization,
    taskset_sgprs_utilization,
)
from repro.core.context_pool import ContextPoolConfig
from repro.gpu.spec import RTX_2080_TI
from repro.workloads.synth import get_synth_scenario, synthesize_taskset
from repro.workloads.synth.taskset import describe_taskset
from repro.workloads.synth.sweep import run_synth_sweep, utilization_pivots


def main() -> None:
    scenario = get_synth_scenario("mixed_fleet")
    pool = ContextPoolConfig.from_oversubscription(
        scenario.num_contexts, 1.0, RTX_2080_TI
    )

    spec = scenario.spec(num_tasks=6, seed=1, total_utilization=1.8)
    tasks = synthesize_taskset(spec, nominal_sms=pool.sms_per_context)
    print(f"synthesized {scenario.name} taskset (seed {spec.seed}):")
    print(describe_taskset(tasks))
    print()
    print("analytic demand (fraction of capacity):")
    print(
        f"  naive: {taskset_naive_utilization(tasks, scenario.num_contexts, pool.sms_per_context):.3f}"
    )
    print(f"  sgprs: {taskset_sgprs_utilization(tasks, RTX_2080_TI):.3f}")
    print()

    utilizations = (1.0, 1.5, 2.0, 2.5)
    print(f"sweeping target utilization {utilizations} ...")
    result = run_synth_sweep(
        scenario.name,
        utilizations=utilizations,
        task_counts=(6,),
        variants=("naive", "sgprs_1", "sgprs_1.5"),
        duration=1.5,
        warmup=0.5,
    )
    for point_result in result.results:
        print(
            f"  {point_result.point.label:<34} "
            f"fps={point_result.total_fps:7.1f} dmr={point_result.dmr:6.2%}"
        )
    print()
    print("pivot utilization (largest target with zero misses):")
    for variant, pivot in utilization_pivots(result.results).items():
        print(f"  {variant}: {pivot}")


if __name__ == "__main__":
    main()

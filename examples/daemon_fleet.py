"""Daemon-fleet walkthrough: long-lived workers over a shared runs root.

Where ``examples/distributed_sweep.py`` shows one grid split across
single-pass workers, this example shows the *service* shape: a fleet of
``python -m repro worker`` daemons parked on a runs root, draining
whatever gets submitted — including a run **hot-added while the fleet
is already busy** — then idling out and exiting on their own:

    python examples/daemon_fleet.py

The real thing is the same three commands on N hosts sharing the root
(NFS, a bind mount, or an object-store backend):

    # any host, any time — submit work without computing it
    python -m repro sweep --scenario 1 --submit --runs-root /srv/runs

    # each worker host — a daemon that polls for new runs forever
    # (drop --max-idle to run until SIGTERM)
    python -m repro worker --runs-root /srv/runs --poll 5 --max-idle 24

    # any host, afterwards — assemble each run's canonical grid
    python -m repro merge /srv/runs/<RUN_ID> --out grid.json

Daemons refresh their claim heartbeats from a background ticker, so —
unlike single-pass claim workers — the TTL (``--heartbeat``) does not
need to exceed the slowest point's cost; a SIGKILL-ed daemon's claims
still age out and get stolen like any dead worker's.
"""

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.exp import GridSpec, init_run, merge_run, run_grid
from repro.exp.dist import pending_points

# Two small but real grids: the second is "hot-added" mid-flight.
GRID_A = GridSpec(
    scenario="scenario1",
    num_contexts=2,
    variants=("naive", "sgprs_1.5"),
    task_counts=(4, 8),
    seeds=(0, 1),
    duration=1.0,
    warmup=0.25,
)
GRID_B = GridSpec(
    scenario="scenario2",
    num_contexts=3,
    variants=("naive", "sgprs_1"),
    task_counts=(6,),
    duration=1.0,
    warmup=0.25,
)


def spawn_worker(runs_root: Path, name: str) -> subprocess.Popen:
    """One ``python -m repro worker`` daemon as a child process."""
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--runs-root",
            str(runs_root),
            "--poll",
            "0.3",
            "--max-idle",
            "8",  # exit after ~2.4s with nothing to do
            "--owner",
            name,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def main() -> None:
    runs_root = Path(tempfile.mkdtemp(prefix="repro-fleet-"))

    # --- submit run A, then park a two-daemon fleet on the root --------
    init_run(runs_root / "run-a", GRID_A)
    print(f"submitted run-a ({len(GRID_A)} points) under {runs_root}")
    fleet = [spawn_worker(runs_root, f"daemon-{i}") for i in range(2)]
    print(f"spawned {len(fleet)} worker daemons (poll 0.3s)")

    # --- hot-add run B while the fleet is draining run A ----------------
    while pending_points(runs_root / "run-a"):
        time.sleep(0.1)
    init_run(runs_root / "run-b", GRID_B)
    print(f"hot-added run-b ({len(GRID_B)} points) — no daemon restarts")

    # --- the daemons discover run B, drain it, idle out, exit 0 --------
    for proc in fleet:
        output, _ = proc.communicate(timeout=300)
        banner = output.strip().splitlines()[-1]
        print(f"  [{proc.args[-1]}] exit {proc.returncode}: {banner}")
        assert proc.returncode == 0

    # --- merge both runs and cross-check against single-host runs ------
    for name, grid in (("run-a", GRID_A), ("run-b", GRID_B)):
        merged = merge_run(runs_root / name)
        whole = run_grid(grid)
        merged_rows = {r.point: (r.total_fps, r.dmr) for r in merged.results}
        whole_rows = {r.point: (r.total_fps, r.dmr) for r in whole.results}
        assert merged_rows == whole_rows, f"{name}: fleet != single-host?!"
        print(f"{name}: merged {len(merged.results)} points == single-host run")
        for variant, points in merged.sweep().items():
            row = "  ".join(
                f"n={p.num_tasks}: {p.total_fps:.0f}fps/{p.dmr * 100:.0f}%"
                for p in points
            )
            print(f"  {variant:<10} {row}")


if __name__ == "__main__":
    main()

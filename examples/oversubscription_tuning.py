"""Tuning the context pool: how much over-subscription is right?

The paper's Scenario 2 finding: more over-subscription is not always
better — with three contexts, 1.5x beats 2.0x because excessive nominal
width creates contention without adding usable SMs.  This example sweeps
the over-subscription level at a fixed (overloaded) camera count and
prints the resulting FPS/DMR so a deployer can pick the level.

    python examples/oversubscription_tuning.py
"""

from repro import (
    RTX_2080_TI,
    ContextPoolConfig,
    RunConfig,
    identical_periodic_tasks,
    run_simulation,
)

CAMERAS = 28  # beyond the pivot: the pool is saturated
LEVELS = (1.0, 1.25, 1.5, 1.75, 2.0)


def main() -> None:
    print(f"{CAMERAS} cameras at 30 fps on a 3-context pool "
          f"({RTX_2080_TI.name}, {RTX_2080_TI.total_sms} SMs)\n")
    print(f"{'os':>5}  {'SMs/context':>12}  {'total FPS':>10}  "
          f"{'DMR':>7}  {'pressure':>9}")
    best = None
    for level in LEVELS:
        pool = ContextPoolConfig.from_oversubscription(3, level, RTX_2080_TI)
        tasks = identical_periodic_tasks(
            CAMERAS, nominal_sms=pool.sms_per_context
        )
        result = run_simulation(
            tasks, RunConfig(pool=pool, duration=3.0, warmup=1.0)
        )
        print(f"{level:>5.2f}  {pool.sms_per_context:>12.1f}  "
              f"{result.total_fps:>10.1f}  {result.dmr * 100:>6.2f}%  "
              f"{result.mean_pressure:>9.2f}")
        if best is None or result.total_fps > best[1]:
            best = (level, result.total_fps)
    print(f"\nbest over-subscription level: {best[0]:.2f}x "
          f"({best[1]:.1f} fps)")


if __name__ == "__main__":
    main()

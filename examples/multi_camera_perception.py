"""Multi-camera perception: how many 30-fps cameras fit on one GPU?

The paper's motivating scenario — a transportation perception stack running
one DNN inference pipeline per camera.  This example sweeps the camera
count for SGPRS and the naive spatial partitioner and reports each
scheduler's *pivot point* (the largest camera count with zero deadline
misses) and its behaviour beyond it.

    python examples/multi_camera_perception.py
"""

from repro.analysis.pivot import find_pivot
from repro.analysis.report import render_sweep_table
from repro.workloads.scenarios import SCENARIO_1, run_scenario_sweep


def main() -> None:
    camera_counts = [4, 8, 12, 14, 16, 20, 24, 26]
    print(f"sweeping {camera_counts} cameras "
          f"on a {SCENARIO_1.num_contexts}-context pool...\n")
    sweep = run_scenario_sweep(
        SCENARIO_1,
        camera_counts,
        variants=["naive", "sgprs_1.5"],
        duration=3.0,
        warmup=1.0,
    )

    print(render_sweep_table(sweep, metric="total_fps",
                             title="total FPS vs cameras"))
    print()
    print(render_sweep_table(sweep, metric="dmr",
                             title="deadline miss rate vs cameras"))
    print()
    for variant, points in sweep.items():
        pivot = find_pivot(points)
        print(f"{variant:>10}: pivot point = {pivot} cameras")
    naive_pivot = find_pivot(sweep["naive"]) or 0
    sgprs_pivot = find_pivot(sweep["sgprs_1.5"]) or 0
    print(f"\nSGPRS sustains {sgprs_pivot - naive_pivot} more cameras "
          "without a single missed frame deadline.")


if __name__ == "__main__":
    main()

"""Distributed sweep walkthrough: shard / claim / merge on one grid.

The experiment harness can split one sweep grid over any number of
workers on any number of hosts through a shared directory (NFS, a bind
mount, or one host's disk).  This example runs the whole protocol in a
single process — three claim workers racing over one run directory, a
simulated crash, TTL recovery, and the final merge — so you can watch
every moving part without a cluster:

    python examples/distributed_sweep.py

The real thing is the same commands in N terminals (or N hosts sharing
``--run-dir``).  Two-terminal version:

    # terminal 1 — start a claim worker; it prints the run id/directory
    python -m repro sweep --scenario 1 --claim --heartbeat 60

    # terminal 2 — join the same run: same grid -> same run directory
    python -m repro sweep --scenario 1 --claim --heartbeat 60

    # either terminal, afterwards — assemble the canonical grid
    python -m repro merge .repro-runs/<RUN_ID> --out grid.json --csv grid.csv

    # a crashed/interrupted run resumes where it left off
    python -m repro sweep --resume <RUN_ID>

Static sharding needs no shared directory at all — ship each shard's
JSON home and merge:

    python -m repro sweep --scenario 1 --shard 1/4 --out shard1.json   # host A
    python -m repro sweep --scenario 1 --shard 2/4 --out shard2.json   # host B
    ...
    python -m repro merge shard*.json --out grid.json
"""

import tempfile
import threading
from pathlib import Path

from repro.exp import GridSpec, init_run, merge_run, run_dist_worker, run_grid
from repro.exp.dist import ClaimBoard, pending_points

# A small but real grid: 2 variants x 3 task counts x 2 seeds = 12
# simulated points (about half a minute of single-core compute).
GRID = GridSpec(
    scenario="scenario1",
    num_contexts=2,
    variants=("naive", "sgprs_1.5"),
    task_counts=(4, 8, 12),
    seeds=(0, 1),
    duration=1.0,
    warmup=0.25,
)


def main() -> None:
    run_dir = Path(tempfile.mkdtemp(prefix="repro-dist-"))
    manifest = init_run(run_dir, GRID)
    print(f"run {manifest.run_id} at {run_dir} ({len(GRID)} points)")

    # --- a fleet of three claim workers racing over one run directory --
    reports = {}

    def worker(owner: str) -> None:
        reports[owner] = run_dist_worker(run_dir, owner=owner)

    threads = [
        threading.Thread(target=worker, args=(f"worker-{i}",))
        for i in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for owner, report in sorted(reports.items()):
        print(
            f"  {owner}: computed {report.cache_misses}, "
            f"skipped {report.skipped} (claimed by peers)"
        )

    # --- simulate a crashed host: claim a point, never finish it -------
    # Drop one checkpoint and leave a stale claim behind, as a worker
    # kill -9'd mid-simulation would.
    victim = list(GRID.points())[5]
    cache_file = run_dir / "cache" / f"{victim.config_hash()}.json"
    cache_file.unlink()
    dead = ClaimBoard(run_dir, owner="dead-host", ttl=0.001)
    dead.try_claim(victim)
    print(f"crash simulated: {victim.label} unfinished, claim left behind")
    print(f"  pending points now: {len(pending_points(run_dir))}")

    # --- recovery: the claim outlives its TTL and is stolen ------------
    # (skew=0: the default clock-skew allowance is for real multi-host
    # fleets; this single-process demo wants instant staleness)
    recovery = run_dist_worker(run_dir, owner="recovery", ttl=0.001, skew=0.0)
    print(f"recovery pass recomputed {recovery.cache_misses} point(s)")

    # --- merge into the canonical grid and cross-check -----------------
    merged = merge_run(run_dir)
    whole = run_grid(GRID)  # the single-host reference run
    merged_rows = {r.point: (r.total_fps, r.dmr) for r in merged.results}
    whole_rows = {r.point: (r.total_fps, r.dmr) for r in whole.results}
    assert merged_rows == whole_rows, "distributed != single-host?!"
    print(
        f"merged {len(merged.results)} points == single-host run, "
        f"bit for bit"
    )
    for variant, points in merged.sweep().items():
        row = "  ".join(
            f"n={p.num_tasks}: {p.total_fps:.0f}fps/{p.dmr * 100:.0f}%"
            for p in points
        )
        print(f"  {variant:<10} {row}")


if __name__ == "__main__":
    main()

"""Heterogeneous inference service: mixed networks at mixed rates.

SGPRS is not limited to identical tasks.  This example co-locates

* two 60-fps lightweight CNNs (e.g. lane-marking detectors),
* two 30-fps ResNet18 pipelines (object classification), and
* one 10-fps ResNet34 (a heavier scene-understanding model),

on a three-context pool and reports per-task outcomes, illustrating how
the two-level priorities and per-stage virtual deadlines isolate the fast
tasks from the heavy one.

    python examples/mixed_pipeline.py
"""

from repro import (
    RTX_2080_TI,
    ContextPoolConfig,
    RunConfig,
    build_resnet18,
    build_resnet34,
    build_simple_cnn,
    mixed_task_set,
    run_simulation,
)


def main() -> None:
    pool = ContextPoolConfig.from_oversubscription(
        num_contexts=3, oversubscription=1.5, spec=RTX_2080_TI
    )
    # (graph builder, label, period, number of stages)
    specs = [
        (lambda: build_simple_cnn(input_hw=64), "lane_cnn", 1 / 60, 2),
        (lambda: build_simple_cnn(input_hw=64), "lane_cnn2", 1 / 60, 2),
        (build_resnet18, "resnet18_a", 1 / 30, 6),
        (build_resnet18, "resnet18_b", 1 / 30, 6),
        (build_resnet34, "resnet34", 1 / 10, 8),
    ]
    tasks = mixed_task_set(specs, nominal_sms=pool.sms_per_context)

    print("offline phase results:")
    for task in tasks:
        print(f"  {task.name:>22}: {task.fps:5.0f} fps, "
              f"{task.num_stages} stages, "
              f"WCET {task.total_wcet * 1e3:6.2f} ms, "
              f"utilization {task.utilization() * 100:5.1f}%")
    print(f"  total utilization (one partition): "
          f"{tasks.total_utilization() * 100:.1f}%\n")

    result = run_simulation(
        tasks, RunConfig(pool=pool, duration=5.0, warmup=1.0)
    )
    now = result.config.duration
    per_fps = result.per_task_fps
    per_dmr = result.metrics.per_task_dmr(now)
    print("steady-state, per task:")
    for task in tasks:
        fps = per_fps.get(task.name, 0.0)
        dmr = per_dmr.get(task.name, 0.0)
        print(f"  {task.name:>22}: {fps:6.1f} fps achieved "
              f"(target {task.fps:.0f}), miss rate {dmr * 100:.2f}%")
    print(f"\ntotal: {result.total_fps:.1f} fps, "
          f"DMR {result.dmr * 100:.2f}%, "
          f"GPU utilization {result.utilization * 100:.1f}%")


if __name__ == "__main__":
    main()

"""Quickstart: schedule eight 30-fps ResNet18 cameras with SGPRS.

Runs the full pipeline — offline phase (stage partitioning, WCET
measurement, virtual deadlines), online scheduling on the simulated
RTX 2080 Ti — and prints the paper's two metrics.

    python examples/quickstart.py
"""

from repro import (
    RTX_2080_TI,
    ContextPoolConfig,
    RunConfig,
    identical_periodic_tasks,
    run_simulation,
)


def main() -> None:
    # A pool of two contexts at 1.5x over-subscription: each context is
    # nominally 51 of the device's 68 SMs (the paper's SGPRS_1.5).
    pool = ContextPoolConfig.from_oversubscription(
        num_contexts=2, oversubscription=1.5, spec=RTX_2080_TI
    )

    # Eight identical periodic tasks: ResNet18, 224x224, 30 fps, six stages.
    # The offline phase measures stage WCETs at the pool's partition size
    # and assigns proportional virtual deadlines.
    tasks = identical_periodic_tasks(count=8, nominal_sms=pool.sms_per_context)

    task = tasks[0]
    print(f"task: {task.graph.name}, {task.num_stages} stages, "
          f"{task.fps:.0f} fps, WCET {task.total_wcet * 1e3:.2f} ms "
          f"at {pool.sms_per_context:.0f} SMs")
    for stage in task.stages:
        print(f"  stage {stage.index}: wcet {stage.wcet * 1e3:.2f} ms, "
              f"virtual deadline {stage.virtual_deadline * 1e3:.2f} ms")

    result = run_simulation(
        tasks, RunConfig(pool=pool, duration=5.0, warmup=1.0)
    )
    print()
    print(f"total FPS          : {result.total_fps:.1f} "
          f"(demand {8 * 30} fps)")
    print(f"deadline miss rate : {result.dmr * 100:.2f}%")
    print(f"GPU busy fraction  : {result.utilization * 100:.1f}%")
    print(f"jobs               : {result.completed}/{result.released} completed")


if __name__ == "__main__":
    main()

"""Open-system scheduling: bursty arrivals, admission control, tail latency.

The paper evaluates SGPRS as a *closed* system — every task releases a
job exactly once per period, and a release that finds the previous job
still running is silently skipped (a deadline miss).  Real perception
fleets are open systems: frames arrive from sensors whose rates drift
and burst, and an overloaded node must decide *what to do* with work it
cannot absorb.

This example drives the same eight-camera workload three ways:

1. the closed-system baseline (``periodic`` arrivals, skip-if-busy);
2. a bursty two-state MMPP source under skip-if-busy — every burst
   frame the node drops counts as a deadline miss;
3. the same MMPP source behind a bounded admission queue — bursts are
   buffered up to two jobs per task, overflow is *rejected* up front
   (``job_reject``, excluded from the miss rate) instead of silently
   skipped, and the tail percentiles show what the buffering costs.

    python examples/open_system.py
"""

from repro import (
    RTX_2080_TI,
    ContextPoolConfig,
    RunConfig,
    identical_periodic_tasks,
    run_simulation,
)


def report(label, result):
    print(f"-- {label} --")
    print(f"total FPS          : {result.total_fps:.1f}")
    print(f"goodput            : {result.goodput:.1f} fps "
          "(completions that met their deadline)")
    print(f"deadline miss rate : {result.dmr * 100:.2f}%")
    print(f"rejection rate     : {result.rejection_rate * 100:.2f}% "
          f"({result.rejected} jobs refused at admission)")
    if result.p99_response is not None:
        print(f"p99 / p99.9 resp.  : {result.p99_response * 1e3:.1f} ms / "
              f"{result.p999_response * 1e3:.1f} ms")
    print(f"queue depth        : mean {result.mean_queue_depth:.2f}, "
          f"max {result.max_queue_depth}")
    print()


def main() -> None:
    pool = ContextPoolConfig.from_oversubscription(
        num_contexts=2, oversubscription=1.5, spec=RTX_2080_TI
    )
    tasks = identical_periodic_tasks(count=8, nominal_sms=pool.sms_per_context)

    def run(arrival, admission):
        return run_simulation(
            tasks,
            RunConfig(
                pool=pool,
                duration=5.0,
                warmup=1.0,
                seed=0,
                arrival=arrival,
                admission=admission,
            ),
        )

    # 1. The paper's closed system: one release per period, skip if busy.
    report("closed system (periodic, skip-if-busy)",
           run("periodic", ""))

    # 2. Bursty open system, same drop policy: the MMPP source spends
    #    short sojourns at 4x the nominal rate, and every frame released
    #    into a busy task is skipped -- a deadline miss on the books.
    report("bursty open system (mmpp, skip-if-busy)",
           run("mmpp:burst=4,calm=0.25", "skip"))

    # 3. Bursty open system with admission control: buffer up to two
    #    jobs per task, refuse the rest up front.  Rejections leave the
    #    miss rate; buffered jobs push the p99/p99.9 response tail out.
    report("bursty open system (mmpp, bounded queue depth=2)",
           run("mmpp:burst=4,calm=0.25", "queue:depth=2"))


if __name__ == "__main__":
    main()

"""Three ways to share one GPU: sequential vs. spatial vs. SGPRS.

Runs the same 20-camera, 30-fps ResNet18 workload under

1. the *sequential* framework default (one context, one inference at a
   time, whole GPU) — the paper's under-utilization motivation;
2. the *naive* spatial partitioner (static pinning, FIFO partitions);
3. *SGPRS* (pre-created over-subscribed pool, stages, priorities, EDF);

and prints the paper's two metrics side by side.

    python examples/scheduler_comparison.py
"""

from repro import (
    RTX_2080_TI,
    ContextPoolConfig,
    NaiveScheduler,
    RunConfig,
    identical_periodic_tasks,
    run_simulation,
)
from repro.core.sequential import SequentialScheduler, sequential_pool_config

CAMERAS = 20
DURATION = 4.0
WARMUP = 1.0


def run_sequential():
    pool = sequential_pool_config(RTX_2080_TI)
    tasks = identical_periodic_tasks(
        CAMERAS, nominal_sms=pool.sms_per_context, num_stages=1
    )
    return run_simulation(
        tasks,
        RunConfig(pool=pool, scheduler=SequentialScheduler,
                  duration=DURATION, warmup=WARMUP),
    )


def run_naive():
    pool = ContextPoolConfig.from_oversubscription(2, 1.0, RTX_2080_TI)
    tasks = identical_periodic_tasks(
        CAMERAS, nominal_sms=pool.sms_per_context, num_stages=1
    )
    return run_simulation(
        tasks,
        RunConfig(pool=pool, scheduler=NaiveScheduler,
                  duration=DURATION, warmup=WARMUP),
    )


def run_sgprs():
    pool = ContextPoolConfig.from_oversubscription(2, 1.5, RTX_2080_TI)
    tasks = identical_periodic_tasks(CAMERAS, nominal_sms=pool.sms_per_context)
    return run_simulation(
        tasks, RunConfig(pool=pool, duration=DURATION, warmup=WARMUP)
    )


def main() -> None:
    print(f"{CAMERAS} cameras x 30 fps ResNet18 "
          f"(demand {CAMERAS * 30} fps) on one {RTX_2080_TI.name}\n")
    print(f"{'scheduler':>12}  {'total FPS':>10}  {'DMR':>8}  {'p99 latency':>12}")
    for name, runner in (
        ("sequential", run_sequential),
        ("naive", run_naive),
        ("SGPRS", run_sgprs),
    ):
        result = runner()
        p99 = result.metrics.response_time_percentile(0.99)
        p99_ms = f"{p99 * 1e3:.1f} ms" if p99 is not None else "-"
        print(f"{name:>12}  {result.total_fps:>10.1f}  "
              f"{result.dmr * 100:>7.2f}%  {p99_ms:>12}")
    print("\nSGPRS is the only scheduler that converts the whole GPU into "
          "deadline-compliant frames at this load.")


if __name__ == "__main__":
    main()

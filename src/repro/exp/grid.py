"""Experiment-grid specification.

A sweep is a cartesian grid: scenario (context-pool size) x scheduler
variant x over-subscription (folded into the variant name) x task count x
replication seed.  :class:`GridSpec` describes the grid declaratively;
:meth:`GridSpec.points` enumerates concrete :class:`GridPoint` values, each
of which is frozen, hashable, picklable, and carries everything a worker
process needs to evaluate it.

Determinism contract
--------------------
Each point's simulation seed is *derived* from the replication seed and the
point's coordinates (:func:`derive_seed`), so

* the same grid always produces the same per-point seeds regardless of
  execution order or worker count (serial == parallel, bit for bit);
* two points of the same replication do not share a jitter stream.

The point's :meth:`GridPoint.config_hash` is the cache key: a SHA-256 over
the canonical JSON of every field plus a schema version, so any change to a
point's configuration lands in a fresh cache slot.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterator, Tuple, Type

from repro.core.naive import NaiveScheduler
from repro.core.scheduler import SchedulerBase
from repro.core.sgprs import SgprsScheduler
from repro.workloads.generator import DEFAULT_NUM_STAGES, DEFAULT_PERIOD

#: Bumped whenever point evaluation semantics change, invalidating caches.
SCHEMA_VERSION = 1

#: A resolver maps a requested stage count to
#: (scheduler class, over-subscription level, stages per task).
VariantResolver = Callable[[int], Tuple[Type[SchedulerBase], float, int]]

_VARIANT_REGISTRY: Dict[str, VariantResolver] = {}


def register_variant(name: str, resolver: VariantResolver) -> None:
    """Register a custom scheduler variant under ``name``.

    Lets ablation studies sweep bespoke scheduler subclasses through the
    grid harness.  Registration is per-process state: worker processes
    inherit it on POSIX fork (the default on Linux), but a spawn-based
    pool would not see variants registered after interpreter start —
    register at module import time if that matters.
    """
    if name == "naive" or name.startswith("sgprs_"):
        raise ValueError(f"{name!r} would shadow a built-in variant")
    _VARIANT_REGISTRY[name] = resolver


def derive_seed(base_seed: int, *coords: object) -> int:
    """Deterministic per-point seed from a replication seed and coordinates.

    Stable across processes and Python versions (unlike ``hash()``), and
    well-mixed so neighbouring grid points get unrelated jitter streams.
    """
    blob = json.dumps([base_seed, *[str(c) for c in coords]]).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big")


def resolve_variant(
    variant: str, num_stages: int = DEFAULT_NUM_STAGES
) -> Tuple[Type[SchedulerBase], float, int]:
    """Map a variant name to (scheduler class, over-subscription, stages).

    ``variant`` is ``"naive"``, ``"sgprs_<os>"`` with ``<os>`` an
    over-subscription level (e.g. ``"sgprs_1.5"``), or a name registered
    via :func:`register_variant`.  The naive baseline always runs
    monolithic (single-stage) jobs at 1.0x.
    """
    if variant in _VARIANT_REGISTRY:
        return _VARIANT_REGISTRY[variant](num_stages)
    if variant == "naive":
        return NaiveScheduler, 1.0, 1
    if variant.startswith("sgprs_"):
        try:
            oversubscription = float(variant.split("_", 1)[1])
        except ValueError:
            raise ValueError(f"unknown variant {variant!r}") from None
        return SgprsScheduler, oversubscription, num_stages
    raise ValueError(f"unknown variant {variant!r}")


@dataclass(frozen=True)
class GridPoint:
    """One fully-specified sweep measurement.

    ``seed`` is the simulation seed actually passed to the run (derived);
    ``base_seed`` records which replication the point belongs to.
    """

    scenario: str
    num_contexts: int
    variant: str
    num_tasks: int
    seed: int
    base_seed: int = 0
    duration: float = 6.0
    warmup: float = 1.5
    work_jitter_cv: float = 0.0
    num_stages: int = DEFAULT_NUM_STAGES
    period: float = DEFAULT_PERIOD
    allow_stream_borrowing: bool = True

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError(f"num_tasks must be >= 1, got {self.num_tasks}")
        if self.num_contexts < 1:
            raise ValueError(
                f"num_contexts must be >= 1, got {self.num_contexts}"
            )
        resolve_variant(self.variant)  # fail fast on unknown variants

    @property
    def label(self) -> str:
        """Short human-readable identity, e.g. ``scenario1/sgprs_1.5/n25/s0``."""
        return (
            f"{self.scenario}/{self.variant}/n{self.num_tasks}"
            f"/s{self.base_seed}"
        )

    def config_dict(self) -> dict:
        """Canonical serialisable form (includes the schema version)."""
        payload = asdict(self)
        payload["schema_version"] = SCHEMA_VERSION
        return payload

    def config_hash(self) -> str:
        """SHA-256 cache key over the canonical JSON of all fields."""
        blob = json.dumps(self.config_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    @classmethod
    def from_dict(cls, payload: dict) -> "GridPoint":
        """Inverse of :meth:`config_dict` (ignores the schema version)."""
        fields = {k: v for k, v in payload.items() if k != "schema_version"}
        return cls(**fields)


@dataclass(frozen=True)
class GridSpec:
    """Declarative description of a sweep grid.

    ``seeds`` are replication seeds; every (variant, task count) cell is
    evaluated once per seed and aggregated over them.  With the default
    single seed and zero jitter the grid reproduces the historical serial
    sweep exactly.
    """

    scenario: str
    num_contexts: int
    variants: Tuple[str, ...]
    task_counts: Tuple[int, ...]
    seeds: Tuple[int, ...] = (0,)
    duration: float = 6.0
    warmup: float = 1.5
    work_jitter_cv: float = 0.0
    num_stages: int = DEFAULT_NUM_STAGES
    period: float = DEFAULT_PERIOD
    allow_stream_borrowing: bool = True

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError("variants must be non-empty")
        if not self.task_counts:
            raise ValueError("task_counts must be non-empty")
        if not self.seeds:
            raise ValueError("seeds must be non-empty")
        for variant in self.variants:
            resolve_variant(variant)

    @classmethod
    def from_scenario(cls, scenario, **kwargs) -> "GridSpec":
        """Build from a :class:`repro.workloads.scenarios.Scenario`."""
        return cls(
            scenario=scenario.name,
            num_contexts=scenario.num_contexts,
            **kwargs,
        )

    def __len__(self) -> int:
        return len(self.variants) * len(self.task_counts) * len(self.seeds)

    def points(self) -> Iterator[GridPoint]:
        """Enumerate the grid in deterministic (variant, count, seed) order.

        With jitter enabled each point gets a derived simulation seed; with
        zero jitter the replication seed is passed through unchanged (the
        RNG is never consulted, and unchanged seeds keep historical cache
        keys and results stable).
        """
        for variant in self.variants:
            for count in self.task_counts:
                for base_seed in self.seeds:
                    if self.work_jitter_cv > 0.0:
                        seed = derive_seed(
                            base_seed, self.scenario, variant, count
                        )
                    else:
                        seed = base_seed
                    yield GridPoint(
                        scenario=self.scenario,
                        num_contexts=self.num_contexts,
                        variant=variant,
                        num_tasks=count,
                        seed=seed,
                        base_seed=base_seed,
                        duration=self.duration,
                        warmup=self.warmup,
                        work_jitter_cv=self.work_jitter_cv,
                        num_stages=self.num_stages,
                        period=self.period,
                        allow_stream_borrowing=self.allow_stream_borrowing,
                    )

"""Experiment-grid specification.

A sweep is a cartesian grid: scenario (context-pool size) x scheduler
variant x over-subscription (folded into the variant name) x task count x
replication seed.  :class:`GridSpec` describes the grid declaratively;
:meth:`GridSpec.points` enumerates concrete :class:`GridPoint` values, each
of which is frozen, hashable, picklable, and carries everything a worker
process needs to evaluate it.

Determinism contract
--------------------
Each point's simulation seed is *derived* from the replication seed and the
point's coordinates (:func:`derive_seed`), so

* the same grid always produces the same per-point seeds regardless of
  execution order or worker count (serial == parallel, bit for bit);
* two points of the same replication do not share a jitter stream.

The point's :meth:`GridPoint.config_hash` is the cache key: a SHA-256 over
the canonical JSON of every field plus a schema version, so any change to a
point's configuration lands in a fresh cache slot.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterator, List, Tuple, Type

from repro.core.naive import NaiveScheduler
from repro.core.scheduler import SchedulerBase
from repro.core.sgprs import SgprsScheduler
from repro.workloads.generator import DEFAULT_NUM_STAGES, DEFAULT_PERIOD

#: Bumped whenever point evaluation semantics change, invalidating caches.
#: v2: workload-synthesis axes (workload / total_utilization / period_class
#: / zoo_mix / deadline_mode) joined the point identity.
#: v3: open-system axes (arrival / admission) joined the point identity.
SCHEMA_VERSION = 3

#: Payload schema versions :meth:`GridPoint.from_dict` accepts.  Older
#: versions simply lack the axes later ones added (the dataclass
#: defaults reconstruct them), so every prior version stays readable —
#: the S002 version-discipline rule of ``python -m repro lint`` checks
#: this set covers ``1..SCHEMA_VERSION``.
_READABLE_SCHEMA_VERSIONS = (1, 2, SCHEMA_VERSION)

#: A resolver maps a requested stage count to
#: (scheduler class, over-subscription level, stages per task).
VariantResolver = Callable[[int], Tuple[Type[SchedulerBase], float, int]]

_VARIANT_REGISTRY: Dict[str, VariantResolver] = {}


def registered_variants() -> Tuple[str, ...]:
    """Names registered via :func:`register_variant`, sorted."""
    return tuple(sorted(_VARIANT_REGISTRY))


def _validate_workload_axes(
    workload: str,
    total_utilization: float,
    period_class: str,
    zoo_mix: str,
    deadline_mode: str,
) -> None:
    """Shared validation of the synthesis axes on points and specs.

    The synth registries are imported lazily: :mod:`repro.workloads.synth`
    depends on :mod:`repro.workloads.generator` just like this module, and
    a module-level import here would tighten the package import cycle for
    no benefit (validation only happens at object construction time).
    """
    if total_utilization < 0:
        raise ValueError(
            f"total_utilization must be >= 0, got {total_utilization}"
        )
    if workload == "identical":
        if total_utilization or period_class or zoo_mix or deadline_mode:
            raise ValueError(
                "synthesis axes (total_utilization/period_class/zoo_mix/"
                "deadline_mode) require a synth workload, not 'identical'"
            )
        return
    from repro.workloads.synth.spec import DEADLINE_MODES, PERIOD_CLASSES
    from repro.workloads.synth.scenarios import get_synth_scenario
    from repro.workloads.synth.zoo import get_mix

    try:
        get_synth_scenario(workload)
        if zoo_mix:
            get_mix(zoo_mix)
    except KeyError as error:
        raise ValueError(str(error)) from None
    if period_class and period_class not in PERIOD_CLASSES:
        raise ValueError(
            f"period_class must be one of {PERIOD_CLASSES}, got {period_class!r}"
        )
    if deadline_mode and deadline_mode not in DEADLINE_MODES:
        raise ValueError(
            f"deadline_mode must be one of {DEADLINE_MODES}, got {deadline_mode!r}"
        )


def _validate_open_system_axes(arrival: str, admission: str) -> None:
    """Fail fast on unknown arrival/admission specs.

    Both resolvers build a throwaway instance, which also validates the
    spec's parameters.  Lazy import for the same cycle reason as the
    synth axes.
    """
    if not arrival:
        raise ValueError("arrival must be non-empty (use 'periodic')")
    from repro.core.admission import resolve_admission
    from repro.workloads.arrivals import resolve_arrival

    resolve_arrival(arrival)
    resolve_admission(admission)


def register_variant(name: str, resolver: VariantResolver) -> None:
    """Register a custom scheduler variant under ``name``.

    Lets ablation studies sweep bespoke scheduler subclasses through the
    grid harness.  Registration is per-process state: worker processes
    inherit it on POSIX fork (the default on Linux), but a spawn-based
    pool would not see variants registered after interpreter start —
    register at module import time if that matters.
    """
    if name == "naive" or name.startswith("sgprs_"):
        raise ValueError(f"{name!r} would shadow a built-in variant")
    _VARIANT_REGISTRY[name] = resolver


def derive_seed(base_seed: int, *coords: object) -> int:
    """Deterministic per-point seed from a replication seed and coordinates.

    Stable across processes and Python versions (unlike ``hash()``), and
    well-mixed so neighbouring grid points get unrelated jitter streams.
    """
    blob = json.dumps([base_seed, *[str(c) for c in coords]]).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big")


def resolve_variant(
    variant: str, num_stages: int = DEFAULT_NUM_STAGES
) -> Tuple[Type[SchedulerBase], float, int]:
    """Map a variant name to (scheduler class, over-subscription, stages).

    ``variant`` is ``"naive"``, ``"sgprs_<os>"`` with ``<os>`` an
    over-subscription level (e.g. ``"sgprs_1.5"``), or a name registered
    via :func:`register_variant`.  The naive baseline always runs
    monolithic (single-stage) jobs at 1.0x.
    """
    if variant in _VARIANT_REGISTRY:
        return _VARIANT_REGISTRY[variant](num_stages)
    if variant == "naive":
        return NaiveScheduler, 1.0, 1
    if variant.startswith("sgprs_"):
        try:
            oversubscription = float(variant.split("_", 1)[1])
        except ValueError:
            raise ValueError(f"unknown variant {variant!r}") from None
        return SgprsScheduler, oversubscription, num_stages
    raise ValueError(f"unknown variant {variant!r}")


@dataclass(frozen=True)
class GridPoint:
    """One fully-specified sweep measurement.

    ``seed`` is the simulation seed actually passed to the run (derived);
    ``base_seed`` records which replication the point belongs to.

    The synthesis axes (``workload`` et al.) describe *what taskset* the
    point runs: the default ``"identical"`` is the paper's homogeneous
    ResNet18 workload; any other value names a registered
    :class:`~repro.workloads.synth.scenarios.SynthScenario`, with
    ``total_utilization`` (0.0 = the scenario default) and the
    ``period_class`` / ``zoo_mix`` / ``deadline_mode`` overrides ("" = the
    scenario default) as sweepable coordinates.
    """

    scenario: str
    num_contexts: int
    variant: str
    num_tasks: int
    seed: int
    base_seed: int = 0
    duration: float = 6.0
    warmup: float = 1.5
    work_jitter_cv: float = 0.0
    num_stages: int = DEFAULT_NUM_STAGES
    period: float = DEFAULT_PERIOD
    allow_stream_borrowing: bool = True
    workload: str = "identical"
    total_utilization: float = 0.0
    period_class: str = ""
    zoo_mix: str = ""
    deadline_mode: str = ""
    arrival: str = "periodic"
    admission: str = ""

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError(f"num_tasks must be >= 1, got {self.num_tasks}")
        if self.num_contexts < 1:
            raise ValueError(
                f"num_contexts must be >= 1, got {self.num_contexts}"
            )
        resolve_variant(self.variant)  # fail fast on unknown variants
        _validate_workload_axes(
            self.workload,
            self.total_utilization,
            self.period_class,
            self.zoo_mix,
            self.deadline_mode,
        )
        _validate_open_system_axes(self.arrival, self.admission)

    @property
    def label(self) -> str:
        """Short human-readable identity, e.g. ``scenario1/sgprs_1.5/n25/s0``
        (synth points insert the workload and utilization:
        ``util_ramp/u2.5/naive/n8/s0``; non-periodic arrivals append the
        arrival spec: ``.../s0/mmpp:burst=6``)."""
        if self.workload == "identical":
            label = (
                f"{self.scenario}/{self.variant}/n{self.num_tasks}"
                f"/s{self.base_seed}"
            )
        else:
            label = (
                f"{self.workload}/u{self.total_utilization:g}/{self.variant}"
                f"/n{self.num_tasks}/s{self.base_seed}"
            )
        if self.arrival != "periodic":
            label += f"/{self.arrival}"
        return label

    def config_dict(self) -> dict:
        """Canonical serialisable form (includes the schema version)."""
        payload = asdict(self)
        payload["schema_version"] = SCHEMA_VERSION
        return payload

    def config_hash(self) -> str:
        """SHA-256 cache key over the canonical JSON of all fields."""
        blob = json.dumps(self.config_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    @classmethod
    def from_dict(cls, payload: dict) -> "GridPoint":
        """Inverse of :meth:`config_dict`.

        Accepts every schema version in ``_READABLE_SCHEMA_VERSIONS``
        (older payloads lack the axes later versions added; the
        dataclass defaults fill them) and payloads with no version at
        all (pre-v1 history).  An unknown *newer* version raises: the
        payload may carry axes this build cannot represent, and
        guessing would silently mis-key caches.
        """
        version = payload.get("schema_version")
        if version is not None and version not in _READABLE_SCHEMA_VERSIONS:
            raise ValueError(
                f"unsupported GridPoint schema version {version!r} "
                f"(readable: {_READABLE_SCHEMA_VERSIONS})"
            )
        fields = {k: v for k, v in payload.items() if k != "schema_version"}
        return cls(**fields)


@dataclass(frozen=True)
class GridSpec:
    """Declarative description of a sweep grid.

    ``seeds`` are replication seeds; every (variant, task count) cell is
    evaluated once per seed and aggregated over them.  With the default
    single seed and zero jitter the grid reproduces the historical serial
    sweep exactly.

    For synthesized workloads (``workload`` naming a registered synth
    scenario), ``utilizations`` adds a target-total-utilization axis: the
    grid becomes variant x task count x utilization x seed.  An empty
    ``utilizations`` runs one column at the scenario's default target.

    ``arrivals`` is the open-system axis: one arrival-process spec per
    column (default strictly periodic, the closed-system baseline), with
    ``admission`` selecting the admission policy for the whole grid
    ("" = the legacy skip-if-in-flight behaviour).
    """

    scenario: str
    num_contexts: int
    variants: Tuple[str, ...]
    task_counts: Tuple[int, ...]
    seeds: Tuple[int, ...] = (0,)
    duration: float = 6.0
    warmup: float = 1.5
    work_jitter_cv: float = 0.0
    num_stages: int = DEFAULT_NUM_STAGES
    period: float = DEFAULT_PERIOD
    allow_stream_borrowing: bool = True
    workload: str = "identical"
    utilizations: Tuple[float, ...] = ()
    period_class: str = ""
    zoo_mix: str = ""
    deadline_mode: str = ""
    arrivals: Tuple[str, ...] = ("periodic",)
    admission: str = ""

    def __post_init__(self) -> None:
        if not self.arrivals:
            raise ValueError("arrivals must be non-empty")
        for arrival in self.arrivals:
            _validate_open_system_axes(arrival, self.admission)
        if not self.variants:
            raise ValueError("variants must be non-empty")
        if not self.task_counts:
            raise ValueError("task_counts must be non-empty")
        if not self.seeds:
            raise ValueError("seeds must be non-empty")
        for variant in self.variants:
            resolve_variant(variant)
        if self.workload == "identical" and self.utilizations:
            raise ValueError(
                "a utilization axis requires a synth workload"
            )
        if any(u <= 0 for u in self.utilizations):
            raise ValueError(
                f"utilizations must be positive, got {self.utilizations}"
            )
        _validate_workload_axes(
            self.workload,
            0.0,
            self.period_class,
            self.zoo_mix,
            self.deadline_mode,
        )

    @classmethod
    def from_scenario(cls, scenario, **kwargs) -> "GridSpec":
        """Build from a :class:`repro.workloads.scenarios.Scenario`."""
        return cls(
            scenario=scenario.name,
            num_contexts=scenario.num_contexts,
            **kwargs,
        )

    def _utilization_axis(self) -> Tuple[float, ...]:
        """The utilization column values (0.0 = scenario default)."""
        return self.utilizations or (0.0,)

    def __len__(self) -> int:
        return (
            len(self.variants)
            * len(self.task_counts)
            * len(self._utilization_axis())
            * len(self.arrivals)
            * len(self.seeds)
        )

    def shard(self, index: int, count: int) -> List[GridPoint]:
        """Deterministic round-robin slice ``index`` of ``count`` (1-based).

        Shard ``i`` of ``n`` holds every point whose position in the
        canonical :meth:`points` order is congruent to ``i - 1`` modulo
        ``n``.  The ``n`` shards of any grid are therefore a disjoint
        exact cover of it, each order-preserving, and — because point
        seeds derive from coordinates, never from execution order — a
        shard computes bit-identical results to the same points of a
        whole-grid run.  Round-robin (rather than contiguous blocks)
        spreads the expensive high-task-count columns evenly over shards.
        """
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        if not 1 <= index <= count:
            raise ValueError(
                f"shard index must be in [1, {count}], got {index}"
            )
        return [
            point
            for position, point in enumerate(self.points())
            if position % count == index - 1
        ]

    def points(self) -> Iterator[GridPoint]:
        """Enumerate the grid in deterministic (variant, count, utilization,
        arrival, seed) order.

        With jitter enabled each point gets a derived simulation seed; with
        zero jitter the replication seed is passed through unchanged (the
        RNG is never consulted, and unchanged seeds keep historical cache
        keys and results stable).  For identical workloads the seed
        derivation coordinates are unchanged from schema v1, so jittered
        replications of the paper's grids keep their historical streams.
        """
        for variant in self.variants:
            for count in self.task_counts:
                for utilization in self._utilization_axis():
                    for arrival in self.arrivals:
                        for base_seed in self.seeds:
                            if self.work_jitter_cv > 0.0:
                                if self.workload == "identical":
                                    coords = (self.scenario, variant, count)
                                else:
                                    coords = (
                                        self.scenario,
                                        self.workload,
                                        variant,
                                        count,
                                        round(utilization, 9),
                                    )
                                seed = derive_seed(base_seed, *coords)
                            else:
                                seed = base_seed
                            yield GridPoint(
                                scenario=self.scenario,
                                num_contexts=self.num_contexts,
                                variant=variant,
                                num_tasks=count,
                                seed=seed,
                                base_seed=base_seed,
                                duration=self.duration,
                                warmup=self.warmup,
                                work_jitter_cv=self.work_jitter_cv,
                                num_stages=self.num_stages,
                                period=self.period,
                                allow_stream_borrowing=self.allow_stream_borrowing,
                                workload=self.workload,
                                total_utilization=utilization,
                                period_class=self.period_class,
                                zoo_mix=self.zoo_mix,
                                deadline_mode=self.deadline_mode,
                                arrival=arrival,
                                admission=self.admission,
                            )

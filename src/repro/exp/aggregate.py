"""Seed-replication statistics for sweep results.

A grid evaluated over >= 3 replication seeds yields, per (variant, task
count) cell, a sample of each metric.  :func:`aggregate_results` reduces
the sample to mean and a 95% Student-t confidence half-width — stdlib
only, with the t quantiles tabulated for the small sample sizes sweeps
actually use.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exp.worker import PointResult

#: Two-sided 95% Student-t quantiles by degrees of freedom (1..30);
#: larger samples fall back to the normal quantile.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}
_Z_95 = 1.960


def mean_ci(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and 95% confidence half-width (0.0 for n < 2)."""
    if not values:
        raise ValueError("values must be non-empty")
    mean = statistics.fmean(values)
    n = len(values)
    if n < 2:
        return mean, 0.0
    t = _T_95.get(n - 1, _Z_95)
    return mean, t * statistics.stdev(values) / math.sqrt(n)


#: GridPoint coordinates that identify a *replication* of a cell rather
#: than the cell itself.  Everything else is part of the cell key.
_REPLICATION_FIELDS = frozenset({"seed", "base_seed", "schema_version"})


def cell_key(point) -> Tuple:
    """The point's full non-seed coordinate tuple (its aggregation cell).

    Built from :meth:`GridPoint.config_dict` minus the replication fields,
    so every synthesis axis (``workload``, ``period_class``, ``zoo_mix``,
    ``deadline_mode``) — and any coordinate added to the grid later —
    separates cells instead of being silently pooled as extra "seeds".
    """
    payload = point.config_dict()
    return tuple(
        sorted(
            (name, value)
            for name, value in payload.items()
            if name not in _REPLICATION_FIELDS
        )
    )


@dataclass(frozen=True)
class AggregatePoint:
    """Mean +/- 95% CI over seed replications of one sweep cell.

    ``total_utilization`` is the cell's target-utilization coordinate on
    synthesized-workload grids (0.0 on identical-workload grids, where the
    axis does not exist).  The remaining synthesis axes (``workload``,
    ``period_class``, ``zoo_mix``, ``deadline_mode``) carry the cell's
    coordinates on grids that sweep them; on classic grids they keep their
    :class:`~repro.exp.grid.GridPoint` defaults.
    """

    variant: str
    num_tasks: int
    n: int
    mean_fps: float
    ci_fps: float
    mean_dmr: float
    ci_dmr: float
    mean_utilization: float
    ci_utilization: float
    total_utilization: float = 0.0
    workload: str = "identical"
    period_class: str = ""
    zoo_mix: str = ""
    deadline_mode: str = ""
    arrival: str = "periodic"
    admission: str = ""
    mean_goodput: float = 0.0
    ci_goodput: float = 0.0
    mean_rejection_rate: float = 0.0
    ci_rejection_rate: float = 0.0
    #: Tail latency / queue depth over the replications (PR-7 metrics;
    #: a previous aggregator silently dropped them).  The percentile
    #: means skip seeds where no post-warmup job completed
    #: (``p99_response is None``) and are ``None`` when every seed was;
    #: ``max_queue_depth`` is the max over seeds — a peak, not a mean.
    mean_p99: Optional[float] = None
    ci_p99: float = 0.0
    mean_p999: Optional[float] = None
    ci_p999: float = 0.0
    mean_queue_depth: float = 0.0
    ci_queue_depth: float = 0.0
    max_queue_depth: int = 0


def aggregate_results(
    results: Sequence[PointResult],
) -> Dict[str, List[AggregatePoint]]:
    """Group results by every non-seed coordinate and reduce over seeds.

    A cell is one full :func:`cell_key` — two points land in the same
    sample only when they differ in nothing but ``seed``/``base_seed``.
    (A previous version keyed only on ``(variant, num_tasks,
    total_utilization)``, which silently pooled ``zoo_mix`` /
    ``period_class`` / ``deadline_mode`` sweeps as if the axis values were
    replicates, averaging across genuinely different workloads.)

    Grid order is preserved: variants, task counts and axis columns come
    out in the order the points went in (matching the caller's
    ``GridSpec``), not re-sorted.
    """
    cells: Dict[Tuple, List[PointResult]] = {}
    for result in results:
        cells.setdefault(cell_key(result.point), []).append(result)
    out: Dict[str, List[AggregatePoint]] = {}
    for sample in cells.values():
        point = sample[0].point
        fps_mean, fps_ci = mean_ci([r.total_fps for r in sample])
        dmr_mean, dmr_ci = mean_ci([r.dmr for r in sample])
        util_mean, util_ci = mean_ci([r.utilization for r in sample])
        goodput_mean, goodput_ci = mean_ci([r.goodput for r in sample])
        reject_mean, reject_ci = mean_ci([r.rejection_rate for r in sample])
        p99_values = [r.p99_response for r in sample if r.p99_response is not None]
        p999_values = [
            r.p999_response for r in sample if r.p999_response is not None
        ]
        p99_mean, p99_ci = mean_ci(p99_values) if p99_values else (None, 0.0)
        p999_mean, p999_ci = (
            mean_ci(p999_values) if p999_values else (None, 0.0)
        )
        depth_mean, depth_ci = mean_ci([r.mean_queue_depth for r in sample])
        out.setdefault(point.variant, []).append(
            AggregatePoint(
                variant=point.variant,
                num_tasks=point.num_tasks,
                n=len(sample),
                mean_fps=fps_mean,
                ci_fps=fps_ci,
                mean_dmr=dmr_mean,
                ci_dmr=dmr_ci,
                mean_utilization=util_mean,
                ci_utilization=util_ci,
                total_utilization=point.total_utilization,
                workload=point.workload,
                period_class=point.period_class,
                zoo_mix=point.zoo_mix,
                deadline_mode=point.deadline_mode,
                arrival=point.arrival,
                admission=point.admission,
                mean_goodput=goodput_mean,
                ci_goodput=goodput_ci,
                mean_rejection_rate=reject_mean,
                ci_rejection_rate=reject_ci,
                mean_p99=p99_mean,
                ci_p99=p99_ci,
                mean_p999=p999_mean,
                ci_p999=p999_ci,
                mean_queue_depth=depth_mean,
                ci_queue_depth=depth_ci,
                max_queue_depth=max(r.max_queue_depth for r in sample),
            )
        )
    return out


def to_sweep(results: Sequence[PointResult]):
    """Seed-mean sweep in the classic ``variant -> [SweepPoint]`` shape.

    This is the bridge to the rendering/persistence layers, which predate
    the grid harness.  With one seed per cell it is a lossless conversion.

    ``SweepPoint`` carries only the ``(variant, num_tasks,
    target_utilization)`` coordinates, so a grid that sweeps any further
    axis (``zoo_mix``, ``period_class``, ``deadline_mode``, ...) has no
    faithful classic-sweep representation; rather than silently collapse
    distinct cells onto one point, this raises ``ValueError`` — aggregate
    per axis slice instead.
    """
    # Imported here: workloads.scenarios imports repro.exp at module level.
    from repro.workloads.scenarios import SweepPoint

    out: Dict[str, List[SweepPoint]] = {}
    for variant, aggregates in aggregate_results(results).items():
        seen: Dict[Tuple[int, float], AggregatePoint] = {}
        for agg in aggregates:
            coord = (agg.num_tasks, agg.total_utilization)
            other = seen.get(coord)
            if other is not None:
                differing = ", ".join(
                    f"{axis} {getattr(other, axis)!r} vs "
                    f"{getattr(agg, axis)!r}"
                    for axis in (
                        "workload",
                        "period_class",
                        "zoo_mix",
                        "deadline_mode",
                        "arrival",
                        "admission",
                    )
                    if getattr(other, axis) != getattr(agg, axis)
                )
                raise ValueError(
                    f"variant {variant!r} has multiple cells at num_tasks="
                    f"{agg.num_tasks}, utilization={agg.total_utilization}: "
                    f"the sweep varies an axis SweepPoint cannot express "
                    f"({differing or 'replication coordinates'}); "
                    f"aggregate each axis slice separately"
                )
            seen[coord] = agg
        out[variant] = [
            SweepPoint(
                variant=variant,
                num_tasks=agg.num_tasks,
                total_fps=agg.mean_fps,
                dmr=agg.mean_dmr,
                utilization=agg.mean_utilization,
                target_utilization=agg.total_utilization,
            )
            for agg in aggregates
        ]
    return out

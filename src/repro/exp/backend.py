"""Pluggable storage backends for run directories.

Every piece of distributed-sweep state — the manifest, the claim files,
the result-cache checkpoints — lives in a *run store* addressed by
string keys (``manifest.json``, ``claims/<hash>.claim``,
``cache/<hash>.json``).  This module abstracts where those keys live, so
the same claim/steal/checkpoint protocol runs over a POSIX directory, an
in-memory dict, or an S3-style object store, and so a fault-injecting
wrapper can stress the protocol without touching it.

Atomicity contract
------------------
Every backend MUST honor these guarantees; the correctness of the claim
protocol (:class:`repro.exp.dist.ClaimBoard`) rests on nothing else:

``put_exclusive(key, data) -> bool``
    Create ``key`` holding exactly ``data`` **iff it does not exist**.
    Atomic and single-winner: of N concurrent callers, at most one
    returns ``True``.  A reader never observes a partially-written
    record — the record is complete the instant the key exists.
``read(key) -> Optional[Record]``
    The record's bytes plus an opaque *version token* identifying this
    exact revision, or ``None`` if the key does not exist.
``atomic_replace(key, data)``
    Unconditionally create-or-replace.  Readers see either the old or
    the new record in full, never a mixture.
``lease(key, data, token) -> bool``
    Compare-and-swap: replace the record **iff its current version
    token still equals** ``token``.  Single-winner: of N concurrent
    CAS attempts over one token, at most one succeeds.  May fail
    spuriously (e.g. the LocalFS emulation loses the key to a
    concurrent fresh ``put_exclusive`` mid-swap); callers must treat
    ``False`` as "observe again", never as ownership.
``delete_if_owner(key, owner) -> bool``
    Delete the record iff it is a JSON object whose ``"owner"`` field
    equals ``owner``, atomically with respect to concurrent
    replacements: a record replaced by a foreign owner concurrently is
    never deleted (worst case it reports ``False``).
``delete(key) -> bool``
    Unconditional delete; ``False`` if the key was absent.
``list_prefix(prefix) -> list[str]``
    Every existing key starting with ``prefix`` (keys use ``/`` as the
    hierarchy separator).  Eventually-consistent listings are fine —
    the protocol never derives ownership from a listing.
``exists(key) -> bool``
    Cheap existence probe (no payload transfer required).

Version tokens are backend-specific (the raw bytes on the local
filesystem, a monotonic revision counter elsewhere) and are only ever
compared by the backend itself.

Implementations
---------------
:class:`LocalFSBackend`
    Today's on-disk layout, bit-compatible with run directories written
    before this abstraction existed.  ``put_exclusive`` is a temp file
    published via :func:`os.link` (exclusive-or-fail *and*
    complete-on-appearance); ``lease``/``delete_if_owner`` go through
    the single-winner ``os.rename`` tombstone trick (rename is atomic
    on POSIX; exactly one concurrent renamer wins).
:class:`InMemoryBackend`
    A locked dict — protocol tests without tmpdirs, and the reference
    semantics the other backends are judged against.
:class:`ObjectStoreBackend`
    Emulates an S3-style store: **no rename primitive at all**.  The
    only conditional operations are the modern S3 ones — PUT
    ``If-None-Match`` (:meth:`put_exclusive`), PUT ``If-Match``
    (:meth:`lease`) and DELETE ``If-Match`` — so the claim/steal
    protocol exercises its compare-and-swap re-expression rather than
    rename tombstones.  Unlike the LocalFS emulation, an object-store
    ``lease`` never leaves a key-absent window mid-steal.
:class:`FaultInjectingBackend`
    Wraps any backend and applies a scripted fault — ``fail``, ``lost``
    (applied but the acknowledgement is lost), ``duplicate`` (applied
    twice), a delay, or an arbitrary hook — on the Nth invocation of a
    chosen operation.  The fault-injection test tier
    (``tests/exp/test_backends.py``) drives the whole protocol through
    it to prove single-ownership survives lost and duplicated
    operations.
:class:`PrefixedBackend`
    A key-namespace view (``prefix + key``) over any backend — how the
    daemon addresses one run inside a multi-run root.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union


class BackendFault(RuntimeError):
    """An injected (or surfaced) storage-backend failure."""


@dataclass(frozen=True)
class Record:
    """One stored revision: payload bytes plus an opaque version token."""

    data: bytes
    token: object


def record_owner(data: bytes) -> str:
    """The ``"owner"`` field of a JSON record, or ``""`` when absent or
    unparseable — the shared schema ``delete_if_owner`` conditions on."""
    try:
        payload = json.loads(data)
        return str(payload["owner"])
    except (ValueError, KeyError, TypeError):
        return ""


class StorageBackend(ABC):
    """Abstract run store; see the module docstring for the contract."""

    @abstractmethod
    def put_exclusive(self, key: str, data: bytes) -> bool:
        """Atomically create ``key`` iff absent; ``True`` iff we won."""

    @abstractmethod
    def read(self, key: str) -> Optional[Record]:
        """Current record (bytes + version token), or ``None``."""

    @abstractmethod
    def atomic_replace(self, key: str, data: bytes) -> None:
        """Unconditional atomic create-or-replace."""

    @abstractmethod
    def lease(self, key: str, data: bytes, token: object) -> bool:
        """Compare-and-swap replace iff the version token is unchanged."""

    @abstractmethod
    def delete_if_owner(self, key: str, owner: str) -> bool:
        """Delete iff the record's JSON ``owner`` equals ``owner``."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Unconditionally delete; ``False`` if absent."""

    @abstractmethod
    def list_prefix(self, prefix: str) -> List[str]:
        """All existing keys under ``prefix``."""

    def exists(self, key: str) -> bool:
        """Cheap existence probe (default: a full read)."""
        return self.read(key) is not None

    def ensure_prefix(self, prefix: str) -> None:
        """Prepare a key prefix for writes (a directory ``mkdir`` on
        filesystems; a no-op on flat keyspaces)."""


class LocalFSBackend(StorageBackend):
    """Keys as files under a root directory (the historical layout).

    Version tokens are the record's raw bytes: the CAS in :meth:`lease`
    is content-conditional, arbitrated by the atomic ``os.rename`` of
    the current file to a unique tombstone — exactly one concurrent
    renamer can win, after which the content is verified against the
    token and either committed or restored.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        # the root is created lazily on first write: a read-only probe
        # (e.g. load_manifest on a wrong path) must not litter the
        # filesystem with empty directories
        self.root = Path(root)
        self._nonce = itertools.count()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalFSBackend({str(self.root)!r})"

    def _path(self, key: str) -> Path:
        return self.root.joinpath(*key.split("/"))

    def ensure_prefix(self, prefix: str) -> None:
        (self.root / prefix.strip("/")).mkdir(parents=True, exist_ok=True)

    def _write_tmp(self, directory: Path, data: bytes) -> Path:
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return Path(tmp)

    def put_exclusive(self, key: str, data: bytes) -> bool:
        # Publish via link(): exclusive-or-fail like O_EXCL, but the
        # record is complete the instant the key appears, so a racing
        # reader can never catch it half-written.
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._write_tmp(path.parent, data)
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return True

    def read(self, key: str) -> Optional[Record]:
        try:
            data = self._path(key).read_bytes()
        except OSError:
            return None
        return Record(data=data, token=data)

    def atomic_replace(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._write_tmp(path.parent, data)
        try:
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _grab_tombstone(self, path: Path) -> Optional[Path]:
        """Atomically move ``path`` aside; ``None`` if we lost the race."""
        tombstone = path.with_name(
            f"{path.name}.ts-{os.getpid()}-{next(self._nonce)}"
        )
        try:
            os.rename(path, tombstone)
        except OSError:
            return None
        return tombstone

    def _restore_tombstone(self, tombstone: Path, path: Path) -> None:
        """Put a mistakenly-grabbed record back (best effort: if a fresh
        record already reappeared at ``path``, the grabbed one is an
        older revision and dropping it is correct)."""
        try:
            os.link(tombstone, path)
        except OSError:
            pass

    def lease(self, key: str, data: bytes, token: object) -> bool:
        path = self._path(key)
        tombstone = self._grab_tombstone(path)
        if tombstone is None:
            return False  # vanished or a rival renamer won
        try:
            current = tombstone.read_bytes()
        except OSError:
            current = None
        if current != token:
            # the record changed between the caller's read and our
            # rename: not our revision to replace
            self._restore_tombstone(tombstone, path)
            try:
                os.unlink(tombstone)
            except OSError:
                pass
            return False
        try:
            os.unlink(tombstone)
        except OSError:
            pass
        # the key-absent window here is inherent to rename-based CAS: a
        # concurrent fresh put_exclusive may land first, in which case
        # the lease fails and the caller observes again
        return self.put_exclusive(key, data)

    def delete_if_owner(self, key: str, owner: str) -> bool:
        path = self._path(key)
        tombstone = self._grab_tombstone(path)
        if tombstone is None:
            return False
        try:
            grabbed = tombstone.read_bytes()
        except OSError:
            grabbed = b""
        matched = record_owner(grabbed) == owner and owner != ""
        if not matched:
            self._restore_tombstone(tombstone, path)
        try:
            os.unlink(tombstone)
        except OSError:
            pass
        return matched

    def delete(self, key: str) -> bool:
        try:
            os.unlink(self._path(key))
        except OSError:
            return False
        return True

    def list_prefix(self, prefix: str) -> List[str]:
        keys = []
        for directory, _, files in os.walk(self.root):
            base = Path(directory).relative_to(self.root)
            for name in files:
                key = str(base / name) if str(base) != "." else name
                key = key.replace(os.sep, "/")
                if key.startswith(prefix):
                    keys.append(key)
        return sorted(keys)

    def exists(self, key: str) -> bool:
        return self._path(key).exists()


class InMemoryBackend(StorageBackend):
    """A locked dict: the reference semantics, for threaded tests.

    Version tokens are monotonic per-key revision counters.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._store: Dict[str, Tuple[bytes, int]] = {}
        self._revision = itertools.count(1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InMemoryBackend({len(self._store)} keys)"

    def put_exclusive(self, key: str, data: bytes) -> bool:
        with self._lock:
            if key in self._store:
                return False
            self._store[key] = (bytes(data), next(self._revision))
            return True

    def read(self, key: str) -> Optional[Record]:
        with self._lock:
            entry = self._store.get(key)
        if entry is None:
            return None
        return Record(data=entry[0], token=entry[1])

    def atomic_replace(self, key: str, data: bytes) -> None:
        with self._lock:
            self._store[key] = (bytes(data), next(self._revision))

    def lease(self, key: str, data: bytes, token: object) -> bool:
        with self._lock:
            entry = self._store.get(key)
            if entry is None or entry[1] != token:
                return False
            self._store[key] = (bytes(data), next(self._revision))
            return True

    def delete_if_owner(self, key: str, owner: str) -> bool:
        with self._lock:
            entry = self._store.get(key)
            if entry is None or owner == "":
                return False
            if record_owner(entry[0]) != owner:
                return False
            del self._store[key]
            return True

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._store.pop(key, None) is not None

    def list_prefix(self, prefix: str) -> List[str]:
        with self._lock:
            return sorted(k for k in self._store if k.startswith(prefix))

    def exists(self, key: str) -> bool:
        with self._lock:
            return key in self._store


class ObjectStoreBackend(StorageBackend):
    """S3-semantics emulation: no rename, conditional puts only.

    Every public operation is composed from the five primitives a real
    S3-compatible store offers — GET, LIST, unconditional PUT, PUT with
    ``If-None-Match``/``If-Match``, and DELETE with ``If-Match`` — each
    individually atomic server-side (the ``_server_lock`` stands in for
    the service's internal serialization).  ``delete_if_owner`` is the
    one *client-composed* operation: a GET to learn the owner and etag,
    then a conditional DELETE that only lands if the record has not
    been replaced since — exactly how a real object-store deployment
    would have to do it.
    """

    def __init__(self) -> None:
        self._server_lock = threading.RLock()
        self._objects: Dict[str, Tuple[bytes, int]] = {}
        self._etag = itertools.count(1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ObjectStoreBackend({len(self._objects)} objects)"

    # -- the primitives a real S3-style service serializes --------------

    def _get(self, key: str) -> Optional[Tuple[bytes, int]]:
        with self._server_lock:
            return self._objects.get(key)

    def _put(self, key: str, data: bytes) -> None:
        with self._server_lock:
            self._objects[key] = (bytes(data), next(self._etag))

    def _put_if_none_match(self, key: str, data: bytes) -> bool:
        with self._server_lock:
            if key in self._objects:
                return False
            self._objects[key] = (bytes(data), next(self._etag))
            return True

    def _put_if_match(self, key: str, data: bytes, etag: object) -> bool:
        with self._server_lock:
            entry = self._objects.get(key)
            if entry is None or entry[1] != etag:
                return False
            self._objects[key] = (bytes(data), next(self._etag))
            return True

    def _delete_if_match(self, key: str, etag: object) -> bool:
        with self._server_lock:
            entry = self._objects.get(key)
            if entry is None or entry[1] != etag:
                return False
            del self._objects[key]
            return True

    # -- the backend interface, composed from those primitives ----------

    def put_exclusive(self, key: str, data: bytes) -> bool:
        return self._put_if_none_match(key, data)

    def read(self, key: str) -> Optional[Record]:
        entry = self._get(key)
        if entry is None:
            return None
        return Record(data=entry[0], token=entry[1])

    def atomic_replace(self, key: str, data: bytes) -> None:
        self._put(key, data)

    def lease(self, key: str, data: bytes, token: object) -> bool:
        return self._put_if_match(key, data, token)

    def delete_if_owner(self, key: str, owner: str) -> bool:
        if owner == "":
            return False
        entry = self._get(key)
        if entry is None or record_owner(entry[0]) != owner:
            return False
        return self._delete_if_match(key, entry[1])

    def delete(self, key: str) -> bool:
        with self._server_lock:
            return self._objects.pop(key, None) is not None

    def list_prefix(self, prefix: str) -> List[str]:
        with self._server_lock:
            return sorted(k for k in self._objects if k.startswith(prefix))

    def exists(self, key: str) -> bool:
        return self._get(key) is not None


#: What a caller sees when an operation's acknowledgement is "lost":
#: the operation applied, but the backend reports the failure value.
_LOST_RESULTS = {
    "put_exclusive": False,
    "lease": False,
    "delete_if_owner": False,
    "delete": False,
    "atomic_replace": None,
    "read": None,
    "list_prefix": [],
    "exists": False,
}


class FaultInjectingBackend(StorageBackend):
    """Wrap any backend; apply a scripted fault on the Nth call of an op.

    ``inject(op, nth, action)`` arms one fault for the ``nth`` (1-based,
    counted per operation name) invocation of ``op``:

    ``"fail"``
        Raise :class:`BackendFault` *before* applying — the operation
        never happens (a dropped request).
    ``"lost"``
        Apply the operation, then report its failure value — the
        request landed but the acknowledgement was lost, so the caller
        must not assume it did.
    ``"duplicate"``
        Apply the operation twice, reporting the first result — a
        retried/duplicated delivery.
    ``("delay", seconds)``
        Sleep, then apply — a slow request other workers can overtake.
    any callable
        Invoked (no args) before applying — for test-orchestrated
        interleavings (barriers, events).

    ``log`` records every triggered fault as ``(op, nth, label)``.
    """

    def __init__(self, inner: StorageBackend) -> None:
        self.inner = inner
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._faults: Dict[Tuple[str, int], object] = {}
        self.log: List[Tuple[str, int, str]] = []

    def inject(self, op: str, nth: int, action: object = "fail") -> None:
        """Arm ``action`` for the ``nth`` (1-based) call of ``op``."""
        if op not in _LOST_RESULTS:
            raise ValueError(f"unknown backend operation {op!r}")
        if nth < 1:
            raise ValueError(f"nth is 1-based, got {nth}")
        with self._lock:
            self._faults[(op, nth)] = action

    def calls(self, op: str) -> int:
        """How many times ``op`` has been invoked so far."""
        with self._lock:
            return self._counts.get(op, 0)

    def _apply(self, op: str, call: Callable[[], object]) -> object:
        with self._lock:
            self._counts[op] = self._counts.get(op, 0) + 1
            action = self._faults.pop((op, self._counts[op]), None)
            nth = self._counts[op]
        if action is None:
            return call()
        label = action if isinstance(action, str) else getattr(
            action, "__name__", "hook"
        )
        with self._lock:
            self.log.append((op, nth, str(label)))
        if action == "fail":
            raise BackendFault(f"injected failure: {op} #{nth}")
        if action == "lost":
            call()
            return _LOST_RESULTS[op]
        if action == "duplicate":
            first = call()
            call()
            return first
        if isinstance(action, tuple) and action and action[0] == "delay":
            time.sleep(action[1])
            return call()
        if callable(action):
            action()
            return call()
        raise ValueError(f"unknown fault action {action!r}")

    def put_exclusive(self, key: str, data: bytes) -> bool:
        return self._apply(
            "put_exclusive", lambda: self.inner.put_exclusive(key, data)
        )

    def read(self, key: str) -> Optional[Record]:
        return self._apply("read", lambda: self.inner.read(key))

    def atomic_replace(self, key: str, data: bytes) -> None:
        return self._apply(
            "atomic_replace", lambda: self.inner.atomic_replace(key, data)
        )

    def lease(self, key: str, data: bytes, token: object) -> bool:
        return self._apply(
            "lease", lambda: self.inner.lease(key, data, token)
        )

    def delete_if_owner(self, key: str, owner: str) -> bool:
        return self._apply(
            "delete_if_owner",
            lambda: self.inner.delete_if_owner(key, owner),
        )

    def delete(self, key: str) -> bool:
        return self._apply("delete", lambda: self.inner.delete(key))

    def list_prefix(self, prefix: str) -> List[str]:
        return self._apply(
            "list_prefix", lambda: self.inner.list_prefix(prefix)
        )

    def exists(self, key: str) -> bool:
        return self._apply("exists", lambda: self.inner.exists(key))

    def ensure_prefix(self, prefix: str) -> None:
        # infrastructure, not protocol: never faulted
        self.inner.ensure_prefix(prefix)


class PrefixedBackend(StorageBackend):
    """A ``prefix + key`` namespace view over another backend.

    How one run is addressed inside a multi-run root (the daemon's
    runs-root): ``PrefixedBackend(root, "abc123/")`` turns the run
    store's ``manifest.json`` into the root's ``abc123/manifest.json``.
    """

    def __init__(self, inner: StorageBackend, prefix: str) -> None:
        if prefix and not prefix.endswith("/"):
            prefix += "/"
        self.inner = inner
        self.prefix = prefix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PrefixedBackend({self.inner!r}, {self.prefix!r})"

    def put_exclusive(self, key: str, data: bytes) -> bool:
        return self.inner.put_exclusive(self.prefix + key, data)

    def read(self, key: str) -> Optional[Record]:
        return self.inner.read(self.prefix + key)

    def atomic_replace(self, key: str, data: bytes) -> None:
        self.inner.atomic_replace(self.prefix + key, data)

    def lease(self, key: str, data: bytes, token: object) -> bool:
        return self.inner.lease(self.prefix + key, data, token)

    def delete_if_owner(self, key: str, owner: str) -> bool:
        return self.inner.delete_if_owner(self.prefix + key, owner)

    def delete(self, key: str) -> bool:
        return self.inner.delete(self.prefix + key)

    def list_prefix(self, prefix: str) -> List[str]:
        trimmed = len(self.prefix)
        return [
            key[trimmed:]
            for key in self.inner.list_prefix(self.prefix + prefix)
        ]

    def exists(self, key: str) -> bool:
        return self.inner.exists(self.prefix + key)

    def ensure_prefix(self, prefix: str) -> None:
        self.inner.ensure_prefix(self.prefix + prefix)


def as_backend(store: Union[str, Path, StorageBackend]) -> StorageBackend:
    """Coerce a run-store argument: paths become :class:`LocalFSBackend`
    roots, backends pass through unchanged."""
    if isinstance(store, StorageBackend):
        return store
    return LocalFSBackend(store)

"""Parallel experiment harness (sweep grids, sharded execution, caching).

The paper's evaluation is a grid of independent simulation runs
(scenario x scheduler variant x task count x seed).  This package turns
that grid into a first-class object:

* :mod:`repro.exp.grid` — :class:`GridSpec` / :class:`GridPoint`, the
  declarative description of a sweep, with deterministic per-point seeds
  and a stable configuration hash per point;
* :mod:`repro.exp.worker` — the process-safe function that evaluates one
  point (:func:`run_point`) and its slim, picklable result record;
* :mod:`repro.exp.cache` — an on-disk JSON result cache keyed by the
  point's configuration hash, so re-runs skip already-computed points;
* :mod:`repro.exp.runner` — :func:`run_grid`, the sharded
  ``multiprocessing`` sweep runner (``workers=0`` runs serially and
  bit-identically to the parallel path);
* :mod:`repro.exp.aggregate` — seed-replication statistics (mean and 95%
  confidence intervals over >= 3 seeds);
* :mod:`repro.exp.backend` — pluggable run-store backends (local
  filesystem, in-memory, S3-style object store, fault-injecting
  wrapper) behind one atomicity contract;
* :mod:`repro.exp.dist` — distributed, resumable execution over a shared
  run store: deterministic shard partitions, an atomic claim/heartbeat
  protocol (with cross-host clock-skew tolerance) for dynamic
  multi-host partitioning with crash recovery, and the merge step that
  reassembles one canonical grid;
* :mod:`repro.exp.daemon` — long-lived workers (``python -m repro
  worker``) that poll a runs root, drain hot-added runs through the
  claim protocol with background heartbeat refresh, and shut down
  cleanly on SIGTERM or idle timeout.

Figures 1/3/4 and the ablation all run on top of this harness; the CLI
front-end is ``python -m repro sweep`` / ``python -m repro merge`` and
the compatibility wrapper is
:func:`repro.workloads.scenarios.run_scenario_sweep`.
"""

from repro.exp.aggregate import AggregatePoint, aggregate_results, to_sweep
from repro.exp.backend import (
    BackendFault,
    FaultInjectingBackend,
    InMemoryBackend,
    LocalFSBackend,
    ObjectStoreBackend,
    PrefixedBackend,
    StorageBackend,
    as_backend,
)
from repro.exp.cache import ResultCache
from repro.exp.daemon import DaemonConfig, DaemonStats, HeartbeatTicker, serve
from repro.exp.grid import (
    GridPoint,
    GridSpec,
    derive_seed,
    register_variant,
    resolve_variant,
)
from repro.exp.runner import GridResult, run_grid
from repro.exp.worker import PointResult, run_point
from repro.exp.dist import (
    ClaimBoard,
    ClaimConfig,
    RunManifest,
    default_owner,
    init_run,
    load_manifest,
    merge_run,
    parse_shard,
    pending_points,
    run_cache,
    run_dist_worker,
    run_id_for,
)

__all__ = [
    "AggregatePoint",
    "BackendFault",
    "ClaimBoard",
    "ClaimConfig",
    "DaemonConfig",
    "DaemonStats",
    "FaultInjectingBackend",
    "GridPoint",
    "GridResult",
    "GridSpec",
    "HeartbeatTicker",
    "InMemoryBackend",
    "LocalFSBackend",
    "ObjectStoreBackend",
    "PointResult",
    "PrefixedBackend",
    "ResultCache",
    "RunManifest",
    "StorageBackend",
    "aggregate_results",
    "as_backend",
    "default_owner",
    "derive_seed",
    "init_run",
    "load_manifest",
    "merge_run",
    "parse_shard",
    "pending_points",
    "register_variant",
    "resolve_variant",
    "run_cache",
    "run_dist_worker",
    "run_grid",
    "run_id_for",
    "run_point",
    "serve",
    "to_sweep",
]

"""Per-point evaluation, safe to run in a worker process.

:func:`run_point` is the single execution path behind every sweep: the
serial runner, the ``multiprocessing`` pool workers and the compatibility
wrappers in :mod:`repro.workloads.scenarios` all call it.  It returns a
:class:`PointResult` — a slim, picklable record of the steady-state
metrics, deliberately *not* carrying the :class:`MetricsCollector` or
trace (those can be megabytes per run and would dominate IPC cost).

Traces can still leave the worker — sideways, not through IPC: pass
``trace_store`` and the point runs with columnar tracing on and ships
the serialised trace (:mod:`repro.sim.trace_io`) straight into the run
store's ``traces/`` prefix before returning the slim result.  That is
what ``run_dist_worker(record_traces=True)`` wires up.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.context_pool import ContextPoolConfig
from repro.core.runner import RunConfig, run_simulation
from repro.exp.grid import GridPoint, resolve_variant
from repro.gpu.spec import RTX_2080_TI
from repro.workloads.generator import identical_periodic_tasks

#: v2: open-system metrics (goodput / rejection rate / tail latency /
#: queue depth) joined the result payload.  v1 records are still readable
#: (the new fields default to "closed-system run" values).
RESULT_VERSION = 2

_READABLE_RESULT_VERSIONS = (1, 2)


@dataclass(frozen=True)
class PointResult:
    """Steady-state metrics of one evaluated grid point.

    ``elapsed`` is the wall-clock cost of computing the point (0.0 when the
    value came from the cache); it is provenance, not part of the result
    identity.  ``p99_response`` / ``p999_response`` are ``None`` when no
    post-warmup job completed (nothing to take a percentile of).
    """

    point: GridPoint
    total_fps: float
    dmr: float
    utilization: float
    mean_pressure: float
    released: int
    completed: int
    elapsed: float = 0.0
    goodput: float = 0.0
    rejection_rate: float = 0.0
    rejected: int = 0
    p99_response: Optional[float] = None
    p999_response: Optional[float] = None
    mean_queue_depth: float = 0.0
    max_queue_depth: int = 0

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the on-disk cache)."""
        return {
            "version": RESULT_VERSION,
            "point": self.point.config_dict(),
            "total_fps": self.total_fps,
            "dmr": self.dmr,
            "utilization": self.utilization,
            "mean_pressure": self.mean_pressure,
            "released": self.released,
            "completed": self.completed,
            "elapsed": self.elapsed,
            "goodput": self.goodput,
            "rejection_rate": self.rejection_rate,
            "rejected": self.rejected,
            "p99_response": self.p99_response,
            "p999_response": self.p999_response,
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PointResult":
        """Inverse of :meth:`to_dict` (v1 records load with defaults).

        Raises
        ------
        ValueError
            On a missing or unsupported result version.
        """
        if payload.get("version") not in _READABLE_RESULT_VERSIONS:
            raise ValueError(
                f"unsupported result version: {payload.get('version')!r}"
            )
        return cls(
            point=GridPoint.from_dict(payload["point"]),
            total_fps=payload["total_fps"],
            dmr=payload["dmr"],
            utilization=payload["utilization"],
            mean_pressure=payload["mean_pressure"],
            released=payload["released"],
            completed=payload["completed"],
            elapsed=payload.get("elapsed", 0.0),
            goodput=payload.get("goodput", 0.0),
            rejection_rate=payload.get("rejection_rate", 0.0),
            rejected=payload.get("rejected", 0),
            p99_response=payload.get("p99_response"),
            p999_response=payload.get("p999_response"),
            mean_queue_depth=payload.get("mean_queue_depth", 0.0),
            max_queue_depth=payload.get("max_queue_depth", 0),
        )


def run_point(
    point: GridPoint,
    trace_store=None,
    trace_backend: str = "columnar",
) -> PointResult:
    """Evaluate one grid point (process-safe, top-level, deterministic).

    With ``trace_store`` (anything :data:`repro.exp.dist.RunStore`
    accepts) the run records a trace on the ``trace_backend`` recorder
    and ships it to the store under the point's config hash (see
    :func:`repro.exp.dist.save_point_trace`) before returning; the
    returned :class:`PointResult` stays slim either way.  Worker-pool
    friendly: ``functools.partial(run_point, trace_store=...)`` pickles.
    """
    started = time.perf_counter()
    scheduler, oversubscription, task_stages = resolve_variant(
        point.variant, point.num_stages
    )
    pool = ContextPoolConfig.from_oversubscription(
        point.num_contexts,
        oversubscription,
        RTX_2080_TI,
        allow_stream_borrowing=point.allow_stream_borrowing,
    )
    if point.workload == "identical":
        tasks = identical_periodic_tasks(
            count=point.num_tasks,
            nominal_sms=pool.sms_per_context,
            period=point.period,
            num_stages=task_stages,
        )
    else:
        # Synthesized heterogeneous taskset.  Imported lazily to keep the
        # worker importable before the workloads package finishes loading
        # (repro/__init__ import order).  Monolithic variants (the naive
        # baseline resolves to one stage per task) schedule the same
        # periods/deadlines as staged variants by construction.
        from repro.workloads.synth.scenarios import taskset_for_point

        tasks = taskset_for_point(
            point,
            nominal_sms=pool.sms_per_context,
            monolithic=task_stages == 1,
        )
    result = run_simulation(
        tasks,
        RunConfig(
            pool=pool,
            scheduler=scheduler,
            duration=point.duration,
            warmup=point.warmup,
            work_jitter_cv=point.work_jitter_cv,
            seed=point.seed,
            arrival=point.arrival,
            admission=point.admission,
            record_trace=trace_store is not None,
            trace_backend=trace_backend,
        ),
    )
    if trace_store is not None:
        from repro.exp.dist import save_point_trace

        save_point_trace(trace_store, point, result.trace)
    return PointResult(
        point=point,
        elapsed=time.perf_counter() - started,
        **result.metrics_summary(),
    )

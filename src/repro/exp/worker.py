"""Per-point evaluation, safe to run in a worker process.

:func:`run_point` is the single execution path behind every sweep: the
serial runner, the ``multiprocessing`` pool workers and the compatibility
wrappers in :mod:`repro.workloads.scenarios` all call it.  It returns a
:class:`PointResult` — a slim, picklable record of the steady-state
metrics, deliberately *not* carrying the :class:`MetricsCollector` or
trace (those can be megabytes per run and would dominate IPC cost).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.context_pool import ContextPoolConfig
from repro.core.runner import RunConfig, run_simulation
from repro.exp.grid import GridPoint, resolve_variant
from repro.gpu.spec import RTX_2080_TI
from repro.workloads.generator import identical_periodic_tasks

RESULT_VERSION = 1


@dataclass(frozen=True)
class PointResult:
    """Steady-state metrics of one evaluated grid point.

    ``elapsed`` is the wall-clock cost of computing the point (0.0 when the
    value came from the cache); it is provenance, not part of the result
    identity.
    """

    point: GridPoint
    total_fps: float
    dmr: float
    utilization: float
    mean_pressure: float
    released: int
    completed: int
    elapsed: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by the on-disk cache)."""
        return {
            "version": RESULT_VERSION,
            "point": self.point.config_dict(),
            "total_fps": self.total_fps,
            "dmr": self.dmr,
            "utilization": self.utilization,
            "mean_pressure": self.mean_pressure,
            "released": self.released,
            "completed": self.completed,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PointResult":
        """Inverse of :meth:`to_dict`.

        Raises
        ------
        ValueError
            On a missing or unsupported result version.
        """
        if payload.get("version") != RESULT_VERSION:
            raise ValueError(
                f"unsupported result version: {payload.get('version')!r}"
            )
        return cls(
            point=GridPoint.from_dict(payload["point"]),
            total_fps=payload["total_fps"],
            dmr=payload["dmr"],
            utilization=payload["utilization"],
            mean_pressure=payload["mean_pressure"],
            released=payload["released"],
            completed=payload["completed"],
            elapsed=payload.get("elapsed", 0.0),
        )


def run_point(point: GridPoint) -> PointResult:
    """Evaluate one grid point (process-safe, top-level, deterministic)."""
    started = time.perf_counter()
    scheduler, oversubscription, task_stages = resolve_variant(
        point.variant, point.num_stages
    )
    pool = ContextPoolConfig.from_oversubscription(
        point.num_contexts,
        oversubscription,
        RTX_2080_TI,
        allow_stream_borrowing=point.allow_stream_borrowing,
    )
    if point.workload == "identical":
        tasks = identical_periodic_tasks(
            count=point.num_tasks,
            nominal_sms=pool.sms_per_context,
            period=point.period,
            num_stages=task_stages,
        )
    else:
        # Synthesized heterogeneous taskset.  Imported lazily to keep the
        # worker importable before the workloads package finishes loading
        # (repro/__init__ import order).  Monolithic variants (the naive
        # baseline resolves to one stage per task) schedule the same
        # periods/deadlines as staged variants by construction.
        from repro.workloads.synth.scenarios import taskset_for_point

        tasks = taskset_for_point(
            point,
            nominal_sms=pool.sms_per_context,
            monolithic=task_stages == 1,
        )
    result = run_simulation(
        tasks,
        RunConfig(
            pool=pool,
            scheduler=scheduler,
            duration=point.duration,
            warmup=point.warmup,
            work_jitter_cv=point.work_jitter_cv,
            seed=point.seed,
        ),
    )
    return PointResult(
        point=point,
        elapsed=time.perf_counter() - started,
        **result.metrics_summary(),
    )

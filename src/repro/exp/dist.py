"""Distributed, resumable sweep execution over a shared run store.

Large grids are embarrassingly parallel over points; what N workers on M
hosts need is not compute but *coordination*: carve up one grid without
double-running points, survive crashes, and merge into one canonical
result set.  This module provides that coordination over any
:mod:`repro.exp.backend` storage backend — a directory every worker can
reach (NFS, a shared bind-mount, or one host's disk), an S3-style
object store, or an in-memory store for tests.

Run-store layout
----------------
::

    <run store>/
      manifest.json   grid spec + schema/format versions + calibration
      cache/          one JSON per completed point (repro.exp.cache)
      claims/         <config-hash>.claim ownership markers
      traces/         <config-hash>.trace per-point execution traces
                      (optional; repro.sim.trace_io format, written when
                      workers run with record_traces)

Protocol
--------
* **Shard mode** needs no coordination at all: worker ``i`` of ``n``
  evaluates the deterministic round-robin slice
  :meth:`~repro.exp.grid.GridSpec.shard`; the ``n`` shards are a
  disjoint exact cover of the grid.
* **Claim mode** coordinates through the run store: a worker owns a
  point iff it created ``claims/<hash>.claim`` through the backend's
  atomic exclusive put (``O_CREAT | os.O_EXCL``-style).  The claim
  records the owner and a heartbeat timestamp; a claim whose heartbeat
  is older than the TTL (plus a cross-host clock-``skew`` allowance) is
  *stale* — its worker is presumed dead — and may be stolen.  Stealing
  is single-winner: the stealer replaces the stale record through the
  backend's compare-and-swap :meth:`~repro.exp.backend.StorageBackend.\
lease` on the exact revision it observed, so of any number of
  concurrent stealers (and fresh claimers) exactly one ends up owning
  the claim.  On the local filesystem the CAS is arbitrated by an
  atomic ``os.rename`` tombstone; on an object store by a conditional
  put — the protocol above is identical either way.
* **Completion** is recorded by the :class:`~repro.exp.cache.ResultCache`
  checkpoint (atomic write), never by the claim file, so every finished
  point survives any crash and an interrupted sweep is resumable: a
  re-run (``--resume``) recomputes only the missing points.  A worker
  that outlives its TTL and completes anyway merely double-computes a
  point — every point is a pure function of its coordinates, so the
  duplicate writes identical bits.
* **Merge** (:func:`merge_run`, or
  :func:`repro.analysis.persistence.merge_grid_dicts` for per-shard grid
  JSONs) reassembles one canonical grid in grid order, refusing mixed
  schema versions, mixed calibration fingerprints, incomplete coverage
  (unless asked) and conflicting duplicate results.

Claiming is lazy: a worker holds at most one compute-wave of claims at
a time (``max(workers, 1)`` points — see
:func:`repro.exp.runner.run_grid`), so late-joining workers immediately
find unclaimed work.  Choose the TTL (``--heartbeat``) comfortably
above the cost of the slowest single point: the heartbeat is stamped
when a point is claimed, single-pass workers cannot refresh it
mid-simulation, and a wave's points compute concurrently, so one
point's cost bounds how long any claim goes un-refreshed.  (The daemon
— :mod:`repro.exp.daemon` — *does* refresh heartbeats from a
background ticker, so daemon fleets can run short TTLs safely.)

Clock skew: heartbeats are wall-clock stamps compared across hosts, so
a staleness check naively comparing raw ``time.time()`` values would
let a worker whose clock runs a few seconds ahead steal a live claim a
few seconds early.  The ``skew`` parameter (default
:data:`DEFAULT_SKEW`) widens the staleness window to ``ttl + skew``,
bounding how far apart two NTP-synced hosts' clocks may drift before
the protocol double-computes (never corrupts) a point.
"""

from __future__ import annotations

import hashlib
import json
import socket
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.exp.backend import StorageBackend, as_backend
from repro.exp.cache import ResultCache
from repro.exp.grid import SCHEMA_VERSION, GridPoint, GridSpec
from repro.exp.worker import run_point

#: Default claim time-to-live in seconds; a claim not refreshed within
#: this window (plus the skew allowance) is presumed abandoned and may
#: be stolen.
DEFAULT_TTL = 300.0

#: Default cross-host clock-skew allowance folded into the staleness
#: check: a claim is stale only when ``now - heartbeat > ttl + skew``.
DEFAULT_SKEW = 5.0

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1

CACHE_SUBDIR = "cache"
CLAIMS_SUBDIR = "claims"
TRACES_SUBDIR = "traces"

#: Anything an init/claim/merge call accepts as "the run store".
RunStore = Union[str, Path, StorageBackend]


def default_owner() -> str:
    """A claim-owner id unique per worker process: ``<host>-<pid>``."""
    import os

    return f"{socket.gethostname()}-{os.getpid()}"


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a CLI shard spec ``"i/n"`` into a 1-based ``(i, n)`` pair."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"expected a shard spec like 2/8, got {text!r}"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"shard index must be in [1, {count}]: {text!r}")
    return index, count


def _calibration_digest() -> str:
    """The ambient device calibration's digest (what workers will use)."""
    from repro.speedup.calibration import DEFAULT_CALIBRATION

    return DEFAULT_CALIBRATION.digest


def run_id_for(spec: GridSpec) -> str:
    """Deterministic run id of a grid: same spec (under the same schema
    and calibration) always maps to the same id, so re-launching a sweep
    lands in the same run directory and resumes it."""
    blob = json.dumps(
        {
            "spec": asdict(spec),
            "schema_version": SCHEMA_VERSION,
            "calibration": _calibration_digest(),
        },
        sort_keys=True,
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


@dataclass(frozen=True)
class RunManifest:
    """The identity record of one distributed run (``manifest.json``).

    Written once at :func:`init_run`; every later worker validates its
    own spec/schema/calibration against it, so two hosts can never push
    incompatible results into one run store.
    """

    run_id: str
    spec: GridSpec
    schema_version: int = SCHEMA_VERSION
    calibration: str = ""

    def to_dict(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "run_id": self.run_id,
            "schema_version": self.schema_version,
            "calibration": self.calibration,
            "spec": asdict(self.spec),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        if payload.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"unsupported manifest format: {payload.get('format')!r}"
            )
        spec_fields = dict(payload["spec"])
        for key in ("variants", "task_counts", "seeds", "utilizations", "arrivals"):
            if key in spec_fields:
                spec_fields[key] = tuple(spec_fields[key])
        return cls(
            run_id=payload["run_id"],
            spec=GridSpec(**spec_fields),
            schema_version=payload["schema_version"],
            calibration=payload.get("calibration", ""),
        )


def run_cache(run: RunStore) -> ResultCache:
    """The shared checkpoint cache of a run store (``cache/`` keys)."""
    return ResultCache(as_backend(run), prefix=CACHE_SUBDIR)


def trace_key(point: GridPoint) -> str:
    """Run-store key of a point's execution trace."""
    return f"{TRACES_SUBDIR}/{point.config_hash()}.trace"


def save_point_trace(run: RunStore, point: GridPoint, trace) -> None:
    """Ship one point's trace (either recorder backend) into the store.

    Atomic like the cache checkpoints: readers see a complete trace or
    none.  Points are pure functions of their coordinates and the trace
    serialisation is deterministic, so a double-computed point rewrites
    identical bytes.
    """
    from repro.sim.trace_io import put_trace

    put_trace(as_backend(run), trace_key(point), trace)


def load_point_trace(run: RunStore, point: GridPoint):
    """One point's stored trace as a
    :class:`~repro.sim.trace_columnar.ColumnarTrace`, or ``None`` when
    the run was not traced (or this point has not completed yet)."""
    from repro.sim.trace_io import get_trace

    return get_trace(as_backend(run), trace_key(point))


def load_manifest(run: RunStore) -> RunManifest:
    """Read and validate the manifest of an existing run store."""
    record = as_backend(run).read(MANIFEST_NAME)
    if record is None:
        raise ValueError(
            f"{run} is not a run directory (no readable {MANIFEST_NAME})"
        )
    try:
        payload = json.loads(record.data)
    except ValueError as error:
        raise ValueError(f"corrupt manifest in {run}: {error}") from None
    return RunManifest.from_dict(payload)


def init_run(run: RunStore, spec: GridSpec) -> RunManifest:
    """Create (or join) a run store for ``spec``.

    Idempotent and race-safe: the first worker publishes the manifest
    via the backend's atomic exclusive put (the record is complete the
    instant it appears); every other worker — including one racing the
    first — loads it and verifies it describes the *same* grid under
    the same schema version and calibration.  A mismatch raises
    ``ValueError`` rather than letting two different sweeps interleave
    in one store.
    """
    backend = as_backend(run)
    backend.ensure_prefix(CACHE_SUBDIR)
    backend.ensure_prefix(CLAIMS_SUBDIR)
    manifest = RunManifest(
        run_id=run_id_for(spec), spec=spec, calibration=_calibration_digest()
    )
    data = json.dumps(manifest.to_dict(), indent=1).encode()
    if backend.put_exclusive(MANIFEST_NAME, data):
        return manifest
    existing = load_manifest(run)
    if asdict(existing.spec) != asdict(spec):
        raise ValueError(
            f"{run} already holds run {existing.run_id} over a "
            f"different grid; use a fresh --run-dir"
        )
    if existing.schema_version != SCHEMA_VERSION:
        raise ValueError(
            f"{run} was created under point-schema "
            f"v{existing.schema_version}, this build uses "
            f"v{SCHEMA_VERSION}; results must not mix"
        )
    if existing.calibration and existing.calibration != manifest.calibration:
        raise ValueError(
            f"{run} was created under a different device "
            f"calibration (fingerprint {existing.calibration[:12]}… vs "
            f"{manifest.calibration[:12]}…); results must not mix"
        )
    return existing


class ClaimBoard:
    """Atomic per-point ownership over a run store's ``claims/`` keys.

    One instance per worker; ``owner`` must be unique per worker process
    (see :func:`default_owner`).  All methods take a
    :class:`~repro.exp.grid.GridPoint` and address its claim record by
    config hash.  ``clock`` is injectable so staleness is testable
    without sleeping; ``skew`` is the cross-host clock tolerance folded
    into the staleness check (``stale iff now - heartbeat > ttl +
    skew``).

    The board tracks the claims it currently holds (:meth:`held`), so a
    background ticker can keep them alive (:meth:`refresh_held`) while
    long points compute — see :class:`repro.exp.daemon.HeartbeatTicker`.
    """

    def __init__(
        self,
        run: RunStore,
        owner: str,
        ttl: float = DEFAULT_TTL,
        clock: Callable[[], float] = time.time,
        skew: float = DEFAULT_SKEW,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        if skew < 0:
            raise ValueError(f"skew must be non-negative, got {skew}")
        self.backend = as_backend(run)
        self.backend.ensure_prefix(CLAIMS_SUBDIR)
        self.owner = owner
        self.ttl = ttl
        self.skew = skew
        self.clock = clock
        self._held: set = set()
        self._held_lock = threading.Lock()

    def _key(self, point: GridPoint) -> str:
        return f"{CLAIMS_SUBDIR}/{point.config_hash()}.claim"

    def _record(self) -> bytes:
        return json.dumps(
            {"owner": self.owner, "heartbeat": self.clock()}
        ).encode()

    @staticmethod
    def _parse(data: bytes) -> Tuple[str, float]:
        """(owner, heartbeat) of a claim record; an unparseable record
        reads as an anonymous epoch-old claim — i.e. immediately stale,
        so garbage can always be stolen through the CAS gate."""
        try:
            info = json.loads(data)
            return str(info["owner"]), float(info["heartbeat"])
        except (ValueError, KeyError, TypeError):
            return "", 0.0

    def _read(self, key: str) -> Optional[Tuple[str, float]]:
        """(owner, heartbeat) of a claim, or ``None`` if it vanished."""
        record = self.backend.read(key)
        if record is None:
            return None
        return self._parse(record.data)

    def _is_fresh(self, heartbeat: float) -> bool:
        return self.clock() - heartbeat <= self.ttl + self.skew

    def _track(self, point: GridPoint) -> None:
        with self._held_lock:
            self._held.add(point)

    def _untrack(self, point: GridPoint) -> None:
        with self._held_lock:
            self._held.discard(point)

    def held(self) -> List[GridPoint]:
        """The points this board currently believes it owns."""
        with self._held_lock:
            return list(self._held)

    def try_claim(self, point: GridPoint) -> bool:
        """Attempt to become the sole owner of ``point``.

        Returns ``True`` iff this worker now holds the claim.  A held,
        fresh claim yields ``False``; a stale claim is stolen through
        the backend's compare-and-swap on the exact revision observed
        (single winner among stealers *and* concurrent fresh claimers).
        """
        key = self._key(point)
        for _ in range(3):
            if self.backend.put_exclusive(key, self._record()):
                self._track(point)
                return True
            record = self.backend.read(key)
            if record is None:
                continue  # released under us: retry the exclusive put
            _, heartbeat = self._parse(record.data)
            if self._is_fresh(heartbeat):
                return False
            if self.backend.lease(key, self._record(), record.token):
                self._track(point)
                return True
            # lost the CAS to a rival stealer or fresh claimer: observe
            # the new record (it may itself be stale) and retry
        return False

    def refresh(self, point: GridPoint) -> bool:
        """Re-stamp the heartbeat of a claim we hold.

        Returns ``False`` (without writing) when the claim is gone or
        owned by someone else — the caller has lost it and must not
        assume ownership.  The re-stamp itself goes through the CAS
        :meth:`~repro.exp.backend.StorageBackend.lease` on the exact
        revision read, never an unconditional write: a claim stolen (or
        released) between the read and the write stays with its new
        owner instead of being resurrected by a stale refresher.
        """
        key = self._key(point)
        record = self.backend.read(key)
        if record is not None:
            owner, _ = self._parse(record.data)
            if (not owner or owner == self.owner) and self.backend.lease(
                key, self._record(), record.token
            ):
                return True
        self._untrack(point)
        return False

    def refresh_held(self) -> int:
        """Re-stamp every claim this board holds; returns how many are
        still ours.  This is what the daemon's heartbeat ticker calls,
        so claims stay fresh while long points compute."""
        alive = 0
        for point in self.held():
            if self.refresh(point):
                alive += 1
        return alive

    def release(self, point: GridPoint) -> bool:
        """Drop our claim on ``point`` (no-op if it is not ours).

        Release goes through the backend's owner-conditional delete: if
        a stealer replaced our (necessarily stale) claim with its own
        between our read and the delete, the foreign record survives
        and we report the loss — we never delete a claim that is no
        longer ours.
        """
        self._untrack(point)
        key = self._key(point)
        info = self._read(key)
        if info is None or info[0] != self.owner:
            return False
        return self.backend.delete_if_owner(key, self.owner)

    def owner_of(self, point: GridPoint) -> Optional[str]:
        """Current claim owner of ``point``, or ``None`` if unclaimed."""
        info = self._read(self._key(point))
        return info[0] if info is not None else None


@dataclass(frozen=True)
class ClaimConfig:
    """How a :func:`repro.exp.runner.run_grid` call should claim points.

    ``board`` lets a caller (the daemon) share one pre-built
    :class:`ClaimBoard` between the runner and a heartbeat ticker;
    ``stop`` is polled between claim waves so a long drain can be
    interrupted cleanly (held claims are released on the way out).
    """

    run_dir: RunStore
    owner: str
    ttl: float = DEFAULT_TTL
    clock: Callable[[], float] = time.time
    skew: float = DEFAULT_SKEW
    board: Optional[ClaimBoard] = None
    stop: Optional[Callable[[], bool]] = None

    def make_board(self) -> ClaimBoard:
        if self.board is not None:
            return self.board
        return ClaimBoard(
            self.run_dir,
            owner=self.owner,
            ttl=self.ttl,
            clock=self.clock,
            skew=self.skew,
        )

    def make_cache(self) -> ResultCache:
        return run_cache(self.run_dir)

    def should_stop(self) -> bool:
        return self.stop is not None and bool(self.stop())


def pending_points(run: RunStore) -> List[GridPoint]:
    """Grid points of a run with no cache checkpoint yet, in grid order."""
    manifest = load_manifest(run)
    cache = run_cache(run)
    return [
        point
        for point in manifest.spec.points()
        if not cache.contains(point)
    ]


def run_dist_worker(
    run: RunStore,
    owner: Optional[str] = None,
    ttl: float = DEFAULT_TTL,
    workers: int = 0,
    point_fn: Callable[[GridPoint], "PointResult"] = run_point,
    progress=None,
    clock: Callable[[], float] = time.time,
    skew: float = DEFAULT_SKEW,
    board: Optional[ClaimBoard] = None,
    stop: Optional[Callable[[], bool]] = None,
    record_traces: bool = False,
):
    """One claim-mode worker pass over an initialised run store.

    Claims and computes whatever is pending, checkpoints every completed
    point through the shared cache, and returns this worker's (partial)
    :class:`~repro.exp.runner.GridResult`: cached points plus the points
    it computed; points freshly claimed by other live workers are counted
    in ``skipped``.  Run it from as many processes/hosts as you like;
    :func:`merge_run` assembles the canonical whole once the claim set
    drains.

    With ``record_traces`` every computed point additionally ships its
    columnar execution trace into the store's ``traces/`` prefix (see
    :func:`save_point_trace`); cached points are not re-traced.
    """
    import functools

    from repro.exp.runner import run_grid

    if record_traces:
        if point_fn is not run_point:
            raise ValueError(
                "record_traces only applies to the default point_fn; "
                "a custom point_fn must ship its own traces"
            )
        point_fn = functools.partial(run_point, trace_store=run)
    manifest = load_manifest(run)
    return run_grid(
        manifest.spec,
        workers=workers,
        progress=progress,
        claim=ClaimConfig(
            run_dir=run,
            owner=owner if owner is not None else default_owner(),
            ttl=ttl,
            clock=clock,
            skew=skew,
            board=board,
            stop=stop,
        ),
        point_fn=point_fn,
    )


def merge_run(run: RunStore, allow_partial: bool = False):
    """Assemble the canonical :class:`GridResult` of a run store.

    Reads every checkpointed point from the shared cache in grid order.
    An incomplete run raises ``ValueError`` naming the first missing
    point unless ``allow_partial`` — a partial merge is still a valid
    (sparse) grid document that :func:`~repro.analysis.persistence.\
merge_grid_dicts` can later combine with the stragglers.
    """
    from repro.exp.runner import GridResult

    manifest = load_manifest(run)
    cache = run_cache(run)
    results = []
    missing = []
    for point in manifest.spec.points():
        hit = cache.get(point)
        if hit is not None:
            results.append(hit)
        else:
            missing.append(point)
    if missing and not allow_partial:
        raise ValueError(
            f"run {manifest.run_id} is incomplete: {len(missing)} of "
            f"{len(manifest.spec)} points missing (first: "
            f"{missing[0].label}); finish the sweep (--resume) or merge "
            f"with allow_partial"
        )
    return GridResult(
        spec=manifest.spec,
        results=results,
        cache_hits=len(results),
        # provenance from the manifest, not from whoever merges: the
        # points were computed under the calibration recorded at init
        calibration=manifest.calibration or None,
    )


def run_payload(run: RunStore, allow_partial: bool = False) -> dict:
    """A run store as a grid *document* (dict), carrying the manifest's
    calibration fingerprint so merges across runs validate against what
    the points were actually computed under."""
    from repro.analysis.persistence import grid_to_dict

    return grid_to_dict(merge_run(run, allow_partial=allow_partial))

"""Distributed, resumable sweep execution over a shared directory.

Large grids are embarrassingly parallel over points; what N workers on M
hosts need is not compute but *coordination*: carve up one grid without
double-running points, survive crashes, and merge into one canonical
result set.  This module provides that coordination using nothing but a
directory every worker can reach (NFS, a shared bind-mount, or one
host's disk for same-machine workers).

Run-directory layout
--------------------
::

    <run_dir>/
      manifest.json   grid spec + schema/format versions + calibration
      cache/          one JSON per completed point (repro.exp.cache)
      claims/         <config-hash>.claim ownership markers

Protocol
--------
* **Shard mode** needs no coordination at all: worker ``i`` of ``n``
  evaluates the deterministic round-robin slice
  :meth:`~repro.exp.grid.GridSpec.shard`; the ``n`` shards are a
  disjoint exact cover of the grid.
* **Claim mode** coordinates through the filesystem: a worker owns a
  point iff it created ``claims/<hash>.claim`` with
  ``os.O_CREAT | os.O_EXCL`` (atomic on POSIX).  The claim records the
  owner and a heartbeat timestamp; a claim whose heartbeat is older than
  the TTL is *stale* — its worker is presumed dead — and may be stolen.
  Stealing is single-winner: the stealer first ``os.rename``-s the stale
  claim to a unique tombstone (exactly one concurrent renamer can win,
  rename is atomic), then re-creates the claim through the same
  ``O_EXCL`` gate, where it may still lose to a concurrent fresh
  claimer.  Fresh claims therefore never have two owners.
* **Completion** is recorded by the :class:`~repro.exp.cache.ResultCache`
  checkpoint (atomic write), never by the claim file, so every finished
  point survives any crash and an interrupted sweep is resumable: a
  re-run (``--resume``) recomputes only the missing points.  A worker
  that outlives its TTL and completes anyway merely double-computes a
  point — every point is a pure function of its coordinates, so the
  duplicate writes identical bits.
* **Merge** (:func:`merge_run`, or
  :func:`repro.analysis.persistence.merge_grid_dicts` for per-shard grid
  JSONs) reassembles one canonical grid in grid order, refusing mixed
  schema versions, mixed calibration fingerprints, incomplete coverage
  (unless asked) and conflicting duplicate results.

Claiming is lazy: a worker holds at most one compute-wave of claims at
a time (``max(workers, 1)`` points — see
:func:`repro.exp.runner.run_grid`), so late-joining workers immediately
find unclaimed work.  Choose the TTL (``--heartbeat``) comfortably
above the cost of the slowest single point: the heartbeat is stamped
when a point is claimed, workers cannot refresh it mid-simulation, and
a wave's points compute concurrently, so one point's cost bounds how
long any claim goes un-refreshed.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import socket
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.exp.cache import ResultCache
from repro.exp.grid import SCHEMA_VERSION, GridPoint, GridSpec
from repro.exp.worker import run_point

#: Default claim time-to-live in seconds; a claim not refreshed within
#: this window is presumed abandoned and may be stolen.
DEFAULT_TTL = 300.0

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1

CACHE_SUBDIR = "cache"
CLAIMS_SUBDIR = "claims"


def default_owner() -> str:
    """A claim-owner id unique per worker process: ``<host>-<pid>``."""
    return f"{socket.gethostname()}-{os.getpid()}"


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a CLI shard spec ``"i/n"`` into a 1-based ``(i, n)`` pair."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"expected a shard spec like 2/8, got {text!r}"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"shard index must be in [1, {count}]: {text!r}")
    return index, count


def _calibration_digest() -> str:
    """The ambient device calibration's digest (what workers will use)."""
    from repro.speedup.calibration import DEFAULT_CALIBRATION

    return DEFAULT_CALIBRATION.digest


def run_id_for(spec: GridSpec) -> str:
    """Deterministic run id of a grid: same spec (under the same schema
    and calibration) always maps to the same id, so re-launching a sweep
    lands in the same run directory and resumes it."""
    blob = json.dumps(
        {
            "spec": asdict(spec),
            "schema_version": SCHEMA_VERSION,
            "calibration": _calibration_digest(),
        },
        sort_keys=True,
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


@dataclass(frozen=True)
class RunManifest:
    """The identity record of one distributed run (``manifest.json``).

    Written once at :func:`init_run`; every later worker validates its
    own spec/schema/calibration against it, so two hosts can never push
    incompatible results into one run directory.
    """

    run_id: str
    spec: GridSpec
    schema_version: int = SCHEMA_VERSION
    calibration: str = ""

    def to_dict(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "run_id": self.run_id,
            "schema_version": self.schema_version,
            "calibration": self.calibration,
            "spec": asdict(self.spec),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        if payload.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"unsupported manifest format: {payload.get('format')!r}"
            )
        spec_fields = dict(payload["spec"])
        for key in ("variants", "task_counts", "seeds", "utilizations"):
            if key in spec_fields:
                spec_fields[key] = tuple(spec_fields[key])
        return cls(
            run_id=payload["run_id"],
            spec=GridSpec(**spec_fields),
            schema_version=payload["schema_version"],
            calibration=payload.get("calibration", ""),
        )


def _manifest_path(run_dir: Union[str, Path]) -> Path:
    return Path(run_dir) / MANIFEST_NAME


def load_manifest(run_dir: Union[str, Path]) -> RunManifest:
    """Read and validate the manifest of an existing run directory."""
    path = _manifest_path(run_dir)
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as error:
        raise ValueError(
            f"{run_dir} is not a run directory (no readable {MANIFEST_NAME}): "
            f"{error}"
        ) from None
    except ValueError as error:
        raise ValueError(f"corrupt manifest at {path}: {error}") from None
    return RunManifest.from_dict(payload)


def init_run(run_dir: Union[str, Path], spec: GridSpec) -> RunManifest:
    """Create (or join) a run directory for ``spec``.

    Idempotent and race-safe: the first worker writes the manifest via an
    exclusive create; every other worker — including one racing the first
    — loads it and verifies it describes the *same* grid under the same
    schema version and calibration.  A mismatch raises ``ValueError``
    rather than letting two different sweeps interleave in one directory.
    """
    run_dir = Path(run_dir)
    (run_dir / CACHE_SUBDIR).mkdir(parents=True, exist_ok=True)
    (run_dir / CLAIMS_SUBDIR).mkdir(parents=True, exist_ok=True)
    manifest = RunManifest(
        run_id=run_id_for(spec), spec=spec, calibration=_calibration_digest()
    )
    path = _manifest_path(run_dir)
    # Publish atomically: write the full document to a temp file, then
    # link it into place.  link() is exclusive-or-fail like O_EXCL but
    # the manifest is complete the instant it appears, so a racing
    # second worker can never read a half-written file.
    fd, tmp = tempfile.mkstemp(dir=run_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(manifest.to_dict(), handle, indent=1)
        os.link(tmp, path)
    except FileExistsError:
        existing = load_manifest(run_dir)
        if asdict(existing.spec) != asdict(spec):
            raise ValueError(
                f"{run_dir} already holds run {existing.run_id} over a "
                f"different grid; use a fresh --run-dir"
            )
        if existing.schema_version != SCHEMA_VERSION:
            raise ValueError(
                f"{run_dir} was created under point-schema "
                f"v{existing.schema_version}, this build uses "
                f"v{SCHEMA_VERSION}; results must not mix"
            )
        if existing.calibration and existing.calibration != manifest.calibration:
            raise ValueError(
                f"{run_dir} was created under a different device "
                f"calibration (fingerprint {existing.calibration[:12]}… vs "
                f"{manifest.calibration[:12]}…); results must not mix"
            )
        return existing
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass
    return manifest


@dataclass(frozen=True)
class ClaimConfig:
    """How a :func:`repro.exp.runner.run_grid` call should claim points."""

    run_dir: Union[str, Path]
    owner: str
    ttl: float = DEFAULT_TTL
    clock: Callable[[], float] = time.time


class ClaimBoard:
    """Atomic per-point ownership over ``<run_dir>/claims``.

    One instance per worker; ``owner`` must be unique per worker process
    (see :func:`default_owner`).  All methods take a
    :class:`~repro.exp.grid.GridPoint` and address its claim file by
    config hash.  ``clock`` is injectable so staleness is testable
    without sleeping.
    """

    def __init__(
        self,
        run_dir: Union[str, Path],
        owner: str,
        ttl: float = DEFAULT_TTL,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.claims_dir = Path(run_dir) / CLAIMS_SUBDIR
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        self.owner = owner
        self.ttl = ttl
        self.clock = clock
        self._nonce = itertools.count()

    def _path(self, point: GridPoint) -> Path:
        return self.claims_dir / f"{point.config_hash()}.claim"

    def _create(self, path: Path) -> bool:
        """Exclusive-create a claim stamped with our heartbeat."""
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as handle:
            json.dump({"owner": self.owner, "heartbeat": self.clock()}, handle)
        return True

    def _read(self, path: Path) -> Optional[Tuple[str, float]]:
        """(owner, heartbeat) of a claim, or ``None`` if it vanished.

        A claim caught mid-write (created but not yet stamped) falls back
        to the file's mtime with an unknown owner — still good enough to
        judge staleness.
        """
        try:
            with open(path) as handle:
                info = json.load(handle)
            return str(info["owner"]), float(info["heartbeat"])
        except (ValueError, KeyError, TypeError):
            pass
        except OSError:
            return None
        try:
            return "", os.path.getmtime(path)
        except OSError:
            return None

    def try_claim(self, point: GridPoint) -> bool:
        """Attempt to become the sole owner of ``point``.

        Returns ``True`` iff this worker now holds the claim.  A held,
        fresh claim yields ``False``; a stale claim is stolen through the
        rename tombstone (single winner), after which the exclusive
        re-create still arbitrates against concurrent fresh claimers.
        """
        path = self._path(point)
        for _ in range(3):
            if self._create(path):
                return True
            info = self._read(path)
            if info is None:
                continue  # released under us: retry the exclusive create
            _, heartbeat = info
            if self.clock() - heartbeat <= self.ttl:
                return False
            tombstone = path.with_name(
                f"{path.name}.stale-{os.getpid()}-{next(self._nonce)}"
            )
            try:
                os.rename(path, tombstone)
            except OSError:
                continue  # another stealer won the rename: retry/observe
            try:
                os.unlink(tombstone)
            except OSError:
                pass
        return False

    def refresh(self, point: GridPoint) -> bool:
        """Re-stamp the heartbeat of a claim we hold.

        Returns ``False`` (without writing) when the claim is gone or
        owned by someone else — the caller has lost it and must not
        assume ownership.
        """
        path = self._path(point)
        info = self._read(path)
        if info is None or (info[0] and info[0] != self.owner):
            return False
        fd, tmp = tempfile.mkstemp(dir=self.claims_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(
                    {"owner": self.owner, "heartbeat": self.clock()}, handle
                )
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return True

    def release(self, point: GridPoint) -> bool:
        """Drop our claim on ``point`` (no-op if it is not ours).

        Release goes through the same rename-then-verify gate stealing
        uses: if a stealer replaced our (necessarily stale) claim with
        its own between our read and our rename, we see the foreign
        owner in the tombstone, put the claim back and report the loss —
        we never delete a claim that is no longer ours.
        """
        path = self._path(point)
        info = self._read(path)
        if info is None or info[0] != self.owner:
            return False
        tombstone = path.with_name(
            f"{path.name}.release-{os.getpid()}-{next(self._nonce)}"
        )
        try:
            os.rename(path, tombstone)
        except OSError:
            return False  # vanished or stolen-and-being-replaced under us
        owner = (self._read(tombstone) or ("", 0.0))[0]
        if owner != self.owner:
            # a stealer's fresh claim was renamed by mistake: restore it
            # (link-back fails only if yet another claim appeared, in
            # which case the stolen record is redundant anyway)
            try:
                os.link(tombstone, path)
            except OSError:
                pass
        try:
            os.unlink(tombstone)
        except OSError:
            pass
        return owner == self.owner

    def owner_of(self, point: GridPoint) -> Optional[str]:
        """Current claim owner of ``point``, or ``None`` if unclaimed."""
        info = self._read(self._path(point))
        return info[0] if info is not None else None


def pending_points(run_dir: Union[str, Path]) -> List[GridPoint]:
    """Grid points of a run with no cache checkpoint yet, in grid order."""
    manifest = load_manifest(run_dir)
    cache = ResultCache(Path(run_dir) / CACHE_SUBDIR)
    return [
        point
        for point in manifest.spec.points()
        if not cache.contains(point)
    ]


def run_dist_worker(
    run_dir: Union[str, Path],
    owner: Optional[str] = None,
    ttl: float = DEFAULT_TTL,
    workers: int = 0,
    point_fn: Callable[[GridPoint], "PointResult"] = run_point,
    progress=None,
    clock: Callable[[], float] = time.time,
):
    """One claim-mode worker pass over an initialised run directory.

    Claims and computes whatever is pending, checkpoints every completed
    point through the shared cache, and returns this worker's (partial)
    :class:`~repro.exp.runner.GridResult`: cached points plus the points
    it computed; points freshly claimed by other live workers are counted
    in ``skipped``.  Run it from as many processes/hosts as you like;
    :func:`merge_run` assembles the canonical whole once the claim set
    drains.
    """
    from repro.exp.runner import run_grid

    manifest = load_manifest(run_dir)
    return run_grid(
        manifest.spec,
        workers=workers,
        cache_dir=Path(run_dir) / CACHE_SUBDIR,
        progress=progress,
        claim=ClaimConfig(
            run_dir=run_dir,
            owner=owner if owner is not None else default_owner(),
            ttl=ttl,
            clock=clock,
        ),
        point_fn=point_fn,
    )


def merge_run(run_dir: Union[str, Path], allow_partial: bool = False):
    """Assemble the canonical :class:`GridResult` of a run directory.

    Reads every checkpointed point from the shared cache in grid order.
    An incomplete run raises ``ValueError`` naming the first missing
    point unless ``allow_partial`` — a partial merge is still a valid
    (sparse) grid document that :func:`~repro.analysis.persistence.\
merge_grid_dicts` can later combine with the stragglers.
    """
    from repro.exp.runner import GridResult

    manifest = load_manifest(run_dir)
    cache = ResultCache(Path(run_dir) / CACHE_SUBDIR)
    results = []
    missing = []
    for point in manifest.spec.points():
        hit = cache.get(point)
        if hit is not None:
            results.append(hit)
        else:
            missing.append(point)
    if missing and not allow_partial:
        raise ValueError(
            f"run {manifest.run_id} is incomplete: {len(missing)} of "
            f"{len(manifest.spec)} points missing (first: "
            f"{missing[0].label}); finish the sweep (--resume) or merge "
            f"with allow_partial"
        )
    return GridResult(
        spec=manifest.spec,
        results=results,
        cache_hits=len(results),
        # provenance from the manifest, not from whoever merges: the
        # points were computed under the calibration recorded at init
        calibration=manifest.calibration or None,
    )


def run_payload(run_dir: Union[str, Path], allow_partial: bool = False) -> dict:
    """A run directory as a grid *document* (dict), carrying the
    manifest's calibration fingerprint so merges across runs validate
    against what the points were actually computed under."""
    from repro.analysis.persistence import grid_to_dict

    return grid_to_dict(merge_run(run_dir, allow_partial=allow_partial))

"""Long-lived sweep workers: ``python -m repro worker``.

A single-pass claim worker (``repro sweep --claim`` /
:func:`repro.exp.dist.run_dist_worker`) drains what is pending *now*
and exits.  A fleet serving heavy sweep traffic wants the opposite
shape: workers that outlive any one sweep, polling a shared *runs
root* for newly-submitted run stores, draining whatever appears, and
dying only when told to (SIGTERM) or when there has been nothing to do
for a while (``--max-idle``)::

    # submit work (initialises the run store, computes nothing)
    python -m repro sweep --scenario 1 --submit --runs-root /srv/runs

    # any number of hosts: long-lived workers over the same root
    python -m repro worker --runs-root /srv/runs --poll 5

    # afterwards, anywhere
    python -m repro merge /srv/runs/<RUN_ID> --out grid.json

The daemon adds two things the single-pass worker deliberately lacks:

* **Discovery** — every poll cycle re-lists the runs root, so a run
  store *hot-added* while the fleet is busy is picked up on the next
  cycle, no restarts.  The root may be a directory or any
  :class:`~repro.exp.backend.StorageBackend`; each child holding a
  ``manifest.json`` is a run.
* **Heartbeat refresh** — a background :class:`HeartbeatTicker`
  re-stamps every claim the worker holds (every ``ttl/4`` by default),
  so the claim TTL no longer needs to exceed the slowest point's cost:
  a daemon fleet can run short TTLs and still never has a live claim
  stolen, while a SIGKILL-ed daemon's claims go stale one TTL later
  exactly like the single-pass worker's.

Shutdown is cooperative and clean: SIGTERM/SIGINT (or a caller-owned
stop event) stops new claims at the next wave boundary, releases every
claim still held, and returns — completed points are already
checkpointed, so nothing is lost and peers need not wait out the TTL.
"""

from __future__ import annotations

import signal
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.exp.backend import (
    LocalFSBackend,
    PrefixedBackend,
    StorageBackend,
    as_backend,
)
from repro.exp.dist import (
    DEFAULT_SKEW,
    DEFAULT_TTL,
    MANIFEST_NAME,
    ClaimBoard,
    default_owner,
    pending_points,
    run_dist_worker,
)
from repro.exp.grid import GridPoint
from repro.exp.worker import run_point

EchoFn = Callable[[str], None]


@dataclass(frozen=True)
class DaemonConfig:
    """How one ``repro worker`` process should behave.

    ``poll`` is the idle re-discovery interval (seconds); ``max_idle``
    exits after that many consecutive cycles with nothing computed
    (``None`` = run until signalled); ``once`` does a single
    discover-and-drain pass.  ``heartbeat_interval`` defaults to
    ``ttl / 4`` — comfortably more than the two refreshes a claim needs
    per TTL window to survive scheduling hiccups.
    """

    runs_root: Union[str, Path, StorageBackend]
    poll: float = 5.0
    max_idle: Optional[int] = None
    once: bool = False
    owner: Optional[str] = None
    ttl: float = DEFAULT_TTL
    skew: float = DEFAULT_SKEW
    workers: int = 0
    heartbeat_interval: Optional[float] = None

    def interval(self) -> float:
        if self.heartbeat_interval is not None:
            return self.heartbeat_interval
        return max(self.ttl / 4.0, 0.05)


@dataclass
class DaemonStats:
    """What one :func:`serve` call did before it returned."""

    cycles: int = 0
    runs_seen: int = 0
    points_computed: int = 0
    points_skipped: int = 0
    stopped_by: str = ""
    drained_runs: List[str] = field(default_factory=list)


class HeartbeatTicker:
    """Background thread re-stamping a board's held claims.

    Context manager: entering starts the ticker, exiting stops and
    joins it.  The thread calls :meth:`ClaimBoard.refresh_held` every
    ``interval`` seconds, so claims stay fresh for as long as their
    points actually compute — which is what lets a daemon fleet run a
    TTL far below the slowest point's cost without live claims being
    stolen.  A crashed daemon stops ticking, its claims age out, and
    the normal stale-steal recovery applies.
    """

    def __init__(self, board: ClaimBoard, interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.board = board
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "HeartbeatTicker":
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.board.refresh_held()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "HeartbeatTicker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def discover_runs(runs_root: Union[str, Path, StorageBackend]) -> List[str]:
    """Run ids (child names holding a ``manifest.json``) under a root."""
    backend = as_backend(runs_root)
    if isinstance(backend, LocalFSBackend):
        # Don't walk every cache checkpoint of every run per poll cycle.
        # The glob MUST be sorted: directory-entry order is
        # filesystem-dependent, and the fleet's drain order (which run a
        # worker claims first) follows this list (lint rule D004).
        manifests = sorted(backend.root.glob(f"*/{MANIFEST_NAME}"))
        return [path.parent.name for path in manifests]
    runs = set()
    for key in backend.list_prefix(""):
        head, _, tail = key.partition("/")
        if tail == MANIFEST_NAME:
            runs.add(head)
    return sorted(runs)


def run_store(
    runs_root: Union[str, Path, StorageBackend], run_id: str
) -> StorageBackend:
    """The backend view of one run inside a runs root."""
    backend = as_backend(runs_root)
    if isinstance(backend, LocalFSBackend):
        return LocalFSBackend(backend.root / run_id)
    return PrefixedBackend(backend, run_id + "/")


def _install_signal_handlers(
    stop: threading.Event, say: EchoFn
) -> Callable[[], None]:
    """SIGTERM/SIGINT -> set ``stop``; returns an undo function.

    Signal handlers only work from the main thread; a :func:`serve`
    running anywhere else (tests, embedding) relies on the caller's
    stop event instead.
    """
    if threading.current_thread() is not threading.main_thread():
        return lambda: None
    previous = {}

    def handler(signum, frame):
        say(f"received {signal.Signals(signum).name}, shutting down cleanly")
        stop.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            pass

    def restore() -> None:
        for sig, old in previous.items():
            try:
                signal.signal(sig, old)
            except (ValueError, OSError):  # pragma: no cover
                pass

    return restore


def serve(
    config: DaemonConfig,
    point_fn: Callable[[GridPoint], object] = run_point,
    stop: Optional[threading.Event] = None,
    echo: Optional[EchoFn] = None,
) -> DaemonStats:
    """Run the daemon loop until signalled, idle-timed-out, or ``once``.

    Every cycle: re-discover the runs under ``config.runs_root``, and
    for each with pending points run one claim-mode drain with a
    heartbeat ticker keeping this worker's claims fresh.  Between
    cycles the loop sleeps ``config.poll`` seconds (interruptibly).
    Runs observed fully checkpointed are remembered and never re-probed
    — an idle daemon's footprint is one listing per cycle, not one
    existence check per point of every historical run.

    ``stop`` lets an embedding caller (tests, another scheduler) own
    the shutdown; SIGTERM/SIGINT set the same event when :func:`serve`
    runs on the main thread.  Returns a :class:`DaemonStats` summary.
    """
    stop = stop if stop is not None else threading.Event()
    say: EchoFn = echo if echo is not None else (lambda message: None)
    owner = config.owner or default_owner()
    stats = DaemonStats()
    restore = _install_signal_handlers(stop, say)
    say(
        f"worker {owner} serving {config.runs_root} "
        f"(poll {config.poll:g}s, ttl {config.ttl:g}s)"
    )
    try:
        idle = 0
        # runs observed fully checkpointed: never re-probed (a grid is
        # frozen at init, so a complete run stays complete — deleting
        # its checkpoints to force recomputation needs a daemon restart)
        completed = set()
        while not stop.is_set():
            stats.cycles += 1
            computed = 0
            runs = discover_runs(config.runs_root)
            stats.runs_seen = max(stats.runs_seen, len(runs))
            for run_id in runs:
                if stop.is_set():
                    break
                if run_id in completed:
                    continue
                store = run_store(config.runs_root, run_id)
                try:
                    if not pending_points(store):
                        completed.add(run_id)
                        continue
                except ValueError as error:
                    # a half-written or foreign child: skip, keep serving
                    say(f"skipping {run_id}: {error}")
                    continue
                board = ClaimBoard(
                    store, owner=owner, ttl=config.ttl, skew=config.skew
                )
                with HeartbeatTicker(board, config.interval()):
                    result = run_dist_worker(
                        store,
                        owner=owner,
                        ttl=config.ttl,
                        workers=config.workers,
                        point_fn=point_fn,
                        skew=config.skew,
                        board=board,
                        stop=stop.is_set,
                    )
                computed += result.cache_misses
                stats.points_skipped += result.skipped
                if result.cache_misses:
                    say(
                        f"run {run_id}: computed {result.cache_misses}, "
                        f"skipped {result.skipped} (claimed by peers)"
                    )
                    if run_id not in stats.drained_runs:
                        stats.drained_runs.append(run_id)
                if not result.skipped and not pending_points(store):
                    # nothing left and no peer mid-point: done for good
                    completed.add(run_id)
            stats.points_computed += computed
            if config.once:
                stats.stopped_by = "once"
                break
            if computed:
                idle = 0
            else:
                idle += 1
                if config.max_idle is not None and idle >= config.max_idle:
                    stats.stopped_by = "idle"
                    say(
                        f"idle for {idle} cycles, exiting "
                        f"({stats.points_computed} points computed)"
                    )
                    break
            # interruptible sleep: a signal or stop event wakes us early
            stop.wait(config.poll)
        if stop.is_set() and not stats.stopped_by:
            stats.stopped_by = "signal"
    finally:
        restore()
    say(
        f"worker {owner} done: {stats.points_computed} points over "
        f"{stats.cycles} cycle(s) ({stats.stopped_by or 'stopped'})"
    )
    return stats

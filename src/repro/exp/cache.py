"""On-disk result cache for sweep points.

One JSON file per evaluated :class:`~repro.exp.grid.GridPoint`, named by
the point's configuration hash.  Sweeps consult the cache before running a
point and store fresh results afterwards, so

* re-running a sweep costs only the points that changed;
* a grid can be grown (more seeds, more task counts) incrementally;
* concurrent writers are safe: files are written atomically via a
  same-directory temp file + ``os.replace``, and the worst case of a race
  is recomputing one point.

Corrupt or stale-schema entries are treated as misses and overwritten.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.exp.grid import GridPoint
from repro.exp.worker import PointResult


class ResultCache:
    """Content-addressed store of :class:`PointResult` records."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, point: GridPoint) -> Path:
        """The cache file a point maps to."""
        return self.root / f"{point.config_hash()}.json"

    def contains(self, point: GridPoint) -> bool:
        """Whether a file exists for ``point`` (no parse, no hit/miss
        accounting) — the cheap pending-point check the distributed layer
        uses; a subsequent :meth:`get` still validates the contents."""
        return self.path_for(point).exists()

    def get(self, point: GridPoint) -> Optional[PointResult]:
        """Return the cached result for ``point``, or ``None`` on a miss."""
        path = self.path_for(point)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            result = PointResult.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        if result.point != point:  # hash collision or hand-edited file
            self.misses += 1
            return None
        self.hits += 1
        # elapsed measures compute cost; a cache load costs (almost) nothing
        return dataclasses.replace(result, elapsed=0.0)

    def put(self, result: PointResult) -> None:
        """Store a result atomically under its point's hash."""
        path = self.path_for(result.point)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(result.to_dict(), handle, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete all cached entries; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        return removed

"""Result cache for sweep points, on any storage backend.

One JSON record per evaluated :class:`~repro.exp.grid.GridPoint`, keyed
by the point's configuration hash.  Sweeps consult the cache before
running a point and store fresh results afterwards, so

* re-running a sweep costs only the points that changed;
* a grid can be grown (more seeds, more task counts) incrementally;
* concurrent writers are safe: records are published atomically
  (:meth:`~repro.exp.backend.StorageBackend.atomic_replace`), and the
  worst case of a race is recomputing one point — every point is a pure
  function of its coordinates, so the duplicate writes identical bits.

The cache is rooted either in a plain directory (the historical layout:
one ``<hash>.json`` file per point) or in any
:class:`~repro.exp.backend.StorageBackend` under an optional key prefix
— the distributed layer keeps its checkpoints at ``cache/<hash>.json``
inside a run store.

Corrupt or stale-schema entries are treated as misses and overwritten.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Optional, Union

from repro.exp.backend import LocalFSBackend, StorageBackend
from repro.exp.grid import GridPoint
from repro.exp.worker import PointResult


class ResultCache:
    """Content-addressed store of :class:`PointResult` records."""

    def __init__(
        self,
        root: Union[str, Path, StorageBackend],
        prefix: str = "",
    ) -> None:
        if isinstance(root, StorageBackend):
            self.root: Optional[Path] = None
            self.backend = root
        else:
            self.root = Path(root)
            self.root.mkdir(parents=True, exist_ok=True)
            self.backend = LocalFSBackend(self.root)
        self.prefix = prefix.strip("/")
        self.hits = 0
        self.misses = 0

    def key_for(self, point: GridPoint) -> str:
        """The backend key a point maps to."""
        name = f"{point.config_hash()}.json"
        return f"{self.prefix}/{name}" if self.prefix else name

    def path_for(self, point: GridPoint) -> Path:
        """The cache file a point maps to (directory-rooted caches only)."""
        if self.root is None:
            raise TypeError(
                "path_for() needs a directory-rooted cache; this one lives "
                f"on {self.backend!r} — use key_for()"
            )
        return self.root.joinpath(*self.key_for(point).split("/"))

    def contains(self, point: GridPoint) -> bool:
        """Whether a record exists for ``point`` (no parse, no hit/miss
        accounting) — the cheap pending-point check the distributed layer
        uses; a subsequent :meth:`get` still validates the contents."""
        return self.backend.exists(self.key_for(point))

    def get(self, point: GridPoint) -> Optional[PointResult]:
        """Return the cached result for ``point``, or ``None`` on a miss."""
        record = self.backend.read(self.key_for(point))
        try:
            if record is None:
                raise ValueError("missing")
            payload = json.loads(record.data)
            result = PointResult.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        if result.point != point:  # hash collision or hand-edited record
            self.misses += 1
            return None
        self.hits += 1
        # elapsed measures compute cost; a cache load costs (almost) nothing
        return dataclasses.replace(result, elapsed=0.0)

    def put(self, result: PointResult) -> None:
        """Store a result atomically under its point's hash."""
        data = json.dumps(result.to_dict(), indent=1).encode()
        self.backend.atomic_replace(self.key_for(result.point), data)

    def _keys(self):
        prefix = f"{self.prefix}/" if self.prefix else ""
        return [
            key
            for key in self.backend.list_prefix(prefix)
            if key.endswith(".json")
        ]

    def __len__(self) -> int:
        return len(self._keys())

    def clear(self) -> int:
        """Delete all cached entries; returns how many were removed."""
        removed = 0
        for key in self._keys():
            if self.backend.delete(key):
                removed += 1
        return removed

"""Sharded sweep execution over a grid.

:func:`run_grid` is the one entry point: it enumerates a
:class:`~repro.exp.grid.GridSpec`, satisfies what it can from the result
cache, shards the remaining points over a ``multiprocessing`` pool, and
returns a :class:`GridResult` in the grid's deterministic point order.

Because every point is evaluated by the same pure function
(:func:`repro.exp.worker.run_point`) with a seed derived from the point's
own coordinates, the parallel path is bit-identical to the serial one —
``workers`` only changes wall-clock time, never results.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.exp.aggregate import AggregatePoint, aggregate_results, to_sweep
from repro.exp.cache import ResultCache
from repro.exp.grid import GridPoint, GridSpec
from repro.exp.worker import PointResult, run_point

ProgressFn = Callable[[PointResult], None]


@dataclass
class GridResult:
    """All point results of one grid run, in grid order, plus provenance."""

    spec: GridSpec
    results: List[PointResult] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed: float = 0.0

    def sweep(self):
        """Seed-mean results as ``variant -> [SweepPoint]`` (see report.py)."""
        return to_sweep(self.results)

    def aggregate(self) -> Dict[str, List[AggregatePoint]]:
        """Per-cell mean +/- 95% CI over the grid's replication seeds."""
        return aggregate_results(self.results)

    def by_point(self) -> Dict[GridPoint, PointResult]:
        """Index the results by their grid point."""
        return {result.point: result for result in self.results}


def _effective_workers(workers: int, pending: int) -> int:
    """Shards actually worth spawning (never more than pending points)."""
    if workers <= 1 or pending <= 1:
        return 0
    return min(workers, pending)


def run_grid(
    spec: GridSpec,
    workers: int = 0,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressFn] = None,
) -> GridResult:
    """Evaluate every point of ``spec``, in parallel when asked to.

    Parameters
    ----------
    workers:
        0 or 1 runs in-process and serially; ``N > 1`` shards the
        uncached points over ``N`` worker processes.  Results are
        identical either way.
    cache_dir:
        Directory of the on-disk result cache; ``None`` disables caching.
    progress:
        Optional callback invoked with each :class:`PointResult` as it
        becomes available (cache hits first, then computed points in
        completion order).
    """
    started = time.perf_counter()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    points = list(spec.points())
    computed: Dict[GridPoint, PointResult] = {}
    pending: List[GridPoint] = []
    for point in points:
        hit = cache.get(point) if cache is not None else None
        if hit is not None:
            computed[point] = hit
            if progress is not None:
                progress(hit)
        else:
            pending.append(point)
    hits = len(points) - len(pending)

    effective = _effective_workers(workers, len(pending))
    if effective == 0:
        fresh = map(run_point, pending)
    else:
        pool = multiprocessing.Pool(processes=effective)
        # chunksize 1: point costs vary by an order of magnitude across
        # task counts, so fine-grained dispatch keeps the shards balanced
        fresh = pool.imap_unordered(run_point, pending, chunksize=1)
    try:
        for result in fresh:
            computed[result.point] = result
            if cache is not None:
                cache.put(result)
            if progress is not None:
                progress(result)
    finally:
        if effective > 0:
            pool.close()
            pool.join()

    return GridResult(
        spec=spec,
        results=[computed[point] for point in points],
        cache_hits=hits,
        cache_misses=len(pending),
        elapsed=time.perf_counter() - started,
    )

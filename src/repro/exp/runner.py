"""Sharded sweep execution over a grid.

:func:`run_grid` is the one entry point: it enumerates a
:class:`~repro.exp.grid.GridSpec` (or one deterministic shard of it),
satisfies what it can from the result cache, optionally claims the rest
through the distributed claim board (:mod:`repro.exp.dist`), shards the
remaining points over a ``multiprocessing`` pool, and returns a
:class:`GridResult` in the grid's deterministic point order.

Because every point is evaluated by the same pure function
(:func:`repro.exp.worker.run_point`) with a seed derived from the point's
own coordinates, the parallel path is bit-identical to the serial one —
``workers``, ``shard`` and ``claim`` only change *which process computes
what and when*, never the results.

Distribution modes
------------------
``shard=(i, n)``
    Static partition: evaluate only round-robin shard ``i`` of ``n``
    (1-based) — no coordination needed, merge the ``n`` outputs with
    ``python -m repro merge``.
``claim=ClaimConfig(...)``
    Dynamic partition over a shared run directory: pending points are
    atomically claimed before being computed, so any number of
    concurrent ``run_grid`` calls (across hosts) split the grid without
    double-running points; crashed workers' claims go stale and are
    re-claimed after the TTL.  The returned result is this worker's
    slice; points held by other live workers are counted in
    :attr:`GridResult.skipped`.

Either way every completed point is checkpointed through the
:class:`~repro.exp.cache.ResultCache` (when one is configured), which is
what makes interrupted sweeps resumable: a re-run recomputes only the
missing points.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

from repro.exp.aggregate import AggregatePoint, aggregate_results, to_sweep
from repro.exp.cache import ResultCache
from repro.exp.grid import GridPoint, GridSpec
from repro.exp.worker import PointResult, run_point

if TYPE_CHECKING:  # pragma: no cover - circular at runtime, fine for types
    from repro.exp.backend import StorageBackend
    from repro.exp.dist import ClaimConfig

ProgressFn = Callable[[PointResult], None]
PointFn = Callable[[GridPoint], PointResult]


@dataclass
class GridResult:
    """All point results of one grid run, in grid order, plus provenance.

    Under ``shard``/``claim`` the result is *partial*: ``results`` holds
    only this worker's slice (``skipped`` counts the points another live
    worker held at return time); :func:`repro.exp.dist.merge_run` or
    :func:`repro.analysis.persistence.merge_grid_dicts` reassemble the
    whole.

    ``calibration`` is the device-calibration digest the results were
    computed under when that is *known to differ from ambient* — merged
    results carry their validated input fingerprint here so persisting
    them on another host does not re-label them with that host's
    calibration.  ``None`` (fresh runs) means "the ambient calibration".
    """

    spec: GridSpec
    results: List[PointResult] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    skipped: int = 0
    elapsed: float = 0.0
    calibration: Optional[str] = None

    def sweep(self):
        """Seed-mean results as ``variant -> [SweepPoint]`` (see report.py)."""
        return to_sweep(self.results)

    def aggregate(self) -> Dict[str, List[AggregatePoint]]:
        """Per-cell mean +/- 95% CI over the grid's replication seeds."""
        return aggregate_results(self.results)

    def by_point(self) -> Dict[GridPoint, PointResult]:
        """Index the results by their grid point."""
        return {result.point: result for result in self.results}


def _effective_workers(workers: int, pending: int) -> int:
    """Shards actually worth spawning (never more than pending points)."""
    if workers <= 1 or pending <= 1:
        return 0
    return min(workers, pending)


def run_grid(
    spec: GridSpec,
    workers: int = 0,
    cache_dir: Optional[Union[str, Path, "StorageBackend"]] = None,
    progress: Optional[ProgressFn] = None,
    shard: Optional[Tuple[int, int]] = None,
    claim: Optional["ClaimConfig"] = None,
    point_fn: PointFn = run_point,
) -> GridResult:
    """Evaluate every point of ``spec`` this call is responsible for.

    Parameters
    ----------
    workers:
        0 or 1 runs in-process and serially; ``N > 1`` shards the
        uncached points over ``N`` worker processes.  Results are
        identical either way.
    cache_dir:
        Directory (or :class:`~repro.exp.backend.StorageBackend`) of the
        result cache; ``None`` disables caching (defaults to the claim
        run store's ``cache/`` in claim mode).
    progress:
        Optional callback invoked with each :class:`PointResult` as it
        becomes available (cache hits first, then computed points in
        completion order).
    shard:
        Optional 1-based ``(index, count)``: evaluate only that
        round-robin shard of the grid (see :meth:`GridSpec.shard`).
    claim:
        Optional :class:`~repro.exp.dist.ClaimConfig`: atomically claim
        pending points through the shared claim board before computing
        them, so concurrent callers partition the grid dynamically.
        Claiming is lazy — at most ``max(workers, 1)`` points are held
        at a time, so a worker joining mid-sweep immediately finds work,
        no claim outlives its wave (the TTL only needs to cover the
        slowest single wave), and a crash forfeits at most one wave of
        claims.  Points freshly held by another worker are skipped
        (``GridResult.skipped``); stale claims are stolen after the TTL.
    point_fn:
        The per-point evaluation function; the default is the real
        simulator, tests inject pure/fault-injecting stand-ins (a custom
        ``point_fn`` must be picklable to combine with ``workers > 1``).
    """
    started = time.perf_counter()
    board = None
    cache = None
    if claim is not None:
        board = claim.make_board()
        if cache_dir is None:
            cache = claim.make_cache()
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    if shard is not None:
        points = spec.shard(*shard)
    else:
        points = list(spec.points())
    computed: Dict[GridPoint, PointResult] = {}
    pending: List[GridPoint] = []
    skipped = 0
    for point in points:
        hit = cache.get(point) if cache is not None else None
        if hit is not None:
            computed[point] = hit
            if progress is not None:
                progress(hit)
        else:
            pending.append(point)
    hits = len(points) - len(pending)

    effective = _effective_workers(workers, len(pending))
    pool = multiprocessing.Pool(processes=effective) if effective > 0 else None
    fresh_count = 0

    def consume(results):
        nonlocal fresh_count
        for result in results:
            computed[result.point] = result
            fresh_count += 1
            if cache is not None:
                cache.put(result)
            if board is not None:
                board.release(result.point)
            if progress is not None:
                progress(result)

    def compute(batch):
        if pool is not None and len(batch) > 1:
            # chunksize 1: point costs vary by an order of magnitude
            # across task counts, so fine-grained dispatch keeps the
            # shards balanced
            consume(pool.imap_unordered(point_fn, batch, chunksize=1))
        else:
            consume(map(point_fn, batch))

    try:
        if board is None:
            compute(pending)
        else:
            # Lazy wave-based claiming: hold at most one pool's worth of
            # claims at a time, so concurrent workers interleave through
            # the grid point by point instead of one worker fencing off
            # everything pending at its start, and so no claim is held
            # (un-refreshed) longer than one wave of compute.
            wave_size = max(workers, 1)
            cursor = 0
            while cursor < len(pending):
                if claim.should_stop():
                    # a daemon shutting down: stop claiming new work;
                    # the finally block releases anything still held
                    break
                wave: List[GridPoint] = []
                while cursor < len(pending) and len(wave) < wave_size:
                    point = pending[cursor]
                    cursor += 1
                    if not board.try_claim(point):
                        skipped += 1
                        continue
                    # another worker may have checkpointed the point and
                    # released its claim between our cache scan and the
                    # claim — honour the checkpoint over recomputing
                    hit = cache.get(point)
                    if hit is not None:
                        board.release(point)
                        computed[point] = hit
                        hits += 1
                        if progress is not None:
                            progress(hit)
                    else:
                        wave.append(point)
                compute(wave)
    finally:
        if pool is not None:
            pool.close()
            pool.join()
        if board is not None:
            # free claims we still hold on points we never finished
            # (clean failure, an early-terminated pool, or a stop
            # request) so peers need not wait out the TTL; a hard crash
            # skips this and TTL recovery applies
            for point in board.held():
                board.release(point)

    return GridResult(
        spec=spec,
        results=[computed[point] for point in points if point in computed],
        cache_hits=hits,
        cache_misses=fresh_count,
        skipped=skipped,
        elapsed=time.perf_counter() - started,
    )

"""The paper's two evaluation scenarios (Section V).

Scenario 1: a pool of **two** contexts; Scenario 2: a pool of **three**.
Each scenario runs the naive baseline plus SGPRS at over-subscription
levels 1.0x, 1.5x and 2.0x, sweeping the number of identical ResNet18
tasks and reporting total FPS (Figs. 3a/4a) and deadline miss rate
(Figs. 3b/4b).

Execution is delegated to the parallel sweep harness in
:mod:`repro.exp`: :func:`run_scenario_sweep` builds a
:class:`~repro.exp.grid.GridSpec` and runs it with optional worker
sharding, on-disk caching and seed replication; ``workers=0`` with a
single seed reproduces the historical serial behaviour bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.context_pool import ContextPoolConfig
from repro.core.runner import RunConfig, RunResult, run_simulation
from repro.exp.grid import GridPoint, GridSpec, derive_seed, resolve_variant
from repro.exp.runner import run_grid
from repro.exp.worker import run_point
from repro.gpu.spec import RTX_2080_TI, GpuDeviceSpec
from repro.workloads.generator import (
    DEFAULT_NUM_STAGES,
    DEFAULT_PERIOD,
    identical_periodic_tasks,
)
from repro.workloads.synth.scenarios import list_synth_scenarios

#: The over-subscription levels the paper evaluates (SGPRS_os notation).
OVERSUBSCRIPTION_LEVELS: Tuple[float, ...] = (1.0, 1.5, 2.0)


@dataclass(frozen=True)
class Scenario:
    """One evaluation scenario: a context pool size."""

    name: str
    num_contexts: int

    def pool(
        self, oversubscription: float, spec: GpuDeviceSpec = RTX_2080_TI
    ) -> ContextPoolConfig:
        """Pool config at one over-subscription level."""
        return ContextPoolConfig.from_oversubscription(
            self.num_contexts, oversubscription, spec
        )


#: Scenario 1: two contexts (paper Fig. 3).
SCENARIO_1 = Scenario(name="scenario1", num_contexts=2)
#: Scenario 2: three contexts (paper Fig. 4).
SCENARIO_2 = Scenario(name="scenario2", num_contexts=3)

#: The paper's homogeneous scenarios by name (aliases included).
PAPER_SCENARIOS: Dict[str, Scenario] = {
    "scenario1": SCENARIO_1,
    "scenario2": SCENARIO_2,
    "1": SCENARIO_1,
    "2": SCENARIO_2,
}


def list_all_scenarios() -> List[Tuple[str, str]]:
    """Every runnable scenario name with a one-line description.

    Combines the paper's homogeneous scenarios with the registered
    heterogeneous synthesis scenarios (``mixed_fleet`` etc.); this is what
    ``python -m repro sweep --list-scenarios`` prints.
    """
    entries: List[Tuple[str, str]] = [
        (
            SCENARIO_1.name,
            "paper Fig. 3: identical ResNet18 tasks, 2 contexts",
        ),
        (
            SCENARIO_2.name,
            "paper Fig. 4: identical ResNet18 tasks, 3 contexts",
        ),
    ]
    entries.extend(
        (scenario.name, scenario.description)
        for scenario in list_synth_scenarios()
    )
    return entries


@dataclass
class SweepPoint:
    """One (scheduler variant, task count) measurement.

    ``target_utilization`` distinguishes the columns of a synthesized
    utilization-axis sweep (0.0 on the paper's identical-task sweeps,
    where the axis does not exist); ``utilization`` stays the *measured*
    device utilization.
    """

    variant: str
    num_tasks: int
    total_fps: float
    dmr: float
    utilization: float
    target_utilization: float = 0.0


def sweep_point(
    scenario: Scenario,
    variant: str,
    num_tasks: int,
    duration: float = 6.0,
    warmup: float = 1.5,
    spec: GpuDeviceSpec = RTX_2080_TI,
    num_stages: int = DEFAULT_NUM_STAGES,
    period: float = DEFAULT_PERIOD,
    seed: int = 0,
    work_jitter_cv: float = 0.0,
) -> SweepPoint:
    """Run one point of a scenario sweep.

    ``variant`` is ``"naive"`` or ``"sgprs_<os>"`` with ``<os>`` one of the
    over-subscription levels, e.g. ``"sgprs_1.5"``.  On the default device
    this routes through :func:`repro.exp.worker.run_point` — the same code
    path the parallel harness shards over processes, with the same
    per-point seed derivation, so a standalone point is bit-identical to
    the corresponding cell of a grid run with the same replication seed.
    """
    if spec == RTX_2080_TI:
        # mirror GridSpec.points(): with jitter the simulation seed is
        # derived from the point's coordinates so distinct points never
        # share a jitter stream; without jitter the RNG is never used
        run_seed = (
            derive_seed(seed, scenario.name, variant, num_tasks)
            if work_jitter_cv > 0.0
            else seed
        )
        result = run_point(
            GridPoint(
                scenario=scenario.name,
                num_contexts=scenario.num_contexts,
                variant=variant,
                num_tasks=num_tasks,
                seed=run_seed,
                base_seed=seed,
                duration=duration,
                warmup=warmup,
                work_jitter_cv=work_jitter_cv,
                num_stages=num_stages,
                period=period,
            )
        )
        return SweepPoint(
            variant=variant,
            num_tasks=num_tasks,
            total_fps=result.total_fps,
            dmr=result.dmr,
            utilization=result.utilization,
        )
    # Non-default device specs fall back to a direct run (the grid harness
    # is pinned to the paper's RTX 2080 Ti).
    scheduler, oversubscription, task_stages = resolve_variant(
        variant, num_stages
    )
    pool = scenario.pool(oversubscription, spec)
    tasks = identical_periodic_tasks(
        count=num_tasks,
        nominal_sms=pool.sms_per_context,
        period=period,
        num_stages=task_stages,
    )
    result: RunResult = run_simulation(
        tasks,
        RunConfig(
            pool=pool,
            scheduler=scheduler,
            duration=duration,
            warmup=warmup,
            spec=spec,
            work_jitter_cv=work_jitter_cv,
            seed=seed,
        ),
    )
    return SweepPoint(
        variant=variant,
        num_tasks=num_tasks,
        total_fps=result.total_fps,
        dmr=result.dmr,
        utilization=result.utilization,
    )


def default_variants() -> List[str]:
    """Naive plus the three SGPRS over-subscription variants."""
    return ["naive"] + [f"sgprs_{os:g}" for os in OVERSUBSCRIPTION_LEVELS]


def scenario_grid(
    scenario: Scenario,
    task_counts: Sequence[int],
    variants: Optional[Sequence[str]] = None,
    duration: float = 6.0,
    warmup: float = 1.5,
    seeds: Sequence[int] = (0,),
    work_jitter_cv: float = 0.0,
    num_stages: int = DEFAULT_NUM_STAGES,
    arrivals: Sequence[str] = ("periodic",),
    admission: str = "",
) -> GridSpec:
    """The :class:`GridSpec` behind one scenario sweep."""
    return GridSpec.from_scenario(
        scenario,
        variants=tuple(variants) if variants is not None else tuple(default_variants()),
        task_counts=tuple(task_counts),
        seeds=tuple(seeds),
        duration=duration,
        warmup=warmup,
        work_jitter_cv=work_jitter_cv,
        num_stages=num_stages,
        arrivals=tuple(arrivals),
        admission=admission,
    )


def run_scenario_sweep(
    scenario: Scenario,
    task_counts: Sequence[int],
    variants: Optional[Sequence[str]] = None,
    duration: float = 6.0,
    warmup: float = 1.5,
    workers: int = 0,
    cache_dir: Optional[Union[str, Path]] = None,
    seeds: Sequence[int] = (0,),
    work_jitter_cv: float = 0.0,
) -> Dict[str, List[SweepPoint]]:
    """Full sweep of one scenario: variant -> points ordered by task count.

    Regenerates the data behind Figs. 3 and 4 (scenario 1 and 2) through
    the parallel harness.  ``workers`` shards points over processes,
    ``cache_dir`` enables the on-disk result cache, and ``seeds`` runs each
    cell once per replication seed (the returned points are seed means).
    Defaults reproduce the historical serial single-seed sweep exactly.
    """
    grid = scenario_grid(
        scenario,
        task_counts,
        variants,
        duration,
        warmup,
        seeds=seeds,
        work_jitter_cv=work_jitter_cv,
    )
    return run_grid(grid, workers=workers, cache_dir=cache_dir).sweep()

"""The paper's two evaluation scenarios (Section V).

Scenario 1: a pool of **two** contexts; Scenario 2: a pool of **three**.
Each scenario runs the naive baseline plus SGPRS at over-subscription
levels 1.0x, 1.5x and 2.0x, sweeping the number of identical ResNet18
tasks and reporting total FPS (Figs. 3a/4a) and deadline miss rate
(Figs. 3b/4b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.core.context_pool import ContextPoolConfig
from repro.core.naive import NaiveScheduler
from repro.core.runner import RunConfig, RunResult, run_simulation
from repro.core.scheduler import SchedulerBase
from repro.core.sgprs import SgprsScheduler
from repro.gpu.spec import RTX_2080_TI, GpuDeviceSpec
from repro.workloads.generator import (
    DEFAULT_NUM_STAGES,
    DEFAULT_PERIOD,
    identical_periodic_tasks,
)

#: The over-subscription levels the paper evaluates (SGPRS_os notation).
OVERSUBSCRIPTION_LEVELS: Tuple[float, ...] = (1.0, 1.5, 2.0)


@dataclass(frozen=True)
class Scenario:
    """One evaluation scenario: a context pool size."""

    name: str
    num_contexts: int

    def pool(
        self, oversubscription: float, spec: GpuDeviceSpec = RTX_2080_TI
    ) -> ContextPoolConfig:
        """Pool config at one over-subscription level."""
        return ContextPoolConfig.from_oversubscription(
            self.num_contexts, oversubscription, spec
        )


#: Scenario 1: two contexts (paper Fig. 3).
SCENARIO_1 = Scenario(name="scenario1", num_contexts=2)
#: Scenario 2: three contexts (paper Fig. 4).
SCENARIO_2 = Scenario(name="scenario2", num_contexts=3)


@dataclass
class SweepPoint:
    """One (scheduler variant, task count) measurement."""

    variant: str
    num_tasks: int
    total_fps: float
    dmr: float
    utilization: float


def sweep_point(
    scenario: Scenario,
    variant: str,
    num_tasks: int,
    duration: float = 6.0,
    warmup: float = 1.5,
    spec: GpuDeviceSpec = RTX_2080_TI,
    num_stages: int = DEFAULT_NUM_STAGES,
    period: float = DEFAULT_PERIOD,
) -> SweepPoint:
    """Run one point of a scenario sweep.

    ``variant`` is ``"naive"`` or ``"sgprs_<os>"`` with ``<os>`` one of the
    over-subscription levels, e.g. ``"sgprs_1.5"``.
    """
    scheduler: Type[SchedulerBase]
    if variant == "naive":
        scheduler = NaiveScheduler
        oversubscription = 1.0
        task_stages = 1  # the naive baseline does not divide tasks
    elif variant.startswith("sgprs_"):
        scheduler = SgprsScheduler
        oversubscription = float(variant.split("_", 1)[1])
        task_stages = num_stages
    else:
        raise ValueError(f"unknown variant {variant!r}")
    pool = scenario.pool(oversubscription, spec)
    tasks = identical_periodic_tasks(
        count=num_tasks,
        nominal_sms=pool.sms_per_context,
        period=period,
        num_stages=task_stages,
    )
    result: RunResult = run_simulation(
        tasks,
        RunConfig(pool=pool, scheduler=scheduler, duration=duration, warmup=warmup),
    )
    return SweepPoint(
        variant=variant,
        num_tasks=num_tasks,
        total_fps=result.total_fps,
        dmr=result.dmr,
        utilization=result.utilization,
    )


def default_variants() -> List[str]:
    """Naive plus the three SGPRS over-subscription variants."""
    return ["naive"] + [f"sgprs_{os:g}" for os in OVERSUBSCRIPTION_LEVELS]


def run_scenario_sweep(
    scenario: Scenario,
    task_counts: Sequence[int],
    variants: Optional[Sequence[str]] = None,
    duration: float = 6.0,
    warmup: float = 1.5,
) -> Dict[str, List[SweepPoint]]:
    """Full sweep of one scenario: variant -> points ordered by task count.

    Regenerates the data behind Figs. 3 and 4 (scenario 1 and 2).
    """
    variants = list(variants) if variants is not None else default_variants()
    results: Dict[str, List[SweepPoint]] = {variant: [] for variant in variants}
    for variant in variants:
        for count in task_counts:
            results[variant].append(
                sweep_point(scenario, variant, count, duration, warmup)
            )
    return results

"""Utilization-axis sweeps over synthesized workloads.

The paper sweeps *task count*; on heterogeneous tasksets the natural load
axis is the **target total utilization** — task count fixes the mix
granularity while utilization ramps the pressure.  :func:`synth_grid`
builds the corresponding :class:`~repro.exp.grid.GridSpec` (variant x
task count x utilization x seed) and :func:`run_synth_sweep` executes it
through the parallel harness, with the same sharding / caching /
replication knobs as every other sweep.

Imported separately from :mod:`repro.workloads.synth` because it depends
on :mod:`repro.exp` (which itself depends on workloads).

Example — an SGPRS-vs-naive pivot sweep over utilization::

    from repro.workloads.synth.sweep import run_synth_sweep, utilization_pivots
    result = run_synth_sweep(
        "util_ramp", utilizations=(1.0, 2.0, 3.0), task_counts=(6,),
        variants=("naive", "sgprs_1.5"), duration=1.5, warmup=0.5,
    )
    pivots = utilization_pivots(result.results)   # variant -> pivot util
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.exp.grid import GridSpec
from repro.exp.runner import GridResult, run_grid
from repro.workloads.scenarios import default_variants
from repro.workloads.synth.scenarios import get_synth_scenario


def synth_grid(
    scenario_name: str,
    utilizations: Sequence[float] = (),
    task_counts: Sequence[int] = (8,),
    variants: Optional[Sequence[str]] = None,
    duration: float = 2.5,
    warmup: float = 1.0,
    seeds: Sequence[int] = (0,),
    work_jitter_cv: float = 0.0,
    period_class: str = "",
    zoo_mix: str = "",
    deadline_mode: str = "",
    arrivals: Sequence[str] = ("periodic",),
    admission: str = "",
) -> GridSpec:
    """The :class:`GridSpec` of one synthesized-workload sweep.

    ``scenario_name`` must be a registered synth scenario; empty-string
    axis overrides fall back to its defaults.  An empty ``utilizations``
    runs a single column at the scenario's default target.
    """
    scenario = get_synth_scenario(scenario_name)
    return GridSpec(
        scenario=scenario.name,
        num_contexts=scenario.num_contexts,
        variants=(
            tuple(variants) if variants is not None else tuple(default_variants())
        ),
        task_counts=tuple(task_counts),
        seeds=tuple(seeds),
        duration=duration,
        warmup=warmup,
        work_jitter_cv=work_jitter_cv,
        workload=scenario.name,
        utilizations=tuple(utilizations),
        period_class=period_class,
        zoo_mix=zoo_mix,
        deadline_mode=deadline_mode,
        arrivals=tuple(arrivals),
        admission=admission,
    )


def run_synth_sweep(
    scenario_name: str,
    utilizations: Sequence[float] = (),
    task_counts: Sequence[int] = (8,),
    variants: Optional[Sequence[str]] = None,
    duration: float = 2.5,
    warmup: float = 1.0,
    seeds: Sequence[int] = (0,),
    workers: int = 0,
    cache_dir: Optional[Union[str, Path]] = None,
    work_jitter_cv: float = 0.0,
    period_class: str = "",
    zoo_mix: str = "",
    deadline_mode: str = "",
) -> GridResult:
    """Run a synthesized-workload sweep through the parallel harness."""
    grid = synth_grid(
        scenario_name,
        utilizations=utilizations,
        task_counts=task_counts,
        variants=variants,
        duration=duration,
        warmup=warmup,
        seeds=seeds,
        work_jitter_cv=work_jitter_cv,
        period_class=period_class,
        zoo_mix=zoo_mix,
        deadline_mode=deadline_mode,
    )
    return run_grid(grid, workers=workers, cache_dir=cache_dir)


def utilization_pivots(
    results, dmr_tolerance: float = 0.0
) -> Dict[str, Optional[float]]:
    """Per-variant pivot utilization of a sweep's results.

    Thin re-export of
    :func:`repro.analysis.pivot.utilization_pivot_table` so sweep callers
    get pivots without importing the analysis package themselves.
    """
    from repro.analysis.pivot import utilization_pivot_table

    return utilization_pivot_table(results, dmr_tolerance)

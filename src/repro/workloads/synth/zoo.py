"""The model zoo: named graph builders and weighted mixes.

The synthesis subsystem selects each task's network from a registry of
zero-argument graph builders spanning real dynamic range — from the
~0.25 ms MLP-Mixer chain to the ~140 ms ResNet34 — and mixes them
according to named weight vectors (``zoo mixes``), which are a sweepable
axis of the experiment grid.

Registering a model or mix is enough to make it sweepable::

    from repro.workloads.synth import zoo
    zoo.register_model("my_net", build_my_net, "custom detector")
    zoo.register_mix("my_mix", (("my_net", 0.5), ("resnet18", 0.5)))
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.dnn.graph import LayerGraph
from repro.dnn.mixer import build_mlp_mixer
from repro.dnn.mobilenet import build_mobilenet_small
from repro.dnn.models import build_mlp, build_simple_cnn, build_vgg11
from repro.dnn.resnet import build_resnet18, build_resnet34


@dataclass(frozen=True)
class ZooModel:
    """One registered network: a zero-argument builder plus metadata."""

    key: str
    builder: Callable[[], LayerGraph]
    description: str


MODEL_ZOO: Dict[str, ZooModel] = {}


def register_model(
    key: str, builder: Callable[[], LayerGraph], description: str = ""
) -> None:
    """Add a network to the zoo under ``key`` (overwrites silently)."""
    if not key:
        raise ValueError("model key must be non-empty")
    MODEL_ZOO[key] = ZooModel(key=key, builder=builder, description=description)


def get_model(key: str) -> ZooModel:
    """Look up a zoo entry; raises ``KeyError`` with the known keys."""
    try:
        return MODEL_ZOO[key]
    except KeyError:
        raise KeyError(
            f"unknown zoo model {key!r}; known: {sorted(MODEL_ZOO)}"
        ) from None


def list_models() -> List[ZooModel]:
    """All registered models in registration order."""
    return list(MODEL_ZOO.values())


register_model("resnet18", build_resnet18, "the paper's benchmark (~3.6 GFLOPs)")
register_model("resnet34", build_resnet34, "deeper ResNet (~7.3 GFLOPs)")
register_model("vgg11", build_vgg11, "conv-heavy with a huge FC head (~15 GFLOPs)")
register_model(
    "mobilenet_small",
    build_mobilenet_small,
    "depthwise-separable edge net (~52 MFLOPs)",
)
register_model(
    "mlp_mixer", build_mlp_mixer, "all-linear mixer chain (~13 MFLOPs)"
)
register_model("simple_cnn", build_simple_cnn, "LeNet-style mini CNN (~4 MFLOPs)")
register_model("mlp", build_mlp, "plain MLP, linear/ReLU only (~1 MFLOP)")


#: A zoo mix: ``(model key, weight)`` pairs; weights need not sum to 1.
Mix = Tuple[Tuple[str, float], ...]

ZOO_MIXES: Dict[str, Mix] = {}


def register_mix(name: str, mix: Mix) -> None:
    """Register a named mix after validating its models and weights."""
    if not mix:
        raise ValueError("mix must be non-empty")
    for key, weight in mix:
        get_model(key)
        if weight <= 0:
            raise ValueError(f"mix {name!r}: weight for {key!r} must be > 0")
    ZOO_MIXES[name] = tuple(mix)


def get_mix(name: str) -> Mix:
    """Look up a named mix; raises ``KeyError`` with the known names."""
    try:
        return ZOO_MIXES[name]
    except KeyError:
        raise KeyError(
            f"unknown zoo mix {name!r}; known: {sorted(ZOO_MIXES)}"
        ) from None


def list_mixes() -> Dict[str, Mix]:
    """All registered mixes."""
    return dict(ZOO_MIXES)


register_mix("resnet18_only", (("resnet18", 1.0),))
register_mix(
    "fleet",
    (("resnet18", 0.45), ("mobilenet_small", 0.30), ("resnet34", 0.25)),
)
register_mix(
    "surveillance",
    (("resnet18", 0.60), ("simple_cnn", 0.25), ("mobilenet_small", 0.15)),
)
register_mix(
    "edge",
    (("mobilenet_small", 0.40), ("simple_cnn", 0.35), ("mlp_mixer", 0.25)),
)
register_mix("heavyweight", (("resnet34", 0.60), ("vgg11", 0.40)))


def pick_model(mix_name: str, rng: random.Random) -> str:
    """Draw one model key from a named mix, weighted, via ``rng``.

    Consumes exactly one ``rng.random()`` call regardless of mix size, so
    the synthesis RNG stream stays stable when mixes are re-weighted.
    """
    mix = get_mix(mix_name)
    total = sum(weight for _, weight in mix)
    draw = rng.random() * total
    cumulative = 0.0
    for key, weight in mix:
        cumulative += weight
        if draw < cumulative:
            return key
    return mix[-1][0]  # float residue lands on the last entry

"""Declarative description of one synthesized taskset.

A :class:`SynthSpec` is to taskset synthesis what a
:class:`~repro.exp.grid.GridPoint` is to a sweep point: frozen, hashable,
JSON-round-trippable, and a *complete* determinant of the output — the
same spec always synthesizes the bit-identical taskset.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Tuple

#: Recognised period-assignment modes (see synth.taskset).
PERIOD_CLASSES: Tuple[str, ...] = ("implied", "camera", "loguniform")

#: Recognised deadline modes.
DEADLINE_MODES: Tuple[str, ...] = ("implicit", "constrained")


@dataclass(frozen=True)
class SynthSpec:
    """Everything that determines one synthesized taskset.

    Attributes
    ----------
    num_tasks:
        Taskset size.
    total_utilization:
        Target sum of per-task utilizations (WCET over period, measured at
        the nominal partition size).  The synthesizer hits this exactly up
        to float rounding, whatever the period class.
    zoo_mix:
        Named model mix (see :mod:`repro.workloads.synth.zoo`).
    period_class:
        ``"implied"`` keeps each task's UUniFast-implied period
        (``WCET / u_i``); ``"camera"`` snaps it to the nearest rung of the
        harmonic camera ladder (``15 * 2^k`` fps — the 15/30/60 fps family);
        ``"loguniform"`` spreads it by a log-uniform factor.  The latter
        two then re-scale all periods by one global factor so the total
        utilization lands on target exactly — camera-class rates therefore
        keep exact octave *ratios* rather than the absolute rungs.
    deadline_mode:
        ``"implicit"`` sets ``D_i = T_i``; ``"constrained"`` draws
        ``D_i = T_i * U(ratio_lo, ratio_hi)``.
    stage_choices:
        Per-task stage counts are drawn uniformly from this tuple.
    max_task_utilization:
        UUniFast-discard per-task cap.  Self-relaxing: when the target
        total divided by the task count leaves less than 2x headroom under
        the cap, the synthesizer floors the cap at twice the mean share so
        rejection sampling stays feasible and fast.
    constrained_ratio:
        ``(lo, hi)`` of the constrained-deadline ratio draw.
    loguniform_spread:
        Half-spread factor ``j`` of the log-uniform period jitter: each
        period is multiplied by ``exp(U(-ln j, +ln j))``.
    stagger:
        Draw each task's release offset uniformly in ``[0, T_i)``; with
        ``False`` all tasks release synchronously at t=0.
    seed:
        Synthesis RNG seed.
    """

    num_tasks: int
    total_utilization: float
    zoo_mix: str = "fleet"
    period_class: str = "camera"
    deadline_mode: str = "implicit"
    stage_choices: Tuple[int, ...] = (4, 6, 8)
    max_task_utilization: float = 0.8
    constrained_ratio: Tuple[float, float] = (0.7, 1.0)
    loguniform_spread: float = 3.0
    stagger: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError(f"num_tasks must be >= 1, got {self.num_tasks}")
        if self.total_utilization <= 0:
            raise ValueError(
                f"total_utilization must be positive, got {self.total_utilization}"
            )
        if self.period_class not in PERIOD_CLASSES:
            raise ValueError(
                f"period_class must be one of {PERIOD_CLASSES}, "
                f"got {self.period_class!r}"
            )
        if self.deadline_mode not in DEADLINE_MODES:
            raise ValueError(
                f"deadline_mode must be one of {DEADLINE_MODES}, "
                f"got {self.deadline_mode!r}"
            )
        if not self.stage_choices or any(s < 1 for s in self.stage_choices):
            raise ValueError(
                f"stage_choices must be non-empty positive, got {self.stage_choices}"
            )
        if self.max_task_utilization <= 0:
            raise ValueError("max_task_utilization must be positive")
        lo, hi = self.constrained_ratio
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError(
                f"constrained_ratio must satisfy 0 < lo <= hi <= 1, "
                f"got {self.constrained_ratio}"
            )
        if self.loguniform_spread < 1.0:
            raise ValueError(
                f"loguniform_spread must be >= 1, got {self.loguniform_spread}"
            )

    def config_dict(self) -> dict:
        """Canonical JSON-serialisable form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SynthSpec":
        """Inverse of :meth:`config_dict` (tuples restored from lists)."""
        fields = dict(payload)
        for key in ("stage_choices", "constrained_ratio"):
            if key in fields:
                fields[key] = tuple(fields[key])
        return cls(**fields)

"""UUniFast(-discard) utilization partitioning.

The classic real-time taskset generators: UUniFast (Bini & Buttazzo 2005)
draws ``n`` per-task utilizations uniformly over the simplex summing to a
target total; the *discard* variant (Davis & Burns 2009) rejects samples
containing a task above a per-task cap, restoring uniformity under the
constraint instead of skewing it.

Both take an explicit ``random.Random`` so synthesis is a pure function
of its seed — the sweep harness relies on that for bit-identical
regeneration and config-hash caching.
"""

from __future__ import annotations

import random
from typing import List

#: Bail out of rejection sampling after this many rounds.
DEFAULT_MAX_ROUNDS = 1000


def uunifast(
    n: int, total_utilization: float, rng: random.Random
) -> List[float]:
    """``n`` utilizations uniformly distributed over the simplex.

    The returned values are positive and sum to ``total_utilization``
    exactly (the chain telescopes, so the sum carries no float residue
    beyond the target itself).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if total_utilization <= 0:
        raise ValueError(
            f"total_utilization must be positive, got {total_utilization}"
        )
    utilizations: List[float] = []
    remaining = total_utilization
    for i in range(1, n):
        next_remaining = remaining * rng.random() ** (1.0 / (n - i))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def uunifast_discard(
    n: int,
    total_utilization: float,
    rng: random.Random,
    max_utilization: float = 1.0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> List[float]:
    """UUniFast with whole-sample rejection above a per-task cap.

    Raises
    ------
    ValueError
        If the cap makes the target infeasible (``n * max_utilization``
        below the total).
    RuntimeError
        If no admissible sample appears within ``max_rounds`` draws
        (practically impossible for feasible parameters).
    """
    if max_utilization <= 0:
        raise ValueError(
            f"max_utilization must be positive, got {max_utilization}"
        )
    if n * max_utilization < total_utilization:
        raise ValueError(
            f"infeasible: {n} tasks capped at {max_utilization} cannot "
            f"reach total utilization {total_utilization}"
        )
    for _ in range(max_rounds):
        sample = uunifast(n, total_utilization, rng)
        if max(sample) <= max_utilization:
            return sample
    raise RuntimeError(
        f"uunifast_discard: no admissible sample in {max_rounds} rounds "
        f"(n={n}, total={total_utilization}, cap={max_utilization})"
    )

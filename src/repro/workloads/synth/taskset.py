"""Utilization-driven synthesis of heterogeneous periodic DNN tasksets.

The pipeline, driven entirely by one seeded ``random.Random``:

1. **UUniFast-discard** partitions the target total utilization into
   per-task shares ``u_i`` under a per-task cap.
2. Each task draws a **model** from the spec's zoo mix, a **stage count**
   from the spec's choices, a constrained-**deadline ratio**, a release
   **offset fraction** and a log-uniform **period jitter** (every draw
   happens for every task in a fixed order, so the stream — and hence the
   taskset — is invariant to which modes are enabled).
3. The task's WCET ``C_i`` comes from the offline-profiled template of its
   (model, stage count) pair; its **implied period** is ``T_i = C_i/u_i``.
4. The **period class** reshapes the periods (camera snap / log-uniform
   spread), after which one global scale factor restores the target total
   utilization exactly.
5. Deadlines (implicit or constrained) and virtual stage deadlines are
   assigned, and the tasks are wrapped in a validated ``TaskSet``.

Because stage partitioning splits the same operator sequence, a task's
total WCET is independent of its stage count — so a naive (monolithic)
variant and an SGPRS variant synthesized from the same spec see the *same*
periods and deadlines, differing only in stage structure.  That is what
makes scheduler comparisons on synthesized tasksets apples-to-apples.
"""

from __future__ import annotations

import copy
import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.deadlines import apply_virtual_deadlines
from repro.core.task import TaskSpec, TaskSet
from repro.speedup.calibration import DEFAULT_CALIBRATION, DeviceCalibration
from repro.workloads.generator import template_task
from repro.workloads.synth.spec import SynthSpec
from repro.workloads.synth.uunifast import uunifast_discard
from repro.workloads.synth.zoo import get_model, pick_model

#: Base rate of the camera ladder: the "camera" period class snaps each
#: task to the nearest rate of the harmonic family ``15 * 2^k`` fps —
#: 15/30/60 fps are the paper-relevant rungs, extended both ways so light
#: models (fast implied rates) and heavy models (slow implied rates) land
#: on plausible camera-like rates without huge distortion (snapping is
#: within sqrt(2) of the implied period, keeping per-task utilizations
#: near their UUniFast shares).  After snapping, the global
#: utilization-restoring rescale shifts all rates by one common factor,
#: so the output keeps the ladder's exact octave ratios rather than the
#: absolute rungs.
CAMERA_BASE_FPS = 15.0

#: The ladder's exponent range: 15/2^2 ~ 3.75 fps up to 15*2^6 = 960 fps.
_CAMERA_LADDER_RANGE = (-2, 6)

#: The paper-relevant rungs (kept as a public constant for tests/docs).
CAMERA_PERIODS: Tuple[float, ...] = (1.0 / 15.0, 1.0 / 30.0, 1.0 / 60.0)

#: Canonical template period; templates are period-agnostic (WCETs and
#: composites do not depend on it), so one cache entry serves all tasks.
_TEMPLATE_PERIOD = 1.0


@dataclass(frozen=True)
class _Draws:
    """Per-task RNG draws, in stream order."""

    model: str
    num_stages: int
    deadline_ratio: float
    offset_fraction: float
    period_jitter: float


def _draw_tasks(spec: SynthSpec, rng: random.Random) -> List[_Draws]:
    draws: List[_Draws] = []
    log_spread = math.log(spec.loguniform_spread)
    for _ in range(spec.num_tasks):
        model = pick_model(spec.zoo_mix, rng)
        num_stages = spec.stage_choices[rng.randrange(len(spec.stage_choices))]
        ratio = rng.uniform(*spec.constrained_ratio)
        offset_fraction = rng.random()
        jitter = math.exp(rng.uniform(-log_spread, log_spread))
        draws.append(
            _Draws(model, num_stages, ratio, offset_fraction, jitter)
        )
    return draws


def _snap_to_camera(period: float) -> float:
    """Nearest rung of the harmonic camera ladder (``15 * 2^k`` fps)."""
    lo, hi = _CAMERA_LADDER_RANGE
    exponent = round(math.log2(1.0 / (period * CAMERA_BASE_FPS)))
    exponent = min(hi, max(lo, exponent))
    return 1.0 / (CAMERA_BASE_FPS * 2.0 ** exponent)


def _instantiate(
    template: TaskSpec,
    name: str,
    period: float,
    relative_deadline: float,
    release_offset: float,
) -> TaskSpec:
    """Clone a template's stages under new timing parameters.

    Unlike :func:`repro.workloads.generator.clone_task`, the period and
    deadline change, so virtual stage deadlines are re-derived.
    """
    task = TaskSpec(
        name=name,
        graph=template.graph,
        period=period,
        relative_deadline=relative_deadline,
        release_offset=release_offset,
    )
    task.stages = [copy.copy(stage) for stage in template.stages]
    apply_virtual_deadlines(task)
    return task


def synthesize_taskset(
    spec: SynthSpec,
    nominal_sms: float,
    calibration: DeviceCalibration = DEFAULT_CALIBRATION,
    monolithic: bool = False,
) -> TaskSet:
    """Generate the taskset described by ``spec``.

    Parameters
    ----------
    nominal_sms:
        Partition size the offline phase profiles WCETs at (the pool's
        per-context SM count), as for the homogeneous generators.
    monolithic:
        Collapse every task to a single stage (the naive baseline's job
        shape) *without* consuming different RNG draws — periods,
        deadlines and offsets are identical to the staged taskset from
        the same spec.
    """
    rng = random.Random(spec.seed)
    # Task draws come FIRST on the stream: uunifast_discard consumes a
    # rejection-dependent number of rng calls, and the rejection count
    # varies with the utilization target — drawing models/stages/deadlines
    # before it keeps the task mix invariant across a utilization axis
    # (specs differing only in total_utilization synthesize the same mix).
    draws = _draw_tasks(spec, rng)
    # The discard cap self-relaxes when the target is high for the task
    # count: below 2x the mean share, rejection sampling would grind (or
    # become infeasible outright), so the cap floors at that slack level.
    effective_cap = max(
        spec.max_task_utilization,
        2.0 * spec.total_utilization / spec.num_tasks,
    )
    utilizations = uunifast_discard(
        spec.num_tasks,
        spec.total_utilization,
        rng,
        max_utilization=effective_cap,
    )

    templates = []
    wcets = []
    for draw in draws:
        num_stages = 1 if monolithic else draw.num_stages
        model = get_model(draw.model)
        templates.append(
            template_task(
                model.builder,
                model.key,
                _TEMPLATE_PERIOD,
                num_stages,
                nominal_sms,
                calibration,
            )
        )
        # Period math always uses the single-stage (whole-network) WCET:
        # a staged partition sums the same per-operator times in a
        # different order, which can shift the total by an ulp — enough to
        # make monolithic (naive) and staged (SGPRS) tasksets disagree on
        # periods in the last bit.  The canonical basis keeps every
        # variant of one spec bit-identical in timing.
        wcets.append(
            template_task(
                model.builder,
                model.key,
                _TEMPLATE_PERIOD,
                1,
                nominal_sms,
                calibration,
            ).total_wcet
        )
    periods = [wcet / u for wcet, u in zip(wcets, utilizations)]
    if spec.period_class == "camera":
        periods = [_snap_to_camera(period) for period in periods]
    elif spec.period_class == "loguniform":
        periods = [
            period * draw.period_jitter
            for period, draw in zip(periods, draws)
        ]
    # One global re-scale restores the target total utilization exactly
    # (a no-op for the "implied" class up to float rounding).
    achieved = sum(wcet / period for wcet, period in zip(wcets, periods))
    scale = achieved / spec.total_utilization
    periods = [period * scale for period in periods]

    tasks: List[TaskSpec] = []
    for index, (draw, template, period) in enumerate(
        zip(draws, templates, periods)
    ):
        if spec.deadline_mode == "constrained":
            deadline = period * draw.deadline_ratio
        else:
            deadline = period
        offset = draw.offset_fraction * period if spec.stagger else 0.0
        tasks.append(
            _instantiate(
                template,
                name=f"synth{index}_{draw.model}",
                period=period,
                relative_deadline=deadline,
                release_offset=offset,
            )
        )
    task_set = TaskSet(tasks)
    task_set.validate()
    return task_set


def describe_taskset(task_set: TaskSet) -> str:
    """Human-readable per-task table (the ``repro synth`` CLI output)."""
    header = f"{'task':<24} {'fps':>7} {'stages':>6} {'wcet_ms':>8} {'util':>6} {'D/T':>5}"
    lines = [header, "-" * len(header)]
    for task in task_set:
        lines.append(
            f"{task.name:<24} {task.fps:>7.2f} {task.num_stages:>6d} "
            f"{task.total_wcet * 1e3:>8.3f} {task.utilization():>6.3f} "
            f"{task.relative_deadline / task.period:>5.2f}"
        )
    lines.append(
        f"{'total':<24} {task_set.total_demand_fps():>7.2f} {'':>6} {'':>8} "
        f"{task_set.total_utilization():>6.3f}"
    )
    return "\n".join(lines)


def taskset_signature(task_set: TaskSet) -> Sequence[Tuple]:
    """Structural fingerprint used by determinism/golden tests."""
    return tuple(
        (
            task.name,
            round(task.period, 12),
            round(task.relative_deadline, 12),
            round(task.release_offset, 12),
            task.num_stages,
            round(task.total_wcet, 12),
        )
        for task in task_set
    )

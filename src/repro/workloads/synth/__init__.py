"""Heterogeneous taskset synthesis.

This package turns the sweep harness into a scenario engine: instead of
replaying the paper's one workload (identical ResNet18 tasks at 30 fps),
it *generates* periodic DNN tasksets — UUniFast utilization partitioning
over a target total utilization, per-task model selection from a weighted
model zoo, camera-rate / log-uniform period classes, per-task stage
counts, and implicit or constrained deadlines — all as a pure function of
a seed, so synthesized points are deterministic and cacheable by the
config-hash result cache.

Layout:

* :mod:`~repro.workloads.synth.uunifast` — UUniFast(-discard) partitioning;
* :mod:`~repro.workloads.synth.zoo` — model registry and weighted mixes;
* :mod:`~repro.workloads.synth.spec` — :class:`SynthSpec`, the frozen
  description of one taskset;
* :mod:`~repro.workloads.synth.taskset` — the synthesizer itself;
* :mod:`~repro.workloads.synth.scenarios` — named scenarios
  (``mixed_fleet``, ``surveillance_burst``, ``util_ramp``) and the bridge
  from grid points to tasksets;
* :mod:`~repro.workloads.synth.sweep` — utilization-axis sweep helpers
  (imported separately: it depends on :mod:`repro.exp`).

Quick start::

    from repro.workloads.synth import SynthSpec, synthesize_taskset
    spec = SynthSpec(num_tasks=8, total_utilization=2.0, zoo_mix="fleet")
    tasks = synthesize_taskset(spec, nominal_sms=34.0)
"""

from repro.workloads.synth.scenarios import (
    SYNTH_SCENARIOS,
    SynthScenario,
    derive_synth_seed,
    get_synth_scenario,
    list_synth_scenarios,
    register_synth_scenario,
    taskset_for_point,
)
from repro.workloads.synth.spec import DEADLINE_MODES, PERIOD_CLASSES, SynthSpec
from repro.workloads.synth.taskset import (
    CAMERA_PERIODS,
    describe_taskset,
    synthesize_taskset,
    taskset_signature,
)
from repro.workloads.synth.uunifast import uunifast, uunifast_discard
from repro.workloads.synth.zoo import (
    MODEL_ZOO,
    ZOO_MIXES,
    ZooModel,
    get_mix,
    get_model,
    list_mixes,
    list_models,
    pick_model,
    register_mix,
    register_model,
)

__all__ = [
    "SynthSpec",
    "PERIOD_CLASSES",
    "DEADLINE_MODES",
    "SynthScenario",
    "SYNTH_SCENARIOS",
    "register_synth_scenario",
    "get_synth_scenario",
    "list_synth_scenarios",
    "taskset_for_point",
    "derive_synth_seed",
    "synthesize_taskset",
    "describe_taskset",
    "taskset_signature",
    "CAMERA_PERIODS",
    "uunifast",
    "uunifast_discard",
    "MODEL_ZOO",
    "ZOO_MIXES",
    "ZooModel",
    "register_model",
    "get_model",
    "list_models",
    "register_mix",
    "get_mix",
    "list_mixes",
    "pick_model",
]

"""Named heterogeneous scenarios built on taskset synthesis.

A :class:`SynthScenario` bundles a context-pool size with the synthesis
defaults (zoo mix, period class, deadline mode, stage choices, target
utilization).  The registry makes scenarios addressable by name from the
sweep grid (``GridPoint.workload``), the CLI (``python -m repro sweep
--scenario mixed_fleet``) and tests; grid axes can override any of the
defaults per point.

This module deliberately does not import :mod:`repro.exp` — the exp
package depends on workloads, and the synthesis seed derivation is
reimplemented here (same construction as :func:`repro.exp.grid.derive_seed`)
to keep the dependency one-way.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.task import TaskSet
from repro.speedup.calibration import DEFAULT_CALIBRATION, DeviceCalibration
from repro.workloads.synth.spec import SynthSpec
from repro.workloads.synth.taskset import synthesize_taskset
from repro.workloads.synth.zoo import get_mix


@dataclass(frozen=True)
class SynthScenario:
    """One named heterogeneous evaluation scenario."""

    name: str
    num_contexts: int
    description: str
    zoo_mix: str = "fleet"
    period_class: str = "camera"
    deadline_mode: str = "implicit"
    stage_choices: Tuple[int, ...] = (4, 6, 8)
    default_utilization: float = 2.0

    def spec(
        self,
        num_tasks: int,
        seed: int = 0,
        total_utilization: Optional[float] = None,
        period_class: str = "",
        zoo_mix: str = "",
        deadline_mode: str = "",
    ) -> SynthSpec:
        """Concrete :class:`SynthSpec` with optional per-axis overrides.

        Empty-string / ``None`` overrides fall back to the scenario
        defaults — the convention the grid's workload axes use.
        """
        return SynthSpec(
            num_tasks=num_tasks,
            total_utilization=(
                total_utilization
                if total_utilization
                else self.default_utilization
            ),
            zoo_mix=zoo_mix or self.zoo_mix,
            period_class=period_class or self.period_class,
            deadline_mode=deadline_mode or self.deadline_mode,
            stage_choices=self.stage_choices,
            seed=seed,
        )


SYNTH_SCENARIOS: Dict[str, SynthScenario] = {}


def register_synth_scenario(scenario: SynthScenario) -> None:
    """Register a scenario by name (validates its zoo mix eagerly)."""
    get_mix(scenario.zoo_mix)
    if scenario.num_contexts < 1:
        raise ValueError("num_contexts must be >= 1")
    SYNTH_SCENARIOS[scenario.name] = scenario


def get_synth_scenario(name: str) -> SynthScenario:
    """Look up a scenario; raises ``KeyError`` naming the known ones."""
    try:
        return SYNTH_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown synth scenario {name!r}; known: {sorted(SYNTH_SCENARIOS)}"
        ) from None


def list_synth_scenarios() -> List[SynthScenario]:
    """All registered scenarios in registration order."""
    return list(SYNTH_SCENARIOS.values())


register_synth_scenario(
    SynthScenario(
        name="mixed_fleet",
        num_contexts=2,
        description=(
            "camera-ladder fleet: ResNet18/34 + MobileNet on harmonic "
            "15*2^k fps rates, implicit deadlines, 2 contexts"
        ),
        zoo_mix="fleet",
        period_class="camera",
        deadline_mode="implicit",
        stage_choices=(4, 6, 8),
        default_utilization=2.0,
    )
)
register_synth_scenario(
    SynthScenario(
        name="surveillance_burst",
        num_contexts=3,
        description=(
            "surveillance stack: ResNet18-heavy mix, log-uniform rates, "
            "constrained deadlines, 3 contexts"
        ),
        zoo_mix="surveillance",
        period_class="loguniform",
        deadline_mode="constrained",
        stage_choices=(4, 6),
        default_utilization=2.5,
    )
)
register_synth_scenario(
    SynthScenario(
        name="util_ramp",
        num_contexts=2,
        description=(
            "utilization-axis ramp: fleet mix at exact UUniFast-implied "
            "periods, fixed 6 stages, 2 contexts"
        ),
        zoo_mix="fleet",
        period_class="implied",
        deadline_mode="implicit",
        stage_choices=(6,),
        default_utilization=2.0,
    )
)


def derive_synth_seed(base_seed: int, *coords: object) -> int:
    """Deterministic synthesis seed from a replication seed + coordinates.

    Same SHA-256 construction as :func:`repro.exp.grid.derive_seed` (kept
    dependency-free here); notably the scheduler *variant* is never a
    coordinate, so every variant of one grid cell schedules the identical
    synthesized taskset.
    """
    blob = json.dumps([base_seed, *[str(c) for c in coords]]).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big")


def taskset_for_point(
    point,
    nominal_sms: float,
    monolithic: bool = False,
    calibration: DeviceCalibration = DEFAULT_CALIBRATION,
) -> TaskSet:
    """Synthesize the taskset of one grid point (``point.workload != "identical"``).

    ``point`` is duck-typed (a :class:`repro.exp.grid.GridPoint`): the
    fields consumed are ``workload``, ``num_tasks``, ``base_seed``,
    ``total_utilization`` and the axis overrides ``period_class`` /
    ``zoo_mix`` / ``deadline_mode``.
    """
    scenario = get_synth_scenario(point.workload)
    utilization = point.total_utilization or scenario.default_utilization
    # The synthesis seed covers replication seed, scenario and task count
    # — deliberately NOT the utilization or mode overrides.  The
    # synthesizer draws each task's model/stages/deadline/offset before
    # consuming the UUniFast stream, so a utilization axis ramps load on
    # one fixed task mix (a clean pivot sweep) instead of drawing an
    # unrelated taskset per column; likewise mode overrides reshape the
    # same draws, keeping columns comparable.  (The variant is never a
    # coordinate: all schedulers of one cell face the identical taskset.)
    seed = derive_synth_seed(
        point.base_seed,
        "synth",
        point.workload,
        point.num_tasks,
    )
    spec = scenario.spec(
        num_tasks=point.num_tasks,
        seed=seed,
        total_utilization=utilization,
        period_class=point.period_class,
        zoo_mix=point.zoo_mix,
        deadline_mode=point.deadline_mode,
    )
    return synthesize_taskset(
        spec, nominal_sms, calibration=calibration, monolithic=monolithic
    )

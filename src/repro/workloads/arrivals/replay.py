"""Trace replay: JSON-lines arrival logs driving the simulator.

The log format is one JSON object per line, sorted by time::

    {"time": 0.0,    "task": "cam0"}
    {"time": 0.0312, "task": "cam1"}
    {"time": 0.0333, "task": "cam0"}

— deliberately boring, so logs can be recorded from a live run
(:func:`record_arrivals`), exported from a production trace, or written
by hand in a test.  :class:`ReplayArrivals` feeds a log back into the
scheduler: each task receives exactly the logged arrival instants, and
tasks absent from the log simply never release.

Replay streams are the one *finite* arrival source: when a task's logged
arrivals run out, its release chain stops (the scheduler handles
exhaustion; no sentinel needed).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

from repro.core.task import TaskSpec
from repro.workloads.arrivals.base import (
    ArrivalProcess,
    derive_arrival_seed,
)

#: One logged arrival: (absolute time, task name).
ArrivalEvent = Tuple[float, str]


def write_arrival_log(
    path: Union[str, Path], events: Iterable[ArrivalEvent]
) -> int:
    """Write arrivals as JSON lines; returns the number written.

    Events must already be in non-decreasing time order (the order a
    recorded run produces naturally); out-of-order input is rejected so
    a corrupt log is caught at write time, not replay time.
    """
    last = float("-inf")
    count = 0
    with open(path, "w") as handle:
        for time, task in events:
            if time < last:
                raise ValueError(
                    f"arrival log not sorted: {time} after {last}"
                )
            last = time
            handle.write(json.dumps({"time": time, "task": task}) + "\n")
            count += 1
    return count


def read_arrival_log(path: Union[str, Path]) -> List[ArrivalEvent]:
    """Read a JSON-lines arrival log back into ``(time, task)`` pairs.

    Raises ``ValueError`` on malformed lines, missing fields, negative
    times or out-of-order records — replaying a silently-truncated or
    shuffled log would produce confusing scheduler behaviour.
    """
    events: List[ArrivalEvent] = []
    last = float("-inf")
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                time = float(record["time"])
                task = str(record["task"])
            except (ValueError, TypeError, KeyError) as error:
                raise ValueError(
                    f"{path}:{lineno}: malformed arrival record ({error})"
                ) from None
            if time < 0.0:
                raise ValueError(
                    f"{path}:{lineno}: negative arrival time {time}"
                )
            if time < last:
                raise ValueError(
                    f"{path}:{lineno}: arrival log not sorted "
                    f"({time} after {last})"
                )
            last = time
            events.append((time, task))
    return events


def record_arrivals(
    process: ArrivalProcess,
    tasks: Sequence[TaskSpec],
    horizon: float,
    seed: int = 0,
) -> List[ArrivalEvent]:
    """Materialise a process into a replayable log (arrivals < horizon).

    Uses the same per-task seed derivation the scheduler uses, so a
    recorded log replays the exact arrival instants the live run saw::

        events = record_arrivals(MmppArrivals(), tasks, horizon=4.0, seed=7)
        write_arrival_log("arrivals.jsonl", events)
        # later / elsewhere:
        run_simulation(tasks, RunConfig(..., arrival="replay:path=arrivals.jsonl"))
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    events: List[ArrivalEvent] = []
    for task in tasks:
        stream = process.stream(
            task, derive_arrival_seed(seed, process.name, task.name)
        )
        for time in stream:
            if time >= horizon:
                break
            events.append((time, task.name))
    events.sort(key=lambda event: event[0])
    return events


class ReplayArrivals(ArrivalProcess):
    """Replay a recorded or hand-written arrival log.

    Constructed either from in-memory events or lazily from a log file
    (``path``); the spec-string form is ``"replay:path=arrivals.jsonl"``.
    The instance is picklable either way — file contents are read on
    first use in whichever process runs the simulation, and in-memory
    events are stored as a plain tuple.
    """

    name = "replay"

    def __init__(
        self,
        events: Iterable[ArrivalEvent] = (),
        path: Union[str, Path, None] = None,
    ) -> None:
        self._events: Tuple[ArrivalEvent, ...] = tuple(
            (float(time), str(task)) for time, task in events
        )
        self._path = str(path) if path is not None else None
        if self._events and self._path:
            raise ValueError("pass events or path, not both")

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ReplayArrivals":
        """Eagerly-loaded variant (validates the log immediately)."""
        return cls(events=read_arrival_log(path))

    def events(self) -> Tuple[ArrivalEvent, ...]:
        """The replayed events (reads the log on first call when lazy)."""
        if self._path is not None and not self._events:
            self._events = tuple(read_arrival_log(self._path))
        return self._events

    def stream(self, task: TaskSpec, seed: int) -> Iterator[float]:
        times = [time for time, name in self.events() if name == task.name]

        def generate() -> Iterator[float]:
            yield from times

        return generate()

    def describe(self) -> str:
        if self._path is not None:
            return f"replay of arrival log {self._path}"
        return f"replay of {len(self._events)} in-memory arrivals"

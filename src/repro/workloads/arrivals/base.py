"""The :class:`ArrivalProcess` contract and its registry.

An arrival process turns a task into a deterministic stream of absolute
release times.  The scheduler (:class:`repro.core.scheduler.SchedulerBase`)
pulls the stream one arrival at a time, so a process never needs to know
the simulation horizon and infinite streams are the norm.

Contract
--------
* :meth:`ArrivalProcess.stream` returns an iterator of non-decreasing
  absolute times, the first at or after ``task.release_offset``.
* Streams are **seed-deterministic**: the same ``(task, seed)`` always
  yields the same times, regardless of how other tasks' streams are
  interleaved.  Each task gets its own RNG stream derived from the run
  seed, the process name and the task name (:func:`derive_arrival_seed`),
  so adding a task never perturbs another task's arrivals.
* Process objects are **stateless and picklable** — all run state lives
  in the generator returned by ``stream`` — so one instance can be shared
  across runs and shipped to ``multiprocessing`` workers (the
  staged-pipeline / serializable-worker-context idiom the synth
  generators already follow).

Processes are addressable by spec string, the same ``name:key=val,...``
syntax admission policies use::

    resolve_arrival("poisson")
    resolve_arrival("mmpp:burst=6,calm=0.25")
    resolve_arrival("replay:path=logs/arrivals.jsonl")

which is what makes them a sweepable grid axis
(``python -m repro sweep --arrival mmpp:burst=6``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple, Union

from repro.core.admission import parse_spec
from repro.core.task import TaskSpec


def derive_arrival_seed(seed: int, process_name: str, task_name: str) -> int:
    """Deterministic per-task arrival seed.

    The same SHA-256 construction as :func:`repro.exp.grid.derive_seed`
    (stable across processes and Python versions, unlike ``hash()``),
    namespaced with ``"arrivals"`` so arrival streams never collide with
    the scheduler's execution-jitter stream or the synthesis streams.
    """
    blob = json.dumps(
        [seed, "arrivals", str(process_name), str(task_name)]
    ).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big")


class ArrivalProcess:
    """One source of job release times (see module docstring)."""

    #: Registry / display name; concrete processes override it.
    name = "base"

    def stream(self, task: TaskSpec, seed: int) -> Iterator[float]:
        """Yield absolute release times for ``task``, non-decreasing.

        ``seed`` is the per-task arrival seed (already derived by the
        caller via :func:`derive_arrival_seed`); a process that consumes
        no randomness ignores it.  The stream may be finite (trace
        replay) or infinite (every stochastic process).
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable summary (CLI listings, inspectors)."""
        return self.name


@dataclass(frozen=True)
class _RegisteredArrival:
    key: str
    factory: Callable[..., ArrivalProcess]
    description: str


_ARRIVAL_REGISTRY: Dict[str, _RegisteredArrival] = {}


def register_arrival(
    key: str, factory: Callable[..., ArrivalProcess], description: str = ""
) -> None:
    """Register an arrival-process factory under ``key``.

    ``factory`` is called with the spec string's keyword parameters;
    registering is enough to make the process sweepable::

        register_arrival("my_burst", MyBurstArrivals, "custom burst model")
        # python -m repro sweep --arrival my_burst:intensity=3
    """
    if not key:
        raise ValueError("arrival process key must be non-empty")
    _ARRIVAL_REGISTRY[key] = _RegisteredArrival(key, factory, description)


def arrival_names() -> Tuple[str, ...]:
    """Registered process keys in registration order."""
    return tuple(_ARRIVAL_REGISTRY)


def list_arrivals() -> List[Tuple[str, str]]:
    """``(key, description)`` pairs in registration order."""
    return [(p.key, p.description) for p in _ARRIVAL_REGISTRY.values()]


def resolve_arrival(spec: Union[str, ArrivalProcess]) -> ArrivalProcess:
    """Build an arrival process from a spec string.

    Process instances pass through unchanged; ``"periodic"`` is the
    closed-system default everywhere a spec string defaults.
    """
    if isinstance(spec, ArrivalProcess):
        return spec
    if not spec:
        raise ValueError("empty arrival spec (use 'periodic' for the default)")
    name, params = parse_spec(spec)
    try:
        registered = _ARRIVAL_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {name!r}; known: "
            f"{sorted(_ARRIVAL_REGISTRY)}"
        ) from None
    try:
        return registered.factory(**params)
    except TypeError as error:
        raise ValueError(
            f"bad parameters for arrival process {name!r}: {error}"
        ) from None

"""Open-system arrival processes: stochastic releases and trace replay.

This package turns the reproduction's closed periodic tasksets into open
systems: an :class:`ArrivalProcess` feeds the scheduler release times, so
workloads can be strictly periodic (the default, bit-identical to the
legacy release loop), Poisson, bursty (two-state MMPP), diurnal, or a
replay of a recorded JSON-lines arrival log.  Pair with the admission
policies in :mod:`repro.core.admission` and the tail-latency /
goodput / rejection metrics in :mod:`repro.sim.metrics` for
production-SRE-style questions: *what is p99 response time and goodput
under a diurnal burst, and how much does a bounded admission queue
shed?*

Every process is seed-deterministic, stateless and picklable, and is
addressable by spec string through the registry (mirroring the model
zoo), which makes arrivals a first-class sweep axis::

    python -m repro sweep --arrival mmpp:burst=6 --admission queue:depth=2
    python -m repro sweep --list-arrivals
"""

from repro.workloads.arrivals.base import (
    ArrivalProcess,
    arrival_names,
    derive_arrival_seed,
    list_arrivals,
    register_arrival,
    resolve_arrival,
)
from repro.workloads.arrivals.processes import (
    DiurnalArrivals,
    MmppArrivals,
    PeriodicArrivals,
    PoissonArrivals,
)
from repro.workloads.arrivals.replay import (
    ReplayArrivals,
    read_arrival_log,
    record_arrivals,
    write_arrival_log,
)

__all__ = [
    "ArrivalProcess",
    "DiurnalArrivals",
    "MmppArrivals",
    "PeriodicArrivals",
    "PoissonArrivals",
    "ReplayArrivals",
    "arrival_names",
    "derive_arrival_seed",
    "list_arrivals",
    "read_arrival_log",
    "record_arrivals",
    "register_arrival",
    "resolve_arrival",
    "write_arrival_log",
]


def _replay_factory(path: str = "") -> ReplayArrivals:
    """Spec-string factory: ``replay:path=arrivals.jsonl`` (lazy read)."""
    return ReplayArrivals(path=path or None)


register_arrival(
    "periodic",
    PeriodicArrivals,
    "strictly periodic releases (closed system; the default)",
)
register_arrival(
    "poisson",
    PoissonArrivals,
    "memoryless arrivals; rate_scale=K scales the nominal rate",
)
register_arrival(
    "mmpp",
    MmppArrivals,
    "two-state bursty MMPP (burst=, calm=, sojourn_periods=)",
)
register_arrival(
    "diurnal",
    DiurnalArrivals,
    "piecewise diurnal rate curve (day=, trough=, peak=)",
)
register_arrival(
    "replay",
    _replay_factory,
    "replay a JSON-lines arrival log (path=arrivals.jsonl)",
)

"""The stochastic arrival processes: periodic, Poisson, MMPP, diurnal.

All processes anchor their first arrival at ``task.release_offset`` and
interpret the task's period as the *mean* inter-arrival time at nominal
load (rate ``1/period``), so a process swap changes the arrival law but
not the long-run demand — the knob the open-system sweeps actually want
to turn is burstiness, not throughput.

Determinism: every draw comes from a private ``random.Random`` seeded
with the per-task arrival seed, so streams are reproducible and
independent across tasks (see :mod:`repro.workloads.arrivals.base`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.core.task import TaskSpec
from repro.workloads.arrivals.base import ArrivalProcess


class PeriodicArrivals(ArrivalProcess):
    """The closed-system adapter: strictly periodic releases.

    Reproduces the scheduler's historical release loop **bit for bit**:
    the first arrival is ``task.release_offset`` and every later arrival
    is the previous one plus ``task.period`` — the same repeated float
    addition the legacy ``_release_job`` performed with ``now +
    task.period``, so traces are identical to the pre-arrivals code
    (pinned by ``tests/gpu/test_trace_equivalence.py``).
    """

    name = "periodic"

    def stream(self, task: TaskSpec, seed: int) -> Iterator[float]:
        def generate() -> Iterator[float]:
            when = task.release_offset
            while True:
                yield when
                when = when + task.period

        return generate()

    def describe(self) -> str:
        return "strictly periodic releases (the closed-system default)"


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: i.i.d. exponential inter-arrival gaps.

    ``rate_scale`` multiplies the nominal rate ``1/period`` (2.0 doubles
    the average demand, 0.5 halves it), so overload studies can push an
    open queue past capacity without touching the taskset.
    """

    rate_scale: float = 1.0

    name = "poisson"

    def __post_init__(self) -> None:
        if self.rate_scale <= 0:
            raise ValueError(
                f"rate_scale must be positive, got {self.rate_scale}"
            )

    def stream(self, task: TaskSpec, seed: int) -> Iterator[float]:
        rate = self.rate_scale / task.period

        def generate() -> Iterator[float]:
            rng = random.Random(seed)
            when = task.release_offset
            while True:
                yield when
                when += rng.expovariate(rate)

        return generate()

    def describe(self) -> str:
        return (
            f"Poisson arrivals at {self.rate_scale:g}x the task's nominal "
            f"rate"
        )


@dataclass(frozen=True)
class MmppArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty arrivals).

    The process alternates between a *calm* and a *burst* state; in each
    state arrivals are Poisson at ``calm/period`` resp. ``burst/period``,
    and state sojourn times are exponential with mean
    ``sojourn_periods * period``.  With the defaults the time-average
    rate exceeds the nominal periodic demand during bursts by 4x — the
    classic bursty-overload regime an admission controller exists for.

    Parameters
    ----------
    burst / calm:
        Rate multipliers of the two states (relative to ``1/period``).
    sojourn_periods:
        Mean state-dwell time in units of the task period.
    """

    burst: float = 4.0
    calm: float = 0.25
    sojourn_periods: float = 8.0

    name = "mmpp"

    def __post_init__(self) -> None:
        if self.burst <= 0 or self.calm <= 0:
            raise ValueError(
                f"state rates must be positive, got burst={self.burst}, "
                f"calm={self.calm}"
            )
        if self.sojourn_periods <= 0:
            raise ValueError(
                f"sojourn_periods must be positive, got "
                f"{self.sojourn_periods}"
            )

    def stream(self, task: TaskSpec, seed: int) -> Iterator[float]:
        rates = (self.calm / task.period, self.burst / task.period)
        mean_sojourn = self.sojourn_periods * task.period

        def generate() -> Iterator[float]:
            rng = random.Random(seed)
            state = rng.randrange(2)
            when = task.release_offset
            switch = when + rng.expovariate(1.0 / mean_sojourn)
            while True:
                yield when
                gap = rng.expovariate(rates[state])
                # Exponential gaps are memoryless, so a draw that crosses
                # the state boundary is discarded and redrawn from the
                # switch instant at the new state's rate.
                while when + gap > switch:
                    when = switch
                    state = 1 - state
                    switch = when + rng.expovariate(1.0 / mean_sojourn)
                    gap = rng.expovariate(rates[state])
                when += gap

        return generate()

    def describe(self) -> str:
        return (
            f"two-state MMPP: calm {self.calm:g}x / burst {self.burst:g}x "
            f"nominal rate, mean sojourn {self.sojourn_periods:g} periods"
        )


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Piecewise-constant diurnal rate curve (repeating "day").

    A non-homogeneous Poisson process whose rate multiplier follows a
    four-phase day of length ``day`` seconds: trough, ramp, peak, ramp —
    the compressed shape of a real diurnal load curve.  Because segments
    are piecewise constant, arrivals are generated exactly (per-segment
    exponential gaps, redrawn at segment boundaries by memorylessness)
    rather than by thinning.

    Parameters
    ----------
    day:
        Length of one repeating cycle in simulated seconds (simulations
        here run seconds, not hours, so the default compresses a day
        into 2 s).
    trough / peak:
        Rate multipliers at the quietest and busiest phases; the two
        ramp phases run at their midpoint.
    """

    day: float = 2.0
    trough: float = 0.25
    peak: float = 3.0

    name = "diurnal"

    def __post_init__(self) -> None:
        if self.day <= 0:
            raise ValueError(f"day must be positive, got {self.day}")
        if self.trough <= 0 or self.peak <= 0:
            raise ValueError(
                f"rate multipliers must be positive, got "
                f"trough={self.trough}, peak={self.peak}"
            )

    def phases(self) -> Tuple[Tuple[float, float], ...]:
        """``(phase start as a day fraction, rate multiplier)`` segments."""
        mid = 0.5 * (self.trough + self.peak)
        return ((0.0, self.trough), (0.25, mid), (0.5, self.peak), (0.75, mid))

    def _rate_at(self, when: float, base_rate: float) -> Tuple[float, float]:
        """Rate in effect at ``when`` and the absolute next boundary."""
        phases = self.phases()
        day_index, position = divmod(when, self.day)
        fraction = position / self.day
        current = phases[-1]
        boundary = (day_index + 1) * self.day
        for start, multiplier in phases:
            if fraction >= start:
                current = (start, multiplier)
            else:
                boundary = day_index * self.day + start * self.day
                break
        return current[1] * base_rate, boundary

    def stream(self, task: TaskSpec, seed: int) -> Iterator[float]:
        base_rate = 1.0 / task.period

        def generate() -> Iterator[float]:
            rng = random.Random(seed)
            when = task.release_offset
            while True:
                yield when
                rate, boundary = self._rate_at(when, base_rate)
                gap = rng.expovariate(rate)
                while when + gap > boundary:
                    when = boundary
                    rate, boundary = self._rate_at(when, base_rate)
                    gap = rng.expovariate(rate)
                when += gap

        return generate()

    def describe(self) -> str:
        return (
            f"diurnal load curve: {self.trough:g}x..{self.peak:g}x nominal "
            f"rate over a {self.day:g}s day"
        )

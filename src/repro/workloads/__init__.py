"""Workload generation and the paper's evaluation scenarios."""

from repro.workloads.generator import (
    identical_periodic_tasks,
    mixed_task_set,
    clone_task,
)
from repro.workloads.scenarios import (
    SCENARIO_1,
    SCENARIO_2,
    OVERSUBSCRIPTION_LEVELS,
    Scenario,
    SweepPoint,
    run_scenario_sweep,
    scenario_grid,
    sweep_point,
)

__all__ = [
    "identical_periodic_tasks",
    "mixed_task_set",
    "clone_task",
    "Scenario",
    "SCENARIO_1",
    "SCENARIO_2",
    "OVERSUBSCRIPTION_LEVELS",
    "SweepPoint",
    "run_scenario_sweep",
    "scenario_grid",
    "sweep_point",
]

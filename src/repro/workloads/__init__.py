"""Workload generation, the paper's scenarios, and taskset synthesis.

* :mod:`repro.workloads.generator` — the paper's homogeneous workloads;
* :mod:`repro.workloads.scenarios` — the paper's two evaluation scenarios
  plus the combined scenario listing;
* :mod:`repro.workloads.synth` — heterogeneous taskset synthesis (model
  zoo, UUniFast utilization partitioning, period/deadline classes).
"""

from repro.workloads.generator import (
    identical_periodic_tasks,
    mixed_task_set,
    clone_task,
    template_task,
)
from repro.workloads.scenarios import (
    SCENARIO_1,
    SCENARIO_2,
    OVERSUBSCRIPTION_LEVELS,
    PAPER_SCENARIOS,
    Scenario,
    SweepPoint,
    list_all_scenarios,
    run_scenario_sweep,
    scenario_grid,
    sweep_point,
)
from repro.workloads.synth import (
    SynthScenario,
    SynthSpec,
    get_synth_scenario,
    list_synth_scenarios,
    synthesize_taskset,
)

__all__ = [
    "identical_periodic_tasks",
    "mixed_task_set",
    "clone_task",
    "template_task",
    "Scenario",
    "SCENARIO_1",
    "SCENARIO_2",
    "PAPER_SCENARIOS",
    "OVERSUBSCRIPTION_LEVELS",
    "SweepPoint",
    "run_scenario_sweep",
    "scenario_grid",
    "sweep_point",
    "list_all_scenarios",
    "SynthSpec",
    "SynthScenario",
    "synthesize_taskset",
    "get_synth_scenario",
    "list_synth_scenarios",
]

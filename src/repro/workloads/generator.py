"""Task set generators.

The paper's evaluation workload: "identical periodic tasks (30 fps) with
explicit deadlines, each divided into six stages", the task being ResNet18
with a 224x224 input.  Release offsets are staggered uniformly across the
period so the synchronous release burst (which is not what a multi-camera
system sees) does not dominate; tests cover the synchronous case
separately.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.profiling import prepare_task
from repro.core.task import TaskSpec, TaskSet
from repro.dnn.graph import LayerGraph
from repro.dnn.resnet import build_resnet18
from repro.speedup.calibration import DEFAULT_CALIBRATION, DeviceCalibration

#: The paper's benchmark rate: 30 frames per second.
DEFAULT_PERIOD = 1.0 / 30.0

#: The paper divides each ResNet18 task into six stages.
DEFAULT_NUM_STAGES = 6

_TEMPLATE_CACHE: Dict[Tuple, TaskSpec] = {}


def clone_task(template: TaskSpec, name: str, release_offset: float) -> TaskSpec:
    """Cheap copy of a prepared task under a new name/offset.

    Stage composites (immutable cost models) are shared; stage specs are
    copied so later mutation of one task cannot leak into another.
    """
    clone = TaskSpec(
        name=name,
        graph=template.graph,
        period=template.period,
        relative_deadline=template.relative_deadline,
        release_offset=release_offset,
    )
    clone.stages = [copy.copy(stage) for stage in template.stages]
    return clone


def template_task(
    graph_builder: Callable[[], LayerGraph],
    builder_key: str,
    period: float,
    num_stages: int,
    nominal_sms: float,
    calibration: DeviceCalibration = DEFAULT_CALIBRATION,
) -> TaskSpec:
    """Prepared (offline-profiled) task template, cached across calls.

    The cache key includes the calibration's *value* fingerprint, not its
    object identity — a custom :class:`DeviceCalibration` can never
    collide with the default entry (or with another custom instance whose
    ``id()`` happens to be recycled), while equal-valued calibrations
    share one template.  Callers must not mutate the returned template;
    use :func:`clone_task` to instantiate it.
    """
    key = (
        builder_key,
        period,
        num_stages,
        round(nominal_sms, 6),
        calibration.fingerprint,
    )
    if key not in _TEMPLATE_CACHE:
        _TEMPLATE_CACHE[key] = prepare_task(
            name="template",
            graph=graph_builder(),
            period=period,
            num_stages=num_stages,
            nominal_sms=nominal_sms,
            calibration=calibration,
        )
    return _TEMPLATE_CACHE[key]


# Backwards-compatible private alias (pre-synth callers).
_template = template_task


def identical_periodic_tasks(
    count: int,
    nominal_sms: float,
    period: float = DEFAULT_PERIOD,
    num_stages: int = DEFAULT_NUM_STAGES,
    graph_builder: Callable[[], LayerGraph] = build_resnet18,
    builder_key: str = "resnet18",
    stagger: bool = True,
    calibration: DeviceCalibration = DEFAULT_CALIBRATION,
) -> TaskSet:
    """The paper's workload: ``count`` identical periodic DNN tasks.

    Parameters
    ----------
    count:
        Number of tasks (the sweep variable of Figs. 3 and 4).
    nominal_sms:
        Partition size the offline phase profiles WCETs at — use the pool's
        per-context SM count.
    stagger:
        Spread first releases uniformly over one period (default).  With
        ``False`` all tasks release synchronously at t=0 (worst case).
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    template = template_task(
        graph_builder, builder_key, period, num_stages, nominal_sms, calibration
    )
    tasks: List[TaskSpec] = []
    for index in range(count):
        offset = (index / count) * period if stagger else 0.0
        tasks.append(clone_task(template, f"cam{index}", offset))
    return TaskSet(tasks)


def mixed_task_set(
    specs: Sequence[Tuple[Callable[[], LayerGraph], str, float, int]],
    nominal_sms: float,
    stagger: bool = True,
    calibration: DeviceCalibration = DEFAULT_CALIBRATION,
) -> TaskSet:
    """Heterogeneous task set.

    ``specs`` is a sequence of ``(graph_builder, builder_key, period,
    num_stages)`` tuples; each becomes one task.  Useful for the examples
    (e.g. a perception stack mixing ResNet18 and ResNet34 at different
    rates).
    """
    if not specs:
        raise ValueError("specs must be non-empty")
    tasks: List[TaskSpec] = []
    max_period = max(spec[2] for spec in specs)
    for index, (graph_builder, builder_key, period, num_stages) in enumerate(specs):
        template = template_task(
            graph_builder, builder_key, period, num_stages, nominal_sms, calibration
        )
        offset = (index / len(specs)) * max_period if stagger else 0.0
        tasks.append(clone_task(template, f"task{index}_{builder_key}", offset))
    return TaskSet(tasks)

"""Developer tooling that ships with the repo (not used at runtime).

Currently: :mod:`repro.devtools.lint`, the AST-based invariant linter
behind ``python -m repro lint``.
"""

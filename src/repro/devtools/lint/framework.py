"""The ``repro lint`` rule framework.

A lint run is deliberately boring machinery: walk the requested paths in
sorted order, parse every ``*.py`` with the stdlib :mod:`ast`, hand each
module to every selected :class:`Rule`, collect :class:`Finding`\\ s,
drop the ones a pragma suppresses, and emit them in one deterministic
order.  Rules live in :mod:`repro.devtools.lint.rules`; this module
knows nothing about what any rule checks.

Determinism is part of the contract (the linter polices determinism, so
it had better practise it): file discovery is sorted, findings are
sorted by ``(path, line, col, rule, message)``, the JSON renderer uses
sorted keys, and nothing here reads a clock, the environment, or hash
order.  Two runs over the same tree emit byte-identical output.

Suppression
-----------
A finding is suppressed by a pragma comment **on the finding's line or
the line directly above it**::

    cache[id(curve)] = share  # repro: lint-ok[D003] curve is pinned by a strong ref

    # repro: lint-ok[D004] order handled by the caller
    for path in root.iterdir():
        ...

Several rules can share one pragma (``lint-ok[D001,D002]``).  Pragmas
are meant to carry a one-line justification after the bracket; the
linter does not parse it, reviewers do.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Pragma syntax: ``# repro: lint-ok[D003]`` or ``# repro: lint-ok[D001,D002]``,
#: optionally followed by free-text justification.
PRAGMA_RE = re.compile(r"#\s*repro:\s*lint-ok\[([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)\]")

#: Rule id of the built-in parse-failure finding (not suppressible — a
#: file the linter cannot read is a file no rule vouched for).
PARSE_ERROR = "E001"

#: Output format version for ``--format json``.
JSON_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One lint hit, anchored to a file position.

    ``finding_id`` is stable across runs for an unchanged tree: it is a
    pure function of the rule and the position, with no run state in it.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    @property
    def finding_id(self) -> str:
        return f"{self.rule}:{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> dict:
        return {
            "id": self.finding_id,
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class LintModule:
    """One parsed source file plus the lookup structure rules need.

    Parents are linked (``LintModule.parent``) so rules can climb from
    an interesting node to whatever consumes it, and pragma lines are
    pre-extracted with :mod:`tokenize` so suppression never depends on
    fragile string matching inside literals.
    """

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        #: The path findings report: the CLI argument joined with the
        #: file's position under it, posix separators.  Stable across
        #: runs and machines for the same invocation.
        self.display_path = display_path
        self.source = source
        #: The directory the lint run discovered this file under; rules
        #: that need run-scope context (the trace-kind registry) key on
        #: it.  Set by :func:`run_lint` after construction.
        self.lint_root: Optional[Path] = None
        self.tree = ast.parse(source)
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child._lint_parent = node  # type: ignore[attr-defined]
        #: line -> set of rule ids a pragma on that line waives.
        self.pragmas: Dict[int, Set[str]] = _collect_pragmas(source)

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    @staticmethod
    def parent(node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, "_lint_parent", None)

    def ancestry(self, node: ast.AST) -> Iterator[Tuple[ast.AST, ast.AST]]:
        """Yield ``(ancestor, came_from)`` pairs walking toward the root."""
        child = node
        parent = self.parent(node)
        while parent is not None:
            yield parent, child
            child = parent
            parent = self.parent(parent)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether a pragma on ``line`` or the line above waives ``rule_id``."""
        for pragma_line in (line, line - 1):
            if rule_id in self.pragmas.get(pragma_line, ()):
                return True
        return False


def _collect_pragmas(source: str) -> Dict[int, Set[str]]:
    pragmas: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = PRAGMA_RE.search(token.string)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",")}
            pragmas.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:  # unterminated something; ast.parse will say
        pass
    return pragmas


class LintContext:
    """Run-wide state shared by every rule invocation.

    Currently: the trace-kind registry of each linted root, parsed (not
    imported — the linter checks the tree in front of it, which need not
    be the installed package) from ``**/sim/trace_kinds.py`` on first
    use.
    """

    def __init__(self) -> None:
        self._kind_cache: Dict[Path, Optional[Dict[str, str]]] = {}

    def trace_kind_registry(self, root: Path) -> Optional[Dict[str, str]]:
        """``{kind_literal: CONSTANT_NAME}`` for the registry under ``root``.

        ``None`` when the root holds no ``sim/trace_kinds.py`` (fixture
        trees without a registry simply skip the schema rule).
        """
        root = root.resolve()
        if root not in self._kind_cache:
            self._kind_cache[root] = self._load_registry(root)
        return self._kind_cache[root]

    @staticmethod
    def _load_registry(root: Path) -> Optional[Dict[str, str]]:
        if not root.is_dir():
            return None
        candidates = sorted(
            path
            for path in root.rglob("trace_kinds.py")
            if path.parent.name == "sim" and "__pycache__" not in path.parts
        )
        if not candidates:
            return None
        tree = ast.parse(candidates[0].read_text())
        registry: Dict[str, str] = {}
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id.isupper()
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                registry[node.value.value] = node.targets[0].id
        return registry or None


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding ``(line, col, message)`` triples; the runner anchors them to
    the module, applies pragma suppression and builds :class:`Finding`
    objects.  Rules must be stateless across modules (any cross-module
    state belongs on the :class:`LintContext`).
    """

    #: Stable identifier, e.g. ``"D004"``.
    rule_id: str = ""
    #: ``"error"`` findings fail the run; ``"warning"`` ones are
    #: reported but do not affect the exit code.
    severity: str = "error"
    #: One-line description for ``--list-rules`` and the docs.
    summary: str = ""

    def check(
        self, module: LintModule, context: LintContext
    ) -> Iterator[Tuple[int, int, str]]:
        raise NotImplementedError

    @staticmethod
    def at(node: ast.AST, message: str) -> Tuple[int, int, str]:
        """Anchor a message at a node's position."""
        return (node.lineno, node.col_offset, message)


def iter_python_files(root: Path) -> Iterator[Path]:
    """Every ``*.py`` under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        yield root
        return
    yield from sorted(
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
    )


def _parse_rule_list(value: Optional[Iterable[str]]) -> Optional[Set[str]]:
    if value is None:
        return None
    rules: Set[str] = set()
    for part in value:
        rules.update(p.strip() for p in part.split(",") if p.strip())
    return rules or None


def run_lint(
    paths: Sequence[str],
    rules: Sequence[Rule],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint ``paths`` with ``rules`` and return sorted findings.

    ``select``/``ignore`` filter by rule id (comma-separated strings or
    iterables thereof); unknown ids raise so a typo in CI cannot
    silently disable a gate.
    """
    selected = _parse_rule_list(select)
    ignored = _parse_rule_list(ignore)
    known = {rule.rule_id for rule in rules}
    for wanted in (selected or set()) | (ignored or set()):
        if wanted not in known:
            raise ValueError(
                f"unknown rule id {wanted!r} (known: {', '.join(sorted(known))})"
            )
    active = [
        rule
        for rule in rules
        if (selected is None or rule.rule_id in selected)
        and (ignored is None or rule.rule_id not in ignored)
    ]
    context = LintContext()
    findings: List[Finding] = []
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        for path in iter_python_files(root):
            if root.is_file():
                display = root.as_posix()
            else:
                display = (Path(raw) / path.relative_to(root)).as_posix()
            source = path.read_text()
            try:
                module = LintModule(path, display, source)
            except SyntaxError as error:
                findings.append(
                    Finding(
                        rule=PARSE_ERROR,
                        path=display,
                        line=error.lineno or 1,
                        col=(error.offset or 1) - 1,
                        message=f"syntax error: {error.msg}",
                    )
                )
                continue
            module.lint_root = root if root.is_dir() else root.parent
            for rule in active:
                for line, col, message in rule.check(module, context):
                    if module.is_suppressed(rule.rule_id, line):
                        continue
                    findings.append(
                        Finding(
                            rule=rule.rule_id,
                            path=display,
                            line=line,
                            col=col,
                            message=message,
                            severity=rule.severity,
                        )
                    )
    findings.sort(key=Finding.sort_key)
    return findings


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one finding per line plus a tally."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} [{f.severity}] {f.message}"
        for f in findings
    ]
    errors = sum(1 for f in findings if f.severity == "error")
    if findings:
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"({errors} error{'s' if errors != 1 else ''})"
        )
    else:
        lines.append("clean: no lint findings")
    return "\n".join(lines) + "\n"


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report; byte-identical across identical runs."""
    payload = {
        "version": JSON_FORMAT_VERSION,
        "errors": sum(1 for f in findings if f.severity == "error"),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"

"""The repo-specific lint rules ``python -m repro lint`` enforces.

Every rule here encodes an invariant a past PR was broken by (or nearly
broken by) and the test suite can only spot-check:

=====  ==============================================================
D001   unseeded randomness: module-level ``random.*`` calls and bare
       ``random.Random()`` — every stochastic path must draw from an
       explicitly seeded ``random.Random`` instance.
D002   wall-clock reads in simulation paths: ``time.time`` /
       ``datetime.now`` and friends outside the daemon / dist /
       profiling allowlist.  Simulated time comes from the engine.
D003   ``id()`` used as a mapping/cache key: ids are recycled after
       garbage collection, so equal-valued objects alias (the PR-2
       calibration-cache bug class).
D004   unsorted filesystem enumeration: ``glob`` / ``iterdir`` /
       ``listdir`` / ``scandir`` results consumed without ``sorted``
       — directory order is filesystem-dependent.
D005   iteration over a ``set`` literal / comprehension /
       constructor: set order depends on hash seeding, so any
       order-sensitive accumulation over it is nondeterministic.
S001   bare trace-kind string literal in ``sim/`` / ``core/`` /
       ``gpu/``: kinds come from :mod:`repro.sim.trace_kinds`, so a
       typo cannot silently fork an event stream.
S002   version-constant discipline: a writer-side ``*_VERSION = N``
       with ``N >= 2`` must have a reader accept-set naming every
       version ``1..N`` (``_READABLE_*_VERSIONS``-style).
T001   every ``benchmarks/test_*.py`` module must reference
       ``pytest.mark.slow`` — the tier contract that keeps the fast
       suite under two minutes.
=====  ==============================================================

Suppression is per line via ``# repro: lint-ok[RULE-ID] reason`` (see
:mod:`repro.devtools.lint.framework`).  There is deliberately no
baseline file: the tree lints clean or a pragma says why not.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devtools.lint.framework import LintContext, LintModule, Rule


def dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; ``None`` for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def module_imports(module: LintModule) -> Tuple[Dict[str, str], Dict[str, str]]:
    """(alias -> imported module, alias -> ``module.name`` for from-imports)."""
    modules: Dict[str, str] = {}
    names: Dict[str, str] = {}
    for node in module.walk():
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                names[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return modules, names


def path_has_dir(module: LintModule, *dirnames: str) -> bool:
    """Whether the file lives under a directory with one of these names."""
    parts = module.path.resolve().parts[:-1]
    return any(name in parts for name in dirnames)


def path_endswith(module: LintModule, suffixes: Sequence[str]) -> bool:
    posix = module.path.resolve().as_posix()
    return any(posix.endswith(suffix) for suffix in suffixes)


# ----------------------------------------------------------------------
# Determinism rules
# ----------------------------------------------------------------------
class UnseededRandomRule(Rule):
    """D001 — stochastic code must draw from a seeded ``random.Random``.

    Module-level ``random.*`` functions share one process-global
    generator: any import-order or call-order change reshuffles every
    stream at once, and parallel sweep workers silently diverge from the
    serial run.  ``random.Random()`` with no arguments seeds from the OS
    and is just as bad.
    """

    rule_id = "D001"
    summary = "unseeded randomness (module-level random.* / bare random.Random())"

    def check(
        self, module: LintModule, context: LintContext
    ) -> Iterator[Tuple[int, int, str]]:
        modules, names = module_imports(module)
        random_aliases = {a for a, m in modules.items() if m == "random"}
        from_random = {
            alias: target.rsplit(".", 1)[1]
            for alias, target in names.items()
            if target.startswith("random.")
        }
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            func: Optional[str] = None
            if len(chain) == 2 and chain[0] in random_aliases:
                func = chain[1]
            elif len(chain) == 1 and chain[0] in from_random:
                func = from_random[chain[0]]
            if func is None:
                continue
            if func == "Random":
                if not node.args and not node.keywords:
                    yield self.at(
                        node,
                        "random.Random() without a seed draws from the OS; "
                        "pass an explicit seed",
                    )
            elif func == "SystemRandom":
                yield self.at(
                    node,
                    "random.SystemRandom() is OS entropy and can never be "
                    "seeded; use random.Random(seed)",
                )
            elif func[:1].islower():
                yield self.at(
                    node,
                    f"module-level random.{func}() uses the shared global "
                    "generator; use an explicitly seeded random.Random "
                    "instance",
                )


class WallClockRule(Rule):
    """D002 — simulation paths must not read the wall clock.

    Simulated time comes from ``engine.now``; a wall-clock read in a
    sim-side module makes results hardware- and load-dependent.  The
    harness edges that legitimately deal in real time (daemon polling,
    claim heartbeats, elapsed-time provenance, measurement/profiling)
    are allowlisted by path.
    """

    rule_id = "D002"
    summary = "wall-clock read outside the daemon/dist/profiling allowlist"

    #: Path suffixes allowed to touch real time: the daemon fleet and
    #: claim protocol (heartbeats, polling), the sweep drivers' elapsed
    #: provenance, and the measurement/profiling layers.  Benchmark
    #: modules time things by definition.
    ALLOWLIST = (
        "repro/exp/daemon.py",
        "repro/exp/dist.py",
        "repro/exp/backend.py",
        "repro/exp/worker.py",
        "repro/exp/runner.py",
        "repro/core/profiling.py",
        "repro/speedup/measure.py",
    )
    ALLOWED_DIRS = ("benchmarks",)

    TIME_FUNCS = frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "process_time",
            "process_time_ns",
            "sleep",
        }
    )
    DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

    def check(
        self, module: LintModule, context: LintContext
    ) -> Iterator[Tuple[int, int, str]]:
        if path_endswith(module, self.ALLOWLIST):
            return
        if path_has_dir(module, *self.ALLOWED_DIRS):
            return
        modules, names = module_imports(module)
        time_aliases = {a for a, m in modules.items() if m == "time"}
        datetime_aliases = {a for a, m in modules.items() if m == "datetime"}
        from_time = {
            alias
            for alias, target in names.items()
            if target.startswith("time.")
            and target.rsplit(".", 1)[1] in self.TIME_FUNCS
        }
        datetime_classes = {
            alias
            for alias, target in names.items()
            if target in ("datetime.datetime", "datetime.date")
        }
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            hit: Optional[str] = None
            if (
                len(chain) == 2
                and chain[0] in time_aliases
                and chain[1] in self.TIME_FUNCS
            ):
                hit = f"time.{chain[1]}"
            elif len(chain) == 1 and chain[0] in from_time:
                hit = f"time.{chain[0]}"
            elif (
                len(chain) == 2
                and chain[0] in datetime_classes
                and chain[1] in self.DATETIME_FUNCS
            ):
                hit = f"datetime.{chain[1]}"
            elif (
                len(chain) == 3
                and chain[0] in datetime_aliases
                and chain[1] in ("datetime", "date")
                and chain[2] in self.DATETIME_FUNCS
            ):
                hit = f"{chain[1]}.{chain[2]}"
            if hit is not None:
                yield self.at(
                    node,
                    f"{hit}() reads the wall clock in a simulation path; "
                    "simulated time comes from the engine (allowlisted "
                    "modules: daemon/dist/worker/runner/profiling/measure)",
                )


class IdAsKeyRule(Rule):
    """D003 — ``id()`` must not key a cache or mapping.

    CPython recycles ids after garbage collection, so an ``id()``-keyed
    cache can serve one object's entry for a different, later object at
    the same address — the exact bug PR 2 fixed in the calibration
    caches.  Value-based fingerprints (or keeping a strong reference and
    saying so in a pragma) are the sanctioned patterns.
    """

    rule_id = "D003"
    summary = "id() used as a mapping/cache key"

    #: Mapping methods whose first argument is a key.
    KEYED_METHODS = frozenset({"get", "setdefault", "pop"})

    def check(
        self, module: LintModule, context: LintContext
    ) -> Iterator[Tuple[int, int, str]]:
        for node in module.walk():
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
            ):
                continue
            reason = self._key_position(module, node)
            if reason is not None:
                yield self.at(
                    node,
                    f"id() {reason}; ids are recycled after garbage "
                    "collection, so equal-valued objects can alias — key "
                    "on a value fingerprint instead",
                )

    def _key_position(
        self, module: LintModule, node: ast.Call
    ) -> Optional[str]:
        for ancestor, came_from in module.ancestry(node):
            if isinstance(ancestor, ast.Subscript) and came_from is ancestor.slice:
                return "used as a subscript key"
            if (
                isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Attribute)
                and ancestor.func.attr in self.KEYED_METHODS
                and ancestor.args
                and came_from is ancestor.args[0]
            ):
                return f"used as the key of .{ancestor.func.attr}()"
            if isinstance(ancestor, ast.Dict) and came_from in ancestor.keys:
                return "used as a dict-literal key"
            if isinstance(ancestor, ast.Assign):
                for target in ancestor.targets:
                    if isinstance(target, ast.Name) and "key" in target.id.lower():
                        return f"assigned to key-like name {target.id!r}"
            if isinstance(ancestor, (ast.stmt,)):
                return None
        return None


class UnsortedFsEnumRule(Rule):
    """D004 — filesystem enumeration order must be pinned.

    ``glob``/``iterdir``/``listdir``/``scandir`` return entries in
    filesystem order, which differs between machines and even between
    runs; any consumer that cares about order (worker drain order, merge
    inputs, golden comparisons) must wrap the result in ``sorted``.
    Order-insensitive consumers (``set``, ``len``, ``max``, ...) pass.
    """

    rule_id = "D004"
    summary = "glob/iterdir/listdir/scandir consumed without sorted(...)"

    FS_METHODS = frozenset({"glob", "rglob", "iterdir"})
    FS_MODULE_FUNCS = {
        "os": frozenset({"listdir", "scandir"}),
        "glob": frozenset({"glob", "iglob"}),
    }
    ORDER_SAFE = frozenset(
        {"sorted", "set", "frozenset", "len", "max", "min", "any", "all"}
    )

    def check(
        self, module: LintModule, context: LintContext
    ) -> Iterator[Tuple[int, int, str]]:
        modules, names = module_imports(module)
        flat_funcs = {
            alias: target
            for alias, target in names.items()
            if any(
                target == f"{mod}.{func}"
                for mod, funcs in self.FS_MODULE_FUNCS.items()
                for func in funcs
            )
        }
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            label = self._enumeration(node, modules, flat_funcs)
            if label is None:
                continue
            if self._reaches_order_safe_consumer(module, node):
                continue
            yield self.at(
                node,
                f"{label} returns entries in filesystem order; wrap the "
                "result in sorted(...) (or consume it order-insensitively)",
            )

    def _enumeration(
        self,
        node: ast.Call,
        modules: Dict[str, str],
        flat_funcs: Dict[str, str],
    ) -> Optional[str]:
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            base = dotted_name(node.func.value)
            if (
                base is not None
                and len(base) == 1
                and modules.get(base[0]) in self.FS_MODULE_FUNCS
            ):
                if attr in self.FS_MODULE_FUNCS[modules[base[0]]]:
                    return f"{modules[base[0]]}.{attr}()"
                return None
            if attr in self.FS_METHODS:
                return f".{attr}()"
            return None
        if isinstance(node.func, ast.Name) and node.func.id in flat_funcs:
            return f"{flat_funcs[node.func.id]}()"
        return None

    def _reaches_order_safe_consumer(
        self, module: LintModule, node: ast.Call
    ) -> bool:
        for ancestor, _ in module.ancestry(node):
            if (
                isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Name)
                and ancestor.func.id in self.ORDER_SAFE
            ):
                return True
            if isinstance(ancestor, ast.stmt):
                return False
        return False


class SetIterationRule(Rule):
    """D005 — don't iterate sets where order can matter.

    Set iteration order depends on insertion history and (for strings)
    on per-process hash seeding, so a float accumulation driven by a set
    is nondeterministic across runs.  Iterate lists, tuples or dicts
    (insertion-ordered), or sort the set first.
    """

    rule_id = "D005"
    summary = "iteration over a set literal/comprehension/constructor"

    def check(
        self, module: LintModule, context: LintContext
    ) -> Iterator[Tuple[int, int, str]]:
        for node in module.walk():
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                label = self._set_expression(it)
                if label is not None:
                    yield self.at(
                        it,
                        f"iterating a {label} feeds an order-sensitive "
                        "consumer in hash order; iterate a list/dict or "
                        "sorted(...) instead",
                    )

    @staticmethod
    def _set_expression(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, ast.SetComp):
            return "set comprehension"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return f"{node.func.id}() constructor"
        return None


# ----------------------------------------------------------------------
# Schema rules
# ----------------------------------------------------------------------
class TraceKindLiteralRule(Rule):
    """S001 — trace kinds are named once, in ``sim/trace_kinds.py``.

    A bare kind literal at an emit or consume site is one typo away from
    silently forking an event stream (a mis-spelled kind records fine
    and simply never matches its consumer).  Inside ``sim/``, ``core/``
    and ``gpu/`` every registered kind string must come from the
    registry constants.
    """

    rule_id = "S001"
    summary = "bare trace-kind literal; use repro.sim.trace_kinds constants"

    SCOPED_DIRS = ("sim", "core", "gpu")

    def check(
        self, module: LintModule, context: LintContext
    ) -> Iterator[Tuple[int, int, str]]:
        if not path_has_dir(module, *self.SCOPED_DIRS):
            return
        if module.path.name == "trace_kinds.py":
            return
        if module.lint_root is None:
            return
        registry = context.trace_kind_registry(module.lint_root)
        if registry is None:
            return
        for node in module.walk():
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in registry
            ):
                constant = registry[node.value]
                yield self.at(
                    node,
                    f"bare trace-kind literal {node.value!r}; import "
                    f"repro.sim.trace_kinds.{constant} so typos cannot "
                    "fork the event stream",
                )


class VersionDisciplineRule(Rule):
    """S002 — every on-disk format version needs a compatible reader.

    A writer-side ``*_VERSION = N`` constant with ``N >= 2`` means
    version-1 artifacts exist in the wild; the same module must carry an
    accept-set (a ``*VERSIONS*`` tuple/set/list of int literals or
    version-constant names) covering every version ``1..N``, or old runs
    stop being readable the moment the constant is bumped.
    """

    rule_id = "S002"
    summary = "writer version constant without a covering reader accept-set"

    STOPWORDS = frozenset(
        {"READABLE", "ACCEPTED", "ACCEPT", "SUPPORTED", "VERSIONS", "VERSION", "FORMAT", ""}
    )

    def check(
        self, module: LintModule, context: LintContext
    ) -> Iterator[Tuple[int, int, str]]:
        int_constants: Dict[str, int] = {}
        writers: List[Tuple[str, int, ast.AST]] = []
        accept_sets: List[Tuple[str, ast.AST]] = []
        for node in module.tree.body:
            target = self._single_upper_target(node)
            if target is None:
                continue
            name, value = target
            if isinstance(value, ast.Constant) and isinstance(value.value, int):
                int_constants[name] = value.value
                if name.endswith("_VERSION"):
                    writers.append((name, value.value, node))
            elif "VERSIONS" in name and isinstance(
                value, (ast.Tuple, ast.Set, ast.List)
            ):
                accept_sets.append((name, value))
        for name, version, node in writers:
            if version < 2:
                continue  # no prior versions to accept
            match = self._matching_accept_set(name, accept_sets)
            if match is None:
                yield self.at(
                    node,
                    f"{name} = {version} has no reader accept-set; add a "
                    f"*VERSIONS* tuple naming every readable version 1..{version}",
                )
                continue
            accept_name, accept_value = match
            accepted = self._resolve(accept_value, int_constants)
            if accepted is None:
                yield self.at(
                    accept_value,
                    f"{accept_name} holds elements the linter cannot resolve "
                    "to ints; use int literals or module-level version "
                    "constants",
                )
                continue
            missing = sorted(set(range(1, version + 1)) - accepted)
            if missing:
                yield self.at(
                    accept_value,
                    f"{accept_name} does not accept version"
                    f"{'s' if len(missing) != 1 else ''} "
                    f"{', '.join(map(str, missing))} (writer {name} = "
                    f"{version}; readers must keep accepting prior versions)",
                )

    @staticmethod
    def _single_upper_target(node: ast.stmt) -> Optional[Tuple[str, ast.expr]]:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id.isupper()
        ):
            return node.targets[0].id, node.value
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id.isupper()
            and node.value is not None
        ):
            return node.target.id, node.value
        return None

    def _tokens(self, name: str) -> Set[str]:
        return {part for part in name.strip("_").split("_")} - self.STOPWORDS

    def _matching_accept_set(
        self, writer_name: str, accept_sets: List[Tuple[str, ast.AST]]
    ) -> Optional[Tuple[str, ast.AST]]:
        writer_tokens = self._tokens(writer_name)
        for accept_name, value in accept_sets:
            if self._tokens(accept_name) == writer_tokens:
                return accept_name, value
        return None

    @staticmethod
    def _resolve(
        node: ast.AST, int_constants: Dict[str, int]
    ) -> Optional[Set[int]]:
        accepted: Set[int] = set()
        for element in node.elts:  # type: ignore[attr-defined]
            if isinstance(element, ast.Constant) and isinstance(
                element.value, int
            ):
                accepted.add(element.value)
            elif isinstance(element, ast.Name) and element.id in int_constants:
                accepted.add(int_constants[element.id])
            else:
                return None
        return accepted


# ----------------------------------------------------------------------
# Tiering rule
# ----------------------------------------------------------------------
class BenchmarkSlowMarkerRule(Rule):
    """T001 — benchmark test modules must opt into the slow tier.

    The fast tier's sub-two-minute contract (ROADMAP, PR 1) holds only
    because everything under ``benchmarks/`` is marked ``slow`` — either
    module-wide (``pytestmark = pytest.mark.slow``) or per-test (fast
    golden smokes ride alongside marked benchmarks).  A benchmark module
    with no slow marker at all silently lands in the fast tier.
    """

    rule_id = "T001"
    summary = "benchmarks/test_* module without a pytest.mark.slow marker"

    def check(
        self, module: LintModule, context: LintContext
    ) -> Iterator[Tuple[int, int, str]]:
        name = module.path.name
        if not (
            path_has_dir(module, "benchmarks")
            and name.startswith("test_")
            and name.endswith(".py")
        ):
            return
        for node in module.walk():
            chain = dotted_name(node) if isinstance(node, ast.Attribute) else None
            if chain is not None and chain[-2:] == ("mark", "slow"):
                return
        yield (
            1,
            0,
            "benchmark test module never references pytest.mark.slow; mark "
            "the module (pytestmark) or its slow tests so the fast tier "
            "stays under two minutes",
        )


#: Every rule, in id order.  ``run_lint`` takes this unless a caller
#: narrows it.
ALL_RULES: Tuple[Rule, ...] = (
    UnseededRandomRule(),
    WallClockRule(),
    IdAsKeyRule(),
    UnsortedFsEnumRule(),
    SetIterationRule(),
    TraceKindLiteralRule(),
    VersionDisciplineRule(),
    BenchmarkSlowMarkerRule(),
)

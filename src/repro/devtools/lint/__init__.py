"""``repro lint`` — the AST-based invariant linter.

Public surface: :func:`run_lint` over :data:`ALL_RULES`, plus the text /
JSON renderers the CLI uses.  See ``src/repro/devtools/README.md`` for
the rules reference and suppression syntax.
"""

from repro.devtools.lint.framework import (
    Finding,
    LintContext,
    LintModule,
    PARSE_ERROR,
    Rule,
    render_json,
    render_text,
    run_lint,
)
from repro.devtools.lint.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "LintModule",
    "PARSE_ERROR",
    "Rule",
    "render_json",
    "render_text",
    "run_lint",
]

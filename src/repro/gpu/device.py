"""The simulated GPU device: progress integration and completion events.

``GpuDevice`` ties the pieces together: contexts hold resident kernels, the
allocator assigns shares/rates, and the device integrates progress over
simulated time, firing a completion callback whenever a stage kernel
finishes.  Rates are piecewise-constant between *change points* (submit,
completion, abort); at every change point the device

1. advances each resident kernel by the elapsed time at its previous rate,
2. recomputes the allocation,
3. reschedules one provisional completion event per resident kernel.

The completion callback is the scheduler's online hook (release successor
stages, complete jobs); anything it submits or aborts is folded into the
same change point.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.gpu.allocator import AllocationParams, AllocationResult, compute_allocation
from repro.gpu.context import SimContext
from repro.gpu.kernel import StageKernel
from repro.gpu.spec import GpuDeviceSpec
from repro.sim.engine import Event, SimulationEngine
from repro.sim.trace import TraceRecorder

CompletionCallback = Callable[[StageKernel], None]


class GpuDevice:
    """Rate-based execution of stage kernels on a partitioned GPU.

    Parameters
    ----------
    engine:
        The discrete-event engine driving simulated time.
    spec:
        Architectural constants (SM count, stream counts, aggregate cap).
    contexts:
        The context pool.  Nominal SM totals may exceed ``spec.total_sms``
        (over-subscription); the allocator resolves the contention.
    params:
        Allocation model constants.
    trace:
        Optional trace recorder (kinds: ``kernel_start``, ``kernel_done``,
        ``allocation``).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        spec: GpuDeviceSpec,
        contexts: Sequence[SimContext],
        params: AllocationParams = AllocationParams(),
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if not contexts:
            raise ValueError("device needs at least one context")
        self.engine = engine
        self.spec = spec
        self.contexts = list(contexts)
        self.params = params
        self.trace = trace
        self.on_kernel_complete: Optional[CompletionCallback] = None
        self._completion_events: Dict[int, Event] = {}
        self._last_update = engine.now
        self._last_allocation = AllocationResult()
        self._settling = False
        # Accumulated statistics
        self.total_work_done = 0.0
        self.busy_time = 0.0
        self.pressure_time_integral = 0.0

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def context(self, context_id: int) -> SimContext:
        """Look up a context by id."""
        for context in self.contexts:
            if context.context_id == context_id:
                return context
        raise KeyError(f"unknown context {context_id}")

    def submit(self, kernel: StageKernel, context: SimContext) -> None:
        """Assign a stage kernel to a context and (re)settle the device."""
        context.enqueue(kernel)
        self._settle()

    def abort(self, kernel: StageKernel) -> None:
        """Cancel a kernel wherever it is (queued or resident)."""
        kernel.aborted = True
        event = self._completion_events.pop(kernel.kernel_id, None)
        if event is not None:
            self.engine.cancel(event)
        context = (
            self.context(kernel.context_id) if kernel.context_id is not None else None
        )
        if context is not None:
            context.remove(kernel)
        self._settle()

    def resident_kernels(self) -> List[StageKernel]:
        """All kernels currently on streams, across contexts."""
        kernels: List[StageKernel] = []
        for context in self.contexts:
            kernels.extend(context.resident_kernels())
        return kernels

    @property
    def last_allocation(self) -> AllocationResult:
        """Result of the most recent allocation pass."""
        return self._last_allocation

    # ------------------------------------------------------------------
    # Change-point handling
    # ------------------------------------------------------------------
    def _settle(self) -> None:
        """Advance progress, dispatch queues, re-allocate, re-arm events."""
        if self._settling:
            # A nested mutation (from a completion callback) will be folded
            # into the enclosing settle pass.
            return
        self._settling = True
        try:
            self._advance_progress()
            for context in self.contexts:
                newly = context.dispatch_ready()
                if self.trace is not None:
                    for kernel in newly:
                        kernel.dispatched_at = self.engine.now
                        self.trace.record(
                            self.engine.now,
                            "kernel_start",
                            kernel=kernel.label,
                            context=context.context_id,
                            priority=kernel.priority.name,
                        )
                else:
                    for kernel in newly:
                        kernel.dispatched_at = self.engine.now
            self._reallocate()
        finally:
            self._settling = False

    def _advance_progress(self) -> None:
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed <= 0:
            return
        aggregate = 0.0
        for kernel in self.resident_kernels():
            kernel.advance(elapsed)
            aggregate += kernel.rate
        self.total_work_done += aggregate * elapsed
        if aggregate > 0:
            self.busy_time += elapsed
        self.pressure_time_integral += self._last_allocation.pressure * elapsed
        self._last_update = now

    def _reallocate(self) -> None:
        result = compute_allocation(
            self.contexts,
            float(self.spec.total_sms),
            self.spec.aggregate_speedup_cap,
            self.params,
        )
        self._last_allocation = result
        if self.trace is not None:
            self.trace.record(
                self.engine.now,
                "allocation",
                pressure=round(result.pressure, 4),
                aggregate_rate=round(result.aggregate_rate, 3),
                resident=len(result.rates),
            )
        # Re-arm one completion event per resident kernel.
        for event in self._completion_events.values():
            self.engine.cancel(event)
        self._completion_events.clear()
        for kernel in self.resident_kernels():
            remaining = kernel.time_to_completion()
            if remaining == float("inf"):
                continue
            self._completion_events[kernel.kernel_id] = self.engine.schedule(
                remaining,
                lambda k=kernel: self._on_completion(k),
                tag=f"complete:{kernel.label}",
            )

    def _on_completion(self, kernel: StageKernel) -> None:
        self._completion_events.pop(kernel.kernel_id, None)
        self._advance_progress()
        if kernel.aborted:
            return
        if not kernel.is_complete:
            if kernel.time_to_completion() < 1e-9:
                # Residual below the simulator's time resolution: finishing
                # "now" is indistinguishable from finishing 1 ns from now,
                # and re-arming would spin at the current instant forever.
                kernel.force_complete()
            else:
                # A stale event raced a same-instant reallocation; re-arm.
                self._reallocate()
                return
        context = self.context(kernel.context_id)
        context.remove(kernel)
        if self.trace is not None:
            self.trace.record(
                self.engine.now,
                "kernel_done",
                kernel=kernel.label,
                context=context.context_id,
            )
        callback = self.on_kernel_complete
        self._settling = True
        try:
            if callback is not None:
                callback(kernel)
        finally:
            self._settling = False
        self._settle()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def utilization(self, now: Optional[float] = None) -> float:
        """Busy fraction of wall time since construction."""
        now = self.engine.now if now is None else now
        if now <= 0:
            return 0.0
        return self.busy_time / now

    def mean_pressure(self, now: Optional[float] = None) -> float:
        """Time-averaged over-subscription pressure."""
        now = self.engine.now if now is None else now
        if now <= 0:
            return 0.0
        return self.pressure_time_integral / now

"""The simulated GPU device: progress integration and completion events.

``GpuDevice`` ties the pieces together: contexts hold resident kernels, the
allocator assigns shares/rates, and the device integrates progress over
simulated time, firing a completion callback whenever a stage kernel
finishes.  Rates are piecewise-constant between *change points* (submit,
completion, abort); at every change point the device

1. advances each resident kernel by the elapsed time at its previous rate,
2. recomputes the allocation — unless the resident set is untouched since
   the last settle (a submit that only queued, an abort that only
   tombstoned), in which case shares, rates and every armed completion
   event are still exact and the whole pass is skipped,
3. re-arms provisional completion events **only for kernels whose rate
   actually changed** (tracked by a per-kernel rate revision the allocator
   bumps).  A kernel's completion time is anchored at the instant its rate
   last changed — ``anchor_now + time_to_completion`` — and at a constant
   rate that absolute time stays exact, so the provisional event scheduled
   then needs no churn.

This makes a change point O(changed) in engine heap operations instead of
O(resident): a busy device with K resident kernels no longer pays O(K)
cancels and re-pushes on every submit/complete/abort (O(K²) events per
hyperperiod).  The reference ``rearm="full"`` mode keeps the historical
cancel-everything/re-arm-everything behaviour — anchored at the same
per-kernel completion times, so both modes produce bit-identical traces —
and exists as the equivalence/benchmark baseline.

The third mode, ``rearm="vectorised"``, goes one step further for the
*ceiling-bound* regime, where a binding DRAM/L2 aggregate cap legitimately
rescales every resident rate at every change point and O(changed)
degenerates back to O(resident).  Kernel hot state lives in a flat
structure-of-arrays table (:mod:`repro.gpu.table`); allocation and
progress integration are whole-array passes; and completions are anchored
per slot on a shared time axis with a **single sentinel event** in the
engine heap carrying the earliest ``(time, stamp)`` pair — so a saturated
settle costs O(1) heap operations and O(1) speedup-curve evaluations
instead of O(K) of each.  All three modes produce bit-identical traces
(``tests/gpu/test_trace_equivalence.py`` pins the full matrix).

The completion callback is the scheduler's online hook (release successor
stages, complete jobs); anything it submits or aborts is folded into the
same change point.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.gpu.allocator import (
    AllocationParams,
    AllocationResult,
    WaterfillCache,
    compute_allocation,
)
from repro.gpu.context import SimContext
from repro.gpu.kernel import StageKernel
from repro.gpu.spec import GpuDeviceSpec
from repro.sim.clock import TIME_EPS
from repro.sim.engine import Event, SimulationEngine
from repro.sim.trace import TraceRecorder
from repro.sim.trace_kinds import ALLOCATION, KERNEL_DONE, KERNEL_START

CompletionCallback = Callable[[StageKernel], None]

#: Re-arming strategies: ``"incremental"`` (the default O(changed) path),
#: ``"full"`` (the reference re-arm-everything mode used by the
#: trace-equivalence tests and as the benchmark baseline) and
#: ``"vectorised"`` (the structure-of-arrays core with a single sentinel
#: completion event; requires numpy).
REARM_MODES: Tuple[str, ...] = ("incremental", "full", "vectorised")


class GpuDevice:
    """Rate-based execution of stage kernels on a partitioned GPU.

    Parameters
    ----------
    engine:
        The discrete-event engine driving simulated time.
    spec:
        Architectural constants (SM count, stream counts, aggregate cap).
    contexts:
        The context pool.  Nominal SM totals may exceed ``spec.total_sms``
        (over-subscription); the allocator resolves the contention.
    params:
        Allocation model constants.
    trace:
        Optional trace recorder (kinds: ``kernel_start``, ``kernel_done``,
        ``allocation``).
    rearm:
        Completion re-arming strategy; one of :data:`REARM_MODES`.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        spec: GpuDeviceSpec,
        contexts: Sequence[SimContext],
        params: AllocationParams = AllocationParams(),
        trace: Optional[TraceRecorder] = None,
        rearm: str = "incremental",
    ) -> None:
        if not contexts:
            raise ValueError("device needs at least one context")
        if rearm not in REARM_MODES:
            raise ValueError(
                f"rearm must be one of {REARM_MODES}, got {rearm!r}"
            )
        self.engine = engine
        self.spec = spec
        self.contexts = list(contexts)
        self._context_by_id: Dict[int, SimContext] = {}
        for context in self.contexts:
            if context.context_id in self._context_by_id:
                raise ValueError(f"duplicate context id {context.context_id}")
            self._context_by_id[context.context_id] = context
        self.params = params
        self.trace = trace
        self.rearm = rearm
        self.on_kernel_complete: Optional[CompletionCallback] = None
        #: kernel_id -> (rate revision at arming, scheduled completion
        #: event or None when stalled).  The event itself carries the
        #: anchored absolute time.  Scalar modes only; the vectorised mode
        #: anchors completions in the table and keeps one sentinel event.
        self._armed: Dict[int, Tuple[int, Optional[Event]]] = {}
        self._table = None
        self._sentinel: Optional[Event] = None
        self._sentinel_slot = -1
        #: Bit-transparent memoisation of per-context water-fills, shared
        #: between the scalar and vectorised allocation paths.
        self._shares_cache = WaterfillCache()
        if rearm == "vectorised":
            # Deferred import: numpy stays optional for the scalar modes.
            from repro.gpu.table import KernelTable

            self._table = KernelTable(self.contexts, shares_cache=self._shares_cache)
        self._start_time = engine.now
        self._last_update = engine.now
        self._last_allocation = AllocationResult()
        #: Residency-revision snapshot the last allocation pass saw; an
        #: unchanged snapshot proves the pass would reproduce itself.
        self._alloc_residency_rev = -1
        self._settling = False
        self._resident_cache: List[StageKernel] = []
        self._resident_cache_rev = -1
        # Accumulated statistics
        self.total_work_done = 0.0
        self.busy_time = 0.0
        self.pressure_time_integral = 0.0
        #: Allocation passes actually computed vs. skipped as provably
        #: unchanged (observability for tests and benchmarks).
        self.alloc_passes = 0
        self.alloc_skips = 0

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def context(self, context_id: int) -> SimContext:
        """Look up a context by id (O(1))."""
        try:
            return self._context_by_id[context_id]
        except KeyError:
            raise KeyError(f"unknown context {context_id}") from None

    def submit(self, kernel: StageKernel, context: SimContext) -> None:
        """Assign a stage kernel to a context and (re)settle the device."""
        context.enqueue(kernel)
        self._settle()

    def abort(self, kernel: StageKernel) -> None:
        """Cancel a kernel wherever it is (queued or resident).

        Progress up to the abort instant is integrated *before* the kernel
        is detached, so the work an aborted kernel performed still shows in
        ``total_work_done``/``busy_time`` (the GPU cycles were spent).
        """
        self._advance_progress()
        self._abort_one(kernel)
        self._settle()

    def abort_many(self, kernels: Iterable[StageKernel]) -> None:
        """Cancel several kernels in one change point (one settle pass).

        The shedding path aborts every pending stage of a job at once;
        folding them into a single settle avoids re-dispatching and
        re-allocating between aborts that happen at the same instant.
        Like :meth:`abort`, progress is integrated before any detach.
        """
        self._advance_progress()
        for kernel in kernels:
            self._abort_one(kernel)
        self._settle()

    def _abort_one(self, kernel: StageKernel) -> None:
        kernel.aborted = True
        self._disarm(kernel.kernel_id)
        context = (
            self._context_by_id.get(kernel.context_id)
            if kernel.context_id is not None
            else None
        )
        if context is not None:
            context.remove(kernel)

    def resident_kernels(self) -> List[StageKernel]:
        """All kernels currently on streams, across contexts.

        Cached between residency changes; treat the result as read-only
        (the cache is replaced, never mutated in place, so held references
        stay stable snapshots).
        """
        rev = self._residency_rev()
        if rev != self._resident_cache_rev:
            kernels: List[StageKernel] = []
            for context in self.contexts:
                kernels.extend(context.resident_kernels())
            self._resident_cache = kernels
            self._resident_cache_rev = rev
        return self._resident_cache

    @property
    def last_allocation(self) -> AllocationResult:
        """Result of the most recent allocation pass."""
        return self._last_allocation

    # ------------------------------------------------------------------
    # Change-point handling
    # ------------------------------------------------------------------
    def _residency_rev(self) -> int:
        """Sum of the per-context residency revisions.

        Each revision is a monotone counter bumped on every attach and
        detach, so an unchanged sum proves the resident set is untouched
        (no ABA: any change strictly increases the sum).
        """
        return sum(context.residency_rev for context in self.contexts)

    def _settle(self) -> None:
        """Advance progress, dispatch queues, re-allocate, re-arm events."""
        if self._settling:
            # A nested mutation (from a completion callback) will be folded
            # into the enclosing settle pass.
            return
        self._settling = True
        try:
            self._advance_progress()
            for context in self.contexts:
                newly = context.dispatch_ready()
                if self.trace is not None:
                    for kernel in newly:
                        kernel.dispatched_at = self.engine.now
                        self.trace.record(
                            self.engine.now,
                            KERNEL_START,
                            kernel=kernel.label,
                            context=context.context_id,
                            priority=kernel.priority.name,
                        )
                else:
                    for kernel in newly:
                        kernel.dispatched_at = self.engine.now
            self._reallocate()
        finally:
            self._settling = False

    def _advance_progress(self) -> None:
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed <= 0:
            return
        if self._table is not None:
            # Whole-array integration; advance() semantics element-wise.
            work_done, busy = self._table.advance(elapsed)
            self.total_work_done += work_done
            if busy:
                self.busy_time += elapsed
        else:
            aggregate = 0.0
            for kernel in self.resident_kernels():
                # advance() reports the work actually consumed: setup
                # seconds burn at rate 1 without producing work, so
                # integrating rate * elapsed would overcount any kernel
                # mid-setup (the naive scheduler's reconfiguration path).
                self.total_work_done += kernel.advance(elapsed)
                aggregate += kernel.rate
            if aggregate > 0:
                self.busy_time += elapsed
        self.pressure_time_integral += self._last_allocation.pressure * elapsed
        self._last_update = now

    def _reallocate(self) -> None:
        residency_rev = self._residency_rev()
        if (
            self.rearm != "full"
            and residency_rev == self._alloc_residency_rev
        ):
            # Nothing entered or left a stream since the last pass: shares,
            # rates and every armed completion event (or the sentinel) are
            # still exact.  Only the allocation trace record is emitted
            # (from the cached result, which the skipped pass would have
            # reproduced).
            self.alloc_skips += 1
            self._record_allocation(self._last_allocation)
            return
        if self._table is not None:
            result, changed = self._table.allocate(
                float(self.spec.total_sms),
                self.spec.aggregate_speedup_cap,
                self.params,
                want_dicts=self.trace is not None,
            )
            self.alloc_passes += 1
            self._last_allocation = result
            self._alloc_residency_rev = residency_rev
            self._record_allocation(result)
            if changed.any():
                self._table.rearm_changed(self.engine.now, self.engine, changed)
            self._update_sentinel()
            return
        result = compute_allocation(
            self.contexts,
            float(self.spec.total_sms),
            self.spec.aggregate_speedup_cap,
            self.params,
            cache=self._shares_cache,
        )
        self.alloc_passes += 1
        self._last_allocation = result
        self._alloc_residency_rev = residency_rev
        self._record_allocation(result)
        full = self.rearm == "full"
        for kernel in self.resident_kernels():
            record = self._armed.get(kernel.kernel_id)
            if record is not None and record[0] == kernel.rate_rev:
                if not full:
                    # Unchanged rate: the provisional event is still exact.
                    continue
                # Reference mode: churn the heap anyway (tombstone +
                # re-push), but preserve the event's (time, seq) position
                # so same-timestamp ordering — and therefore traces — stay
                # bit-identical to the incremental mode.
                if record[1] is not None:
                    self._armed[kernel.kernel_id] = (
                        record[0],
                        self.engine.reschedule(record[1]),
                    )
                continue
            if record is not None and record[1] is not None:
                self.engine.cancel(record[1])
            self._arm(kernel, self.engine.now + kernel.time_to_completion())

    def _arm(self, kernel: StageKernel, when: float) -> None:
        """Store an arm record for ``kernel`` completing at absolute ``when``."""
        if when == float("inf"):
            # Stalled (zero rate): no event, but remember the revision so
            # the kernel is only revisited when its rate moves.
            self._armed[kernel.kernel_id] = (kernel.rate_rev, None)
            return
        event = self.engine.schedule_at(
            max(when, self.engine.now),
            lambda k=kernel: self._on_completion(k),
            tag=f"complete:{kernel.label}",
        )
        self._armed[kernel.kernel_id] = (kernel.rate_rev, event)

    def _rearm_residual(self, kernel: StageKernel, residual: float) -> None:
        """Re-anchor a kernel whose fired completion undershot (rounding)."""
        now = self.engine.now
        when = now + residual
        if self._table is None:
            self._arm(kernel, when)
            return
        slot = self._table.slot_of[kernel.kernel_id]
        if when == float("inf"):
            self._table.clear_arm(slot)
        else:
            # Burn one order stamp, exactly like the scalar schedule_at.
            self._table.arm_slot(
                slot, max(when, now), self.engine.allocate_seqs(1)
            )
        self._update_sentinel()

    def _disarm(self, kernel_id: int) -> None:
        record = self._armed.pop(kernel_id, None)
        if record is not None and record[1] is not None:
            self.engine.cancel(record[1])
        if self._table is not None:
            # Drop the slot's anchor; the settle that always follows a
            # disarm re-picks the sentinel before any event can fire.
            self._table.disarm(kernel_id)

    # ------------------------------------------------------------------
    # Vectorised-mode sentinel
    # ------------------------------------------------------------------
    def _update_sentinel(self) -> None:
        """Point the single pending engine event at the earliest anchor.

        The sentinel carries the exact ``(time, stamp)`` pair the
        incremental mode's next completion event would pop with, so event
        interleaving — and therefore traces — stay bit-identical.  When
        the earliest anchor is unchanged the existing event is kept: a
        saturated settle then costs at most one cancel and one push.
        """
        best = self._table.best_armed()
        event = self._sentinel
        if best is None:
            if event is not None and not event.fired:
                event.cancel()
            self._sentinel = None
            self._sentinel_slot = -1
            return
        slot, when, stamp = best
        if (
            event is not None
            and not event.cancelled
            and not event.fired
            and event.seq == stamp
            and event.time == when
        ):
            self._sentinel_slot = slot
            return
        if event is not None and not event.fired:
            event.cancel()
        kernel = self._table.kernels[slot]
        self._sentinel = self.engine.schedule_at_seq(
            when,
            stamp,
            self._fire_sentinel,
            tag=f"complete:{kernel.label}" if kernel is not None else "complete:?",
        )
        self._sentinel_slot = slot

    def _fire_sentinel(self) -> None:
        """The sentinel event's action: complete the anchored kernel."""
        slot = self._sentinel_slot
        self._sentinel = None
        self._sentinel_slot = -1
        kernel = self._table.kernels[slot]
        # Mirror the scalar mode popping its armed record before handling.
        self._table.clear_arm(slot)
        self._on_completion(kernel)

    def _record_allocation(self, result: AllocationResult) -> None:
        if self.trace is not None:
            self.trace.record(
                self.engine.now,
                ALLOCATION,
                pressure=round(result.pressure, 4),
                aggregate_rate=round(result.aggregate_rate, 3),
                resident=len(result.rates),
            )

    def _on_completion(self, kernel: StageKernel) -> None:
        self._armed.pop(kernel.kernel_id, None)
        self._advance_progress()
        if kernel.aborted:
            if self._table is not None:
                # The fired sentinel consumed this slot's anchor; the rest
                # of the table must get its next completion re-scheduled.
                self._update_sentinel()
            return
        if not kernel.is_complete:
            residual = kernel.time_to_completion()
            if residual < TIME_EPS:
                # Residual below the simulator's time resolution: finishing
                # "now" is indistinguishable from finishing 1 ns from now,
                # and re-arming would spin at the current instant forever.
                kernel.force_complete()
            else:
                # Accumulated per-step rounding left real residual work (the
                # anchored completion time undershot): re-arm this kernel at
                # its remaining time; rates are unchanged.
                self._rearm_residual(kernel, residual)
                return
        context = self.context(kernel.context_id)
        context.remove(kernel)
        if self.trace is not None:
            self.trace.record(
                self.engine.now,
                KERNEL_DONE,
                kernel=kernel.label,
                context=context.context_id,
            )
        callback = self.on_kernel_complete
        self._settling = True
        try:
            if callback is not None:
                callback(kernel)
        finally:
            self._settling = False
        self._settle()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def utilization(self, now: Optional[float] = None) -> float:
        """Busy fraction of wall time since the device was constructed.

        The span is measured from the construction time, not from time 0 —
        they differ for engines created with a nonzero ``start_time``.
        """
        now = self.engine.now if now is None else now
        elapsed = now - self._start_time
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed

    def mean_pressure(self, now: Optional[float] = None) -> float:
        """Time-averaged over-subscription pressure since construction."""
        now = self.engine.now if now is None else now
        elapsed = now - self._start_time
        if elapsed <= 0:
            return 0.0
        return self.pressure_time_integral / elapsed

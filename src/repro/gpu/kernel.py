"""Stage kernels: the unit of execution on the simulated GPU.

One :class:`StageKernel` represents one stage instance of one job — a
back-to-back sequence of operator launches aggregated into a single
rate-based work item (see DESIGN.md section 4).  Its progress rate at an SM
share is given by the stage's composite speedup curve.

A kernel optionally carries *setup time*: serial wall-clock latency paid
before useful work starts.  SGPRS' pre-created context pool makes this zero;
the naive baseline pays partition-reconfiguration setup on task switches.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

from repro.speedup.model import SpeedupCurve


class PriorityLevel(enum.IntEnum):
    """Scheduler priority levels (Section IV-B3).

    Ordering matters: higher value = more urgent.  LOW stages whose
    predecessor missed its virtual deadline are *promoted* to MEDIUM; the
    final stage of every task is HIGH.
    """

    LOW = 0
    MEDIUM = 1
    HIGH = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


#: SM-share weights per priority level, used by the intra-context allocator.
#: HIGH stages receive twice the share of LOW stages, mirroring the larger
#: scheduling slice high-priority CUDA streams obtain from the hardware
#: work distributor.
PRIORITY_WEIGHTS = {
    PriorityLevel.LOW: 1.0,
    PriorityLevel.MEDIUM: 1.5,
    PriorityLevel.HIGH: 2.0,
}

_KERNEL_IDS = itertools.count()


class StageKernel:
    """One resident (or queued) stage execution.

    Parameters
    ----------
    label:
        Human-readable identifier, e.g. ``"task3/job12/stage4"``.
    curve:
        Composite speedup curve mapping an SM share to a progress rate.
    work:
        Total parallelisable work in single-SM seconds.
    width_demand:
        SM count beyond which additional allocation is mostly wasted;
        the allocator never grants more than this.
    deadline:
        Absolute (virtual) deadline used for EDF ordering.
    priority:
        Scheduler priority level.
    setup_time:
        Serial reconfiguration latency consumed at rate 1 before work
        starts (0 for SGPRS' zero-configuration pool).
    payload:
        Opaque reference back to the scheduler's stage instance.
    """

    def __init__(
        self,
        label: str,
        curve: SpeedupCurve,
        work: float,
        width_demand: float,
        deadline: float,
        priority: PriorityLevel = PriorityLevel.LOW,
        setup_time: float = 0.0,
        payload: Any = None,
    ) -> None:
        if work <= 0:
            raise ValueError(f"kernel {label!r}: work must be positive, got {work}")
        if width_demand < 1.0:
            raise ValueError(
                f"kernel {label!r}: width_demand must be >= 1, got {width_demand}"
            )
        if setup_time < 0:
            raise ValueError(f"kernel {label!r}: setup_time must be >= 0")
        # Facade state first: the hot-state properties below dispatch on
        # ``_table``, so it must exist before anything reads them.
        self._table = None
        self._slot = -1
        self.kernel_id = next(_KERNEL_IDS)
        self.label = label
        self.curve = curve
        self.work_total = work
        self._work_remaining = work
        self._setup_remaining = setup_time
        self.width_demand = width_demand
        self.deadline = deadline
        self.priority = priority
        self.payload = payload
        # Execution state, managed by the device/context:
        self._share: float = 0.0
        self._rate: float = 0.0
        self._rate_rev: int = 0
        self.context_id: Optional[int] = None
        self.stream_id: Optional[int] = None
        self.dispatched_at: Optional[float] = None
        self.aborted = False

    # ------------------------------------------------------------------
    # Structure-of-arrays facade
    # ------------------------------------------------------------------
    # Under the vectorised device (``rearm="vectorised"``) a resident
    # kernel's hot state lives in one slot of the device's
    # :class:`repro.gpu.table.KernelTable`; these properties read/write
    # through to the arrays so schedulers, contexts and tests see one
    # coherent value regardless of mode.  Unbound kernels (queued, or any
    # kernel under the scalar modes) use the private attributes directly.

    def _bind(self, table, slot: int) -> None:
        """Attach the facade to a table slot (the table copies state in)."""
        self._table = table
        self._slot = slot

    def _unbind(self) -> None:
        """Detach from the table (the table copied state back out first)."""
        self._table = None
        self._slot = -1

    @property
    def work_remaining(self) -> float:
        """Parallelisable work left, in single-SM seconds."""
        table = self._table
        if table is None:
            return self._work_remaining
        return table.work_remaining[self._slot]

    @work_remaining.setter
    def work_remaining(self, value: float) -> None:
        table = self._table
        if table is None:
            self._work_remaining = value
        else:
            table.work_remaining[self._slot] = value

    @property
    def setup_remaining(self) -> float:
        """Serial setup seconds left (burn at rate 1 before work starts)."""
        table = self._table
        if table is None:
            return self._setup_remaining
        return table.setup_remaining[self._slot]

    @setup_remaining.setter
    def setup_remaining(self, value: float) -> None:
        table = self._table
        if table is None:
            self._setup_remaining = value
        else:
            table.setup_remaining[self._slot] = value

    @property
    def share(self) -> float:
        """Effective SM share published by the last allocation pass."""
        table = self._table
        if table is None:
            return self._share
        return table.share[self._slot]

    @share.setter
    def share(self, value: float) -> None:
        table = self._table
        if table is None:
            self._share = value
        else:
            table.share[self._slot] = value

    @property
    def rate(self) -> float:
        """Progress rate (single-SM seconds per wall second)."""
        table = self._table
        if table is None:
            return self._rate
        return table.rate[self._slot]

    @rate.setter
    def rate(self, value: float) -> None:
        table = self._table
        if table is None:
            self._rate = value
        else:
            table.rate[self._slot] = value

    @property
    def rate_rev(self) -> int:
        """Revision counter bumped whenever the published ``rate`` actually
        changes.  The device re-arms a kernel's provisional completion
        event only when this revision moved: at a constant rate the
        completion time fixed when the rate was last set stays exact."""
        table = self._table
        if table is None:
            return self._rate_rev
        return int(table.rate_rev[self._slot])

    @rate_rev.setter
    def rate_rev(self, value: int) -> None:
        table = self._table
        if table is None:
            self._rate_rev = value
        else:
            table.rate_rev[self._slot] = value

    # ------------------------------------------------------------------
    # Progress accounting
    # ------------------------------------------------------------------
    @property
    def weight(self) -> float:
        """Intra-context share weight derived from the priority level."""
        return PRIORITY_WEIGHTS[self.priority]

    #: Residual work below this many single-SM seconds counts as done
    #: (~1 picosecond of modelled work; far below any kernel's scale but
    #: far above accumulated float64 rounding error).
    WORK_EPS = 1e-12

    @property
    def is_complete(self) -> bool:
        """Whether setup and work have both been fully consumed."""
        return (
            self.setup_remaining <= self.WORK_EPS
            and self.work_remaining <= self.WORK_EPS
        )

    def force_complete(self) -> None:
        """Zero the residuals (used when remaining wall time is below the
        simulator's time resolution)."""
        self.setup_remaining = 0.0
        self.work_remaining = 0.0

    def advance(self, elapsed: float) -> float:
        """Consume ``elapsed`` seconds of wall time at the current rate.

        Setup time burns first (at rate 1, independent of the SM share),
        then work burns at ``self.rate``.  Returns the single-SM seconds of
        *work* actually consumed — setup seconds do not count as work, and
        the tail past completion consumes nothing — so the device's
        ``total_work_done`` integral conserves work exactly.
        """
        if elapsed < 0:
            raise ValueError(f"elapsed must be >= 0, got {elapsed}")
        # Read each facade property once: under the vectorised device the
        # accessors index numpy arrays, which is cheap but not free.
        setup = self.setup_remaining
        if setup > 0:
            consumed = min(setup, elapsed)
            setup -= consumed
            elapsed -= consumed
            if setup < self.WORK_EPS:
                setup = 0.0
            self.setup_remaining = setup
        rate = self.rate
        if elapsed <= 0 or rate <= 0:
            return 0.0
        work = self.work_remaining
        delta = elapsed * rate
        consumed_work = min(delta, work)
        work -= delta
        if work < self.WORK_EPS:
            work = 0.0
        self.work_remaining = work
        return consumed_work

    def time_to_completion(self) -> float:
        """Wall time until done at the current rate (inf when stalled).

        The branch structure is mirrored element-wise by
        :meth:`repro.gpu.table.KernelTable.completion_times`; keep the two
        in lockstep or the vectorised mode's traces drift.
        """
        setup = self.setup_remaining
        work = self.work_remaining
        if setup <= self.WORK_EPS and work <= self.WORK_EPS:
            return 0.0
        rate = self.rate
        if rate <= 0:
            if work > 1e-15:
                return float("inf")
            return setup
        return setup + work / rate

    def progress_fraction(self) -> float:
        """Fraction of the work already performed, in [0, 1]."""
        return 1.0 - self.work_remaining / self.work_total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StageKernel({self.label!r}, prio={self.priority.name}, "
            f"remaining={self.work_remaining:.2e}/{self.work_total:.2e})"
        )

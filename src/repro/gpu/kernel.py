"""Stage kernels: the unit of execution on the simulated GPU.

One :class:`StageKernel` represents one stage instance of one job — a
back-to-back sequence of operator launches aggregated into a single
rate-based work item (see DESIGN.md section 4).  Its progress rate at an SM
share is given by the stage's composite speedup curve.

A kernel optionally carries *setup time*: serial wall-clock latency paid
before useful work starts.  SGPRS' pre-created context pool makes this zero;
the naive baseline pays partition-reconfiguration setup on task switches.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

from repro.speedup.model import SpeedupCurve


class PriorityLevel(enum.IntEnum):
    """Scheduler priority levels (Section IV-B3).

    Ordering matters: higher value = more urgent.  LOW stages whose
    predecessor missed its virtual deadline are *promoted* to MEDIUM; the
    final stage of every task is HIGH.
    """

    LOW = 0
    MEDIUM = 1
    HIGH = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


#: SM-share weights per priority level, used by the intra-context allocator.
#: HIGH stages receive twice the share of LOW stages, mirroring the larger
#: scheduling slice high-priority CUDA streams obtain from the hardware
#: work distributor.
PRIORITY_WEIGHTS = {
    PriorityLevel.LOW: 1.0,
    PriorityLevel.MEDIUM: 1.5,
    PriorityLevel.HIGH: 2.0,
}

_KERNEL_IDS = itertools.count()


class StageKernel:
    """One resident (or queued) stage execution.

    Parameters
    ----------
    label:
        Human-readable identifier, e.g. ``"task3/job12/stage4"``.
    curve:
        Composite speedup curve mapping an SM share to a progress rate.
    work:
        Total parallelisable work in single-SM seconds.
    width_demand:
        SM count beyond which additional allocation is mostly wasted;
        the allocator never grants more than this.
    deadline:
        Absolute (virtual) deadline used for EDF ordering.
    priority:
        Scheduler priority level.
    setup_time:
        Serial reconfiguration latency consumed at rate 1 before work
        starts (0 for SGPRS' zero-configuration pool).
    payload:
        Opaque reference back to the scheduler's stage instance.
    """

    def __init__(
        self,
        label: str,
        curve: SpeedupCurve,
        work: float,
        width_demand: float,
        deadline: float,
        priority: PriorityLevel = PriorityLevel.LOW,
        setup_time: float = 0.0,
        payload: Any = None,
    ) -> None:
        if work <= 0:
            raise ValueError(f"kernel {label!r}: work must be positive, got {work}")
        if width_demand < 1.0:
            raise ValueError(
                f"kernel {label!r}: width_demand must be >= 1, got {width_demand}"
            )
        if setup_time < 0:
            raise ValueError(f"kernel {label!r}: setup_time must be >= 0")
        self.kernel_id = next(_KERNEL_IDS)
        self.label = label
        self.curve = curve
        self.work_total = work
        self.work_remaining = work
        self.setup_remaining = setup_time
        self.width_demand = width_demand
        self.deadline = deadline
        self.priority = priority
        self.payload = payload
        # Execution state, managed by the device/context:
        self.share: float = 0.0
        self.rate: float = 0.0
        #: Bumped by the allocator whenever the published ``rate`` actually
        #: changes.  The device re-arms a kernel's provisional completion
        #: event only when this revision moved: at a constant rate the
        #: completion time fixed when the rate was last set stays exact.
        self.rate_rev: int = 0
        self.context_id: Optional[int] = None
        self.stream_id: Optional[int] = None
        self.dispatched_at: Optional[float] = None
        self.aborted = False

    # ------------------------------------------------------------------
    # Progress accounting
    # ------------------------------------------------------------------
    @property
    def weight(self) -> float:
        """Intra-context share weight derived from the priority level."""
        return PRIORITY_WEIGHTS[self.priority]

    #: Residual work below this many single-SM seconds counts as done
    #: (~1 picosecond of modelled work; far below any kernel's scale but
    #: far above accumulated float64 rounding error).
    WORK_EPS = 1e-12

    @property
    def is_complete(self) -> bool:
        """Whether setup and work have both been fully consumed."""
        return (
            self.setup_remaining <= self.WORK_EPS
            and self.work_remaining <= self.WORK_EPS
        )

    def force_complete(self) -> None:
        """Zero the residuals (used when remaining wall time is below the
        simulator's time resolution)."""
        self.setup_remaining = 0.0
        self.work_remaining = 0.0

    def advance(self, elapsed: float) -> float:
        """Consume ``elapsed`` seconds of wall time at the current rate.

        Setup time burns first (at rate 1, independent of the SM share),
        then work burns at ``self.rate``.  Returns the single-SM seconds of
        *work* actually consumed — setup seconds do not count as work, and
        the tail past completion consumes nothing — so the device's
        ``total_work_done`` integral conserves work exactly.
        """
        if elapsed < 0:
            raise ValueError(f"elapsed must be >= 0, got {elapsed}")
        if self.setup_remaining > 0:
            consumed = min(self.setup_remaining, elapsed)
            self.setup_remaining -= consumed
            elapsed -= consumed
            if self.setup_remaining < self.WORK_EPS:
                self.setup_remaining = 0.0
        if elapsed <= 0 or self.rate <= 0:
            return 0.0
        consumed_work = min(elapsed * self.rate, self.work_remaining)
        self.work_remaining -= elapsed * self.rate
        if self.work_remaining < self.WORK_EPS:
            self.work_remaining = 0.0
        return consumed_work

    def time_to_completion(self) -> float:
        """Wall time until done at the current rate (inf when stalled)."""
        if self.is_complete:
            return 0.0
        if self.rate <= 0:
            if self.work_remaining > 1e-15:
                return float("inf")
            return self.setup_remaining
        return self.setup_remaining + self.work_remaining / self.rate

    def progress_fraction(self) -> float:
        """Fraction of the work already performed, in [0, 1]."""
        return 1.0 - self.work_remaining / self.work_total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StageKernel({self.label!r}, prio={self.priority.name}, "
            f"remaining={self.work_remaining:.2e}/{self.work_total:.2e})"
        )

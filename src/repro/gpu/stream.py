"""CUDA stream model.

Each context owns a small fixed set of streams (the paper: two
hardware-high-priority and two hardware-low-priority streams, capping
concurrency at four stages per context).  A stream holds at most one
resident stage kernel at a time; queued stages wait in the context's
priority queues until a stream frees up.

A stream created by a :class:`~repro.gpu.context.SimContext` carries a
back-reference to its owner; :meth:`CudaStream.attach` and
:meth:`CudaStream.detach` notify the owner so its residency revision and
cached free-stream occupancy can never go stale, no matter which code path
moved the kernel.  Bare streams (``owner=None``, as unit tests build them)
skip the notification.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.gpu.kernel import PriorityLevel, StageKernel


class StreamClass(enum.Enum):
    """Hardware priority class of a CUDA stream."""

    HIGH = "high"
    LOW = "low"


#: Which hardware stream class each scheduler priority level prefers.
#: HIGH stages target high-priority streams; MEDIUM and LOW stages target
#: low-priority streams (MEDIUM is a scheduler-level promotion, not a
#: hardware class — the paper adds it on top of the two stream classes).
PREFERRED_CLASS = {
    PriorityLevel.HIGH: StreamClass.HIGH,
    PriorityLevel.MEDIUM: StreamClass.LOW,
    PriorityLevel.LOW: StreamClass.LOW,
}


class CudaStream:
    """One stream: a slot that executes at most one stage kernel."""

    def __init__(
        self,
        stream_id: int,
        stream_class: StreamClass,
        owner: Optional[object] = None,
    ) -> None:
        self.stream_id = stream_id
        self.stream_class = stream_class
        self.kernel: Optional[StageKernel] = None
        #: Owning context (or ``None`` for bare streams); attach/detach
        #: notify it so occupancy caches stay exact.
        self.owner = owner

    @property
    def busy(self) -> bool:
        """Whether a kernel is resident on this stream."""
        return self.kernel is not None

    def attach(self, kernel: StageKernel) -> None:
        """Make ``kernel`` resident.

        Raises
        ------
        RuntimeError
            If the stream is already busy.
        """
        if self.kernel is not None:
            raise RuntimeError(
                f"stream {self.stream_id} is busy with {self.kernel.label!r}"
            )
        self.kernel = kernel
        kernel.stream_id = self.stream_id
        if self.owner is not None:
            self.owner._on_residency_change()

    def detach(self) -> StageKernel:
        """Remove and return the resident kernel.

        Raises
        ------
        RuntimeError
            If the stream is idle.
        """
        if self.kernel is None:
            raise RuntimeError(f"stream {self.stream_id} is idle")
        kernel = self.kernel
        self.kernel = None
        kernel.stream_id = None
        if self.owner is not None:
            self.owner._on_residency_change()
        return kernel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.kernel.label if self.kernel else "idle"
        return f"CudaStream({self.stream_id}, {self.stream_class.value}, {state})"

"""Simulated GPU: SM partitioning, CUDA contexts, prioritized streams.

This package is the substitute for the paper's RTX 2080 Ti testbed (see
DESIGN.md section 2).  The model is *rate-based*: every resident kernel owns
an SM share computed by :mod:`repro.gpu.allocator`, and progresses at the
speedup its stage's composite curve assigns to that share.  Shares are
recomputed whenever the resident set changes.

Key semantics (all load-bearing for the paper's results):

* context SM allocations are **hard caps** (MPS active-thread-percentage
  style): a context can never use more than its configured share, which is
  exactly why over-subscribed pools harvest more of the GPU;
* when the configured shares of busy contexts exceed the physical SM count,
  everyone is scaled down proportionally and a contention penalty applies;
* the device has an aggregate progress ceiling (DRAM bandwidth / L2
  saturation) independent of partitioning;
* partition *reconfiguration* costs wall time — the naive baseline pays it
  on every task switch, SGPRS' pre-created pool never does (the paper's
  "zero configuration partition switch").
"""

from repro.gpu.allocator import AllocationParams, AllocationResult, compute_allocation
from repro.gpu.context import SimContext
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import PriorityLevel, StageKernel
from repro.gpu.mps import ReconfigurationPolicy, SpatialReconfig, ZeroConfigPool
from repro.gpu.spec import GpuDeviceSpec, RTX_2080_TI
from repro.gpu.stream import CudaStream, StreamClass

__all__ = [
    "GpuDeviceSpec",
    "RTX_2080_TI",
    "PriorityLevel",
    "StageKernel",
    "CudaStream",
    "StreamClass",
    "SimContext",
    "GpuDevice",
    "AllocationParams",
    "AllocationResult",
    "compute_allocation",
    "ReconfigurationPolicy",
    "ZeroConfigPool",
    "SpatialReconfig",
]

"""Partition (re)configuration cost models.

The paper's headline mechanism is the **zero-configuration partition
switch**: SGPRS pre-creates a pool of CUDA contexts with fixed SM
allocations, so moving a stage between partitions never pays setup latency.
A conventional spatial partitioner instead reconfigures a partition whenever
it must serve a different task (model state, allocator percentage, context
initialisation), which is pure lost wall time.

These policies produce the ``setup_time`` attached to stage kernels when
they are bound to a context.
"""

from __future__ import annotations

from typing import Dict, Protocol

from repro.gpu.context import SimContext


class ReconfigurationPolicy(Protocol):
    """Maps (context, task) to the setup latency of the next kernel."""

    def setup_time(self, context: SimContext, task_name: str) -> float:
        """Setup latency (seconds) to run ``task_name`` on ``context`` now.

        Implementations may mutate bookkeeping (e.g. record the context as
        now configured for the task).
        """
        ...


class ZeroConfigPool:
    """SGPRS' pre-created context pool: switching is free.

    The pool's contexts were created, sized and warmed at admission time
    (offline phase), so online stage placement pays nothing.
    """

    def setup_time(self, context: SimContext, task_name: str) -> float:
        """Always zero."""
        context.configured_task = task_name
        return 0.0


class SpatialReconfig:
    """Naive spatial partitioning: task switches reconfigure the partition.

    Parameters
    ----------
    base_cost:
        Fixed latency of re-targeting a partition at another task (context
        state swap, allocator reconfiguration).
    per_task_cost:
        Additional latency per distinct task sharing the partition — more
        resident model state means more eviction/reload work per switch.
        This is what bends the naive scheduler's throughput *down* as the
        task count grows past the pivot point (paper Figs. 3a/4a).
    """

    def __init__(self, base_cost: float = 1.0e-4, per_task_cost: float = 1.3e-5) -> None:
        if base_cost < 0 or per_task_cost < 0:
            raise ValueError("reconfiguration costs must be >= 0")
        self.base_cost = base_cost
        self.per_task_cost = per_task_cost
        self._tasks_per_context: Dict[int, set] = {}

    def register_task(self, context: SimContext, task_name: str) -> None:
        """Record that ``task_name`` is pinned to ``context`` (admission)."""
        self._tasks_per_context.setdefault(context.context_id, set()).add(task_name)

    def distinct_tasks(self, context: SimContext) -> int:
        """Number of tasks pinned to a context."""
        return len(self._tasks_per_context.get(context.context_id, ()))

    def setup_time(self, context: SimContext, task_name: str) -> float:
        """Zero when the partition already serves the task, else the
        reconfiguration latency."""
        self._tasks_per_context.setdefault(context.context_id, set()).add(task_name)
        if context.configured_task == task_name:
            return 0.0
        context.configured_task = task_name
        return self.base_cost + self.per_task_cost * self.distinct_tasks(context)

"""Device specifications.

A :class:`GpuDeviceSpec` carries the *architectural* constants of the
simulated GPU; the behavioural constants (speedup curves, cost rates) live
in :class:`repro.speedup.calibration.DeviceCalibration`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuDeviceSpec:
    """Architectural constants of one GPU model.

    Attributes
    ----------
    name:
        Marketing name.
    total_sms:
        Number of streaming multiprocessors.
    high_priority_streams / low_priority_streams:
        Streams created per CUDA context.  The paper uses two of each,
        capping concurrency at four stages per context (Section IV-B3).
    aggregate_speedup_cap:
        Device-wide ceiling on the summed progress rate of all resident
        kernels, in single-SM-equivalents.  Models the DRAM/L2 saturation
        that bounds total inference throughput no matter how the SMs are
        partitioned; without it, infinitely fine partitioning would yield
        nearly linear aggregate speedup, which real GPUs do not show.
    """

    name: str = "RTX 2080 Ti"
    total_sms: int = 68
    high_priority_streams: int = 2
    low_priority_streams: int = 2
    aggregate_speedup_cap: float = 53.5

    def __post_init__(self) -> None:
        if self.total_sms < 1:
            raise ValueError(f"total_sms must be >= 1, got {self.total_sms}")
        if self.high_priority_streams < 0 or self.low_priority_streams < 0:
            raise ValueError("stream counts must be >= 0")
        if self.high_priority_streams + self.low_priority_streams < 1:
            raise ValueError("need at least one stream per context")
        if self.aggregate_speedup_cap <= 0:
            raise ValueError("aggregate_speedup_cap must be positive")

    @property
    def streams_per_context(self) -> int:
        """Maximum concurrently resident stages per context."""
        return self.high_priority_streams + self.low_priority_streams


#: The paper's device: 68 SMs, 2 high + 2 low priority streams per context.
RTX_2080_TI = GpuDeviceSpec()

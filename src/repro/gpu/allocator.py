"""SM allocation across contexts and resident kernels.

Called whenever the resident set changes; produces each kernel's SM share
and progress rate.  The model (DESIGN.md section 4):

1. **Intra-context**: a context's nominal SMs are split among its resident
   kernels proportionally to priority weights, water-filling against each
   kernel's ``width_demand`` (shares a kernel cannot use flow to its
   neighbours).  A context never hands out more than its nominal cap.
2. **Device pressure**: if the summed intra-context grants exceed the
   physical SM count, every share is scaled down proportionally and a
   contention efficiency ``1/(1 + alpha * (pressure - 1))`` applies —
   over-subscribed pools pay for the time-multiplexing they cause.
3. **Co-location interference**: kernels sharing a context lose
   ``1/(1 + beta * (n - 1))`` efficiency to cache/bandwidth interference.
4. **Aggregate ceiling**: summed progress rates are capped at the device's
   ``aggregate_speedup_cap`` (DRAM/L2 saturation) by uniform rescaling.

Rates are in *single-SM work-seconds per wall second*, i.e. the composite
speedup of the stage at its effective share, degraded by the efficiency
terms.

**Structure-of-arrays layout (the vectorised settle core).**  Under
``GpuDevice(rearm="vectorised")`` the same model runs as whole-array
passes over a flat kernel table (:class:`repro.gpu.table.KernelTable`):
one fixed slot per ``(context, stream index)`` pair — contexts in device
order, streams in index order, so slot order equals the scalar resident
iteration order — holding parallel numpy arrays for remaining work,
remaining setup, published rate and share, rate revision, the cached
intra-context (water-filled) share, the cached speedup-curve value and
co-location factor, and the per-slot completion anchor ``(armed_time,
stamp)``.  Stage (1) still runs through :func:`intra_context_shares` —
the scalar function below, invoked only for contexts whose residency
moved — while stages (2)-(4) are array expressions whose order-sensitive
sums use ``np.cumsum`` so every float matches this module's scalar loops
bit for bit.  :meth:`repro.gpu.table.KernelTable.allocate` is the
vectorised twin of :func:`compute_allocation`; change one only in
lockstep with the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.gpu.context import SimContext
from repro.gpu.kernel import StageKernel


@dataclass(frozen=True)
class AllocationParams:
    """Tunable constants of the allocation model.

    Attributes
    ----------
    alpha:
        Device-level contention penalty per unit of over-subscription
        pressure.  Drives the paper's Scenario-2 observation that 2.0x
        over-subscription loses to 1.5x.
    beta:
        Intra-context co-location interference per extra resident kernel.
    width_fraction:
        Fraction of a stage's peak speedup that defines its width demand
        (used when building kernels; recorded here for provenance).
    """

    alpha: float = 0.03
    beta: float = 0.01
    width_fraction: float = 0.9

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be >= 0")
        if not 0.0 < self.width_fraction <= 1.0:
            raise ValueError("width_fraction must be in (0, 1]")


@dataclass
class AllocationResult:
    """Outcome of one allocation pass.

    Attributes
    ----------
    shares:
        Kernel id -> effective SM share (after device scaling).
    rates:
        Kernel id -> progress rate (single-SM seconds per second).
    pressure:
        Summed intra-context grants divided by physical SMs (>1 means the
        device was over-subscribed at this instant).
    device_scale:
        Uniform scale applied to shares (1.0 when pressure <= 1).
    aggregate_rate:
        Summed progress rate after the ceiling was applied.
    """

    shares: Dict[int, float] = field(default_factory=dict)
    rates: Dict[int, float] = field(default_factory=dict)
    pressure: float = 0.0
    device_scale: float = 1.0
    aggregate_rate: float = 0.0


def intra_context_shares(
    kernels: Sequence[StageKernel], nominal_sms: float
) -> Dict[int, float]:
    """Water-filled, weight-proportional split of one context's SMs.

    Kernels whose width demand is below their proportional share release
    the surplus to the others.  The split is *work-conserving*: if every
    kernel's demand is satisfied and budget remains, the leftover is still
    handed out weight-proportionally — **to every kernel, width-capped
    ones included, so a final share may exceed the kernel's recorded
    ``width_demand``**.  This is deliberate, not an oversight: the
    saturating curves make the surplus nearly (but not exactly) worthless,
    matching hardware, where a lone kernel occupies the whole partition
    regardless of how little the tail of it helps; ``width_demand`` is the
    knee of the curve (the 90%-of-peak point), not a hard architectural
    limit, so over-granting wastes SMs rather than violating a constraint.
    The behaviour is pinned by a regression test
    (``tests/gpu/test_allocator.py::TestLeftoverSpread``) because the
    vectorised settle core reuses this function verbatim — changing the
    spread changes every mode's traces together or not at all.

    The result never exceeds ``nominal_sms`` in total.
    """
    if not kernels:
        return {}
    remaining = {k.kernel_id: k for k in kernels}
    shares: Dict[int, float] = {}
    budget = nominal_sms
    # Water-filling terminates in <= len(kernels) rounds because each round
    # either caps at least one kernel or distributes the whole budget.
    while remaining and budget > 1e-12:
        total_weight = sum(k.weight for k in remaining.values())
        capped: List[int] = []
        for kernel_id, kernel in remaining.items():
            proportional = budget * kernel.weight / total_weight
            if kernel.width_demand <= proportional:
                shares[kernel_id] = kernel.width_demand
                capped.append(kernel_id)
        if not capped:
            for kernel_id, kernel in remaining.items():
                shares[kernel_id] = budget * kernel.weight / total_weight
            return shares
        for kernel_id in capped:
            budget -= shares[kernel_id]
            del remaining[kernel_id]
    for kernel_id in remaining:
        shares.setdefault(kernel_id, 0.0)
    if budget > 1e-12:
        # Everyone is width-satisfied: spread the leftover anyway.
        total_weight = sum(k.weight for k in kernels)
        for kernel in kernels:
            shares[kernel.kernel_id] += budget * kernel.weight / total_weight
    return shares


class WaterfillCache:
    """Bit-transparent memoisation of :func:`intra_context_shares`.

    The water-fill's output — values *and* dict insertion order (which
    capping round each kernel left in) — is a pure function of the budget
    and the ordered ``(weight, width_demand)`` sequence of the resident
    kernels; the kernel identities only name the dict keys.  Backlogged
    runs re-solve the same handful of shapes thousands of times (every
    residency change re-fills that context, and pipelines reuse a few
    stage profiles), so the cache keys on that shape tuple and stores the
    solution as ``(input position, share)`` pairs **in the original
    insertion order**.  Replay rebuilds the dict in that same order with
    the same floats, so downstream order-sensitive consumers — notably
    ``sum(shares.values())`` in the scalar allocator — see bit-identical
    results; the cache is invisible in every trace.

    Keys are value tuples (no ``id()``), so object lifetime cannot alias
    entries.  The table is cleared wholesale past :attr:`MAX_ENTRIES` — a
    crude but sufficient bound, since real runs see few distinct shapes.
    """

    MAX_ENTRIES = 4096

    def __init__(self) -> None:
        self._entries: Dict[
            Tuple[float, Tuple[Tuple[float, float], ...]],
            Tuple[Tuple[int, float], ...],
        ] = {}
        self.hits = 0
        self.misses = 0

    def shares(
        self, kernels: Sequence[StageKernel], nominal_sms: float
    ) -> Dict[int, float]:
        """Cached :func:`intra_context_shares` — same dict, same bits."""
        if not kernels:
            return {}
        key = (
            nominal_sms,
            tuple((k.weight, k.width_demand) for k in kernels),
        )
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            return {
                kernels[position].kernel_id: share
                for position, share in cached
            }
        self.misses += 1
        shares = intra_context_shares(kernels, nominal_sms)
        position_of = {k.kernel_id: i for i, k in enumerate(kernels)}
        if len(self._entries) >= self.MAX_ENTRIES:
            self._entries.clear()
        self._entries[key] = tuple(
            (position_of[kernel_id], share)
            for kernel_id, share in shares.items()
        )
        return shares


def compute_allocation(
    contexts: Sequence[SimContext],
    total_sms: float,
    aggregate_cap: float,
    params: AllocationParams = AllocationParams(),
    cache: "WaterfillCache | None" = None,
) -> AllocationResult:
    """Allocate SM shares and progress rates for all resident kernels.

    ``cache`` optionally memoises the per-context water-fills (see
    :class:`WaterfillCache`); results are bit-identical either way.
    """
    result = AllocationResult()
    per_context: List[Tuple[SimContext, Dict[int, float]]] = []
    granted_total = 0.0
    for context in contexts:
        kernels = context.resident_kernels()
        if not kernels:
            continue
        if cache is not None:
            shares = cache.shares(kernels, context.nominal_sms)
        else:
            shares = intra_context_shares(kernels, context.nominal_sms)
        per_context.append((context, shares))
        granted_total += sum(shares.values())

    if granted_total <= 0.0:
        return result

    result.pressure = granted_total / total_sms
    result.device_scale = min(1.0, total_sms / granted_total)
    contention = 1.0
    if result.pressure > 1.0:
        contention = 1.0 / (1.0 + params.alpha * (result.pressure - 1.0))

    aggregate = 0.0
    kernel_index: Dict[int, StageKernel] = {}
    for context, shares in per_context:
        kernels = context.resident_kernels()
        colocation = 1.0 / (1.0 + params.beta * (len(kernels) - 1))
        for kernel in kernels:
            share = shares.get(kernel.kernel_id, 0.0) * result.device_scale
            rate = kernel.curve.speedup(share) * colocation
            result.shares[kernel.kernel_id] = share
            result.rates[kernel.kernel_id] = rate
            kernel_index[kernel.kernel_id] = kernel
            aggregate += rate

    # The DRAM/L2 ceiling binds first; the over-subscription contention
    # penalty then degrades whatever the ceiling allows.  Ordering matters:
    # a heavily over-subscribed pool cannot hide its time-multiplexing
    # overhead behind the bandwidth ceiling (this is what makes 2.0x lose
    # to 1.5x once three contexts already fill the device — the paper's
    # Scenario 2 observation).
    ceiling_scale = min(1.0, aggregate_cap / aggregate) if aggregate > 0 else 1.0
    overall = ceiling_scale * contention
    if overall < 1.0:
        for kernel_id in result.rates:
            result.rates[kernel_id] *= overall
        aggregate *= overall
    result.aggregate_rate = aggregate

    # Publish onto the kernels for the device's progress accounting.  The
    # rate revision moves only when the published rate differs from the
    # kernel's current one: unchanged inputs reproduce bit-identical floats,
    # so an equality check is exact, and the device uses the revision to
    # skip re-arming completion events whose time is still exact.
    for kernel_id, kernel in kernel_index.items():
        kernel.share = result.shares[kernel_id]
        rate = result.rates[kernel_id]
        if rate != kernel.rate:
            kernel.rate = rate
            kernel.rate_rev += 1
    return result

"""Simulated CUDA context: an SM partition with prioritized stream slots.

A context owns

* a **nominal SM allocation** (``nominal_sms``) — the hard cap the device
  allocator enforces (MPS active-thread-percentage semantics);
* a fixed set of streams (2 hardware-high + 2 hardware-low by default),
  bounding resident concurrency at four stages (Section IV-B3);
* three EDF wait queues, one per scheduler priority level, holding stages
  that have been *assigned* to this context but have no free stream yet.

Dispatch order follows the paper: the highest non-empty priority level
first, earliest absolute deadline first within a level.

**Scheduler-layer fast path (PR 9).**  The online phase queries this layer
on every release and every settle — ``queued_count`` / ``queue_empty`` /
``backlog_work`` / ``estimated_finish_time`` for SGPRS's context
assignment, ``free_streams`` for stream picking, ``dispatch_ready`` at
every device change point.  All of those used to be per-call scans over
the queues and streams (O(queued) each, paid O(contexts) times per
release), which profiling showed dominating vectorised runs.  The default
``accounting="fast"`` mode instead maintains the answers incrementally:

* per-level **live counters** and aggregate **backlog accumulators**
  (queued single-SM work; queued ETA seconds at the context's nominal
  speedup) updated at enqueue / pop / tombstone time, so the four
  accounting queries are O(1) plus an O(#streams) walk over residents;
* a cached **free-stream occupancy** (per-class free lists plus the
  concatenated index-ordered list), invalidated by ``residency_rev`` —
  the same revision the device uses to skip allocation passes — and
  rebuilt at most once per residency change instead of once per call;
* a **batched** ``dispatch_ready`` that fills every free slot of a level
  in one pass (highest level first) instead of restarting from the top
  after each attach.  Because dispatching only ever *consumes* streams, a
  level found blocked stays blocked for the rest of the pass, so the
  batched walk dispatches exactly the stages the restart-scan did — but
  without popping and re-queueing blocked stages.  That also fixes an EDF
  FIFO bug: the old scan re-enqueued a blocked stage under a fresh
  sequence number, letting an equal-deadline peer that arrived later
  leapfrog it within the same settle;
* **tombstone compaction** in the per-level EDF heaps, mirroring
  :class:`repro.sim.engine.SimulationEngine`'s majority-compaction rule
  (rebuild when tombstones outnumber live entries), so aborted stages
  stop occupying memory and pop time under heavy shedding.

``accounting="scan"`` keeps the historical per-call scans (and the
restart-scan dispatch loop, seq-preserving) as a frozen perf baseline for
``benchmarks/test_bench_engine.py``; it is not used by any scheduler.
Both modes maintain the incremental state (it is O(1) per transition), so
the ``stat_*`` observability counters mean the same thing in each.

Float caveat, deliberate: the fast accumulators produce the same values a
scan would *up to summation order* — an accumulator that adds and
subtracts contributions is not bit-identical to re-summing the survivors.
The estimates feed SGPRS placement heuristics only, all three device
re-arm modes share this code (so cross-mode trace equivalence is
unaffected), and the accumulators are reset to exactly 0.0 whenever the
queues drain, bounding drift.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple

from repro.gpu.kernel import PriorityLevel, StageKernel
from repro.gpu.stream import PREFERRED_CLASS, CudaStream, StreamClass

_QUEUE_SEQ = itertools.count()

#: Dispatch walks levels highest-first.
_LEVELS_DESC: Tuple[PriorityLevel, ...] = tuple(
    sorted(PriorityLevel, reverse=True)
)

#: Accounting modes: ``"fast"`` (incremental counters/caches, the default)
#: and ``"scan"`` (per-call scans — the frozen pre-PR-9 perf baseline).
ACCOUNTING_MODES: Tuple[str, ...] = ("fast", "scan")


class SimContext:
    """One partition of the simulated GPU.

    Parameters
    ----------
    context_id:
        Stable identifier within the pool.
    nominal_sms:
        Hard SM cap (may be fractional; over-subscribed pools configure
        more total nominal SMs than the device physically has).
    high_streams / low_streams:
        Number of hardware high-/low-priority streams.
    allow_stream_borrowing:
        When ``True`` (default) a stage may occupy an idle stream of the
        non-preferred class instead of waiting — the work-conserving
        behaviour real stream priorities exhibit (priorities order work
        distribution, they do not reserve slots).  ``False`` gives the
        strict interpretation; the ablation benchmark compares both.
    accounting:
        ``"fast"`` (default) answers occupancy/backlog queries from
        incrementally maintained state; ``"scan"`` re-scans queues and
        streams on every call (the historical behaviour, kept as the
        benchmark baseline).  See the module docstring.
    """

    #: Per-level EDF heaps smaller than this are never compacted
    #: (rebuilding a handful of entries costs more than the tombstones).
    COMPACT_MIN_SIZE = 32

    def __init__(
        self,
        context_id: int,
        nominal_sms: float,
        high_streams: int = 2,
        low_streams: int = 2,
        allow_stream_borrowing: bool = True,
        accounting: str = "fast",
    ) -> None:
        if nominal_sms <= 0:
            raise ValueError(f"nominal_sms must be positive, got {nominal_sms}")
        if accounting not in ACCOUNTING_MODES:
            raise ValueError(
                f"accounting must be one of {ACCOUNTING_MODES}, "
                f"got {accounting!r}"
            )
        self.context_id = context_id
        self.nominal_sms = nominal_sms
        self.allow_stream_borrowing = allow_stream_borrowing
        self.accounting = accounting
        self.streams: List[CudaStream] = []
        for index in range(high_streams):
            self.streams.append(CudaStream(index, StreamClass.HIGH, owner=self))
        for index in range(low_streams):
            self.streams.append(
                CudaStream(high_streams + index, StreamClass.LOW, owner=self)
            )
        self._queues: Dict[PriorityLevel, List[Tuple[float, int, StageKernel]]] = {
            level: [] for level in PriorityLevel
        }
        #: Monotonic counter bumped on every stream attach/detach; the device
        #: compares snapshots of it to detect that the resident set (and
        #: therefore the whole allocation) is unchanged since the last
        #: settle, and the free-stream occupancy cache below is keyed on it.
        self.residency_rev = 0
        self._resident_cache: List[StageKernel] = []
        self._resident_cache_rev = -1
        # Cached free-stream occupancy (rebuilt when residency_rev moved).
        self._free_cache_rev = -1
        self._free_by_class: Dict[StreamClass, List[CudaStream]] = {
            StreamClass.HIGH: [],
            StreamClass.LOW: [],
        }
        self._free_all: List[CudaStream] = []
        # Incremental queue accounting (maintained in both modes).
        self._live: Dict[PriorityLevel, int] = {level: 0 for level in PriorityLevel}
        self._live_total = 0
        self._tombstones: Dict[PriorityLevel, int] = {
            level: 0 for level in PriorityLevel
        }
        #: kernel_id -> (level, queued work, queued ETA contribution); the
        #: exact floats added to the accumulators, so unregistering
        #: subtracts precisely what was added.
        self._queued_entry: Dict[int, Tuple[PriorityLevel, float, float]] = {}
        self._queued_work = 0.0
        self._queued_eta = 0.0
        #: id(curve) -> (curve, speedup at nominal_sms).  The curve object
        #: is held strongly so a collected curve can never alias the id.
        self._speedup_cache: Dict[int, Tuple[object, float]] = {}
        #: Identity of the task whose state the partition is configured for;
        #: used by reconfiguration policies (naive pays to change it).
        self.configured_task: Optional[str] = None
        # Observability counters (deterministic; the scheduler-layer
        # benchmark gates on ratios between the two accounting modes).
        #: Accounting queries answered (queued_count/queue_empty/
        #: backlog_work/estimated_finish_time).
        self.stat_acct_queries = 0
        #: Queue entries walked while answering them (0 on the fast path).
        self.stat_scan_elems = 0
        #: Free-stream list constructions (per call in scan mode; per
        #: residency change in fast mode).
        self.stat_free_builds = 0
        #: Blocked stages popped and re-queued by the scan-mode dispatch
        #: loop (the fast batched dispatch never re-queues).
        self.stat_requeues = 0
        #: Tombstone-dropping EDF heap rebuilds performed.
        self.stat_compactions = 0

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    def enqueue(self, kernel: StageKernel) -> None:
        """Queue an assigned stage, EDF-ordered within its priority level."""
        kernel.context_id = self.context_id
        heapq.heappush(
            self._queues[kernel.priority],
            (kernel.deadline, next(_QUEUE_SEQ), kernel),
        )
        self._register_queued(kernel)

    def _nominal_speedup(self, kernel: StageKernel) -> float:
        """``kernel.curve.speedup(nominal_sms)`` memoised per curve object."""
        # repro: lint-ok[D003] the memo stores (curve, value) — the strong ref pins the id for the cache's lifetime
        key = id(kernel.curve)
        hit = self._speedup_cache.get(key)
        if hit is None:
            value = max(kernel.curve.speedup(self.nominal_sms), 1e-9)
            self._speedup_cache[key] = (kernel.curve, value)
            return value
        return hit[1]

    def _register_queued(self, kernel: StageKernel) -> None:
        """Fold a newly queued stage into the live counters/accumulators.

        A queued stage's ``work_remaining`` and ``setup_remaining`` are
        frozen until it is dispatched (only residents advance), so its
        contribution is computed once here and stored for exact removal.
        """
        level = kernel.priority
        work = kernel.work_remaining
        eta = kernel.setup_remaining + work / self._nominal_speedup(kernel)
        self._queued_entry[kernel.kernel_id] = (level, work, eta)
        self._live[level] += 1
        self._live_total += 1
        self._queued_work += work
        self._queued_eta += eta

    def _unregister_queued(self, kernel: StageKernel) -> bool:
        """Remove a stage's contribution; ``False`` if it was not queued.

        When the last live entry leaves, the accumulators are reset to
        exactly 0.0 so add/subtract rounding residue cannot accumulate
        across backlog episodes.
        """
        entry = self._queued_entry.pop(kernel.kernel_id, None)
        if entry is None:
            return False
        level, work, eta = entry
        self._live[level] -= 1
        self._live_total -= 1
        if self._live_total == 0:
            self._queued_work = 0.0
            self._queued_eta = 0.0
        else:
            self._queued_work -= work
            self._queued_eta -= eta
        return True

    def _maybe_compact(self, level: PriorityLevel) -> None:
        """Drop a level's tombstones when they outnumber live entries.

        Mirrors the engine heap's majority-compaction rule: an O(n)
        rebuild paid at most every n tombstones is amortised O(1) per
        abort, and it bounds both memory and the ``log n`` every push/pop
        pays.  ``(deadline, seq)`` keys are unique, so the re-heapified
        queue pops in exactly the order the original would have.
        """
        queue = self._queues[level]
        if (
            self._tombstones[level] * 2 > len(queue)
            and len(queue) >= self.COMPACT_MIN_SIZE
        ):
            live = [entry for entry in queue if not entry[2].aborted]
            heapq.heapify(live)
            self._queues[level] = live
            self._tombstones[level] = 0
            self.stat_compactions += 1

    def queued_count(self, level: Optional[PriorityLevel] = None) -> int:
        """Stages waiting for a stream (optionally at one level)."""
        self.stat_acct_queries += 1
        if self.accounting == "scan":
            if level is not None:
                self.stat_scan_elems += len(self._queues[level])
                return sum(
                    1 for _, _, k in self._queues[level] if not k.aborted
                )
            self.stat_scan_elems += sum(len(q) for q in self._queues.values())
            return sum(
                1
                for queue in self._queues.values()
                for _, _, k in queue
                if not k.aborted
            )
        if level is not None:
            return self._live[level]
        return self._live_total

    def queue_empty(self) -> bool:
        """Whether no stage is waiting for a stream."""
        return self.queued_count() == 0

    def is_idle(self) -> bool:
        """Whether the context has no resident and no queued stage."""
        return not self.resident_kernels() and self.queue_empty()

    # ------------------------------------------------------------------
    # Residency
    # ------------------------------------------------------------------
    def _on_residency_change(self) -> None:
        """Stream attach/detach hook: invalidate residency-keyed caches."""
        self.residency_rev += 1

    def resident_kernels(self) -> List[StageKernel]:
        """Kernels currently occupying streams, in stream-index order.

        The list is cached and rebuilt only when a stream attach/detach
        moved :attr:`residency_rev` — the allocator and device call this on
        every change point, so the rebuild must not be paid when nothing
        moved.  Callers must treat the result as read-only (a fresh list
        object replaces it on the next residency change, so held references
        stay stable snapshots).

        The stream-index ordering is load-bearing: the vectorised settle
        core (:class:`repro.gpu.table.KernelTable`) assigns one fixed
        table slot per ``(context, stream index)`` pair and relies on this
        iteration order matching slot order, so its ``cumsum``-based
        aggregate sums accumulate in exactly the sequence the scalar
        allocator's loops do (bit-identical traces across re-arm modes).
        """
        if self._resident_cache_rev != self.residency_rev:
            self._resident_cache = [
                s.kernel for s in self.streams if s.kernel is not None
            ]
            self._resident_cache_rev = self.residency_rev
        return self._resident_cache

    def _refresh_free_cache(self) -> None:
        """Rebuild the free-stream occupancy if the residency moved."""
        if self._free_cache_rev == self.residency_rev:
            return
        high: List[CudaStream] = []
        low: List[CudaStream] = []
        free: List[CudaStream] = []
        for stream in self.streams:
            if stream.kernel is None:
                free.append(stream)
                if stream.stream_class is StreamClass.HIGH:
                    high.append(stream)
                else:
                    low.append(stream)
        self._free_by_class[StreamClass.HIGH] = high
        self._free_by_class[StreamClass.LOW] = low
        self._free_all = free
        self._free_cache_rev = self.residency_rev
        self.stat_free_builds += 1

    def free_streams(
        self, stream_class: Optional[StreamClass] = None
    ) -> List[CudaStream]:
        """Idle streams, optionally filtered by hardware class.

        Fast mode returns the cached occupancy list (read-only — a fresh
        list replaces it on the next residency change); scan mode builds
        a fresh list per call, as the historical code did.
        """
        if self.accounting == "scan":
            self.stat_free_builds += 1
            return [
                s
                for s in self.streams
                if not s.busy
                and (stream_class is None or s.stream_class is stream_class)
            ]
        self._refresh_free_cache()
        if stream_class is None:
            return self._free_all
        return self._free_by_class[stream_class]

    def free_stream_count(
        self, stream_class: Optional[StreamClass] = None
    ) -> int:
        """Number of idle streams (optionally of one hardware class)."""
        return len(self.free_streams(stream_class))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch_ready(self) -> List[StageKernel]:
        """Move queued stages onto free streams; return those dispatched.

        Highest priority level first, EDF within a level.  Each stage takes
        an idle stream of its preferred hardware class, falling back to the
        other class when borrowing is enabled.

        The fast path fills all free slots of a level in one batched pass:
        dispatching only consumes streams, so once a level is blocked (no
        stream its stages may use) it stays blocked for the remainder of
        the pass, and the restart-from-the-top loop of the historical scan
        dispatch is equivalent but redundant.  Blocked stages are never
        popped, so their EDF FIFO position is preserved by construction.
        """
        if self.accounting == "scan":
            return self._dispatch_ready_scan()
        if self._live_total == 0:
            return []
        dispatched: List[StageKernel] = []
        for level in _LEVELS_DESC:
            while self._live[level] > 0:
                stream = self._pick_stream(level)
                if stream is None:
                    break  # blocked level: lower ones may use other classes
                kernel = self._pop_live(level)
                if kernel is None:  # pragma: no cover - counters guarantee
                    break
                stream.attach(kernel)
                dispatched.append(kernel)
        return dispatched

    def _dispatch_ready_scan(self) -> List[StageKernel]:
        """The historical restart-scan dispatch loop (benchmark baseline).

        Pops one stage at a time and restarts from the highest level after
        every attach; a blocked stage is pushed back under its *original*
        sequence number, so EDF FIFO tie-breaks match the fast path (the
        pre-PR-9 code used a fresh sequence number here, letting an
        equal-deadline later arrival leapfrog a blocked stage).
        """
        dispatched: List[StageKernel] = []
        progressing = True
        while progressing:
            progressing = False
            for level in _LEVELS_DESC:
                entry = self._pop_live_entry(level)
                if entry is None:
                    continue
                stream = self._pick_stream(level)
                if stream is None:
                    # No slot for this level; put the stage back (keeping
                    # its seq) and try the next (lower) level, which may
                    # target the other stream class.
                    heapq.heappush(self._queues[level], entry)
                    self.stat_requeues += 1
                    continue
                kernel = entry[2]
                self._unregister_queued(kernel)
                stream.attach(kernel)
                dispatched.append(kernel)
                progressing = True
                break  # restart from the highest level
        return dispatched

    def _pop_live_entry(
        self, level: PriorityLevel
    ) -> Optional[Tuple[float, int, StageKernel]]:
        """Pop the earliest live heap entry of one level (tombstones
        dropped), *without* touching the queued accounting."""
        queue = self._queues[level]
        while queue:
            entry = heapq.heappop(queue)
            if entry[2].aborted:
                self._tombstones[level] -= 1
                continue
            return entry
        return None

    def _pop_live(self, level: PriorityLevel) -> Optional[StageKernel]:
        """Pop the earliest-deadline non-aborted stage of one level."""
        entry = self._pop_live_entry(level)
        if entry is None:
            return None
        kernel = entry[2]
        self._unregister_queued(kernel)
        return kernel

    def _pick_stream(self, level: PriorityLevel) -> Optional[CudaStream]:
        preferred = PREFERRED_CLASS[level]
        candidates = self.free_streams(preferred)
        if not candidates and self.allow_stream_borrowing:
            candidates = self.free_streams()
        return candidates[0] if candidates else None

    def remove(self, kernel: StageKernel) -> None:
        """Detach a kernel wherever it lives (stream or queue).

        Queued copies are tombstoned (``aborted`` kernels are skipped when
        popped), the live counters/accumulators are settled immediately,
        and a tombstone-majority heap is compacted — so removal stays
        amortised O(1) and shed stages stop costing memory or pop time.
        """
        for stream in self.streams:
            if stream.kernel is kernel:
                stream.detach()
                return
        kernel.aborted = True
        if self._unregister_queued(kernel):
            level = kernel.priority
            self._tombstones[level] += 1
            self._maybe_compact(level)

    # ------------------------------------------------------------------
    # Estimates used by the SGPRS context-assignment policy
    # ------------------------------------------------------------------
    def backlog_work(self) -> float:
        """Single-SM seconds of work resident + queued on this context."""
        self.stat_acct_queries += 1
        if self.accounting == "scan":
            total = sum(k.work_remaining for k in self.resident_kernels())
            for queue in self._queues.values():
                self.stat_scan_elems += len(queue)
                total += sum(
                    k.work_remaining for _, _, k in queue if not k.aborted
                )
            return total
        total = 0.0
        for kernel in self.resident_kernels():
            total += kernel.work_remaining
        return total + self._queued_work

    def estimated_finish_time(self, now: float) -> float:
        """Crude ETA for draining the current backlog.

        Assumes the backlog runs sequentially at the composite speedup its
        kernels achieve at the context's nominal allocation — an
        intentionally simple estimate, mirroring what an online scheduler
        can actually compute cheaply.  The fast path sums the (frozen)
        queued contributions once at enqueue time and only walks the
        residents here.
        """
        self.stat_acct_queries += 1
        if self.accounting == "scan":
            kernels = self.resident_kernels() + [
                k
                for queue in self._queues.values()
                for _, _, k in queue
                if not k.aborted
            ]
            self.stat_scan_elems += sum(
                len(queue) for queue in self._queues.values()
            )
            eta = now
            for kernel in kernels:
                speedup = max(kernel.curve.speedup(self.nominal_sms), 1e-9)
                eta += kernel.setup_remaining + kernel.work_remaining / speedup
            return eta
        eta = now
        for kernel in self.resident_kernels():
            eta += (
                kernel.setup_remaining
                + kernel.work_remaining / self._nominal_speedup(kernel)
            )
        return eta + self._queued_eta

    def estimate_completion(self, kernel: StageKernel, now: float) -> float:
        """ETA for ``kernel`` if it were assigned to this context now."""
        speedup = self._nominal_speedup(kernel)
        own_time = kernel.setup_remaining + kernel.work_remaining / speedup
        if self.queue_empty() and len(self.resident_kernels()) < len(self.streams):
            # Would start immediately, sharing the partition.
            return now + own_time
        return self.estimated_finish_time(now) + own_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimContext({self.context_id}, sms={self.nominal_sms:.1f}, "
            f"resident={len(self.resident_kernels())}, queued={self.queued_count()})"
        )
